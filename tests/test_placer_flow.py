"""Tests for the end-to-end DreamPlacer flow."""

import numpy as np
import pytest

from repro.benchgen import CircuitSpec, generate
from repro.core import DreamPlacer, PlacementParams, placement_summary


@pytest.fixture(scope="module")
def flow_result():
    db = generate(CircuitSpec(name="flow", num_cells=300, num_ios=16,
                              utilization=0.6, macro_area_fraction=0.04,
                              num_macros=2, seed=31))
    params = PlacementParams(max_global_iters=300, detailed_passes=1)
    return db, DreamPlacer(db, params).run()


class TestFullFlow:
    def test_final_placement_legal(self, flow_result):
        _, result = flow_result
        assert result.legality is not None
        assert result.legality.legal, result.legality.messages

    def test_dp_improves_over_lg(self, flow_result):
        _, result = flow_result
        assert result.hpwl_final <= result.hpwl_legal

    def test_lg_cost_is_moderate(self, flow_result):
        _, result = flow_result
        assert result.hpwl_legal <= 1.25 * result.hpwl_global

    def test_times_populated(self, flow_result):
        _, result = flow_result
        assert result.times.global_place > 0
        assert result.times.legalize > 0
        assert result.times.detailed > 0
        assert result.times.total == pytest.approx(
            result.times.global_place + result.times.legalize
            + result.times.detailed + result.times.global_route
        )

    def test_db_updated_with_final(self, flow_result):
        db, result = flow_result
        np.testing.assert_allclose(db.cell_x, result.x)

    def test_summary_metrics(self, flow_result):
        db, result = flow_result
        summary = placement_summary(db)
        assert summary.hpwl == pytest.approx(result.hpwl_final)
        assert summary.num_cells == db.num_cells

    def test_no_routability_metrics_in_plain_mode(self, flow_result):
        _, result = flow_result
        assert result.rc is None
        assert result.shpwl is None


class TestFlowVariants:
    def make_db(self, seed=33):
        return generate(CircuitSpec(name="var", num_cells=200, num_ios=8,
                                    utilization=0.55, seed=seed))

    def test_gp_only(self):
        db = self.make_db()
        params = PlacementParams(legalize=False, detailed=False,
                                 max_global_iters=60, min_global_iters=1)
        result = DreamPlacer(db, params).run()
        assert result.legality is None
        assert result.times.legalize == 0.0

    def test_lg_without_dp(self):
        db = self.make_db()
        params = PlacementParams(detailed=False, max_global_iters=60,
                                 min_global_iters=1)
        result = DreamPlacer(db, params).run()
        assert result.legality.legal
        assert result.hpwl_final == result.hpwl_legal

    def test_routability_mode_reports_rc(self):
        db = generate(CircuitSpec(name="routa", num_cells=250, num_ios=8,
                                  utilization=0.5, seed=37))
        params = PlacementParams(
            max_global_iters=250, routability=True, detailed=False,
            route_num_tiles=16, route_tile_capacity=3.0,
            inflation_max_rounds=2,
        )
        result = DreamPlacer(db, params).run()
        assert result.rc is not None and result.rc >= 100.0
        assert result.shpwl is not None
        assert result.shpwl >= result.hpwl_final
        assert result.router_calls >= 1
        assert result.times.global_route > 0
        assert result.legality.legal

    def test_routability_restores_original_widths(self):
        db = generate(CircuitSpec(name="routb", num_cells=250, num_ios=8,
                                  utilization=0.5, seed=37))
        widths = db.cell_width.copy()
        params = PlacementParams(
            max_global_iters=200, routability=True, detailed=False,
            route_num_tiles=16, route_tile_capacity=2.0,
            inflation_max_rounds=1,
        )
        DreamPlacer(db, params).run()
        np.testing.assert_allclose(db.cell_width, widths)

    def test_inflation_rounds_triggered_under_pressure(self):
        db = generate(CircuitSpec(name="routc", num_cells=250, num_ios=8,
                                  utilization=0.5, seed=39))
        params = PlacementParams(
            max_global_iters=250, routability=True, detailed=False,
            route_num_tiles=16, route_tile_capacity=0.8,
            inflation_max_rounds=3,
        )
        result = DreamPlacer(db, params).run()
        assert result.inflation_rounds >= 1
        assert result.router_calls >= 2
