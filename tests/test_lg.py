"""Tests for legalization: rows, Tetris, Abacus, checker."""

import numpy as np
import pytest

from repro.geometry import PlacementRegion
from repro.lg import abacus_legalize, check_legal, legalize, tetris_legalize
from repro.lg.rows import build_row_segments
from repro.netlist import CellKind, Netlist


class TestRowSegments:
    def test_open_region_one_segment_per_row(self, small_db):
        segments = build_row_segments(small_db)
        assert len(segments) == small_db.region.num_rows
        assert all(len(row) == 1 for row in segments)
        assert segments[0][0].width == small_db.region.width

    def test_macro_splits_rows(self, blocked_db):
        segments = build_row_segments(blocked_db)
        # macro occupies x [12, 20], rows 12..19
        for row in range(12, 20):
            assert len(segments[row]) == 2
            left, right = segments[row]
            assert left.end == pytest.approx(12.0)
            assert right.start == pytest.approx(20.0)
        assert len(segments[0]) == 1

    def test_zero_area_terminals_ignored(self, small_db):
        # small_db has zero-size pads at the boundary
        segments = build_row_segments(small_db)
        assert all(len(row) == 1 for row in segments)


class TestTetris:
    def test_produces_legal_placement(self, tiny_design):
        db = tiny_design
        x, y, rows = tetris_legalize(db)
        report = check_legal(db, x, y)
        assert report.legal, report.messages

    def test_row_assignment_consistent(self, tiny_design):
        db = tiny_design
        x, y, rows = tetris_legalize(db)
        movable = db.movable_index
        expected_y = db.region.yl + rows[movable] * db.region.row_height
        np.testing.assert_allclose(y[movable], expected_y)

    def test_fixed_cells_untouched(self, blocked_db):
        x, y, _ = tetris_legalize(blocked_db)
        fixed = blocked_db.fixed_index
        np.testing.assert_allclose(x[fixed], blocked_db.cell_x[fixed])

    def test_avoids_macro(self, blocked_db):
        db = blocked_db
        # pile every movable cell onto the macro
        px, py = db.positions()
        movable = db.movable_index
        px[movable] = 14.0
        py[movable] = 14.0
        x, y, _ = tetris_legalize(db, px, py)
        report = check_legal(db, x, y)
        assert report.legal, report.messages

    def test_overfull_design_raises(self):
        region = PlacementRegion(0, 0, 4, 2)
        netlist = Netlist("full")
        for i in range(5):  # 5 * 2 = 10 > 8 sites
            netlist.add_cell(f"c{i}", 2.0, 1.0, CellKind.MOVABLE, x=0, y=0)
        netlist.add_net("n", [(0, 0, 0), (1, 0, 0)])
        db = netlist.compile(region)
        with pytest.raises(RuntimeError):
            tetris_legalize(db)

    def test_multirow_movable_rejected(self):
        region = PlacementRegion(0, 0, 16, 16)
        netlist = Netlist("tall")
        netlist.add_cell("t", 2.0, 3.0, CellKind.MOVABLE, x=1, y=1)
        netlist.add_net("n", [(0, 0, 0)])
        db = netlist.compile(region)
        with pytest.raises(NotImplementedError):
            tetris_legalize(db)

    def test_displacement_is_bounded(self, tiny_design):
        """Cells should land near their global positions."""
        db = tiny_design
        x, y, _ = tetris_legalize(db)
        movable = db.movable_index
        disp = np.abs(x[movable] - db.cell_x[movable]) + \
            np.abs(y[movable] - db.cell_y[movable])
        assert np.median(disp) < 6.0 * db.region.row_height


class TestAbacus:
    def test_keeps_legal(self, tiny_design):
        db = tiny_design
        lx, ly, rows = tetris_legalize(db)
        x, y = abacus_legalize(db, lx, ly, rows)
        report = check_legal(db, x, y)
        assert report.legal, report.messages

    def test_reduces_displacement(self, tiny_design):
        db = tiny_design
        desired_x = db.cell_x.copy()
        lx, ly, rows = tetris_legalize(db)
        ax, ay = abacus_legalize(db, lx, ly, rows, desired_x=desired_x)
        movable = db.movable_index
        before = np.abs(lx[movable] - desired_x[movable]).sum()
        after = np.abs(ax[movable] - desired_x[movable]).sum()
        assert after <= before + 1e-6

    def test_respects_macro_segments(self, blocked_db):
        db = blocked_db
        px, py = db.positions()
        movable = db.movable_index
        px[movable] = 14.0
        py[movable] = 14.0
        lx, ly, rows = tetris_legalize(db, px, py)
        x, y = abacus_legalize(db, lx, ly, rows, desired_x=px)
        assert check_legal(db, x, y).legal

    def test_preserves_order_within_segment(self, tiny_design):
        """Abacus clustering never reorders cells within a segment."""
        db = tiny_design
        lx, ly, rows = tetris_legalize(db)
        ax, ay = abacus_legalize(db, lx, ly, rows)
        movable = db.movable_index
        for row in np.unique(rows[movable]):
            cells = movable[rows[movable] == row]
            before = cells[np.argsort(lx[cells], kind="stable")]
            after = cells[np.argsort(ax[cells], kind="stable")]
            np.testing.assert_array_equal(before, after)


class TestLegalizeOrchestrator:
    def test_full_legalize(self, tiny_design):
        db = tiny_design
        x, y = legalize(db)
        assert check_legal(db, x, y).legal

    def test_skip_refine(self, tiny_design):
        db = tiny_design
        x, y = legalize(db, refine=False)
        assert check_legal(db, x, y).legal

    def test_refine_no_worse_hpwl(self, tiny_design):
        db = tiny_design
        x0, y0 = legalize(db, refine=False)
        x1, y1 = legalize(db, refine=True)
        assert db.hpwl(x1, y1) <= db.hpwl(x0, y0) * 1.05


class TestChecker:
    def test_detects_overlap(self, small_db):
        x, y = legalize(small_db)
        x[small_db.movable_index[1]] = x[small_db.movable_index[0]]
        y[small_db.movable_index[1]] = y[small_db.movable_index[0]]
        report = check_legal(small_db, x, y)
        assert not report.legal
        assert report.overlaps >= 1

    def test_detects_outside(self, small_db):
        x, y = legalize(small_db)
        x[small_db.movable_index[0]] = -10.0
        assert check_legal(small_db, x, y).outside == 1

    def test_detects_off_row(self, small_db):
        x, y = legalize(small_db)
        y[small_db.movable_index[0]] += 0.5
        assert check_legal(small_db, x, y).off_row == 1

    def test_detects_off_site(self, small_db):
        x, y = legalize(small_db)
        x[small_db.movable_index[0]] += 0.25
        report = check_legal(small_db, x, y)
        assert report.off_site == 1

    def test_site_check_optional(self, small_db):
        x, y = legalize(small_db)
        x[small_db.movable_index[0]] += 0.25
        # might create an overlap; only check the off_site field
        report = check_legal(small_db, x, y, check_sites=False)
        assert report.off_site == 0

    def test_macro_overlap_detected(self, blocked_db):
        x, y = legalize(blocked_db)
        cell = blocked_db.movable_index[0]
        x[cell] = 14.0
        y[cell] = 14.0  # inside the macro
        report = check_legal(blocked_db, x, y)
        assert report.overlaps >= 1
