"""Tests for the optimizer zoo on analytic functions."""

import numpy as np
import pytest

from repro.nn import Parameter, Tensor
from repro.nn import functional as F
from repro.nn.optim import (
    SGD,
    Adam,
    ConjugateGradient,
    ExponentialLR,
    NesterovLineSearch,
    RMSProp,
)


def quadratic_closure(p, scale):
    """f(p) = sum(scale * p^2) with backward."""

    def closure():
        p.zero_grad()
        loss = F.tensor_sum(F.square(p) * Tensor(scale))
        loss.backward()
        return loss

    return closure


def run_to_convergence(optimizer, closure, steps):
    loss = None
    for _ in range(steps):
        loss = optimizer.step(closure)
        if loss is None:
            loss = closure()
    return loss.item()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Parameter([5.0, -3.0])
        opt = SGD([p], lr=0.1)
        final = run_to_convergence(opt, quadratic_closure(p, [1.0, 2.0]), 200)
        assert final < 1e-6

    def test_momentum_accelerates(self):
        losses = {}
        for momentum in (0.0, 0.9):
            p = Parameter([5.0, -3.0])
            opt = SGD([p], lr=0.02, momentum=momentum)
            losses[momentum] = run_to_convergence(
                opt, quadratic_closure(p, [1.0, 2.0]), 50
            )
        assert losses[0.9] < losses[0.0]

    def test_nesterov_flag_requires_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter([1.0])], lr=0.1, nesterov=True)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter([1.0])], lr=0.1, momentum=1.5)

    def test_step_without_grad_raises(self):
        p = Parameter([1.0])
        opt = SGD([p], lr=0.1)
        with pytest.raises(RuntimeError):
            opt.step()


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter([5.0, -3.0])
        opt = Adam([p], lr=0.3)
        final = run_to_convergence(opt, quadratic_closure(p, [1.0, 10.0]), 300)
        assert final < 1e-4

    def test_bias_correction_first_step_magnitude(self):
        # with bias correction the very first step has magnitude ~lr
        p = Parameter([1.0])
        opt = Adam([p], lr=0.1)
        closure = quadratic_closure(p, [1.0])
        opt.step(closure)
        assert abs(1.0 - p.data[0]) == pytest.approx(0.1, rel=1e-3)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter([1.0])], betas=(1.2, 0.9))


class TestRMSProp:
    def test_converges_on_quadratic(self):
        p = Parameter([4.0])
        opt = RMSProp([p], lr=0.05)
        final = run_to_convergence(opt, quadratic_closure(p, [1.0]), 400)
        assert final < 1e-3

    def test_momentum_variant_runs(self):
        p = Parameter([4.0])
        opt = RMSProp([p], lr=0.02, momentum=0.5)
        final = run_to_convergence(opt, quadratic_closure(p, [1.0]), 400)
        assert final < 1e-2


class TestNesterovLineSearch:
    def test_requires_closure(self):
        opt = NesterovLineSearch([Parameter([1.0])])
        with pytest.raises(ValueError):
            opt.step()

    def test_converges_on_quadratic(self):
        p = Parameter([5.0, -3.0, 2.0])
        opt = NesterovLineSearch([p], lr=0.5)
        final = run_to_convergence(
            opt, quadratic_closure(p, [1.0, 4.0, 0.5]), 120
        )
        assert final < 1e-6

    def test_lipschitz_step_adapts_to_scale(self):
        # a much stiffer problem should still converge (smaller steps)
        p = Parameter([1.0])
        opt = NesterovLineSearch([p], lr=1.0)
        final = run_to_convergence(opt, quadratic_closure(p, [500.0]), 150)
        assert final < 1e-4

    def test_project_keeps_state_consistent(self):
        p = Parameter([5.0])
        opt = NesterovLineSearch([p], lr=0.5)
        closure = quadratic_closure(p, [1.0])
        opt.step(closure)
        opt.project(lambda a: np.clip(a, 0.5, 10.0))
        assert p.data[0] >= 0.5
        np.testing.assert_allclose(opt._v, p.data)

    def test_rebind_resets_state(self):
        p = Parameter([5.0])
        opt = NesterovLineSearch([p], lr=0.5)
        opt.step(quadratic_closure(p, [1.0]))
        opt.rebind()
        assert opt._v is None
        opt.step(quadratic_closure(p, [1.0]))  # still works

    def test_rosenbrock_descends(self):
        # non-quadratic sanity: f = (1-x)^2 + 5(y - x^2)^2
        p = Parameter([-1.0, 1.0])

        def closure():
            p.zero_grad()
            x, y = p.data
            loss = (1 - x) ** 2 + 5.0 * (y - x * x) ** 2
            grad = np.array([
                -2 * (1 - x) - 20.0 * (y - x * x) * x,
                10.0 * (y - x * x),
            ])
            p.grad = grad
            return Tensor(loss)

        first = closure().item()
        opt = NesterovLineSearch([p], lr=0.1)
        for _ in range(100):
            last = opt.step(closure).item()
        assert last < first


class TestConjugateGradient:
    def test_requires_closure(self):
        with pytest.raises(ValueError):
            ConjugateGradient([Parameter([1.0])]).step()

    def test_converges_on_quadratic(self):
        p = Parameter([5.0, -3.0])
        opt = ConjugateGradient([p], lr=0.4)
        final = run_to_convergence(opt, quadratic_closure(p, [1.0, 3.0]), 80)
        assert final < 1e-6

    def test_monotone_descent_with_armijo(self):
        p = Parameter([5.0])
        closure = quadratic_closure(p, [2.0])
        opt = ConjugateGradient([p], lr=1.0)
        prev = closure().item()
        for _ in range(10):
            loss = opt.step(closure).item()
            assert loss <= prev + 1e-12
            prev = loss


class TestExponentialLR:
    def test_decay_schedule(self):
        p = Parameter([1.0])
        opt = SGD([p], lr=1.0)
        sched = ExponentialLR(opt, gamma=0.5)
        sched.step()
        assert opt.lr == pytest.approx(0.5)
        sched.step()
        assert opt.lr == pytest.approx(0.25)

    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            ExponentialLR(SGD([Parameter([1.0])], lr=1.0), gamma=1.5)


class TestOptimizerBase:
    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_invalid_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD([Parameter([1.0])], lr=-1.0)

    def test_zero_grad_clears_all(self):
        p = Parameter([1.0])
        opt = SGD([p], lr=0.1)
        p.sum().backward()
        opt.zero_grad()
        assert p.grad is None

    def test_base_project_applies_to_params(self):
        p = Parameter([5.0])
        opt = SGD([p], lr=0.1)
        opt.project(lambda a: np.clip(a, 0.0, 2.0))
        assert p.data[0] == 2.0
