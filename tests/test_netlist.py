"""Tests for the netlist builder, database, and validation."""

import numpy as np
import pytest

from repro.geometry import PlacementRegion
from repro.netlist import CellKind, Netlist, validate_db


@pytest.fixture
def simple():
    netlist = Netlist("simple")
    netlist.add_cell("a", 2.0, 1.0, CellKind.MOVABLE, x=1.0, y=1.0)
    netlist.add_cell("b", 1.0, 1.0, CellKind.MOVABLE, x=5.0, y=2.0)
    netlist.add_cell("blk", 3.0, 3.0, CellKind.FIXED, x=8.0, y=8.0)
    netlist.add_cell("pad", 0.0, 0.0, CellKind.TERMINAL, x=0.0, y=0.0)
    netlist.add_net("n1", [("a", 0.5, 0.5), ("b", 0.5, 0.5)])
    netlist.add_net("n2", [("a", 1.5, 0.5), ("pad", 0.0, 0.0)], weight=2.0)
    netlist.add_net("n3", [("b", 0.0, 0.0), ("blk", 1.0, 1.0), ("a", 0.0, 0.0)])
    return netlist


class TestNetlistBuilder:
    def test_counts(self, simple):
        assert simple.num_cells == 4
        assert simple.num_nets == 3
        assert simple.num_pins == 7

    def test_duplicate_cell_rejected(self, simple):
        with pytest.raises(ValueError):
            simple.add_cell("a", 1.0, 1.0)

    def test_duplicate_net_rejected(self, simple):
        with pytest.raises(ValueError):
            simple.add_net("n1", [("a", 0, 0), ("b", 0, 0)])

    def test_negative_size_rejected(self, simple):
        with pytest.raises(ValueError):
            simple.add_cell("neg", -1.0, 1.0)

    def test_unknown_cell_in_net(self, simple):
        with pytest.raises(KeyError):
            simple.add_net("bad", [("zzz", 0, 0)])

    def test_cell_index_out_of_range(self, simple):
        with pytest.raises(IndexError):
            simple.add_net("bad", [(99, 0, 0)])

    def test_cell_id_lookup(self, simple):
        assert simple.cell_id("b") == 1
        assert simple.cell_name(1) == "b"

    def test_set_position(self, simple):
        simple.set_position("a", 3.0, 4.0)
        db = simple.compile(PlacementRegion(0, 0, 16, 16))
        assert db.cell_x[0] == 3.0


class TestPlacementDB:
    @pytest.fixture
    def db(self, simple):
        return simple.compile(PlacementRegion(0, 0, 16, 16))

    def test_sizes(self, db):
        assert db.num_cells == 4
        assert db.num_nets == 3
        assert db.num_pins == 7
        assert db.num_movable == 2

    def test_masks(self, db):
        np.testing.assert_array_equal(db.movable, [True, True, False, False])
        np.testing.assert_array_equal(db.terminal, [False, False, False, True])

    def test_areas(self, db):
        assert db.total_movable_area == 3.0
        assert db.total_fixed_area == 9.0
        assert db.utilization == pytest.approx(3.0 / (256.0 - 9.0))

    def test_net_degree(self, db):
        np.testing.assert_array_equal(db.net_degree, [2, 2, 3])

    def test_net_pins_round_trip(self, db):
        for net in range(db.num_nets):
            for pin in db.net_pins(net):
                assert db.pin_net[pin] == net

    def test_cell_pins_round_trip(self, db):
        for cell in range(db.num_cells):
            for pin in db.cell_pins(cell):
                assert db.pin_cell[pin] == cell

    def test_pin_positions(self, db):
        px, py = db.pin_positions()
        pin = db.net_pins(0)[0]
        cell = db.pin_cell[pin]
        assert px[pin] == db.cell_x[cell] + db.pin_offset_x[pin]

    def test_hpwl_manual(self, db):
        # n1: a pin at (1.5, 1.5), b pin at (5.5, 2.5) -> 4 + 1 = 5
        # n2 (w=2): a pin at (2.5, 1.5), pad at (0, 0) -> 2*(2.5+1.5) = 8
        # n3: (5,2), (9,9), (1,1) -> 8 + 8 = 16
        assert db.hpwl() == pytest.approx(5.0 + 8.0 + 16.0)

    def test_hpwl_with_override_positions(self, db):
        x, y = db.positions()
        y[1] += 3.0  # cell b becomes the y-max of net n1 (+3); n3 absorbs it
        assert db.hpwl(x, y) == pytest.approx(db.hpwl() + 3.0)

    def test_centers(self, db):
        cx, cy = db.centers()
        assert cx[0] == db.cell_x[0] + 1.0

    def test_set_positions_copies(self, db):
        x, y = db.positions()
        db.set_positions(x, y)
        x[0] = 99.0
        assert db.cell_x[0] != 99.0

    def test_clone_independent(self, db):
        clone = db.clone()
        clone.cell_x[0] = 42.0
        assert db.cell_x[0] != 42.0

    def test_repr(self, db):
        assert "cells=4" in repr(db)


class TestValidate:
    def test_valid_passes(self, simple):
        validate_db(simple.compile(PlacementRegion(0, 0, 16, 16)))

    def test_check_inside_catches_outside(self, simple):
        db = simple.compile(PlacementRegion(0, 0, 16, 16))
        db.cell_x[0] = 100.0
        with pytest.raises(ValueError, match="outside"):
            validate_db(db, check_inside=True)

    def test_bad_pin_net_caught(self, simple):
        db = simple.compile(PlacementRegion(0, 0, 16, 16))
        db.pin_net = db.pin_net.copy()
        db.pin_net[0] = 77
        with pytest.raises(ValueError):
            validate_db(db)

    def test_movable_terminal_caught(self, simple):
        db = simple.compile(PlacementRegion(0, 0, 16, 16))
        db.terminal = db.terminal.copy()
        db.terminal[0] = True
        with pytest.raises(ValueError, match="terminal"):
            validate_db(db)

    def test_negative_weight_caught(self, simple):
        db = simple.compile(PlacementRegion(0, 0, 16, 16))
        db.net_weight = db.net_weight.copy()
        db.net_weight[0] = -1.0
        with pytest.raises(ValueError, match="weight"):
            validate_db(db)
