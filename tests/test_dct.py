"""Tests for the DCT/IDCT/IDXST transform library."""

import numpy as np
import pytest
import scipy.fft

from repro.ops import dct as D


@pytest.fixture
def rng():
    return np.random.default_rng(7)


SIZES = (4, 8, 16, 64)


class TestNaiveDefinitions:
    """The naive transforms must match the textbook definitions and scipy."""

    @pytest.mark.parametrize("n", SIZES)
    def test_dct_matches_scipy(self, rng, n):
        x = rng.normal(size=n)
        # paper eq. (7a) is unnormalized scipy DCT-II / 2
        np.testing.assert_allclose(
            D.dct_naive(x), scipy.fft.dct(x, type=2) / 2.0, atol=1e-10
        )

    @pytest.mark.parametrize("n", SIZES)
    def test_idct_matches_scipy(self, rng, n):
        x = rng.normal(size=n)
        # paper eq. (7b) is unnormalized scipy DCT-III / 2
        np.testing.assert_allclose(
            D.idct_naive(x), scipy.fft.dct(x, type=3) / 2.0, atol=1e-10
        )

    @pytest.mark.parametrize("n", SIZES)
    def test_inversion_constant(self, rng, n):
        """idct(dct(x)) == (N/2) x for this normalization pair."""
        x = rng.normal(size=n)
        np.testing.assert_allclose(
            D.idct_naive(D.dct_naive(x)), (n / 2.0) * x, atol=1e-9
        )

    def test_idxst_definition(self, rng):
        n = 8
        x = rng.normal(size=n)
        k = np.arange(n)[:, None]
        m = np.arange(n)[None, :]
        expected = (x[None, :] * np.sin(np.pi * m * (k + 0.5) / n)).sum(axis=1)
        np.testing.assert_allclose(D.idxst_naive(x), expected, atol=1e-10)

    def test_dct_batch_axis(self, rng):
        x = rng.normal(size=(3, 8))
        out = D.dct_naive(x)
        for i in range(3):
            np.testing.assert_allclose(out[i], D.dct_naive(x[i]), atol=1e-12)


class TestFastVsNaive:
    @pytest.mark.parametrize("n", SIZES)
    @pytest.mark.parametrize("impl", [D.dct_2n, D.dct_n])
    def test_dct_variants(self, rng, n, impl):
        x = rng.normal(size=n)
        np.testing.assert_allclose(impl(x), D.dct_naive(x), atol=1e-9)

    @pytest.mark.parametrize("n", SIZES)
    @pytest.mark.parametrize("impl", [D.idct_2n, D.idct_n])
    def test_idct_variants(self, rng, n, impl):
        x = rng.normal(size=n)
        np.testing.assert_allclose(impl(x), D.idct_naive(x), atol=1e-9)

    @pytest.mark.parametrize("n", SIZES)
    def test_idxst_n(self, rng, n):
        x = rng.normal(size=n)
        np.testing.assert_allclose(D.idxst_n(x), D.idxst_naive(x), atol=1e-9)

    def test_odd_length_rejected_by_n_point(self, rng):
        with pytest.raises(ValueError):
            D.dct_n(rng.normal(size=7))
        with pytest.raises(ValueError):
            D.idct_n(rng.normal(size=7))

    def test_batched_last_axis(self, rng):
        x = rng.normal(size=(5, 16))
        np.testing.assert_allclose(D.dct_n(x), D.dct_naive(x), atol=1e-9)


class Test2DTransforms:
    SHAPES = ((8, 8), (16, 8), (8, 32), (64, 64))

    @pytest.mark.parametrize("shape", SHAPES)
    def test_dct2d(self, rng, shape):
        x = rng.normal(size=shape)
        ref = D.dct_naive(D.dct_naive(x.T).T)
        np.testing.assert_allclose(D.dct2d_fft2(x), ref, atol=1e-9)

    @pytest.mark.parametrize("shape", SHAPES)
    def test_idct2d(self, rng, shape):
        x = rng.normal(size=shape)
        ref = D.idct_naive(D.idct_naive(x.T).T)
        np.testing.assert_allclose(D.idct2d_fft2(x), ref, atol=1e-9)

    @pytest.mark.parametrize("shape", SHAPES)
    def test_idxst_idct_sine_axis0(self, rng, shape):
        x = rng.normal(size=shape)
        ref = D.idct_naive(D.idxst_naive(x.T).T)
        np.testing.assert_allclose(D.idxst_idct(x), ref, atol=1e-9)

    @pytest.mark.parametrize("shape", SHAPES)
    def test_idct_idxst_sine_axis1(self, rng, shape):
        x = rng.normal(size=shape)
        ref = D.idxst_naive(D.idct_naive(x.T).T)
        np.testing.assert_allclose(D.idct_idxst(x), ref, atol=1e-9)

    @pytest.mark.parametrize("impl", ["2n", "n", "2d", "naive"])
    def test_all_impls_agree(self, rng, impl):
        x = rng.normal(size=(16, 16))
        ref = D.dct2d(x, impl="naive")
        np.testing.assert_allclose(D.dct2d(x, impl=impl), ref, atol=1e-8)
        refi = D.idct2d(x, impl="naive")
        np.testing.assert_allclose(D.idct2d(x, impl=impl), refi, atol=1e-8)

    def test_2d_inversion(self, rng):
        x = rng.normal(size=(16, 32))
        n1, n2 = x.shape
        back = D.idct2d_fft2(D.dct2d_fft2(x))
        np.testing.assert_allclose(back, (n1 / 2.0) * (n2 / 2.0) * x,
                                   atol=1e-8)

    def test_linearity(self, rng):
        x = rng.normal(size=(8, 8))
        y = rng.normal(size=(8, 8))
        np.testing.assert_allclose(
            D.dct2d_fft2(2.0 * x + y),
            2.0 * D.dct2d_fft2(x) + D.dct2d_fft2(y),
            atol=1e-9,
        )

    def test_constant_input_concentrates_at_dc(self):
        x = np.ones((8, 8))
        out = D.dct2d_fft2(x)
        assert out[0, 0] == pytest.approx(64.0)
        assert np.abs(out).sum() == pytest.approx(64.0, abs=1e-8)
