"""Coarsening invariants: area, connectivity, fences, exactness.

The multilevel cascade is only sound if the coarsener preserves the
quantities global placement optimizes: total movable area (density),
pin connectivity and net weights (wirelength), fence membership
(region legality).  Ratio-1 coarsening must be the *identity* — the
coarse database is the fine database, so the flat flow is bit-exact.
"""

import numpy as np
import pytest

from repro.benchgen import CircuitSpec, generate
from repro.core import FenceRegion, GlobalPlacer, PlacementParams
from repro.netlist import CellKind, Netlist, coarsen
from repro.netlist.coarsen import MATCH_DEGREE_CAP


def _design(num_cells=400, seed=3, **kw):
    return generate(CircuitSpec(name=f"coarse{seed}", num_cells=num_cells,
                                num_ios=16, seed=seed, **kw))


class TestCoarsenInvariants:
    def test_movable_area_conserved(self):
        db = _design()
        level = coarsen(db, 0.4)
        assert level.db.num_movable < db.num_movable
        assert np.isclose(level.db.total_movable_area,
                          db.total_movable_area, rtol=1e-12)
        # per-cluster: area of the cluster equals its members' sum
        area = np.bincount(level.cluster_of, weights=db.cell_area,
                           minlength=level.db.num_cells)
        assert np.allclose(area, level.db.cell_area, rtol=1e-12)

    def test_fixed_and_terminal_cells_stay_singletons(self):
        db = _design(num_cells=300, num_macros=3, macro_area_fraction=0.2)
        level = coarsen(db, 0.4)
        fixed = np.flatnonzero(~db.movable)
        clusters = level.cluster_of[fixed]
        # each fixed fine cell is alone in its cluster...
        sizes = np.bincount(level.cluster_of)
        assert (sizes[clusters] == 1).all()
        # ...with identical geometry, position and kind
        assert np.array_equal(level.db.cell_x[clusters], db.cell_x[fixed])
        assert np.array_equal(level.db.cell_y[clusters], db.cell_y[fixed])
        assert np.array_equal(level.db.cell_width[clusters],
                              db.cell_width[fixed])
        assert not level.db.movable[clusters].any()
        assert np.array_equal(level.db.terminal[clusters],
                              db.terminal[fixed])

    def test_net_weights_and_connectivity_preserved(self):
        db = _design()
        level = coarsen(db, 0.4)
        coarse = level.db
        # nets map one-to-one, weights untouched
        assert coarse.num_nets == db.num_nets
        assert np.array_equal(coarse.net_weight, db.net_weight)
        # every net touches exactly the clusters of its fine cells
        for net in range(db.num_nets):
            fine_cells = db.pin_cell[db.net_pins(net)]
            coarse_cells = coarse.pin_cell[coarse.net_pins(net)]
            assert set(coarse_cells) == set(level.cluster_of[fine_cells])
            # pins deduplicate per (net, cluster): no repeats
            assert len(set(coarse_cells)) == len(coarse_cells)

    def test_prolongation_is_exact_interpolation(self):
        db = _design()
        level = coarsen(db, 0.4)
        rng = np.random.default_rng(0)
        cx = rng.uniform(0, 50, level.db.num_cells)
        cy = rng.uniform(0, 50, level.db.num_cells)
        fx, fy = level.prolong(cx, cy)
        movable = db.movable
        assert np.array_equal(
            fx[movable], cx[level.cluster_of[movable]]
            + level.member_dx[movable])
        assert np.array_equal(
            fy[movable], cy[level.cluster_of[movable]]
            + level.member_dy[movable])
        # fixed cells ignore the cluster coordinates entirely
        assert np.array_equal(fx[~movable], db.cell_x[~movable])
        assert np.array_equal(fy[~movable], db.cell_y[~movable])
        # members never extend past their cluster footprint
        cluster_w = level.db.cell_width[level.cluster_of]
        assert (level.member_dx + db.cell_width
                <= cluster_w + 1e-9).all()

    def test_coarse_pin_geometry_matches_expanded_fine(self):
        """The coarse wirelength model is exact: a cluster pin sits
        where the member's pin sits after prolongation."""
        db = _design()
        level = coarsen(db, 0.4)
        coarse = level.db
        fx, fy = level.prolong(coarse.cell_x, coarse.cell_y)
        fine_px = fx[db.pin_cell] + db.pin_offset_x
        fine_py = fy[db.pin_cell] + db.pin_offset_y
        coarse_px = (coarse.cell_x[coarse.pin_cell]
                     + coarse.pin_offset_x)
        # merged (net, cluster) pins average their member offsets, so
        # compare per-net bounding boxes built from per-pin positions:
        # every coarse pin must lie inside the fine span of its net
        for net in range(db.num_nets):
            fine = fine_px[db.net_pins(net)]
            cps = coarse_px[coarse.net_pins(net)]
            assert (cps >= fine.min() - 1e-9).all()
            assert (cps <= fine.max() + 1e-9).all()
        del fine_py

    def test_fence_membership_never_mixed(self):
        db = _design(num_cells=300)
        fences = [
            FenceRegion("L", 0, 0, 25, 50, cells=list(range(100))),
            FenceRegion("R", 25, 0, 50, 50, cells=list(range(100, 200))),
        ]
        level = coarsen(db, 0.4, fences=fences)
        fence_id = np.full(db.num_cells, -1)
        fence_id[:100] = 0
        fence_id[100:200] = 1
        for cluster in range(level.db.num_cells):
            members = np.flatnonzero(level.cluster_of == cluster)
            assert len(set(fence_id[members])) == 1
        # remapped fences partition the clusters the same way
        assert level.fences is not None
        left = set(level.fences[0].cells)
        right = set(level.fences[1].cells)
        assert left.isdisjoint(right)
        assert left == set(level.cluster_of[:100])
        assert right == set(level.cluster_of[100:200])

    def test_equal_height_matching_only(self):
        db = _design(num_cells=300, num_macros=2, macro_area_fraction=0.15,
                     movable_macros=True)
        level = coarsen(db, 0.4)
        heights = np.zeros(level.db.num_cells)
        for cluster in range(level.db.num_cells):
            members = np.flatnonzero(level.cluster_of == cluster)
            assert len(set(db.cell_height[members])) == 1
            heights[cluster] = db.cell_height[members[0]]
        assert np.array_equal(level.db.cell_height, heights)

    def test_deterministic(self):
        db = _design()
        a = coarsen(db, 0.4)
        b = coarsen(db.clone(), 0.4)
        assert np.array_equal(a.cluster_of, b.cluster_of)
        assert np.array_equal(a.member_dx, b.member_dx)
        assert np.array_equal(a.db.pin_offset_x, b.db.pin_offset_x)
        assert a.db.fingerprint() == b.db.fingerprint()

    def test_high_degree_nets_carried_but_not_rated(self):
        netlist = Netlist("fanout")
        for i in range(40):
            netlist.add_cell(f"c{i}", 1.0, 1.0, CellKind.MOVABLE)
        # one net touching every cell (degree 40 > MATCH_DEGREE_CAP)
        netlist.add_net("big", [(i, 0.5, 0.5) for i in range(40)])
        assert 40 > MATCH_DEGREE_CAP
        from repro.geometry import PlacementRegion

        db = netlist.compile(PlacementRegion(0, 0, 20, 20))
        level = coarsen(db, 0.5)
        # no pair shares a ratable net -> nothing merges (identity)
        assert level.identity
        # ...but with a small net added, its pair merges and the big
        # net still reaches every surviving cluster with its weight
        netlist.add_net("small", [(0, 0.5, 0.5), (1, 0.5, 0.5)])
        db2 = netlist.compile(PlacementRegion(0, 0, 20, 20))
        level2 = coarsen(db2, 0.9)
        assert level2.db.num_movable == 39
        big = level2.db.net_pins(0)
        assert len(big) == 39  # deduped where the pair merged
        assert np.array_equal(level2.db.net_weight, db2.net_weight)


class TestRatioOneIdentity:
    def test_identity_level_is_the_same_database(self):
        db = _design()
        level = coarsen(db, 1.0)
        assert level.identity
        assert level.db is db
        assert np.array_equal(level.cluster_of, np.arange(db.num_cells))
        assert (level.member_dx == 0).all()
        assert (level.member_dy == 0).all()

    def test_ratio_one_places_bit_identically(self):
        db = _design(num_cells=200)
        level = coarsen(db, 1.0)
        params = PlacementParams(max_global_iters=40, min_global_iters=5)
        a = GlobalPlacer(db.clone(), params).place()
        b = GlobalPlacer(level.db.clone(), params).place()
        assert np.array_equal(a.x, b.x)
        assert np.array_equal(a.y, b.y)
        assert a.hpwl == b.hpwl

    def test_prolong_through_identity_is_passthrough(self):
        db = _design(num_cells=150)
        level = coarsen(db, 1.0)
        x, y = db.positions()
        fx, fy = level.prolong(x, y)
        assert np.array_equal(fx, x)
        assert np.array_equal(fy, y)


class TestCoarsenRatios:
    @pytest.mark.parametrize("ratio", [0.25, 0.4, 0.6])
    def test_target_ratio_met_or_stalled(self, ratio):
        db = _design(num_cells=600)
        level = coarsen(db, ratio)
        target = int(np.ceil(ratio * db.num_movable))
        # heavy-edge matching halves per pass; the target is reached
        # unless matching stalls, and never overshot by construction
        assert level.db.num_movable >= target
        assert level.db.num_movable <= max(target, db.num_movable // 2)

    def test_restrict_round_trip(self):
        db = _design(num_cells=200)
        level = coarsen(db, 0.4)
        rng = np.random.default_rng(1)
        cx = rng.uniform(0, 40, level.db.num_cells)
        cy = rng.uniform(0, 40, level.db.num_cells)
        fx, fy = level.prolong(cx, cy)
        rx, ry = level.restrict(fx, fy)
        # restriction of a prolonged movable placement recovers the
        # cluster positions (members sit exactly in their footprint)
        mov = level.db.movable
        assert np.allclose(rx[mov], cx[mov], atol=1e-9)
        assert np.allclose(ry[mov], cy[mov], atol=1e-9)
