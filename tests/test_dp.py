"""Tests for detailed placement passes."""

import numpy as np
import pytest

from repro.dp import DetailedPlacer, IncrementalHpwl, detailed_place
from repro.dp.global_swap import _optimal_position, global_swap
from repro.dp.independent_set import (
    _independent_groups,
    independent_set_matching,
)
from repro.dp.local_reorder import local_reorder
from repro.lg import check_legal, legalize


@pytest.fixture(scope="module")
def legal_design():
    from repro.benchgen import CircuitSpec, generate

    db = generate(CircuitSpec(name="dp", num_cells=250, num_ios=12,
                              utilization=0.55, seed=21,
                              macro_area_fraction=0.05, num_macros=2))
    x, y = legalize(db)
    db.set_positions(x, y)
    return db


class TestIncrementalHpwl:
    def test_total_matches_db(self, legal_design):
        db = legal_design
        state = IncrementalHpwl(db, db.cell_x, db.cell_y)
        assert state.total_hpwl() == pytest.approx(db.hpwl())

    def test_delta_matches_recompute(self, legal_design):
        db = legal_design
        state = IncrementalHpwl(db, db.cell_x, db.cell_y)
        cell = int(db.movable_index[0])
        new_x = db.cell_x[cell] + 3.0
        delta = state.delta([cell], [new_x], [db.cell_y[cell]])
        x = db.cell_x.copy()
        x[cell] = new_x
        assert delta == pytest.approx(db.hpwl(x, db.cell_y) - db.hpwl())

    def test_apply_updates_pins(self, legal_design):
        db = legal_design
        state = IncrementalHpwl(db, db.cell_x, db.cell_y)
        cell = int(db.movable_index[3])
        state.apply([cell], [db.cell_x[cell] + 2.0], [db.cell_y[cell]])
        pins = db.cell_pins(cell)
        np.testing.assert_allclose(
            state._pin_x[pins],
            state.x[cell] + db.pin_offset_x[pins],
        )

    def test_delta_then_apply_consistent(self, legal_design):
        db = legal_design
        state = IncrementalHpwl(db, db.cell_x, db.cell_y)
        cell = int(db.movable_index[5])
        before = state.total_hpwl()
        delta = state.delta([cell], [state.x[cell] + 4.0], [state.y[cell]])
        state.apply([cell], [state.x[cell] + 4.0], [state.y[cell]])
        assert state.total_hpwl() == pytest.approx(before + delta)

    def test_multi_cell_delta(self, legal_design):
        db = legal_design
        state = IncrementalHpwl(db, db.cell_x, db.cell_y)
        a, b = (int(c) for c in db.movable_index[:2])
        # swapping positions: delta computed jointly
        delta = state.delta(
            [a, b], [state.x[b], state.x[a]], [state.y[b], state.y[a]]
        )
        x = db.cell_x.copy()
        y = db.cell_y.copy()
        x[a], x[b] = x[b], x[a]
        y[a], y[b] = y[b], y[a]
        assert delta == pytest.approx(db.hpwl(x, y) - db.hpwl())


class TestPasses:
    def test_global_swap_improves_and_stays_legal(self, legal_design):
        db = legal_design
        state = IncrementalHpwl(db, db.cell_x, db.cell_y)
        before = state.total_hpwl()
        accepted = global_swap(db, state)
        assert state.total_hpwl() <= before
        assert check_legal(db, state.x, state.y).legal
        assert accepted >= 0

    def test_local_reorder_improves_and_stays_legal(self, legal_design):
        db = legal_design
        state = IncrementalHpwl(db, db.cell_x, db.cell_y)
        before = state.total_hpwl()
        local_reorder(db, state)
        assert state.total_hpwl() <= before
        assert check_legal(db, state.x, state.y).legal

    def test_ism_improves_and_stays_legal(self, legal_design):
        db = legal_design
        state = IncrementalHpwl(db, db.cell_x, db.cell_y)
        before = state.total_hpwl()
        independent_set_matching(db, state)
        assert state.total_hpwl() <= before
        assert check_legal(db, state.x, state.y).legal

    def test_optimal_position_pulls_toward_neighbors(self, legal_design):
        db = legal_design
        state = IncrementalHpwl(db, db.cell_x, db.cell_y)
        # pick a movable cell with at least one pin
        for cell in db.movable_index:
            if db.cell_pins(int(cell)).size > 0:
                break
        ox, oy = _optimal_position(db, state, int(cell))
        assert db.region.xl - 1 <= ox <= db.region.xh + 1
        assert db.region.yl - 1 <= oy <= db.region.yh + 1

    def test_independent_groups_are_net_disjoint(self, legal_design):
        db = legal_design
        groups = _independent_groups(db, db.movable_index, group_size=8)
        for group in groups:
            nets: set[int] = set()
            for cell in group:
                cell_nets = {
                    int(db.pin_net[p]) for p in db.cell_pins(int(cell))
                }
                assert not (nets & cell_nets)
                nets |= cell_nets


class TestDetailedPlacer:
    def test_improves_hpwl_and_legal(self, legal_design):
        db = legal_design
        x, y, stats = detailed_place(db, db.cell_x, db.cell_y, passes=2)
        assert stats.hpwl_after <= stats.hpwl_before
        assert check_legal(db, x, y).legal

    def test_stats_recorded(self, legal_design):
        db = legal_design
        _, _, stats = detailed_place(db, db.cell_x, db.cell_y, passes=1)
        assert len(stats.swaps) == 1
        assert len(stats.reorders) == 1
        assert len(stats.matchings) == 1

    def test_early_stop_when_converged(self):
        """A design with no improving move stops after one pass."""
        from repro.lg import legalize
        from tests.conftest import make_chain_db

        db = make_chain_db(num_cells=4, spacing=3.0)
        x, y = legalize(db)
        placer = DetailedPlacer(db, passes=10)
        _, _, stats = placer.run(x, y)
        assert len(stats.swaps) <= 2

    def test_each_pass_monotone(self, legal_design):
        db = legal_design
        placer = DetailedPlacer(db, passes=3)
        _, _, stats = placer.run(db.cell_x, db.cell_y)
        assert stats.hpwl_after <= stats.hpwl_before
