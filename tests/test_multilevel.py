"""Multilevel cascade: bit-identity, warm-start wins, resume, masking."""

import numpy as np
import pytest

from repro.benchgen import CircuitSpec, generate
from repro.core import GlobalPlacer, PlacementParams
from repro.core.multilevel import build_levels, multilevel_place
from repro.nn import Parameter, Tensor
from repro.netlist import CellKind, Netlist
from repro.ops.wa_wirelength import WeightedAverageWirelength


def _design(num_cells=1200, seed=7):
    return generate(CircuitSpec(name=f"ml{num_cells}", num_cells=num_cells,
                                num_ios=32, seed=seed))


def _params(**kw):
    kw.setdefault("seed", 5)
    kw.setdefault("max_global_iters", 300)
    return PlacementParams(**kw)


class TestLevelsOneIsFlat:
    def test_bit_identical_to_flat_placer(self):
        db = _design(num_cells=400)
        params = _params(multilevel_levels=1)
        flat = GlobalPlacer(db.clone(), params).place()
        ml = multilevel_place(db.clone(), params)
        assert np.array_equal(ml.x, flat.x)
        assert np.array_equal(ml.y, flat.y)
        assert ml.hpwl == flat.hpwl
        assert ml.iterations == flat.iterations
        assert len(ml.levels) == 1
        assert ml.levels[0]["level"] == 0

    def test_build_levels_respects_min_cells(self):
        db = _design(num_cells=400)
        params = _params(multilevel_levels=4, multilevel_min_cells=400)
        levels = build_levels(db, params)
        assert len(levels) == 1  # already at/below the floor

        params = _params(multilevel_levels=3, multilevel_min_cells=64,
                         coarsen_ratio=0.4)
        levels = build_levels(db, params)
        assert len(levels) == 3
        assert levels[0].identity
        sizes = [lv.db.num_movable for lv in levels]
        assert sizes[1] < sizes[0] and sizes[2] < sizes[1]


class TestCascade:
    def test_warm_fine_level_beats_cold_start(self):
        db = _design(num_cells=1200)
        params = _params(multilevel_levels=2, coarsen_ratio=0.35)
        cold = GlobalPlacer(db.clone(), params).place()
        ml = multilevel_place(db.clone(), params)

        assert ml.converged
        assert len(ml.levels) == 2
        fine = next(i for i in ml.levels if i["level"] == 0)
        coarse = next(i for i in ml.levels if i["level"] == 1)
        # warm-started refinement needs fewer fine iterations than the
        # cold start needed on the same problem
        assert fine["iterations"] < cold.iterations
        assert coarse["cells"] < fine["cells"]
        # total work is the sum over levels
        assert ml.iterations == (fine["iterations"]
                                 + coarse["iterations"])
        # sane quality: warm-started result in the same ballpark
        assert ml.hpwl < 1.25 * cold.hpwl
        assert ml.overflow <= params.stop_overflow + 1e-9

    def test_iteration_hook_sees_levels(self):
        db = _design(num_cells=1200)
        params = _params(multilevel_levels=2)
        seen = []

        def hook(placer, info):
            seen.append((info["level"], info["num_levels"],
                         info["iteration"]))

        multilevel_place(db.clone(), params, on_iteration=hook)
        levels_seen = {lv for lv, _, _ in seen}
        assert levels_seen == {0, 1}
        assert all(n == 2 for _, n, _ in seen)
        # coarse level runs first
        assert seen[0][0] == 1
        assert seen[-1][0] == 0


class TestMidCascadeResume:
    @pytest.mark.parametrize("capture_level,capture_iter",
                             [(1, 8), (0, 6)])
    def test_checkpoint_resume_bit_exact(self, capture_level, capture_iter):
        db = _design(num_cells=1200)
        params = _params(multilevel_levels=2)

        state = {}

        def capture_hook(placer, info):
            if (info["level"] == capture_level
                    and info["iteration"] == capture_iter
                    and not state):
                state.update(placer.capture_loop_state())

        ref = multilevel_place(db.clone(), params,
                               on_iteration=capture_hook)
        assert state, "checkpoint hook never fired"
        assert state["multilevel_level"] == capture_level

        resumed = multilevel_place(db.clone(), params, resume_state=state)
        assert np.array_equal(resumed.x, ref.x)
        assert np.array_equal(resumed.y, ref.y)
        assert resumed.hpwl == ref.hpwl
        assert resumed.iterations == ref.iterations
        assert resumed.levels == ref.levels

    def test_mismatched_checkpoint_rejected(self):
        db = _design(num_cells=1200)
        params = _params(multilevel_levels=2)
        with pytest.raises(ValueError, match="outside the rebuilt"):
            multilevel_place(db.clone(), params,
                             resume_state={"multilevel_level": 7})
        with pytest.raises(ValueError, match="not the one"):
            multilevel_place(
                db.clone(), params,
                resume_state={"multilevel_level": 1,
                              "multilevel_cells": 3},
            )


class TestIgnoreNetDegree:
    def _fanout_db(self):
        netlist = Netlist("fan")
        for i in range(8):
            netlist.add_cell(f"c{i}", 1.0, 1.0, CellKind.MOVABLE,
                             x=float(i), y=float(i % 3))
        netlist.add_net("pair", [(0, 0.5, 0.5), (1, 0.5, 0.5)])
        netlist.add_net("clk", [(i, 0.5, 0.5) for i in range(8)])
        from repro.geometry import PlacementRegion

        return netlist.compile(PlacementRegion(0, 0, 16, 16))

    def test_high_degree_net_masked_from_gradient(self):
        db = self._fanout_db()
        pos = np.concatenate([db.cell_x, db.cell_y])

        masked = WeightedAverageWirelength(db, gamma=0.5,
                                           ignore_net_degree=4)
        # reference: zero the clk net's weight by hand
        db_ref = db.clone()
        db_ref.net_weight[1] = 0.0
        ref = WeightedAverageWirelength(db_ref, gamma=0.5)

        p1 = Parameter(pos.copy())
        masked(p1).backward()
        p2 = Parameter(pos.copy())
        ref(p2).backward()
        assert np.allclose(p1.grad, p2.grad)

        # the masked op's value drops the clk net entirely...
        full = WeightedAverageWirelength(db, gamma=0.5)
        assert masked(Tensor(pos.copy())).item() \
            < full(Tensor(pos.copy())).item()
        # ...but the database (and thus reported HPWL) is untouched
        assert db.net_weight[1] == 1.0

    def test_reported_hpwl_still_counts_masked_nets(self):
        db = _design(num_cells=400)
        deg = db.net_degree
        limit = int(np.percentile(deg, 90))
        assert (deg > limit).any(), "design has no high-degree nets"

        params = _params(ignore_net_degree=limit, max_global_iters=60)
        result = GlobalPlacer(db.clone(), params).place()
        # result.hpwl is the full weighted HPWL over every net
        check = db.clone()
        assert result.hpwl == pytest.approx(
            check.hpwl(result.x, result.y))

    def test_end_to_end_gradient_masking_changes_trajectory(self):
        db = _design(num_cells=400)
        deg = db.net_degree
        limit = int(np.percentile(deg, 90))
        a = GlobalPlacer(db.clone(),
                         _params(max_global_iters=40)).place()
        b = GlobalPlacer(
            db.clone(),
            _params(max_global_iters=40, ignore_net_degree=limit),
        ).place()
        assert not np.array_equal(a.x, b.x)
