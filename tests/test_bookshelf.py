"""Tests for Bookshelf reading and writing."""

import os

import numpy as np
import pytest

from repro.benchgen import CircuitSpec, generate
from repro.bookshelf import read_aux, read_bookshelf, write_bookshelf


@pytest.fixture(scope="module")
def db():
    return generate(CircuitSpec(name="bs", num_cells=150, num_ios=8,
                                macro_area_fraction=0.05, num_macros=2,
                                seed=23))


@pytest.fixture(scope="module")
def roundtrip(db, tmp_path_factory):
    directory = tmp_path_factory.mktemp("bookshelf")
    aux = write_bookshelf(db, str(directory))
    return aux, read_bookshelf(aux)


class TestWriter:
    def test_all_files_written(self, roundtrip):
        aux, _ = roundtrip
        base = os.path.dirname(aux)
        for ext in ("aux", "nodes", "nets", "pl", "scl", "wts"):
            assert os.path.exists(os.path.join(base, f"bs.{ext}"))

    def test_aux_lists_files(self, roundtrip):
        aux, _ = roundtrip
        mapping = read_aux(aux)
        assert set(mapping) == {"nodes", "nets", "pl", "scl", "wts"}


class TestRoundTrip:
    def test_counts_preserved(self, db, roundtrip):
        _, db2 = roundtrip
        assert db2.num_cells == db.num_cells
        assert db2.num_nets == db.num_nets
        assert db2.num_pins == db.num_pins

    def test_positions_preserved(self, db, roundtrip):
        _, db2 = roundtrip
        np.testing.assert_allclose(db2.cell_x, db.cell_x, atol=1e-5)
        np.testing.assert_allclose(db2.cell_y, db.cell_y, atol=1e-5)

    def test_sizes_preserved(self, db, roundtrip):
        _, db2 = roundtrip
        np.testing.assert_allclose(db2.cell_width, db.cell_width)

    def test_kinds_preserved(self, db, roundtrip):
        _, db2 = roundtrip
        np.testing.assert_array_equal(db2.movable, db.movable)
        np.testing.assert_array_equal(db2.terminal, db.terminal)

    def test_hpwl_preserved(self, db, roundtrip):
        _, db2 = roundtrip
        assert db2.hpwl() == pytest.approx(db.hpwl(), rel=1e-5)

    def test_region_preserved(self, db, roundtrip):
        _, db2 = roundtrip
        assert db2.region.width == pytest.approx(db.region.width)
        assert db2.region.num_rows == db.region.num_rows

    def test_net_weights_preserved(self, db, roundtrip):
        _, db2 = roundtrip
        np.testing.assert_allclose(db2.net_weight, db.net_weight)

    def test_double_roundtrip_stable(self, roundtrip, tmp_path):
        _, db2 = roundtrip
        aux = write_bookshelf(db2, str(tmp_path))
        db3 = read_bookshelf(aux)
        np.testing.assert_allclose(db3.cell_x, db2.cell_x, atol=1e-5)
        assert db3.hpwl() == pytest.approx(db2.hpwl(), rel=1e-6)


class TestReaderRobustness:
    def test_missing_file_entry(self, tmp_path):
        aux = tmp_path / "bad.aux"
        aux.write_text("RowBasedPlacement : x.nodes x.pl\n")
        with pytest.raises(ValueError, match="missing"):
            read_bookshelf(str(aux))

    def test_malformed_aux(self, tmp_path):
        aux = tmp_path / "bad.aux"
        aux.write_text("no colon here\n")
        with pytest.raises(ValueError):
            read_aux(str(aux))

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        (tmp_path / "d.nodes").write_text(
            "UCLA nodes 1.0\n# comment\n\nNumNodes : 2\nNumTerminals : 0\n"
            "  a 1 1\n  b 2 1\n"
        )
        (tmp_path / "d.nets").write_text(
            "UCLA nets 1.0\nNumNets : 1\nNumPins : 2\n"
            "NetDegree : 2  n0\n  a B : 0 0\n  b B : 0 0\n"
        )
        (tmp_path / "d.pl").write_text(
            "UCLA pl 1.0\n  a 1 1 : N\n  b 4 2 : N\n"
        )
        (tmp_path / "d.scl").write_text(
            "UCLA scl 1.0\nNumRows : 2\n"
            "CoreRow Horizontal\n  Coordinate : 0\n  Height : 1\n"
            "  Sitewidth : 1\n  SubrowOrigin : 0  NumSites : 8\nEnd\n"
            "CoreRow Horizontal\n  Coordinate : 1\n  Height : 1\n"
            "  Sitewidth : 1\n  SubrowOrigin : 0  NumSites : 8\nEnd\n"
        )
        (tmp_path / "d.aux").write_text(
            "RowBasedPlacement : d.nodes d.nets d.pl d.scl\n"
        )
        db = read_bookshelf(str(tmp_path / "d.aux"))
        assert db.num_cells == 2
        assert db.num_nets == 1
        assert db.region.num_rows == 2
        # pin offsets converted from center to corner convention
        assert db.pin_offset_x[0] == pytest.approx(0.5)
