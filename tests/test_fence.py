"""Tests for the fence-region extension (multiple electric fields)."""

import numpy as np
import pytest

from repro.core.fence import (
    FenceRegion,
    MultiRegionDensity,
    fence_clamp_bounds,
)
from repro.geometry import PlacementRegion
from repro.netlist import CellKind, Netlist
from repro.nn import Parameter, Tensor


@pytest.fixture
def fenced_db():
    region = PlacementRegion(0, 0, 32, 32)
    netlist = Netlist("fenced")
    for i in range(12):
        # stack each group inside its own fence
        netlist.add_cell(f"c{i}", 2.0, 1.0, CellKind.MOVABLE,
                         x=6.0 if i < 6 else 25.0, y=15.0)
    netlist.add_net("n0", [(0, 0, 0), (6, 0, 0)])
    db = netlist.compile(region)
    left = FenceRegion("left", 0, 0, 14, 32, cells=list(range(6)))
    right = FenceRegion("right", 18, 0, 32, 32, cells=list(range(6, 12)))
    return db, [left, right]


class TestMultiRegionDensity:
    def test_energy_positive_when_stacked(self, fenced_db):
        db, fences = fenced_db
        op = MultiRegionDensity(db, fences, num_bins=16)
        pos = Tensor(np.concatenate([db.cell_x, db.cell_y]))
        assert op(pos).item() > 0

    def test_fields_are_independent(self, fenced_db):
        """The left fence's forces don't change when the right fence's
        cells move — each region has its own electric field."""
        db, fences = fenced_db
        op = MultiRegionDensity(db, fences, num_bins=16)
        x = db.cell_x.copy()
        y = db.cell_y.copy()
        grads = []
        for right_x in (20.0, 28.0):
            x[6:] = right_x
            p = Parameter(np.concatenate([x, y]))
            op(p).backward()
            grads.append(p.grad[:6].copy())
        np.testing.assert_allclose(grads[0], grads[1], atol=1e-12)

    def test_gradient_pushes_apart_within_fence(self, fenced_db):
        db, fences = fenced_db
        op = MultiRegionDensity(db, fences, num_bins=16)
        x = db.cell_x.copy()
        y = db.cell_y.copy()
        x[6] = 24.0
        x[7] = 25.0
        y[6] = y[7] = 15.0
        p = Parameter(np.concatenate([x, y]))
        op(p).backward()
        assert p.grad[6] > 0  # pushed left (descent = -grad)
        assert p.grad[7] < 0  # pushed right

    def test_duplicate_assignment_rejected(self, fenced_db):
        db, fences = fenced_db
        fences[1].cells.append(0)  # already in the left fence
        with pytest.raises(ValueError, match="multiple"):
            MultiRegionDensity(db, fences)

    def test_fixed_cell_in_fence_rejected(self):
        region = PlacementRegion(0, 0, 16, 16)
        netlist = Netlist("bad")
        netlist.add_cell("m", 2.0, 1.0, CellKind.MOVABLE)
        netlist.add_cell("f", 2.0, 2.0, CellKind.FIXED, x=8, y=8)
        netlist.add_net("n", [(0, 0, 0), (1, 0, 0)])
        db = netlist.compile(region)
        fence = FenceRegion("f0", 0, 0, 8, 8, cells=[1])
        with pytest.raises(ValueError, match="non-movable"):
            MultiRegionDensity(db, [fence])

    def test_unassigned_cells_get_default_field(self, fenced_db):
        db, fences = fenced_db
        # only fence the first 6 cells; the rest use the core field
        op = MultiRegionDensity(db, fences[:1], num_bins=16)
        assert len(op.systems) == 2
        default = op.systems[-1]
        assert set(default.cells.tolist()) == set(range(6, 12))


class TestFenceClampBounds:
    def test_bounds_confine_to_fence(self, fenced_db):
        db, fences = fenced_db
        lo, hi = fence_clamp_bounds(db, fences)
        n = db.num_cells
        # cell 0 belongs to the left fence [0, 14]
        assert lo[0] == 0.0
        assert hi[0] == pytest.approx(14.0 - db.cell_width[0])
        # cell 6 belongs to the right fence [18, 32]
        assert lo[6] == 18.0
        assert hi[6] == pytest.approx(32.0 - db.cell_width[6])

    def test_clamping_moves_cells_inside(self, fenced_db):
        db, fences = fenced_db
        lo, hi = fence_clamp_bounds(db, fences)
        pos = np.concatenate([db.cell_x, db.cell_y])  # all at x=15
        clamped = np.minimum(np.maximum(pos, lo), hi)
        n = db.num_cells
        assert (clamped[:6] + db.cell_width[:6] <= 14.0 + 1e-9).all()
        assert (clamped[6:12] >= 18.0 - 1e-9).all()

    def test_spreading_with_fences_end_to_end(self, fenced_db):
        """A small gradient loop separates both piles inside their fences."""
        from repro.nn.optim import NesterovLineSearch

        db, fences = fenced_db
        op = MultiRegionDensity(db, fences, num_bins=16)
        lo, hi = fence_clamp_bounds(db, fences)
        pos = np.concatenate([db.cell_x, db.cell_y])
        pos = np.minimum(np.maximum(pos, lo), hi)
        rng = np.random.default_rng(0)
        pos += rng.normal(0, 0.05, pos.shape)
        pos = np.minimum(np.maximum(pos, lo), hi)
        p = Parameter(pos)
        opt = NesterovLineSearch([p], lr=1.0)

        def closure():
            p.zero_grad()
            out = op(p)
            out.backward()
            return out

        first = closure().item()
        for _ in range(25):
            opt.step(closure)
            opt.project(lambda a: np.minimum(np.maximum(a, lo), hi))
        final = closure().item()
        assert final < first
        n = db.num_cells
        x = p.data[:n]
        assert (x[:6] + db.cell_width[:6] <= 14.0 + 1e-6).all()
        assert (x[6:12] >= 18.0 - 1e-6).all()
