"""Fence-aware legalization/DP and the vectorized legality engine.

Covers the post-GP fence correctness contract: the checker counts
fence violations, LG/DP never move a cell across a fence boundary,
the DreamPlacer gate raises on illegal stages, the vectorized checker
and cached incremental evaluator are bit-identical to their reference
implementations, and degenerate (pinless) nets neither crash DP nor
pass validation silently.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.benchgen import CircuitSpec, generate
from repro.core import DreamPlacer, FenceRegion, PlacementParams, fence_of_cell
from repro.dp import IncrementalHpwl, ReferenceIncrementalHpwl
from repro.dp.global_swap import global_swap
from repro.dp.independent_set import independent_set_matching
from repro.dp.local_reorder import local_reorder
from repro.geometry import PlacementRegion
from repro.lg import (
    LegalityError,
    check_legal,
    check_legal_reference,
    legalize,
)
from repro.lg.rows import build_row_segments, clip_segments_to_fence
from repro.netlist import CellKind, Netlist
from repro.netlist.validate import validate_db


def _two_fence_design(num_cells: int = 80, seed: int = 3):
    """A hand-built design with two exclusive fences (L and R)."""
    region = PlacementRegion(0, 0, 48, 48)
    netlist = Netlist("fences")
    rng = np.random.default_rng(seed)
    for i in range(num_cells):
        netlist.add_cell(f"c{i}", float(rng.integers(1, 4)), 1.0,
                         CellKind.MOVABLE, x=24.0, y=24.0)
    for e in range(num_cells):
        a = int(rng.integers(num_cells))
        b = int(rng.integers(num_cells))
        if a == b:
            b = (b + 1) % num_cells
        netlist.add_net(f"n{e}", [(a, 0.5, 0.5), (b, 0.5, 0.5)])
    db = netlist.compile(region)
    half = num_cells // 2
    fences = [
        FenceRegion("L", 2, 2, 20, 46, cells=list(range(half))),
        FenceRegion("R", 28, 2, 46, 46, cells=list(range(half, num_cells))),
    ]
    return db, fences


def _scatter_into_fences(db, fences, seed=0):
    """Random in-fence positions (a stand-in for a fenced GP result)."""
    rng = np.random.default_rng(seed)
    x = db.cell_x.copy()
    y = db.cell_y.copy()
    for fence in fences:
        cells = np.asarray(fence.cells)
        x[cells] = rng.uniform(fence.xl, fence.xh - db.cell_width[cells])
        y[cells] = rng.uniform(fence.yl, fence.yh - 1.0)
    return x, y


class TestCheckerFenceViolations:
    def test_cell_outside_fence_reported(self):
        db, fences = _two_fence_design()
        x, y = _scatter_into_fences(db, fences)
        lx, ly = legalize(db, x, y, fences=fences)
        # move one L cell into R territory: still legal geometrically
        # but a fence violation
        lx[0] = 30.0
        ly[0] = 10.0
        report = check_legal(db, lx, ly, fences=fences)
        assert not report.legal
        assert report.fence_violations == 1
        assert any("fence" in m for m in report.messages)

    def test_without_fences_stays_blind(self):
        db, fences = _two_fence_design()
        x, y = _scatter_into_fences(db, fences)
        lx, ly = legalize(db, x, y, fences=fences)
        lx[0] = 30.0
        ly[0] = 10.0
        assert check_legal(db, lx, ly).fence_violations == 0

    def test_report_as_dict_roundtrip(self):
        db, fences = _two_fence_design()
        x, y = _scatter_into_fences(db, fences)
        lx, ly = legalize(db, x, y, fences=fences)
        report = check_legal(db, lx, ly, fences=fences)
        d = report.as_dict()
        assert d["legal"] is True
        assert d["fence_violations"] == 0
        assert set(d) == {"legal", "outside", "off_row", "off_site",
                          "overlaps", "fence_violations", "messages"}


class TestFenceAwareLegalize:
    def test_groups_stay_in_their_fences(self):
        db, fences = _two_fence_design()
        x, y = _scatter_into_fences(db, fences)
        lx, ly = legalize(db, x, y, fences=fences)
        report = check_legal(db, lx, ly, fences=fences)
        assert report.legal, report.messages

    def test_default_cells_kept_out_of_fences(self):
        db, fences = _two_fence_design()
        # only fence L is populated; the rest are default-group cells
        half = len(fences[0].cells)
        fences = [fences[0]]
        x, y = _scatter_into_fences(db, fences)
        lx, ly = legalize(db, x, y, fences=fences)
        assert check_legal(db, lx, ly, fences=fences).legal
        fence = fences[0]
        default = np.setdiff1d(db.movable_index, np.arange(half))
        inside = (
            (lx[default] + db.cell_width[default] > fence.xl + 1e-6)
            & (lx[default] < fence.xh - 1e-6)
            & (ly[default] + 1.0 > fence.yl + 1e-6)
            & (ly[default] < fence.yh - 1e-6)
        )
        assert not inside.any()

    def test_clip_segments_rows_and_sites(self):
        db, fences = _two_fence_design()
        base = build_row_segments(db)
        fence = FenceRegion("odd", 3.4, 2.0, 17.6, 13.0, cells=[0])
        clipped = clip_segments_to_fence(db, base, fence)
        region = db.region
        for row, row_segments in enumerate(clipped):
            row_yl = region.yl + row * region.row_height
            for seg in row_segments:
                assert row_yl >= fence.yl - 1e-9
                assert row_yl + region.row_height <= fence.yh + 1e-9
                # bounds snapped inward onto the site grid
                assert seg.start >= fence.xl - 1e-9
                assert seg.end <= fence.xh + 1e-9
                assert abs(seg.start - round(seg.start)) < 1e-9
                assert abs(seg.end - round(seg.end)) < 1e-9

    def test_fenced_movable_macro_rejected(self):
        region = PlacementRegion(0, 0, 16, 16)
        netlist = Netlist("tallfence")
        netlist.add_cell("m", 2.0, 3.0, CellKind.MOVABLE, x=1, y=1)
        netlist.add_cell("c", 1.0, 1.0, CellKind.MOVABLE, x=5, y=5)
        netlist.add_net("n", [(0, 0.5, 0.5), (1, 0.5, 0.5)])
        db = netlist.compile(region)
        fences = [FenceRegion("F", 0, 0, 8, 8, cells=[0])]
        with pytest.raises(NotImplementedError):
            legalize(db, fences=fences)


class TestFenceAwareDetailedPlacement:
    def _legal_fenced_state(self, seed=0):
        db, fences = _two_fence_design(seed=seed)
        x, y = _scatter_into_fences(db, fences, seed=seed)
        lx, ly = legalize(db, x, y, fences=fences)
        return db, fences, lx, ly

    def test_global_swap_never_crosses_fences(self):
        db, fences, lx, ly = self._legal_fenced_state()
        fence_id = fence_of_cell(db, fences)
        state = IncrementalHpwl(db, lx, ly)
        before_fence = {
            int(c): int(fence_id[c]) for c in db.movable_index
        }
        global_swap(db, state, fence_id=fence_id)
        report = check_legal(db, state.x, state.y, fences=fences)
        assert report.fence_violations == 0, report.messages
        # every cell is still inside the fence it started in
        for fence in fences:
            for c in fence.cells:
                assert before_fence[c] == int(fence_id[c])
                assert state.x[c] >= fence.xl - 1e-6
                assert state.x[c] + db.cell_width[c] <= fence.xh + 1e-6

    def test_global_swap_would_violate_without_fence_id(self):
        """The regression: fence-blind swapping crosses fences.

        Guards against the mask silently becoming a no-op — if the
        unconstrained pass never crosses a fence on this design the
        fence-aware assertions above would be vacuous.
        """
        db, fences, lx, ly = self._legal_fenced_state()
        state = IncrementalHpwl(db, lx, ly)
        global_swap(db, state)
        report = check_legal(db, state.x, state.y, fences=fences)
        assert report.fence_violations > 0

    def test_all_passes_preserve_fences(self):
        db, fences, lx, ly = self._legal_fenced_state(seed=1)
        fence_id = fence_of_cell(db, fences)
        state = IncrementalHpwl(db, lx, ly)
        global_swap(db, state, fence_id=fence_id)
        local_reorder(db, state, 3, fence_id=fence_id)
        independent_set_matching(db, state, 12, fence_id=fence_id)
        report = check_legal(db, state.x, state.y, fences=fences)
        assert report.legal, report.messages


class TestEndToEndFenceFlow:
    def test_gp_lg_dp_zero_violations(self):
        db, fences = _two_fence_design()
        params = PlacementParams(max_global_iters=120, min_global_iters=5)
        result = DreamPlacer(db, params, fences=fences).run()
        assert result.legality is not None
        assert result.legality.legal, result.legality.messages
        assert result.legality.fence_violations == 0
        assert result.legality.overlaps == 0
        # the placement really is split: every cell inside its fence
        report = check_legal(db, result.x, result.y, fences=fences)
        assert report.fence_violations == 0

    def test_gate_raises_on_illegal_stage(self, monkeypatch):
        db, fences = _two_fence_design()
        params = PlacementParams(max_global_iters=30, min_global_iters=5)

        def fence_blind_legalize(db, x=None, y=None, refine=True,
                                 fences=None):
            return legalize(db, x, y, refine=refine)  # drops the fences

        monkeypatch.setattr("repro.core.placer.legalize",
                            fence_blind_legalize)
        with pytest.raises(LegalityError) as err:
            DreamPlacer(db, params, fences=fences).run()
        assert err.value.stage == "legalize"
        assert err.value.report.fence_violations > 0

    def test_gate_off_reports_instead(self, monkeypatch):
        db, fences = _two_fence_design()
        params = PlacementParams(max_global_iters=30, min_global_iters=5,
                                 detailed=False, legality_gate=False)

        def fence_blind_legalize(db, x=None, y=None, refine=True,
                                 fences=None):
            return legalize(db, x, y, refine=refine)

        monkeypatch.setattr("repro.core.placer.legalize",
                            fence_blind_legalize)
        result = DreamPlacer(db, params, fences=fences).run()
        assert result.legality is not None
        assert not result.legality.legal
        assert result.legality.fence_violations > 0


class TestCheckerDeterminism:
    """The vectorized checker is bit-identical to the Python sweep."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_legal_placements(self, seed):
        db = generate(CircuitSpec(name=f"dl{seed}", num_cells=150,
                                  seed=seed))
        lx, ly = legalize(db)
        a = check_legal(db, lx, ly)
        b = check_legal_reference(db, lx, ly)
        assert a.as_dict() == b.as_dict()
        assert a.legal

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_messy_placements(self, seed):
        db = generate(CircuitSpec(
            name=f"dm{seed}", num_cells=150, seed=seed,
            num_macros=2 if seed % 2 else 0,
            macro_area_fraction=0.1 if seed % 2 else 0.0,
        ))
        rng = np.random.default_rng(seed)
        x = db.cell_x + rng.normal(0, 2, db.num_cells)
        y = db.cell_y + rng.normal(0, 2, db.num_cells)
        a = check_legal(db, x, y)
        b = check_legal_reference(db, x, y)
        assert a.as_dict() == b.as_dict()

    def test_piled_up_worst_case(self):
        """Every cell on one spot: the dirty-band fallback must still
        agree with the reference exactly."""
        db = generate(CircuitSpec(name="pile", num_cells=60, seed=5))
        x = np.full(db.num_cells, 4.0)
        y = np.full(db.num_cells, 4.0)
        a = check_legal(db, x, y)
        b = check_legal_reference(db, x, y)
        assert a.as_dict() == b.as_dict()
        assert a.overlaps > 0


class TestIncrementalDeterminism:
    """Cached bboxes produce bit-identical deltas and move sequences."""

    def test_random_deltas_bit_identical(self):
        db = generate(CircuitSpec(name="inc", num_cells=200, seed=11))
        lx, ly = legalize(db)
        a = IncrementalHpwl(db, lx, ly)
        b = ReferenceIncrementalHpwl(db, lx, ly)
        rng = np.random.default_rng(1)
        mv = db.movable_index
        for _ in range(200):
            k = int(rng.integers(1, 4))
            cells = rng.choice(mv, size=k, replace=True)
            nx = a.x[cells] + rng.normal(0, 3, k)
            ny = a.y[cells] + rng.normal(0, 3, k)
            assert a.delta(cells, nx, ny) == b.delta(cells, nx, ny)
            if rng.random() < 0.3:
                a.apply(cells, nx, ny)
                b.apply(cells, nx, ny)
                np.testing.assert_array_equal(a.x, b.x)
                np.testing.assert_array_equal(a._pin_x, b._pin_x)

    def test_pass_move_sequences_bit_identical(self):
        db = generate(CircuitSpec(name="seq", num_cells=200, seed=7))
        lx, ly = legalize(db)
        a = IncrementalHpwl(db, lx, ly)
        b = ReferenceIncrementalHpwl(db, lx, ly)
        for sweep in (global_swap, local_reorder,
                      independent_set_matching):
            assert sweep(db, a) == sweep(db, b), sweep.__name__
            np.testing.assert_array_equal(a.x, b.x)
            np.testing.assert_array_equal(a.y, b.y)
        assert a.total_hpwl() == b.total_hpwl()

    def test_net_hpwl_matches_cache(self):
        db = generate(CircuitSpec(name="nh", num_cells=100, seed=2))
        state = IncrementalHpwl(db, db.cell_x, db.cell_y)
        ref = ReferenceIncrementalHpwl(db, db.cell_x, db.cell_y)
        for net in range(db.num_nets):
            assert state.net_hpwl(net) == ref.net_hpwl(net)


class TestDegenerateNets:
    def _db_with_pinless_net(self):
        region = PlacementRegion(0, 0, 16, 16)
        netlist = Netlist("degenerate")
        for i in range(4):
            netlist.add_cell(f"c{i}", 1.0, 1.0, CellKind.MOVABLE,
                             x=float(2 + i * 3), y=2.0)
        netlist.add_net("n0", [(0, 0.5, 0.5), (1, 0.5, 0.5)])
        netlist.add_net("empty", [])
        netlist.add_net("n1", [(2, 0.5, 0.5), (3, 0.5, 0.5)])
        return netlist.compile(region)

    def test_net_hpwl_pinless_returns_zero(self):
        db = self._db_with_pinless_net()
        state = IncrementalHpwl(db, db.cell_x, db.cell_y)
        assert state.net_hpwl(1) == 0.0

    def test_delta_and_apply_survive_pinless_nets(self):
        db = self._db_with_pinless_net()
        state = IncrementalHpwl(db, db.cell_x, db.cell_y)
        d = state.delta([0], [5.0], [3.0])
        assert np.isfinite(d)
        state.apply([0], [5.0], [3.0])
        assert state.x[0] == 5.0

    def test_validate_flags_pinless_nets(self):
        db = self._db_with_pinless_net()
        with pytest.raises(ValueError, match="nets have no pins"):
            validate_db(db)

    def test_delta_empty_move_is_zero(self):
        db = self._db_with_pinless_net()
        state = IncrementalHpwl(db, db.cell_x, db.cell_y)
        assert state.delta([], [], []) == 0.0


class TestMetricsAndEvents:
    def test_result_metrics_carry_legality(self):
        from repro.core import placement_result_metrics

        db, fences = _two_fence_design()
        params = PlacementParams(max_global_iters=60, min_global_iters=5)
        result = DreamPlacer(db, params, fences=fences).run()
        metrics = placement_result_metrics(result)
        assert metrics["legal"] is True
        assert metrics["legality"]["fence_violations"] == 0
        assert metrics["legality"]["overlaps"] == 0

    def test_legality_gate_param_roundtrips(self):
        params = PlacementParams(legality_gate=False)
        again = PlacementParams.from_dict(params.to_dict())
        assert again.legality_gate is False
