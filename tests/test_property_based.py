"""Property-based tests (hypothesis) on core kernels and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.geometry import BinGrid, PlacementRegion
from repro.netlist import CellKind, Netlist
from repro.nn import Parameter, Tensor
from repro.ops import dct as D
from repro.ops.density_map import gather_field, scatter_density
from repro.ops.hpwl import hpwl_per_net
from repro.ops.wa_wirelength import WeightedAverageWirelength

finite_floats = st.floats(min_value=-100.0, max_value=100.0,
                          allow_nan=False, allow_infinity=False)


def arrays_1d(n_min=2, n_max=32):
    return hnp.arrays(
        np.float64,
        st.integers(min_value=n_min, max_value=n_max).map(lambda n: 2 * (n // 2)).filter(lambda n: n >= 2),
        elements=finite_floats,
    )


class TestDCTProperties:
    @given(arrays_1d())
    @settings(max_examples=40, deadline=None)
    def test_fast_dct_matches_naive(self, x):
        np.testing.assert_allclose(D.dct_n(x), D.dct_naive(x),
                                   atol=1e-7, rtol=1e-7)

    @given(arrays_1d())
    @settings(max_examples=40, deadline=None)
    def test_inversion_property(self, x):
        n = x.shape[-1]
        np.testing.assert_allclose(
            D.idct_n(D.dct_n(x)), (n / 2.0) * x, atol=1e-6, rtol=1e-6
        )

    @given(arrays_1d(), st.floats(min_value=-3.0, max_value=3.0,
                                  allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_linearity(self, x, alpha):
        np.testing.assert_allclose(
            D.dct_n(alpha * x), alpha * D.dct_n(x), atol=1e-6
        )

    @given(arrays_1d())
    @settings(max_examples=30, deadline=None)
    def test_idxst_identity_8e(self, x):
        """eq. (8e): idxst(x) == (-1)^k idct(x_{N-n})."""
        n = x.shape[-1]
        flipped = np.zeros_like(x)
        flipped[1:] = x[:0:-1]
        signs = np.where(np.arange(n) % 2 == 0, 1.0, -1.0)
        np.testing.assert_allclose(
            D.idxst_naive(x), signs * D.idct_naive(flipped), atol=1e-7
        )


class TestHpwlProperties:
    @given(
        hnp.arrays(np.float64, st.integers(4, 40), elements=finite_floats),
        hnp.arrays(np.float64, st.integers(4, 40), elements=finite_floats),
        st.integers(min_value=1, max_value=5),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_translation_invariance(self, px, py, num_nets, rnd):
        n = min(px.shape[0], py.shape[0])
        px, py = px[:n], py[:n]
        net = np.array([rnd.randrange(num_nets) for _ in range(n)])
        base = hpwl_per_net(px, py, net, num_nets)
        shifted = hpwl_per_net(px + 7.5, py - 2.5, net, num_nets)
        np.testing.assert_allclose(base, shifted, atol=1e-9)

    @given(
        hnp.arrays(np.float64, st.integers(4, 40), elements=finite_floats),
        st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_scaling_homogeneity(self, px, scale):
        net = np.zeros(px.shape[0], dtype=np.int64)
        py = np.zeros_like(px)
        base = hpwl_per_net(px, py, net, 1)[0]
        scaled = hpwl_per_net(px * scale, py, net, 1)[0]
        assert scaled == pytest.approx(base * scale, rel=1e-9, abs=1e-9)

    @given(hnp.arrays(np.float64, st.integers(2, 30),
                      elements=finite_floats))
    @settings(max_examples=40, deadline=None)
    def test_nonnegative(self, px):
        net = np.zeros(px.shape[0], dtype=np.int64)
        assert hpwl_per_net(px, px, net, 1)[0] >= 0.0


def build_random_db(coords, widths):
    n = coords.shape[0] // 2
    region = PlacementRegion(-200, -200, 200, 200)
    netlist = Netlist("hyp")
    for i in range(n):
        netlist.add_cell(f"c{i}", float(widths[i % widths.shape[0]]), 1.0,
                         CellKind.MOVABLE,
                         x=float(coords[i]), y=float(coords[n + i]))
    for i in range(n - 1):
        netlist.add_net(f"n{i}", [(i, 0.0, 0.0), (i + 1, 0.0, 0.0)])
    return netlist.compile(region)


class TestWirelengthProperties:
    @given(
        hnp.arrays(np.float64, st.integers(6, 24), elements=finite_floats),
        st.floats(min_value=0.2, max_value=5.0, allow_nan=False),
    )
    @settings(max_examples=25, deadline=None)
    def test_wa_below_hpwl(self, coords, gamma):
        if coords.shape[0] % 2:
            coords = coords[:-1]
        db = build_random_db(coords, np.ones(1))
        op = WeightedAverageWirelength(db, gamma=gamma)
        pos = np.concatenate([db.cell_x, db.cell_y])
        assert op(Tensor(pos)).item() <= db.hpwl() + 1e-6

    @given(
        hnp.arrays(np.float64, st.integers(6, 20), elements=finite_floats),
    )
    @settings(max_examples=25, deadline=None)
    def test_wa_gradient_sums_to_zero(self, coords):
        """Newton's third law: internal WL forces cancel."""
        if coords.shape[0] % 2:
            coords = coords[:-1]
        db = build_random_db(coords, np.ones(1))
        op = WeightedAverageWirelength(db, gamma=1.0)
        p = Parameter(np.concatenate([db.cell_x, db.cell_y]))
        op(p).backward()
        n = db.num_cells
        assert abs(p.grad[:n].sum()) < 1e-7
        assert abs(p.grad[n:].sum()) < 1e-7


class TestDensityProperties:
    @given(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=0, max_value=10 ** 6),
    )
    @settings(max_examples=25, deadline=None)
    def test_scatter_mass_conserved(self, n, seed):
        rng = np.random.default_rng(seed)
        region = PlacementRegion(0, 0, 64, 64)
        grid = BinGrid(region, 16, 16)
        xl = rng.uniform(0, 56, size=n)
        yl = rng.uniform(0, 56, size=n)
        w = rng.uniform(0.1, 8.0, size=n)
        h = rng.uniform(0.1, 8.0, size=n)
        out = scatter_density(grid, xl, yl, w, h, np.ones(n))
        np.testing.assert_allclose(out.sum(), (w * h).sum(), rtol=1e-9)

    @given(st.integers(min_value=1, max_value=30),
           st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=20, deadline=None)
    def test_strategies_equivalent(self, n, seed):
        rng = np.random.default_rng(seed)
        region = PlacementRegion(0, 0, 64, 64)
        grid = BinGrid(region, 16, 16)
        xl = rng.uniform(0, 56, size=n)
        yl = rng.uniform(0, 56, size=n)
        w = rng.uniform(0.1, 8.0, size=n)
        h = rng.uniform(0.1, 8.0, size=n)
        weight = rng.uniform(0.1, 2.0, size=n)
        ref = scatter_density(grid, xl, yl, w, h, weight, "naive")
        for strategy in ("sorted", "stamp"):
            out = scatter_density(grid, xl, yl, w, h, weight, strategy)
            np.testing.assert_allclose(out, ref, atol=1e-10)

    @given(st.integers(min_value=1, max_value=25),
           st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=20, deadline=None)
    def test_scatter_gather_adjoint(self, n, seed):
        rng = np.random.default_rng(seed)
        region = PlacementRegion(0, 0, 64, 64)
        grid = BinGrid(region, 16, 16)
        xl = rng.uniform(0, 56, size=n)
        yl = rng.uniform(0, 56, size=n)
        w = rng.uniform(0.1, 8.0, size=n)
        h = rng.uniform(0.1, 8.0, size=n)
        weight = rng.uniform(0.1, 2.0, size=n)
        field = rng.normal(size=grid.shape)
        rho = scatter_density(grid, xl, yl, w, h, weight)
        lhs = float((rho * field).sum())
        rhs = float(gather_field(grid, field, xl, yl, w, h, weight).sum())
        assert lhs == pytest.approx(rhs, rel=1e-8, abs=1e-8)


class TestLegalizationProperties:
    @given(st.integers(min_value=0, max_value=10 ** 6),
           st.integers(min_value=5, max_value=60))
    @settings(max_examples=15, deadline=None)
    def test_tetris_always_legal(self, seed, n):
        from repro.lg import check_legal, tetris_legalize

        rng = np.random.default_rng(seed)
        region = PlacementRegion(0, 0, 32, 32)
        netlist = Netlist("hyp")
        for i in range(n):
            netlist.add_cell(
                f"c{i}", float(rng.integers(1, 4)), 1.0, CellKind.MOVABLE,
                x=float(rng.uniform(0, 28)), y=float(rng.uniform(0, 31)),
            )
        netlist.add_net("n0", [(0, 0, 0), (1, 0, 0)])
        db = netlist.compile(region)
        x, y, _ = tetris_legalize(db)
        report = check_legal(db, x, y)
        assert report.legal, report.messages
