"""Tests for the global router, congestion metrics, and inflation."""

import numpy as np
import pytest

from repro.core.metrics import scaled_hpwl
from repro.route import (
    GlobalRouter,
    RoutingGrid,
    ace_metrics,
    apply_inflation,
    inflation_ratio_map,
    routing_congestion,
)
from repro.route.net_decompose import decompose_net, mst_segments
from repro.route.pattern_route import rip_up, route_segment


class TestRoutingGrid:
    def test_capacity_shapes(self, tiny_design):
        grid = RoutingGrid(tiny_design, num_tiles=8, num_layers=4,
                           tile_capacity=10.0)
        assert grid.capacity_h.shape == (7, 8)
        assert grid.capacity_v.shape == (8, 7)

    def test_layer_pooling(self, tiny_design):
        grid = RoutingGrid(tiny_design, num_tiles=8, num_layers=4,
                           tile_capacity=10.0, macro_blockage=0.0)
        assert grid.capacity_h.max() == pytest.approx(20.0)  # 2 H layers
        assert grid.capacity_v.max() == pytest.approx(20.0)

    def test_odd_layer_split(self, tiny_design):
        grid = RoutingGrid(tiny_design, num_tiles=8, num_layers=3,
                           tile_capacity=10.0, macro_blockage=0.0)
        assert grid.capacity_h.max() == pytest.approx(20.0)
        assert grid.capacity_v.max() == pytest.approx(10.0)

    def test_macro_blockage_reduces_capacity(self, blocked_db):
        open_grid = RoutingGrid(blocked_db, num_tiles=8, macro_blockage=0.0)
        blocked = RoutingGrid(blocked_db, num_tiles=8, macro_blockage=0.8)
        assert blocked.capacity_h.sum() < open_grid.capacity_h.sum()

    def test_utilization_zero_initially(self, tiny_design):
        grid = RoutingGrid(tiny_design, num_tiles=8)
        assert grid.utilization_h().max() == 0.0
        assert grid.total_overflow() == 0.0


class TestDecompose:
    def test_two_points(self):
        edges = mst_segments(np.array([0, 5]), np.array([0, 0]))
        assert edges == [(0, 1)]

    def test_tree_size(self):
        rng = np.random.default_rng(0)
        tx = rng.integers(0, 16, size=10)
        ty = rng.integers(0, 16, size=10)
        edges = mst_segments(tx, ty)
        assert len(edges) == 9

    def test_mst_is_minimal_on_line(self):
        # collinear points: MST length = span
        tx = np.array([0, 10, 3, 7])
        ty = np.zeros(4, dtype=int)
        edges = mst_segments(tx, ty)
        total = sum(abs(tx[a] - tx[b]) for a, b in edges)
        assert total == 10

    def test_decompose_dedupes_tiles(self):
        segs = decompose_net(np.array([1, 1, 4]), np.array([2, 2, 2]))
        assert len(segs) == 1

    def test_single_tile_net_empty(self):
        assert decompose_net(np.array([3, 3]), np.array([4, 4])) == []


class TestPatternRoute:
    def test_straight_route_demand(self, tiny_design):
        grid = RoutingGrid(tiny_design, num_tiles=8, macro_blockage=0.0)
        used = route_segment(grid, 0, 0, 3, 0)
        assert len(used) == 3
        assert grid.demand_h.sum() == 3.0
        assert grid.demand_v.sum() == 0.0

    def test_l_route_both_directions(self, tiny_design):
        grid = RoutingGrid(tiny_design, num_tiles=8, macro_blockage=0.0)
        route_segment(grid, 0, 0, 2, 3)
        assert grid.demand_h.sum() == 2.0
        assert grid.demand_v.sum() == 3.0

    def test_chooses_less_congested_l(self, tiny_design):
        grid = RoutingGrid(tiny_design, num_tiles=8, macro_blockage=0.0)
        # congest the horizontal edges at y=0
        grid.demand_h[:, 0] = grid.capacity_h[:, 0] + 5
        route_segment(grid, 0, 0, 2, 3)
        # the router should go vertical first (option B)
        assert grid.demand_v[0, :3].sum() == 3.0

    def test_rip_up_restores(self, tiny_design):
        grid = RoutingGrid(tiny_design, num_tiles=8, macro_blockage=0.0)
        used = route_segment(grid, 0, 0, 3, 2)
        rip_up(grid, used)
        assert grid.demand_h.sum() == 0.0
        assert grid.demand_v.sum() == 0.0

    def test_same_tile_no_route(self, tiny_design):
        grid = RoutingGrid(tiny_design, num_tiles=8)
        assert route_segment(grid, 2, 2, 2, 2) == []


class TestCongestionMetrics:
    def test_rc_floor_100(self, tiny_design):
        grid = RoutingGrid(tiny_design, num_tiles=8)
        assert routing_congestion(grid) == 100.0

    def test_ace_reflects_hotspots(self, tiny_design):
        grid = RoutingGrid(tiny_design, num_tiles=8, macro_blockage=0.0)
        grid.demand_h[0, 0] = 2.0 * grid.capacity_h[0, 0]
        ace = ace_metrics(grid)
        assert ace[0.5] > ace[5.0]

    def test_rc_grows_with_overflow(self, tiny_design):
        grid = RoutingGrid(tiny_design, num_tiles=8, macro_blockage=0.0)
        base = routing_congestion(grid)
        grid.demand_h[:] = 1.5 * grid.capacity_h
        assert routing_congestion(grid) > base

    def test_shpwl_formula(self):
        assert scaled_hpwl(100.0, 100.0) == 100.0
        assert scaled_hpwl(100.0, 110.0) == pytest.approx(130.0)


class TestGlobalRouter:
    def test_routes_design(self, tiny_design):
        router = GlobalRouter(tiny_design, num_tiles=16, tile_capacity=8.0)
        result = router.route()
        assert result.rc >= 100.0
        assert result.wirelength_tiles > 0
        assert result.tile_ratio_map.shape == (16, 16)

    def test_tight_capacity_increases_rc(self, tiny_design):
        loose = GlobalRouter(tiny_design, num_tiles=16,
                             tile_capacity=50.0).route()
        tight = GlobalRouter(tiny_design, num_tiles=16,
                             tile_capacity=0.5).route()
        assert tight.rc >= loose.rc
        assert tight.total_overflow > loose.total_overflow

    def test_rrr_reduces_overflow(self, tiny_design):
        """In the mildly congested regime rip-up & reroute helps (in a
        fully saturated grid detours can only add demand)."""
        from repro.route.router import calibrate_capacity

        capacity = calibrate_capacity(tiny_design, num_tiles=16)
        no_rrr = GlobalRouter(tiny_design, num_tiles=16,
                              tile_capacity=capacity, rrr_rounds=0).route()
        rrr = GlobalRouter(tiny_design, num_tiles=16,
                           tile_capacity=capacity, rrr_rounds=2).route()
        assert rrr.total_overflow <= no_rrr.total_overflow

    def test_positions_override(self, tiny_design):
        db = tiny_design
        router = GlobalRouter(db, num_tiles=16, tile_capacity=8.0)
        x, y = db.positions()
        movable = db.movable_index
        x[movable] = db.region.xl + 1.0  # pile up left
        y[movable] = db.region.yl + 1.0
        piled = router.route(x, y)
        spread = router.route()
        assert piled.rc >= spread.rc


class TestInflation:
    def test_ratio_map_formula(self):
        tile_ratio = np.array([[0.5, 1.0], [1.2, 3.0]])
        out = inflation_ratio_map(tile_ratio, exponent=2.5, max_ratio=2.5)
        assert out[0, 0] == pytest.approx(0.5 ** 2.5)
        assert out[0, 1] == pytest.approx(1.0)
        assert out[1, 0] == pytest.approx(1.2 ** 2.5)
        assert out[1, 1] == 2.5  # clamped

    def test_inflates_congested_cells(self, tiny_design):
        db = tiny_design.clone()
        from repro.geometry import BinGrid

        tiles = BinGrid(db.region, 8, 8)
        ratio = np.ones((8, 8))
        ratio[:4, :] = 2.0  # left half congested
        before = db.cell_width.copy()
        added = apply_inflation(db, tiles, ratio, whitespace_cap=1.0)
        assert added > 0
        movable = db.movable_index
        grew = db.cell_width[movable] > before[movable]
        left = db.cell_x[movable] < db.region.center[0]
        # growth concentrated on the congested half
        assert grew[left].mean() > grew[~left].mean()

    def test_whitespace_cap_limits_growth(self, tiny_design):
        db1 = tiny_design.clone()
        db2 = tiny_design.clone()
        from repro.geometry import BinGrid

        tiles = BinGrid(db1.region, 8, 8)
        ratio = np.full((8, 8), 2.5)
        added_uncapped = apply_inflation(db1, tiles, ratio,
                                         whitespace_cap=10.0)
        added_capped = apply_inflation(db2, tiles, ratio,
                                       whitespace_cap=0.05)
        assert added_capped < added_uncapped
        whitespace = (db2.region.area - db2.total_fixed_area
                      - tiny_design.total_movable_area)
        # rounding up to sites can exceed the cap slightly
        assert added_capped <= 0.05 * whitespace + db2.num_movable

    def test_no_congestion_no_growth(self, tiny_design):
        db = tiny_design.clone()
        from repro.geometry import BinGrid

        tiles = BinGrid(db.region, 8, 8)
        added = apply_inflation(db, tiles, np.ones((8, 8)))
        assert added == 0.0

    def test_widths_stay_on_site_grid(self, tiny_design):
        db = tiny_design.clone()
        from repro.geometry import BinGrid

        tiles = BinGrid(db.region, 8, 8)
        apply_inflation(db, tiles, np.full((8, 8), 1.8),
                        whitespace_cap=1.0)
        site = db.region.site_width
        rel = db.cell_width[db.movable_index] / site
        np.testing.assert_allclose(rel, np.round(rel), atol=1e-9)
