"""Tests for geometry: boxes, region, bin grid."""

import numpy as np
import pytest

from repro.geometry import (
    BinGrid,
    PlacementRegion,
    clamp,
    overlap_1d,
    rect_overlap_area,
)


class TestBoxes:
    def test_overlap_1d_positive(self):
        assert overlap_1d(0.0, 2.0, 1.0, 3.0) == 1.0

    def test_overlap_1d_disjoint_is_zero(self):
        assert overlap_1d(0.0, 1.0, 2.0, 3.0) == 0.0

    def test_overlap_1d_containment(self):
        assert overlap_1d(0.0, 10.0, 2.0, 3.0) == 1.0

    def test_overlap_1d_vectorized(self):
        al = np.array([0.0, 0.0, 5.0])
        out = overlap_1d(al, al + 2.0, 1.0, 3.0)
        np.testing.assert_allclose(out, [1.0, 1.0, 0.0])

    def test_rect_overlap_area(self):
        assert rect_overlap_area(0, 0, 2, 2, 1, 1, 3, 3) == 1.0

    def test_rect_overlap_touching_is_zero(self):
        assert rect_overlap_area(0, 0, 1, 1, 1, 0, 2, 1) == 0.0

    def test_clamp(self):
        np.testing.assert_allclose(
            clamp(np.array([-1.0, 0.5, 2.0]), 0.0, 1.0), [0.0, 0.5, 1.0]
        )


class TestRegion:
    def test_basic_properties(self, region):
        assert region.width == 32.0
        assert region.num_rows == 32
        assert region.num_sites_per_row == 32
        assert region.center == (16.0, 16.0)
        assert region.area == 1024.0

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            PlacementRegion(0, 0, 0, 10)

    def test_bad_row_height_rejected(self):
        with pytest.raises(ValueError):
            PlacementRegion(0, 0, 10, 10, row_height=0)

    def test_rows_tile_the_region(self, region):
        rows = region.rows()
        assert len(rows) == 32
        assert rows[0].y == 0.0
        assert rows[-1].y == 31.0
        assert rows[0].x_end == 32.0

    def test_row_index_and_back(self, region):
        idx = region.row_index(np.array([0.0, 1.5, 31.9]))
        np.testing.assert_array_equal(idx, [0, 1, 31])
        np.testing.assert_allclose(region.row_y(idx), [0.0, 1.0, 31.0])

    def test_row_index_clipped(self, region):
        assert region.row_index(-5.0) == 0
        assert region.row_index(100.0) == 31

    def test_snap_x(self, region):
        np.testing.assert_allclose(
            region.snap_x(np.array([0.4, 0.6, 31.7])), [0.0, 1.0, 32.0]
        )

    def test_clamp_cells(self, region):
        x, y = region.clamp_cells(
            np.array([-2.0, 30.0]), np.array([-1.0, 31.5]),
            np.array([2.0, 4.0]), np.array([1.0, 1.0]),
        )
        np.testing.assert_allclose(x, [0.0, 28.0])
        np.testing.assert_allclose(y, [0.0, 31.0])

    def test_contains(self, region):
        assert region.contains(0.0, 0.0, 32.0, 32.0)
        assert not region.contains(31.0, 0.0, 2.0, 1.0)

    def test_non_unit_rows(self):
        r = PlacementRegion(0, 0, 100, 120, row_height=12.0, site_width=2.0)
        assert r.num_rows == 10
        assert r.num_sites_per_row == 50


class TestBinGrid:
    def test_shape_and_sizes(self, grid):
        assert grid.shape == (16, 16)
        assert grid.bin_w == 2.0
        assert grid.bin_area == 4.0

    def test_invalid_grid(self, region):
        with pytest.raises(ValueError):
            BinGrid(region, 0, 4)

    def test_edges_and_centers(self, grid):
        assert grid.x_edges()[0] == 0.0
        assert grid.x_edges()[-1] == 32.0
        assert grid.x_centers()[0] == 1.0

    def test_bin_index(self, grid):
        np.testing.assert_array_equal(
            grid.bin_index_x(np.array([0.0, 1.9, 2.0, 31.9])), [0, 0, 1, 15]
        )

    def test_bin_index_clipped(self, grid):
        assert grid.bin_index_x(-3.0) == 0
        assert grid.bin_index_x(99.0) == 15

    def test_span_covers_cell(self, grid):
        lo, hi = grid.span_x(np.array([1.0]), np.array([5.0]))
        assert lo[0] == 0 and hi[0] == 3  # bins [0,2), [2,4), [4,6)

    def test_span_of_point_is_one_bin(self, grid):
        lo, hi = grid.span_x(np.array([2.0]), np.array([2.0]))
        assert hi[0] - lo[0] == 1

    def test_span_aligned_boundary(self, grid):
        lo, hi = grid.span_x(np.array([2.0]), np.array([4.0]))
        assert lo[0] == 1 and hi[0] == 2

    def test_zeros_shape(self, grid):
        assert grid.zeros().shape == (16, 16)

    def test_anisotropic_grid(self, region):
        g = BinGrid(region, 8, 16)
        assert g.bin_w == 4.0
        assert g.bin_h == 2.0
