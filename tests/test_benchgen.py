"""Tests for the synthetic benchmark generator and suites."""

import numpy as np
import pytest

from repro.benchgen import (
    CircuitSpec,
    dac2012_suite,
    generate,
    industrial_suite,
    ispd2005_suite,
    load_design,
    tiny_suite,
)
from repro.netlist import validate_db


class TestGenerator:
    @pytest.fixture(scope="class")
    def db(self):
        return generate(CircuitSpec(
            name="gen", num_cells=500, num_ios=32, utilization=0.65,
            macro_area_fraction=0.08, num_macros=4, seed=17,
        ))

    def test_valid_database(self, db):
        validate_db(db)

    def test_cell_count(self, db):
        assert db.num_movable == 500

    def test_utilization_close_to_spec(self, db):
        assert db.utilization == pytest.approx(0.65, abs=0.08)

    def test_macros_are_fixed_blocks(self, db):
        fixed = [i for i in db.fixed_index if db.cell_area[i] > 0]
        assert len(fixed) == 4
        for i in fixed:
            assert db.region.contains(
                db.cell_x[i], db.cell_y[i],
                db.cell_width[i], db.cell_height[i],
            )

    def test_macro_area_fraction(self, db):
        assert db.total_fixed_area == pytest.approx(
            0.08 * db.region.area, rel=0.35
        )

    def test_ios_on_periphery(self, db):
        pads = np.flatnonzero(db.terminal)
        assert pads.shape[0] == 32
        on_edge = (
            (db.cell_x[pads] == db.region.xl)
            | (db.cell_x[pads] == db.region.xh)
            | (db.cell_y[pads] == db.region.yl)
            | (db.cell_y[pads] == db.region.yh)
        )
        assert on_edge.all()

    def test_net_degrees_realistic(self, db):
        degrees = db.net_degree
        assert degrees.min() >= 2
        assert degrees.max() <= 26  # max_degree + possible pad/macro pin
        assert 2.5 < degrees.mean() < 6.0

    def test_deterministic(self):
        spec = CircuitSpec(name="det", num_cells=100, seed=3)
        a = generate(spec)
        b = generate(spec)
        np.testing.assert_allclose(a.cell_x, b.cell_x)
        np.testing.assert_array_equal(a.pin_net, b.pin_net)

    def test_seeds_differ(self):
        a = generate(CircuitSpec(name="s1", num_cells=100, seed=1))
        b = generate(CircuitSpec(name="s2", num_cells=100, seed=2))
        assert not np.allclose(a.cell_x, b.cell_x)

    def test_locality_shortens_placed_wirelength(self):
        """Clustered netlists place to lower HPWL than random ones: a
        real placer can exploit the generator's Rent-style locality."""
        from repro.core import GlobalPlacer, PlacementParams

        hpwl = {}
        for name, locality in (("loc", 0.95), ("rand", 0.0)):
            db = generate(CircuitSpec(name=name, num_cells=150, seed=5,
                                      num_ios=0, locality=locality))
            params = PlacementParams(max_global_iters=120, seed=5)
            result = GlobalPlacer(db, params).place()
            hpwl[name] = result.hpwl / db.num_pins
        assert hpwl["loc"] < hpwl["rand"]

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            CircuitSpec(name="bad", num_cells=1)
        with pytest.raises(ValueError):
            CircuitSpec(name="bad", num_cells=10, utilization=1.5)
        with pytest.raises(ValueError):
            CircuitSpec(name="bad", num_cells=10,
                        width_probs=(0.5, 0.1, 0.1, 0.1, 0.1))


class TestSuites:
    def test_ispd_suite_names_and_sizes(self):
        suite = ispd2005_suite()
        names = [s.name for s in suite]
        assert names[0] == "adaptec1"
        assert "bigblue4" in names
        sizes = {s.name: s.num_cells for s in suite}
        # relative ordering matches the paper's table
        assert sizes["bigblue4"] > sizes["bigblue3"] > sizes["adaptec1"]

    def test_industrial_scalability_design(self):
        suite = industrial_suite()
        sizes = {s.name: s.num_cells for s in suite}
        assert sizes["design6"] > 4 * sizes["design1"]

    def test_dac2012_suite(self):
        assert len(dac2012_suite()) == 10

    def test_tiny_suite_loads(self):
        for spec in tiny_suite():
            db = generate(spec)
            validate_db(db)

    def test_load_design_by_name(self):
        db = load_design("tiny1")
        assert db.name == "tiny1"

    def test_load_design_unknown(self):
        with pytest.raises(KeyError):
            load_design("nonexistent99")
