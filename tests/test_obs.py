"""Tests for the observability layer (repro.obs) and telemetry clocks.

Covers the unified-observability acceptance criteria:

- span nesting: ``profiled`` regions report to both the Profiler and
  the active Tracer, and child span intervals are contained in their
  parents',
- Chrome trace-event export round-trips (``ph``/``ts``/``dur``,
  process_name metadata) and stays strict JSON,
- Prometheus text exposition parses line-by-line (HELP/TYPE headers,
  cumulative histogram buckets),
- a ``workers=2`` sweep merges fleet counters bit-for-bit equal to the
  serial run of the same grid,
- lease staleness under clock skew: a backwards wall-clock jump
  neither steals a live same-host lease nor blocks dead-pid recovery
  (injectable clocks),
- ``EventLog`` reopens transparently after close and stamps monotonic
  ``dt`` alongside wall-clock ``t``,
- ``Profiler.table`` on an empty profiler and ``_fmt_bytes``.
"""

from __future__ import annotations

import json
import os
import re
import threading

import pytest

from repro.benchgen import CircuitSpec, generate
from repro.bookshelf import write_bookshelf
from repro.core import PlacementParams
from repro.obs import (
    DEFAULT_BUCKETS,
    IterationRecorder,
    MetricsRegistry,
    Span,
    Trace,
    Tracer,
    active_tracer,
    trace_span,
)
from repro.obs.recorders import (
    GP_ITERATIONS,
    GP_OVERFLOW,
    GP_RECOVERIES,
)
from repro.perf.profiler import Profiler, _fmt_bytes, profiled
from repro.runner import (
    DesignRef,
    JobSpec,
    ResultCache,
    RunStore,
    Scheduler,
)
from repro.runner.events import EventLog
from repro.runner.store import _HOSTNAME, RunLease, RunLocked


# ----------------------------------------------------------------------
# tracer


class TestTracer:
    def test_disabled_tracing_yields_none(self):
        assert active_tracer() is None
        with trace_span("anything", key=1) as span:
            assert span is None

    def test_spans_record_and_nest(self):
        with Tracer() as tracer:
            with trace_span("outer", design="d") as outer:
                assert outer == {"design": "d"}
                with trace_span("inner"):
                    pass
        spans = tracer.trace.spans
        assert [s.name for s in spans] == ["inner", "outer"]
        inner, outer = spans
        # interval containment is what Perfetto renders as nesting
        assert outer.ts <= inner.ts
        assert inner.ts + inner.dur <= outer.ts + outer.dur + 1e-6
        assert inner.pid == os.getpid()
        assert inner.tid == threading.get_ident()

    def test_span_attrs_mutable_inside_region(self):
        with Tracer() as tracer:
            with trace_span("gp.iteration", iteration=3) as span:
                span["hpwl"] = 123.0
        (span,) = tracer.trace.spans
        assert span.args == {"iteration": 3, "hpwl": 123.0}

    def test_tracers_nest_and_restore(self):
        with Tracer() as first:
            with Tracer() as second:
                with trace_span("x"):
                    pass
            assert active_tracer() is first
        assert active_tracer() is None
        assert len(second.trace) == 1
        assert len(first.trace) == 0

    def test_profiled_reports_to_both_profiler_and_tracer(self):
        with Tracer() as tracer:
            with Profiler() as prof:
                with profiled("wl.forward"):
                    pass
        assert "wl.forward" in prof.as_dict()
        assert [s.name for s in tracer.trace.spans] == ["wl.forward"]

    def test_profiled_reports_to_tracer_without_profiler(self):
        with Tracer() as tracer:
            with profiled("density.forward") as prof:
                assert prof is None
        assert [s.name for s in tracer.trace.spans] == ["density.forward"]


class TestChromeExport:
    def _trace(self) -> Trace:
        trace = Trace()
        trace.process_labels[1234] = "repro worker w0"
        trace.add(Span(name="stage.gp", ts=10.0, dur=5.0,
                       pid=1234, tid=1, args={"round": 0}))
        return trace

    def test_chrome_json_shape(self):
        data = json.loads(self._trace().to_chrome_json())
        events = data["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert meta == [{"ph": "M", "name": "process_name", "pid": 1234,
                         "tid": 0, "args": {"name": "repro worker w0"}}]
        (event,) = complete
        assert event["name"] == "stage.gp"
        assert event["ts"] == 10.0 and event["dur"] == 5.0
        assert event["pid"] == 1234 and event["tid"] == 1
        assert event["args"] == {"round": 0}

    def test_save_and_reload(self, tmp_path):
        path = self._trace().save(str(tmp_path / "sub" / "trace.json"))
        data = json.loads(open(path).read())
        assert data["displayTimeUnit"] == "ms"
        assert len(data["traceEvents"]) == 2

    def test_extend_dicts_round_trip(self):
        source = self._trace()
        merged = Trace()
        merged.extend_dicts(source.as_dicts(), source.process_labels)
        assert merged.as_dicts() == source.as_dicts()
        assert merged.process_labels == source.process_labels

    def test_live_spans_export_strict_json(self):
        with Tracer(process_label="main") as tracer:
            with trace_span("op", n=2):
                pass
        # json.loads with no NaN allowance: the export must be strict
        json.loads(tracer.trace.to_chrome_json(), parse_constant=lambda
                   name: pytest.fail(f"non-strict JSON constant {name}"))


# ----------------------------------------------------------------------
# metrics


class TestMetrics:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(2)
        reg.gauge("g").set(0.5)
        hist = reg.histogram("h", buckets=(1.0, 2.0))
        hist.observe(0.5)
        hist.observe(1.5)
        hist.observe(99.0)
        assert reg.value("c") == 3
        assert reg.value("g") == 0.5
        assert hist.cumulative() == [1, 2, 3]
        assert hist.count == 3

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_labels_are_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("runs", status="complete").inc(2)
        reg.counter("runs", status="failed").inc()
        assert reg.value("runs", status="complete") == 2
        assert reg.value("runs", status="failed") == 1
        assert reg.value("runs", status="timeout") is None

    def test_merge_adds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg, n in ((a, 1), (b, 2)):
            reg.counter("c").inc(n)
            reg.histogram("h", buckets=(1.0,)).observe(0.5)
            reg.gauge("g").set(n)
        a.merge(b.as_dict())  # the worker wire format: a JSON dict
        assert a.value("c") == 3
        assert a.histogram("h", buckets=(1.0,)).count == 2
        assert a.value("g") == 2  # gauges: last writer wins

    def test_merge_is_order_independent_for_counters(self):
        parts = []
        for n in (1, 2, 3):
            reg = MetricsRegistry()
            reg.counter("c").inc(n)
            parts.append(reg.as_dict())
        fwd, rev = MetricsRegistry(), MetricsRegistry()
        for part in parts:
            fwd.merge(part)
        for part in reversed(parts):
            rev.merge(part)
        assert fwd.to_prometheus() == rev.to_prometheus()

    def test_histogram_bucket_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b.histogram("h", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_prometheus_text_parses_line_by_line(self):
        reg = MetricsRegistry()
        reg.counter("repro_runs_total", help='job "outcomes"',
                    status="complete").inc(2)
        reg.gauge("repro_gp_overflow").set(0.15)
        reg.histogram("repro_gp_iteration_seconds",
                      buckets=(0.1, 1.0)).observe(0.05)
        text = reg.to_prometheus()
        assert text.endswith("\n")
        sample = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*'           # metric name
            r'(\{[a-zA-Z_]+="(?:[^"\\]|\\.)*"'     # first label
            r'(,[a-zA-Z_]+="(?:[^"\\]|\\.)*")*\})?' # more labels
            r' -?[0-9.e+-]+$')                     # value
        comment = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$")
        for line in text.splitlines():
            assert sample.match(line) or comment.match(line), line
        assert "# TYPE repro_runs_total counter" in text
        assert 'repro_runs_total{status="complete"} 2' in text
        assert ('repro_gp_iteration_seconds_bucket{le="0.1"} 1'
                in text)
        assert ('repro_gp_iteration_seconds_bucket{le="+Inf"} 1'
                in text)
        assert "repro_gp_iteration_seconds_count 1" in text

    def test_iteration_recorder(self):
        reg = MetricsRegistry()
        ticks = iter([0.0, 1.0, 1.5])
        recorder = IterationRecorder(reg, monotonic=lambda: next(ticks))
        recorder(None, {"iteration": 1, "hpwl": 100.0,
                        "overflow": 0.5, "recoveries": 0})
        recorder(None, {"iteration": 2, "hpwl": 90.0,
                        "overflow": 0.4, "recoveries": 1})
        assert reg.value(GP_ITERATIONS) == 2
        assert reg.value(GP_OVERFLOW) == 0.4
        assert reg.value(GP_RECOVERIES) == 1

    def test_registry_is_always_truthy(self):
        assert MetricsRegistry()
        assert len(MetricsRegistry()) == 0


# ----------------------------------------------------------------------
# fleet equivalence (the workers=2 acceptance criterion)


@pytest.fixture(scope="module")
def aux_design(tmp_path_factory):
    directory = tmp_path_factory.mktemp("obsdesign")
    db = generate(CircuitSpec(name="obstest", num_cells=60,
                              num_ios=8, utilization=0.6, seed=5))
    return str(write_bookshelf(db, str(directory)))


def _sweep_base(aux: str) -> JobSpec:
    return JobSpec(
        design=DesignRef.parse(aux),
        params=PlacementParams(max_global_iters=30, min_global_iters=5),
        stages=("gp",),
    )


def _counter_lines(registry: MetricsRegistry) -> list:
    """Counter-type sample lines only: integer-valued, so bit-for-bit
    comparable across execution orders (histogram *sums* are float
    accumulations whose merge order differs between serial and pool)."""
    text = registry.to_prometheus()
    counters = set()
    for line in text.splitlines():
        match = re.match(r"^# TYPE (\S+) counter$", line)
        if match:
            counters.add(match.group(1))
    return sorted(
        line for line in text.splitlines()
        if not line.startswith("#")
        and re.match(r"^(\w+)", line).group(1) in counters
    )


class TestFleetMetrics:
    def test_workers2_sweep_counters_match_serial(self, tmp_path,
                                                  aux_design):
        grid = {"seed": [1, 2]}

        serial_store = RunStore(str(tmp_path / "serial"))
        serial_reg = MetricsRegistry()
        serial = Scheduler(serial_store,
                           cache=ResultCache(serial_store),
                           registry=serial_reg, tracer=Tracer())
        serial.submit_sweep(_sweep_base(aux_design), grid)
        assert all(o.ok for o in serial.run())

        pool_store = RunStore(str(tmp_path / "pool"))
        pool_reg = MetricsRegistry()
        pool_tracer = Tracer(process_label="dispatcher")
        pool = Scheduler(pool_store, cache=ResultCache(pool_store),
                         workers=2, registry=pool_reg,
                         tracer=pool_tracer)
        pool.submit_sweep(_sweep_base(aux_design), grid)
        assert all(o.ok for o in pool.run())

        serial_counters = _counter_lines(serial_reg)
        assert serial_counters  # iterations, misses, runs at least
        assert serial_counters == _counter_lines(pool_reg)
        assert pool_reg.value("repro_runs_total",
                              status="complete") == 2

        # the fleet trace carries spans from both worker processes,
        # labelled, with the nested GP structure intact
        pids = {s.pid for s in pool_tracer.trace.spans}
        assert len(pids) == 2  # one span lane per worker process
        labels = set(pool_tracer.trace.process_labels.values())
        assert {"repro worker w0", "repro worker w1"} <= labels
        names = {s.name for s in pool_tracer.trace.spans}
        assert {"job", "design.load", "stage.gp",
                "gp.iteration"} <= names
        data = json.loads(pool_tracer.trace.to_chrome_json())
        assert any(e["ph"] == "M" for e in data["traceEvents"])

    def test_per_run_obs_artifacts_persist(self, tmp_path, aux_design):
        store = RunStore(str(tmp_path / "store"))
        scheduler = Scheduler(store, registry=MetricsRegistry(),
                              tracer=Tracer())
        scheduler.submit(_sweep_base(aux_design))
        (outcome,) = scheduler.run()
        assert outcome.ok
        prom = os.path.join(outcome.directory, "metrics.prom")
        dump = os.path.join(outcome.directory, "obs_metrics.json")
        trace = os.path.join(outcome.directory, "trace.json")
        assert os.path.exists(prom) and os.path.exists(dump)
        assert "repro_gp_iterations_total" in open(prom).read()
        merged = MetricsRegistry().merge(json.loads(open(dump).read()))
        assert merged.value("repro_gp_iterations_total") > 0
        spans = json.loads(open(trace).read())["traceEvents"]
        assert any(e["name"] == "gp.iteration" for e in spans)


# ----------------------------------------------------------------------
# lease clock skew (injectable clocks)


class _FakeClock:
    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


class TestLeaseClockSkew:
    def test_backwards_jump_does_not_steal_live_lease(self, tmp_path):
        path = str(tmp_path / "lock.json")
        owner = RunLease(path, worker="w0", lease_timeout=5.0)
        owner.acquire()
        clock = _FakeClock(1e9)  # far in this host's past or future —
        contender = RunLease(    # pid-liveness must decide regardless
            path, worker="w1", lease_timeout=5.0, clock=clock)
        with pytest.raises(RunLocked):
            contender.acquire()
        clock.now = 0.0  # an extreme backwards step changes nothing
        with pytest.raises(RunLocked):
            contender.acquire()
        owner.release()

    def test_dead_pid_recovers_without_waiting_out_heartbeat(self,
                                                             tmp_path):
        path = str(tmp_path / "lock.json")
        clock = _FakeClock(1000.0)
        # forge a same-host lease whose heartbeat is *in the future*
        # (the writer's clock was ahead) held by a dead pid
        with open(path, "w") as handle:
            json.dump({"pid": 2 ** 22 + 12345, "host": _HOSTNAME,
                       "worker": "w9", "acquired": 5000.0,
                       "heartbeat": 5000.0}, handle)
        contender = RunLease(path, worker="w1", lease_timeout=3600.0,
                             clock=clock,
                             pid_alive=lambda pid: False)
        contender.acquire()  # no RunLocked, no timeout wait
        contender.release()

    def test_cross_host_future_heartbeat_reads_fresh(self, tmp_path):
        path = str(tmp_path / "lock.json")
        clock = _FakeClock(1000.0)
        lease = RunLease(path, lease_timeout=5.0, clock=clock)
        info = {"pid": 1, "host": "elsewhere", "heartbeat": 2000.0}
        # negative age clamps to 0: a future heartbeat is fresh ...
        assert not lease.is_stale(info)
        # ... and ages out normally once real time passes
        clock.now = 2006.0
        assert lease.is_stale(info)

    def test_refresh_rate_limit_on_monotonic_clock(self, tmp_path):
        path = str(tmp_path / "lock.json")
        wall = _FakeClock(1000.0)
        mono = _FakeClock(50.0)
        lease = RunLease(path, refresh_every=10.0, clock=wall,
                         monotonic_clock=mono)
        lease.acquire()
        wall.now = 5000.0  # huge wall step; monotonic barely moved
        mono.now = 51.0
        lease.refresh()
        assert json.loads(open(path).read())["heartbeat"] == 1000.0
        mono.now = 61.0  # past the rate limit: rewrite happens
        lease.refresh()
        assert json.loads(open(path).read())["heartbeat"] == 5000.0
        lease.release()


# ----------------------------------------------------------------------
# event log clocks


class TestEventLog:
    def test_emit_after_close_reopens_and_appends(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLog(path)
        log.emit("run_start")
        log.close()
        record = log.emit("late_event", detail=1)  # must not raise
        assert record["type"] == "late_event"
        lines = [json.loads(line) for line in open(path)]
        assert [r["type"] for r in lines] == ["run_start", "late_event"]

    def test_records_carry_wall_and_monotonic_stamps(self, tmp_path):
        wall = _FakeClock(500.0)
        mono = _FakeClock(100.0)
        log = EventLog(str(tmp_path / "events.jsonl"),
                       clock=wall, monotonic_clock=mono)
        mono.now = 101.5
        wall.now = 1.0  # the wall clock stepped far backwards
        record = log.emit("iteration")
        assert record["t"] == 1.0
        assert record["dt"] == 1.5  # deltas survive the wall step
        log.close()


# ----------------------------------------------------------------------
# profiler formatting fixes


class TestProfilerFormatting:
    def test_empty_table_says_so(self):
        prof = Profiler()
        table = prof.table(title="empty")
        assert "(no ops recorded)" in table
        assert "%" not in table.split("\n(no ops")[-1]

    def test_fmt_bytes(self):
        assert _fmt_bytes(0) == "0B"
        assert _fmt_bytes(512) == "512B"
        assert _fmt_bytes(2048) == "2.0KB"
        assert _fmt_bytes(3 * 1024 ** 2) == "3.0MB"
        assert _fmt_bytes(5 * 1024 ** 3) == "5.0GB"
        assert _fmt_bytes(-2048) == "-2.0KB"

    def test_fmt_bytes_is_pure(self):
        for _ in range(3):
            assert _fmt_bytes(1536) == "1.5KB"
