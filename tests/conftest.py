"""Shared fixtures: small deterministic designs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.benchgen import CircuitSpec, generate
from repro.geometry import BinGrid, PlacementRegion
from repro.netlist import CellKind, Netlist


@pytest.fixture
def region():
    return PlacementRegion(0.0, 0.0, 32.0, 32.0, row_height=1.0,
                           site_width=1.0)


@pytest.fixture
def small_db(region):
    """A 40-cell random design with pads, suitable for gradient checks."""
    rng = np.random.default_rng(1)
    netlist = Netlist("small")
    n = 40
    for i in range(n):
        netlist.add_cell(f"c{i}", 1.0 + float(rng.integers(0, 3)), 1.0,
                         CellKind.MOVABLE,
                         x=float(rng.uniform(2, 26)),
                         y=float(rng.integers(2, 28)))
    netlist.add_cell("pad0", 0.0, 0.0, CellKind.TERMINAL, x=0.0, y=16.0)
    netlist.add_cell("pad1", 0.0, 0.0, CellKind.TERMINAL, x=32.0, y=16.0)
    for e in range(30):
        degree = int(rng.integers(2, 6))
        cells = rng.choice(n, size=degree, replace=False)
        pins = [
            (int(c), float(rng.uniform(0, 1)), float(rng.uniform(0, 1)))
            for c in cells
        ]
        if e % 7 == 0:
            pins.append((n + e % 2, 0.0, 0.0))
        netlist.add_net(f"e{e}", pins)
    return netlist.compile(region)


@pytest.fixture
def blocked_db(region):
    """A design with a fixed macro blockage in the middle."""
    rng = np.random.default_rng(3)
    netlist = Netlist("blocked")
    n = 30
    for i in range(n):
        netlist.add_cell(f"c{i}", 2.0, 1.0, CellKind.MOVABLE,
                         x=float(rng.uniform(1, 28)),
                         y=float(rng.integers(1, 30)))
    netlist.add_cell("macro", 8.0, 8.0, CellKind.FIXED, x=12.0, y=12.0)
    for e in range(20):
        cells = rng.choice(n, size=int(rng.integers(2, 5)), replace=False)
        netlist.add_net(
            f"e{e}", [(int(c), 1.0, 0.5) for c in cells]
        )
    return netlist.compile(region)


@pytest.fixture
def tiny_design():
    """A generated ~300-cell circuit (integration-scale)."""
    return generate(CircuitSpec(
        name="tiny", num_cells=300, num_ios=16, utilization=0.6,
        macro_area_fraction=0.04, num_macros=2, seed=11,
    ))


@pytest.fixture
def grid(region):
    return BinGrid(region, 16, 16)


def make_chain_db(num_cells: int = 5, spacing: float = 4.0):
    """Cells in a horizontal chain: c0 - c1 - ... - c_{k-1}."""
    region = PlacementRegion(0, 0, max(spacing * (num_cells + 2), 16), 16)
    netlist = Netlist("chain")
    for i in range(num_cells):
        netlist.add_cell(f"c{i}", 1.0, 1.0, CellKind.MOVABLE,
                         x=1.0 + i * spacing, y=8.0)
    for i in range(num_cells - 1):
        netlist.add_net(f"n{i}", [(i, 0.5, 0.5), (i + 1, 0.5, 0.5)])
    return netlist.compile(region)
