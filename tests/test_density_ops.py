"""Tests for density map scatter/gather, Poisson solver, density op."""

import numpy as np
import pytest

from repro.geometry import BinGrid, PlacementRegion
from repro.netlist import CellKind, Netlist
from repro.nn import Parameter, Tensor
from repro.ops.density_map import (
    STRATEGIES,
    cell_bin_spans,
    gather_field,
    scatter_density,
)
from repro.ops.density_op import ElectricDensity, stretch_sizes
from repro.ops.density_overflow import density_overflow
from repro.ops.electrostatics import PoissonSolver


@pytest.fixture
def rng():
    return np.random.default_rng(3)


def random_cells(rng, n, region):
    xl = rng.uniform(region.xl, region.xh - 4, size=n)
    yl = rng.uniform(region.yl, region.yh - 4, size=n)
    w = rng.uniform(0.5, 4.0, size=n)
    h = rng.uniform(0.5, 4.0, size=n)
    return xl, yl, w, h


class TestScatter:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_mass_conservation(self, rng, region, grid, strategy):
        xl, yl, w, h = random_cells(rng, 50, region)
        out = scatter_density(grid, xl, yl, w, h, np.ones(50), strategy)
        np.testing.assert_allclose(out.sum(), (w * h).sum(), rtol=1e-10)

    @pytest.mark.parametrize("strategy", ["sorted", "stamp"])
    def test_strategies_match_naive(self, rng, region, grid, strategy):
        xl, yl, w, h = random_cells(rng, 50, region)
        weight = rng.uniform(0.5, 2.0, size=50)
        ref = scatter_density(grid, xl, yl, w, h, weight, "naive")
        out = scatter_density(grid, xl, yl, w, h, weight, strategy)
        np.testing.assert_allclose(out, ref, atol=1e-10)

    def test_single_cell_in_single_bin(self, region, grid):
        out = scatter_density(
            grid, np.array([2.1]), np.array([2.1]),
            np.array([1.0]), np.array([1.0]), np.array([1.0]),
        )
        assert out[1, 1] == pytest.approx(1.0)
        assert out.sum() == pytest.approx(1.0)

    def test_cell_split_across_bins(self, region, grid):
        # cell [1.5, 2.5] x [0, 1] splits evenly between bins 0 and 1
        out = scatter_density(
            grid, np.array([1.5]), np.array([0.0]),
            np.array([1.0]), np.array([1.0]), np.array([1.0]),
        )
        assert out[0, 0] == pytest.approx(0.5)
        assert out[1, 0] == pytest.approx(0.5)

    def test_weight_scales_contribution(self, region, grid):
        out = scatter_density(
            grid, np.array([2.0]), np.array([2.0]),
            np.array([1.0]), np.array([1.0]), np.array([0.25]),
        )
        assert out.sum() == pytest.approx(0.25)

    def test_macro_handled_by_fallback(self, region):
        """A cell spanning more bins than the vectorized limit."""
        grid = BinGrid(region, 16, 16)
        out = scatter_density(
            grid, np.array([0.0]), np.array([0.0]),
            np.array([30.0]), np.array([30.0]), np.array([1.0]),
            strategy="stamp",
        )
        assert out.sum() == pytest.approx(900.0)

    def test_empty_input(self, grid):
        out = scatter_density(
            grid, np.empty(0), np.empty(0), np.empty(0), np.empty(0),
            np.empty(0),
        )
        assert out.sum() == 0.0

    def test_unknown_strategy(self, grid):
        with pytest.raises(ValueError):
            scatter_density(
                grid, np.array([1.0]), np.array([1.0]),
                np.array([1.0]), np.array([1.0]), np.array([1.0]),
                strategy="gpu",
            )

    def test_accumulates_into_out(self, region, grid):
        out = grid.zeros()
        out[0, 0] = 5.0
        scatter_density(
            grid, np.array([2.0]), np.array([2.0]),
            np.array([1.0]), np.array([1.0]), np.array([1.0]), out=out,
        )
        assert out[0, 0] == 5.0
        assert out.sum() == pytest.approx(6.0)


class TestGather:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_uniform_field_returns_area(self, rng, region, grid, strategy):
        xl, yl, w, h = random_cells(rng, 30, region)
        field = np.ones(grid.shape)
        out = gather_field(grid, field, xl, yl, w, h, np.ones(30), strategy)
        np.testing.assert_allclose(out, w * h, rtol=1e-9)

    @pytest.mark.parametrize("strategy", ["sorted", "stamp"])
    def test_strategies_match_naive(self, rng, region, grid, strategy):
        xl, yl, w, h = random_cells(rng, 40, region)
        field = rng.normal(size=grid.shape)
        weight = rng.uniform(0.5, 2.0, size=40)
        ref = gather_field(grid, field, xl, yl, w, h, weight, "naive")
        out = gather_field(grid, field, xl, yl, w, h, weight, strategy)
        np.testing.assert_allclose(out, ref, atol=1e-9)

    def test_scatter_gather_adjoint(self, rng, region, grid):
        """<scatter(q), f> == <q_area_weighted, gather(f)> (bipartite
        forward/backward of Fig. 5 are transposes)."""
        xl, yl, w, h = random_cells(rng, 25, region)
        weight = rng.uniform(0.5, 2.0, size=25)
        field = rng.normal(size=grid.shape)
        rho = scatter_density(grid, xl, yl, w, h, weight)
        lhs = float((rho * field).sum())
        rhs = float(gather_field(grid, field, xl, yl, w, h, weight).sum())
        assert lhs == pytest.approx(rhs, rel=1e-9)


class TestSpans:
    def test_span_counts(self, grid):
        ix0, sx, iy0, sy = cell_bin_spans(
            grid, np.array([1.0]), np.array([1.0]),
            np.array([3.0]), np.array([1.0]),
        )
        assert sx[0] == 2  # [1, 4] covers bins [0,2) and [2,4)
        assert sy[0] == 1


class TestPoisson:
    def test_eigenfunction_exact(self, region):
        grid = BinGrid(region, 32, 32)
        solver = PoissonSolver(grid)
        i = np.arange(32)[:, None]
        j = np.arange(32)[None, :]
        u, v = 3, 5
        wu = np.pi * u / 32 / grid.bin_w
        wv = np.pi * v / 32 / grid.bin_h
        rho = np.cos(np.pi * u * (i + 0.5) / 32) * \
            np.cos(np.pi * v * (j + 0.5) / 32)
        sol = solver.solve(rho)
        np.testing.assert_allclose(
            sol.potential, rho / (wu ** 2 + wv ** 2), atol=1e-10
        )

    def test_field_is_negative_gradient(self, region):
        grid = BinGrid(region, 32, 32)
        solver = PoissonSolver(grid)
        i = np.arange(32)[:, None]
        j = np.arange(32)[None, :]
        rho = np.cos(np.pi * 2 * (i + 0.5) / 32) * \
            np.cos(np.pi * 1 * (j + 0.5) / 32)
        sol = solver.solve(rho)
        # central finite difference of psi vs field (interior bins);
        # the FD of a cosine carries a sinc(w*dx) factor, so allow ~1%
        grad_x = (sol.potential[2:, :] - sol.potential[:-2, :]) / \
            (2 * grid.bin_w)
        np.testing.assert_allclose(
            sol.field_x[1:-1, :], -grad_x, atol=0.02 * np.abs(grad_x).max()
        )

    def test_dc_free_output(self, rng, region):
        grid = BinGrid(region, 16, 16)
        rho = rng.uniform(0, 1, size=(16, 16))
        sol = PoissonSolver(grid).solve(rho)
        assert abs(sol.potential.mean()) < 1e-9

    def test_uniform_density_no_field(self, region):
        grid = BinGrid(region, 16, 16)
        sol = PoissonSolver(grid).solve(np.full((16, 16), 3.0))
        assert np.abs(sol.field_x).max() < 1e-9
        assert np.abs(sol.field_y).max() < 1e-9

    def test_impl_variants_agree(self, rng, region):
        grid = BinGrid(region, 16, 16)
        rho = rng.normal(size=(16, 16))
        ref = PoissonSolver(grid, impl="naive").solve(rho)
        for impl in ("2n", "n", "2d"):
            sol = PoissonSolver(grid, impl=impl).solve(rho)
            np.testing.assert_allclose(sol.potential, ref.potential,
                                       atol=1e-8)
            np.testing.assert_allclose(sol.field_x, ref.field_x, atol=1e-8)

    def test_shape_mismatch_rejected(self, region):
        grid = BinGrid(region, 16, 16)
        with pytest.raises(ValueError):
            PoissonSolver(grid).solve(np.zeros((8, 8)))


class TestStretch:
    def test_small_cells_stretched(self, grid):
        w = np.array([0.5])
        h = np.array([0.5])
        sw, sh, scale = stretch_sizes(w, h, grid)
        assert sw[0] == pytest.approx(np.sqrt(2) * grid.bin_w)
        assert scale[0] == pytest.approx(0.25 / (sw[0] * sh[0]))

    def test_large_cells_untouched(self, grid):
        w = np.array([10.0])
        h = np.array([10.0])
        sw, sh, scale = stretch_sizes(w, h, grid)
        assert sw[0] == 10.0
        assert scale[0] == 1.0

    def test_charge_preserved(self, grid):
        w = np.array([0.3, 5.0])
        h = np.array([1.0, 2.0])
        sw, sh, scale = stretch_sizes(w, h, grid)
        np.testing.assert_allclose(sw * sh * scale, w * h)


def two_cell_db(x_a=14.0, x_b=15.0):
    region = PlacementRegion(0, 0, 32, 32)
    netlist = Netlist("two")
    netlist.add_cell("a", 4.0, 4.0, CellKind.MOVABLE, x=x_a, y=14.0)
    netlist.add_cell("b", 4.0, 4.0, CellKind.MOVABLE, x=x_b, y=14.0)
    return netlist.compile(region)


class TestElectricDensity:
    def test_overlapping_cells_pushed_apart(self, grid):
        db = two_cell_db()
        op = ElectricDensity(db, BinGrid(db.region, 16, 16))
        p = Parameter(np.concatenate([db.cell_x, db.cell_y]))
        op(p).backward()
        # descent (-grad) moves a left and b right
        assert p.grad[0] > 0
        assert p.grad[1] < 0

    def test_energy_decreases_when_separated(self):
        db = two_cell_db()
        grid = BinGrid(db.region, 16, 16)
        op = ElectricDensity(db, grid)
        close = op(
            Tensor(np.array([14.0, 15.0, 14.0, 14.0]))
        ).item()
        far = op(
            Tensor(np.array([4.0, 24.0, 14.0, 14.0]))
        ).item()
        assert far < close

    def test_fixed_cells_pre_stamped(self, blocked_db):
        grid = BinGrid(blocked_db.region, 16, 16)
        op = ElectricDensity(blocked_db, grid)
        assert op.fixed_density.sum() == pytest.approx(64.0)  # 8x8 macro

    def test_fillers_participate(self):
        db = two_cell_db()
        grid = BinGrid(db.region, 16, 16)
        op = ElectricDensity(db, grid, num_fillers=3,
                             filler_width=2.0, filler_height=1.0)
        n = db.num_cells + 3
        pos = np.full(2 * n, 10.0)
        p = Parameter(pos)
        op(p).backward()
        assert p.grad.shape == (2 * n,)
        # fillers stacked on the cells feel a force too
        assert np.abs(p.grad[2:5]).max() > 0

    def test_short_pos_vector_rejected(self):
        db = two_cell_db()
        op = ElectricDensity(db, BinGrid(db.region, 16, 16),
                             num_fillers=5, filler_width=1.0,
                             filler_height=1.0)
        with pytest.raises(ValueError):
            op(Tensor(np.zeros(2 * db.num_cells)))

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_strategies_agree_on_energy(self, strategy):
        db = two_cell_db()
        grid = BinGrid(db.region, 16, 16)
        pos = Tensor(np.concatenate([db.cell_x, db.cell_y]))
        ref = ElectricDensity(db, grid, strategy="naive")(pos).item()
        out = ElectricDensity(db, grid, strategy=strategy)(pos).item()
        assert out == pytest.approx(ref, rel=1e-9)


class TestOverflow:
    def test_zero_when_spread(self, region, grid):
        netlist = Netlist("spread")
        for i in range(4):
            netlist.add_cell(f"c{i}", 2.0, 1.0, CellKind.MOVABLE,
                             x=float(8 * i), y=float(8 * i))
        netlist.add_net("n", [(0, 0, 0), (1, 0, 0)])
        db = netlist.compile(region)
        assert density_overflow(db, grid) == pytest.approx(0.0)

    def test_positive_when_stacked(self, region, grid):
        netlist = Netlist("stacked")
        for i in range(8):
            netlist.add_cell(f"c{i}", 2.0, 2.0, CellKind.MOVABLE,
                             x=10.0, y=10.0)
        netlist.add_net("n", [(0, 0, 0), (1, 0, 0)])
        db = netlist.compile(region)
        overflow = density_overflow(db, grid)
        assert overflow > 0.5

    def test_target_density_loosens(self, region, grid):
        netlist = Netlist("half")
        # two cells exactly overlapping one bin: density 2x bin area
        netlist.add_cell("a", 2.0, 2.0, CellKind.MOVABLE, x=2.0, y=2.0)
        netlist.add_cell("b", 2.0, 2.0, CellKind.MOVABLE, x=2.0, y=2.0)
        netlist.add_net("n", [(0, 0, 0), (1, 0, 0)])
        db = netlist.compile(region)
        tight = density_overflow(db, grid, target_density=0.5)
        loose = density_overflow(db, grid, target_density=1.0)
        assert tight > loose

    def test_fixed_cells_consume_capacity(self, blocked_db):
        grid = BinGrid(blocked_db.region, 16, 16)
        x, y = blocked_db.positions()
        movable = blocked_db.movable_index
        # pile all movable cells onto the macro
        x[movable] = 14.0
        y[movable] = 14.0
        blocked = density_overflow(blocked_db, grid, x, y)
        # same pile in open space
        x[movable] = 2.0
        y[movable] = 2.0
        open_space = density_overflow(blocked_db, grid, x, y)
        assert blocked > open_space
