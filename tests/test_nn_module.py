"""Tests for Module containers and the custom Function API."""

import numpy as np
import pytest

from repro.nn import Function, Module, Parameter, Tensor


class _Scale(Function):
    def forward(self, a, *, factor=2.0):
        self.save_for_backward(factor)
        return a * factor

    def backward(self, grad_output):
        (factor,) = self.saved_values
        return (grad_output * factor,)


class TestFunctionAPI:
    def test_forward_value(self):
        out = _Scale.apply(Tensor([1.0, 2.0]), factor=3.0)
        np.testing.assert_allclose(out.numpy(), [3.0, 6.0])

    def test_backward_through_custom_op(self):
        p = Parameter([1.0, 2.0])
        _Scale.apply(p, factor=3.0).sum().backward()
        np.testing.assert_allclose(p.grad, [3.0, 3.0])

    def test_no_tape_for_constant_input(self):
        out = _Scale.apply(Tensor([1.0]))
        assert out._creator is None

    def test_mixed_tensor_and_plain_inputs(self):
        class _AddConst(Function):
            def forward(self, a, c):
                return a + c

            def backward(self, grad_output):
                return (grad_output,)

        p = Parameter([1.0])
        out = _AddConst.apply(p, 5.0)
        assert out.numpy()[0] == 6.0
        out.sum().backward()
        assert p.grad[0] == 1.0

    def test_wrong_grad_count_raises(self):
        class _Bad(Function):
            def forward(self, a, b):
                return a + b

            def backward(self, grad_output):
                return (grad_output,)  # should be two

        p = Parameter([1.0])
        q = Parameter([2.0])
        out = _Bad.apply(p, q)
        with pytest.raises(RuntimeError):
            out.sum().backward()


class TestModule:
    def test_parameters_discovered(self):
        class M(Module):
            def __init__(self):
                self.a = Parameter([1.0])
                self.b = Parameter([2.0])

        assert len(list(M().parameters())) == 2

    def test_nested_modules(self):
        class Inner(Module):
            def __init__(self):
                self.w = Parameter([1.0])

        class Outer(Module):
            def __init__(self):
                self.inner = Inner()
                self.v = Parameter([2.0])

        assert len(list(Outer().parameters())) == 2

    def test_parameters_in_lists(self):
        class M(Module):
            def __init__(self):
                self.items = [Parameter([1.0]), Parameter([2.0])]

        assert len(list(M().parameters())) == 2

    def test_shared_parameter_yielded_once(self):
        shared = Parameter([1.0])

        class M(Module):
            def __init__(self):
                self.a = shared
                self.b = shared

        assert len(list(M().parameters())) == 1

    def test_zero_grad(self):
        class M(Module):
            def __init__(self):
                self.w = Parameter([1.0])

        m = M()
        m.w.sum().backward()
        m.zero_grad()
        assert m.w.grad is None

    def test_call_dispatches_to_forward(self):
        class Doubler(Module):
            def forward(self, t):
                return t * 2.0

        out = Doubler()(Tensor([2.0]))
        assert out.numpy()[0] == 4.0

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(Tensor([1.0]))
