"""Tests for the multi-process worker pool (repro.runner.worker).

Covers the concurrency acceptance criteria:

- a 2x2 sweep under ``workers=4`` produces a run store equivalent to
  the serial run — identical job hashes, byte-identical specs and
  final positions, identical metrics (wall-clock runtime excluded),
- SIGKILLing a worker mid-GP leaves the store uncorrupted: the
  orphaned run's lease is recovered, the job retries from its
  checkpoint on a fresh worker, and the full sweep completes with
  bit-exact results,
- worker/pid telemetry and submission-order outcome merging.

These tests spawn real child processes (placement jobs are tiny so the
interpreter startup dominates); everything cheap-to-check lives in
``test_runner.py`` instead.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.benchgen import CircuitSpec, generate
from repro.bookshelf import write_bookshelf
from repro.core import PlacementParams
from repro.runner import (
    DesignRef,
    JobSpec,
    ResultCache,
    RunStore,
    Scheduler,
    read_events,
)
from repro.runner.worker import KILL_SWITCH_ENV, WorkerTask, outcome_payload


@pytest.fixture(scope="module")
def aux_design(tmp_path_factory):
    """A tiny Bookshelf design on disk that spawn children can load."""
    directory = tmp_path_factory.mktemp("design")
    db = generate(CircuitSpec(name="workertest", num_cells=60,
                              num_ios=8, utilization=0.6, seed=5))
    return str(write_bookshelf(db, str(directory)))


def sweep_base(aux: str, max_iters: int = 40) -> JobSpec:
    return JobSpec(
        design=DesignRef.parse(aux),
        params=PlacementParams(max_global_iters=max_iters,
                               min_global_iters=5),
        stages=("gp",),
    )


GRID = {"seed": [1, 2], "target_density": [0.85, 1.0]}


def _comparable_metrics(path: str) -> dict:
    metrics = json.loads(open(path).read())
    metrics.pop("runtime")  # wall clock legitimately differs
    return metrics


class TestParallelEquivalence:
    def test_2x2_sweep_workers4_matches_serial_store(self, tmp_path,
                                                     aux_design):
        serial_store = RunStore(str(tmp_path / "serial"))
        serial = Scheduler(serial_store, cache=ResultCache(serial_store))
        serial.submit_sweep(sweep_base(aux_design), GRID)
        serial_outcomes = serial.run()
        assert all(o.ok for o in serial_outcomes)

        pool_store = RunStore(str(tmp_path / "pool"))
        pool = Scheduler(pool_store, cache=ResultCache(pool_store),
                         workers=4)
        pool.submit_sweep(sweep_base(aux_design), GRID)
        pool_outcomes = pool.run()
        assert all(o.ok for o in pool_outcomes)
        assert not any(o.cached for o in pool_outcomes)

        # outcomes merge in submission order: hash sequences align
        assert [o.job_hash for o in pool_outcomes] \
            == [o.job_hash for o in serial_outcomes]

        for serial_out, pool_out in zip(serial_outcomes, pool_outcomes):
            sdir, pdir = serial_out.directory, pool_out.directory
            # byte-identical spec and final positions
            assert open(os.path.join(sdir, "spec.json"), "rb").read() \
                == open(os.path.join(pdir, "spec.json"), "rb").read()
            name = "workertest.pl"
            assert open(os.path.join(sdir, "result", name), "rb").read() \
                == open(os.path.join(pdir, "result", name), "rb").read()
            # identical metrics modulo wall clock
            assert _comparable_metrics(
                os.path.join(sdir, "metrics.json")) \
                == _comparable_metrics(os.path.join(pdir, "metrics.json"))
            # no leftover leases
            assert not os.path.exists(os.path.join(pdir, "lock.json"))

        # run_start telemetry identifies the executing worker + pid
        parent = os.getpid()
        for outcome in pool_outcomes:
            starts = list(read_events(
                os.path.join(outcome.directory, "events.jsonl"),
                type="run_start"))
            assert starts
            assert starts[-1]["worker"].startswith("w")
            assert starts[-1]["pid"] != parent  # ran out-of-process

    def test_parallel_rerun_is_all_cache_hits(self, tmp_path,
                                              aux_design):
        store = RunStore(str(tmp_path / "store"))
        first = Scheduler(store, cache=ResultCache(store), workers=2)
        first.submit_sweep(sweep_base(aux_design), {"seed": [1, 2]})
        assert all(o.ok for o in first.run())

        cache = ResultCache(store)
        again = Scheduler(store, cache=cache, workers=2)
        again.submit_sweep(sweep_base(aux_design), {"seed": [1, 2]})
        outcomes = again.run()
        assert all(o.ok and o.cached for o in outcomes)
        # child-side hits fold into the dispatcher's cache stats
        assert cache.stats.hits == 2 and cache.stats.misses == 0


class TestWorkerDeath:
    def test_sigkilled_worker_recovers_and_sweep_completes(
            self, tmp_path, aux_design, monkeypatch):
        """Acceptance: kill -9 one worker mid-GP; the lease expires,
        the job resumes from its checkpoint and the sweep finishes."""
        sentinel = str(tmp_path / "killed.sentinel")
        monkeypatch.setenv(KILL_SWITCH_ENV, f"15:{sentinel}")
        store = RunStore(str(tmp_path / "store"))
        scheduler = Scheduler(store, cache=ResultCache(store),
                              workers=2, max_retries=1, backoff=0.01,
                              checkpoint_every=10)
        scheduler.submit_sweep(sweep_base(aux_design, max_iters=60),
                               {"seed": [1, 2]})
        outcomes = scheduler.run()
        assert os.path.exists(sentinel)  # exactly one worker died
        assert len(outcomes) == 2
        assert all(o.ok for o in outcomes)

        resumed = [o for o in outcomes if o.resumed_from is not None]
        assert len(resumed) == 1
        assert resumed[0].resumed_from == 10  # the pre-kill checkpoint
        events = os.path.join(resumed[0].directory, "events.jsonl")
        assert list(read_events(events, type="orphaned"))
        assert list(read_events(events, type="retry"))
        assert list(read_events(events, type="resume"))

        # the recovered run is bit-exact vs an uninterrupted serial run
        monkeypatch.delenv(KILL_SWITCH_ENV)
        ref_store = RunStore(str(tmp_path / "ref"))
        ref = Scheduler(ref_store, cache=ResultCache(ref_store))
        ref.submit_sweep(sweep_base(aux_design, max_iters=60),
                         {"seed": [1, 2]})
        for ref_out, out in zip(ref.run(), outcomes):
            assert ref_out.job_hash == out.job_hash
            assert _comparable_metrics(
                os.path.join(ref_out.directory, "metrics.json")) \
                == _comparable_metrics(
                    os.path.join(out.directory, "metrics.json"))

    def test_sigkilled_multilevel_cascade_resumes_bit_exact(
            self, tmp_path, aux_design, monkeypatch):
        """Kill -9 a worker mid-cascade; the checkpoint records the
        active level and the resumed run finishes bit-exact."""
        sentinel = str(tmp_path / "killed.sentinel")
        monkeypatch.setenv(KILL_SWITCH_ENV, f"15:{sentinel}")

        def ml_spec() -> JobSpec:
            return JobSpec(
                design=DesignRef.parse(aux_design),
                params=PlacementParams(
                    max_global_iters=60, min_global_iters=5,
                    multilevel_levels=2, coarsen_ratio=0.5,
                    multilevel_min_cells=16,
                ),
                stages=("gp",),
            )

        store = RunStore(str(tmp_path / "store"))
        scheduler = Scheduler(store, cache=ResultCache(store),
                              workers=2, max_retries=1, backoff=0.01,
                              checkpoint_every=10)
        scheduler.submit_sweep(ml_spec(), {"seed": [1, 2]})
        outcomes = scheduler.run()
        assert os.path.exists(sentinel)
        assert len(outcomes) == 2 and all(o.ok for o in outcomes)

        resumed = [o for o in outcomes if o.resumed_from is not None]
        assert len(resumed) == 1
        assert resumed[0].resumed_from == 10
        events = os.path.join(resumed[0].directory, "events.jsonl")
        assert list(read_events(events, type="resume"))
        # iteration telemetry is stamped with the cascade level
        iters = list(read_events(events, type="iteration"))
        assert {e["level"] for e in iters} == {0, 1}

        # the cascade made it into the metrics, one entry per level
        metrics = _comparable_metrics(
            os.path.join(resumed[0].directory, "metrics.json"))
        assert [info["level"] for info in metrics["gp_levels"]] == [1, 0]

        # bit-exact equivalence with an uninterrupted serial run
        monkeypatch.delenv(KILL_SWITCH_ENV)
        ref_store = RunStore(str(tmp_path / "ref"))
        ref = Scheduler(ref_store, cache=ResultCache(ref_store))
        ref.submit_sweep(ml_spec(), {"seed": [1, 2]})
        for ref_out, out in zip(ref.run(), outcomes):
            assert ref_out.job_hash == out.job_hash
            assert _comparable_metrics(
                os.path.join(ref_out.directory, "metrics.json")) \
                == _comparable_metrics(
                    os.path.join(out.directory, "metrics.json"))


class TestWorkerPlumbing:
    def test_outcome_payload_drops_live_result(self):
        from repro.runner.execute import JobOutcome

        outcome = JobOutcome(job_hash="a" * 64, directory="/tmp/x",
                             status="complete", design="d",
                             metrics={"hpwl": {"final": 1.0}},
                             result=object())
        payload = outcome_payload(outcome)
        assert "result" not in payload
        assert JobOutcome(**payload).job_hash == outcome.job_hash

    def test_worker_task_is_picklable(self, aux_design):
        import pickle

        task = WorkerTask(index=0, attempt=1,
                          spec=sweep_base(aux_design).to_dict(),
                          store_root="/tmp/store", worker="w0")
        clone = pickle.loads(pickle.dumps(task))
        assert clone.spec == task.spec and clone.worker == "w0"

    def test_fault_hook_inactive_without_env(self, monkeypatch):
        from repro.runner.worker import _fault_hook

        monkeypatch.delenv(KILL_SWITCH_ENV, raising=False)
        assert _fault_hook() is None
