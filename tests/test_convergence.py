"""Tests for the convergence-monitor / checkpoint-rollback subsystem."""

import math

import numpy as np
import pytest

from repro.benchgen import CircuitSpec, generate
from repro.core import GlobalPlacer, PlacementParams
from repro.core.convergence import (
    ConvergenceMonitor,
    IterationStatus,
    PlacerSnapshot,
)
from repro.core.density_weight import DensityWeight
from repro.nn import Parameter, Tensor
from repro.nn import functional as F
from repro.nn.module import Module
from repro.nn.optim import (
    SGD,
    Adam,
    ConjugateGradient,
    ExponentialLR,
    NesterovLineSearch,
    RMSProp,
)


def make_db(seed=9, cells=150):
    return generate(CircuitSpec(name="conv", num_cells=cells, num_ios=8,
                                utilization=0.55, seed=seed))


# ----------------------------------------------------------------------
class TestConvergenceMonitor:
    def test_improving_when_overflow_drops(self):
        monitor = ConvergenceMonitor()
        monitor.observe(0, 100.0, 0.8)
        status = monitor.observe(1, 110.0, 0.5)
        assert status is IterationStatus.IMPROVING
        assert monitor.progress_improved

    def test_plateau_counting_and_exceeded(self):
        monitor = ConvergenceMonitor(plateau_patience=3)
        monitor.observe(0, 100.0, 0.5)
        for i in range(1, 4):
            # overflow flat, hpwl growing: no progress on either key
            monitor.observe(i, 100.0 + i, 0.5)
        assert monitor.plateau_count >= 3
        assert monitor.plateau_exceeded

    def test_diverging_when_hpwl_blows_up(self):
        monitor = ConvergenceMonitor(divergence_ratio=2.0)
        monitor.observe(1, 100.0, 0.5)
        status = monitor.observe(2, 250.0, 0.5)
        assert status is IterationStatus.DIVERGING
        assert not monitor.progress_improved
        assert not monitor.wirelength_improved

    def test_initial_state_not_a_divergence_anchor(self):
        # the clustered iteration-0 HPWL sits far below any spread
        # iterate and must not trip the ratio test
        monitor = ConvergenceMonitor(divergence_ratio=2.0)
        monitor.observe(0, 10.0, 0.9)
        status = monitor.observe(1, 100.0, 0.5)
        assert status is IterationStatus.IMPROVING

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_non_finite_metrics(self, bad):
        monitor = ConvergenceMonitor()
        assert monitor.observe(1, bad, 0.5) is IterationStatus.NON_FINITE
        assert monitor.observe(1, 1.0, bad) is IterationStatus.NON_FINITE
        assert monitor.observe(1, 1.0, 0.5, loss=bad) is \
            IterationStatus.NON_FINITE

    def test_non_finite_arrays(self):
        monitor = ConvergenceMonitor()
        poisoned = np.array([1.0, float("nan"), 2.0])
        clean = np.ones(3)
        assert monitor.observe(1, 1.0, 0.5, grad=poisoned) is \
            IterationStatus.NON_FINITE
        assert monitor.observe(1, 1.0, 0.5, pos=poisoned) is \
            IterationStatus.NON_FINITE
        assert monitor.observe(1, 1.0, 0.5, grad=clean, pos=clean) is \
            IterationStatus.IMPROVING

    def test_rollback_reanchors_divergence(self):
        monitor = ConvergenceMonitor(divergence_ratio=2.0)
        monitor.observe(1, 100.0, 0.5)
        assert monitor.observe(2, 500.0, 0.5) is IterationStatus.DIVERGING
        monitor.notify_rollback(400.0)
        # relative to the restored iterate 500 is no longer divergent
        assert monitor.observe(3, 500.0, 0.5) is not IterationStatus.DIVERGING
        assert monitor.plateau_count <= 1

    def test_feasible_iterates_compete_on_wirelength(self):
        monitor = ConvergenceMonitor(stop_overflow=0.1)
        monitor.observe(1, 100.0, 0.05)
        # overflow got "worse" but is still under target: lower hpwl wins
        status = monitor.observe(2, 90.0, 0.08)
        assert status is IterationStatus.IMPROVING
        assert monitor.progress_improved

    def test_new_round_resets_references(self):
        monitor = ConvergenceMonitor(plateau_patience=2)
        monitor.observe(0, 100.0, 0.2)
        monitor.observe(1, 120.0, 0.2)
        monitor.observe(2, 121.0, 0.2)
        assert monitor.plateau_exceeded
        monitor.new_round(stop_overflow=0.15)
        assert not monitor.plateau_exceeded
        assert monitor.stop_overflow == 0.15
        # warm-start metrics count as fresh progress next round
        monitor.observe(0, 130.0, 0.2)
        assert monitor.progress_improved


# ----------------------------------------------------------------------
def quadratic_closure(p, scale):
    def closure():
        p.zero_grad()
        loss = F.tensor_sum(F.square(p) * Tensor(scale))
        loss.backward()
        return loss

    return closure


OPTIMIZERS = {
    "sgd": lambda p: SGD([p], lr=0.05, momentum=0.9),
    "adam": lambda p: Adam([p], lr=0.1),
    "rmsprop": lambda p: RMSProp([p], lr=0.05, momentum=0.5),
    "nesterov": lambda p: NesterovLineSearch([p], lr=0.5),
    "cg": lambda p: ConjugateGradient([p], lr=0.5),
}


class TestOptimizerStateDicts:
    @pytest.mark.parametrize("name", sorted(OPTIMIZERS))
    def test_round_trip_resumes_exact_trajectory(self, name):
        p = Parameter([5.0, -3.0, 2.0])
        opt = OPTIMIZERS[name](p)
        closure = quadratic_closure(p, [1.0, 2.0, 0.5])
        for _ in range(5):
            opt.step(closure)
        state = opt.state_dict()
        saved_pos = p.data.copy()
        reference = []
        for _ in range(5):
            opt.step(closure)
            reference.append(p.data.copy())
        # perturb everything, then restore and replay
        p.data = p.data + 10.0
        opt.load_state_dict(state)
        if name not in ("nesterov",):  # nesterov restores params from v
            p.data = saved_pos.copy()
        np.testing.assert_allclose(p.data, saved_pos)
        for expected in reference:
            opt.step(closure)
            np.testing.assert_allclose(p.data, expected, rtol=1e-12)

    @pytest.mark.parametrize("name", sorted(OPTIMIZERS))
    def test_state_dict_is_a_deep_copy(self, name):
        p = Parameter([4.0, 1.0])
        opt = OPTIMIZERS[name](p)
        closure = quadratic_closure(p, [1.0, 1.0])
        opt.step(closure)
        state = opt.state_dict()
        before = {k: (v.copy() if isinstance(v, np.ndarray) else v)
                  for k, v in state.items()}
        opt.step(closure)
        opt.step(closure)
        for key, value in before.items():
            if isinstance(value, np.ndarray):
                np.testing.assert_allclose(state[key], value)

    def test_nesterov_unstepped_state_round_trips(self):
        p = Parameter([1.0])
        opt = NesterovLineSearch([p], lr=0.5)
        state = opt.state_dict()
        assert state["v"] is None
        opt.load_state_dict(state)
        opt.step(quadratic_closure(p, [1.0]))  # still works

    def test_scheduler_state_round_trip(self):
        p = Parameter([1.0])
        opt = SGD([p], lr=1.0)
        sched = ExponentialLR(opt, gamma=0.5)
        sched.step()
        sched.step()
        state = sched.state_dict()
        sched.step()
        sched.load_state_dict(state)
        assert sched.last_epoch == 2
        assert opt.lr == pytest.approx(0.25)

    def test_density_weight_state_round_trip(self):
        weight = DensityWeight()
        weight.initialize(np.ones(4), np.full(4, 2.0))
        weight.update(100.0)
        weight.update(90.0)
        state = weight.state_dict()
        value = weight.value
        weight.update(500.0)
        weight.load_state_dict(state)
        assert weight.value == value
        assert weight._last_hpwl == 90.0


# ----------------------------------------------------------------------
class TestNesterovNaNGuard:
    def test_nan_gradient_never_written_to_params(self):
        p = Parameter([5.0, -3.0])
        opt = NesterovLineSearch([p], lr=0.5)
        calls = {"n": 0}

        def closure():
            calls["n"] += 1
            p.zero_grad()
            loss = F.tensor_sum(F.square(p))
            loss.backward()
            if calls["n"] > 2:
                p.grad = np.full_like(p.grad, np.nan)
            return loss

        opt.step(closure)
        before = p.data.copy()
        opt.step(closure)  # poisoned closure: step must refuse to commit
        assert np.isfinite(p.data).all()
        np.testing.assert_allclose(p.data, before)

    def test_recovers_after_transient_nan(self):
        p = Parameter([5.0])
        opt = NesterovLineSearch([p], lr=0.5)
        calls = {"n": 0}

        def closure():
            calls["n"] += 1
            p.zero_grad()
            loss = F.tensor_sum(F.square(p))
            loss.backward()
            if calls["n"] in (3, 4):
                p.grad = np.array([np.nan])
            return loss

        final = None
        for _ in range(40):
            final = opt.step(closure)
        assert np.isfinite(p.data).all()
        assert final.item() < 1e-4

    def test_zero_max_backtracks_no_name_error(self):
        p = Parameter([5.0, -3.0])
        opt = NesterovLineSearch([p], lr=0.5, max_backtracks=0)
        closure = quadratic_closure(p, [1.0, 2.0])
        first = closure().item()
        last = first
        for _ in range(60):
            last = opt.step(closure).item()
        assert last < first


# ----------------------------------------------------------------------
class FaultyWirelength(Module):
    """Wirelength wrapper that poisons one forward pass with NaN."""

    def __init__(self, inner, fail_at_call):
        self.inner = inner
        self.fail_at_call = fail_at_call
        self.calls = 0

    def forward(self, pos):
        self.calls += 1
        out = self.inner(pos)
        if self.calls == self.fail_at_call:
            return out * Tensor(float("nan"))
        return out

    @property
    def gamma(self):
        return self.inner.gamma

    @gamma.setter
    def gamma(self, value):
        self.inner.gamma = value


def _forced_divergence_params(**overrides):
    base = dict(
        density_weight_scale=100.0,  # lambda forced 100x past balance
        divergence_ratio=2.0,
        min_global_iters=2,
        max_global_iters=80,
        stop_overflow=0.0,
        max_recoveries=1,
        recovery_lambda_damping=0.9,
        seed=9,
    )
    base.update(overrides)
    return PlacementParams(**base)


class TestDivergenceRecovery:
    def test_rollback_engages_and_returns_best(self):
        placer = GlobalPlacer(make_db(), _forced_divergence_params())
        result = placer.place()
        assert result.recoveries >= 1
        assert result.diverged
        # the bugfix: the diverged final iterate is NOT returned; the
        # best checkpoint is, so HPWL is bounded by the whole trace
        assert result.hpwl <= np.nanmin(result.hpwl_trace) + 1e-9
        assert result.hpwl <= result.best_hpwl + 1e-9
        assert np.isfinite(placer.pos.data).all()
        assert np.isfinite(result.x).all() and np.isfinite(result.y).all()

    def test_no_recovery_still_returns_best(self):
        placer = GlobalPlacer(
            make_db(), _forced_divergence_params(enable_recovery=False),
        )
        result = placer.place()
        assert result.recoveries == 0
        assert result.diverged
        assert result.hpwl <= np.nanmin(result.hpwl_trace) + 1e-9

    def test_recovery_budget_respected(self):
        placer = GlobalPlacer(
            make_db(), _forced_divergence_params(max_recoveries=2),
        )
        result = placer.place()
        assert result.recoveries <= 2

    @staticmethod
    def _faulty_factory(fail_at_call):
        def factory(db_, gamma, dtype):
            from repro.ops.wa_wirelength import WeightedAverageWirelength

            inner = WeightedAverageWirelength(db_, gamma=gamma, dtype=dtype)
            return FaultyWirelength(inner, fail_at_call=fail_at_call)

        return factory

    def test_nan_gradient_absorbed_by_line_search(self):
        # nesterov's line-search guard refuses the poisoned trial and
        # retries with a clean closure call: no rollback needed
        db = make_db(seed=11)
        params = PlacementParams(max_global_iters=40, min_global_iters=2,
                                 max_recoveries=2, seed=11)
        placer = GlobalPlacer(db, params,
                              wirelength_factory=self._faulty_factory(12))
        result = placer.place(max_iters=30)
        assert np.isfinite(placer.pos.data).all()
        assert np.isfinite(result.x).all() and np.isfinite(result.y).all()
        assert np.isfinite(result.hpwl)
        assert not result.diverged

    def test_nan_gradient_triggers_monitor_rollback(self):
        # adam has no internal guard: the poisoned gradient reaches the
        # positions and the convergence monitor must roll back
        db = make_db(seed=11)
        params = PlacementParams(optimizer="adam", learning_rate=0.01,
                                 max_global_iters=40, min_global_iters=2,
                                 max_recoveries=2, seed=11)
        placer = GlobalPlacer(db, params,
                              wirelength_factory=self._faulty_factory(12))
        result = placer.place(max_iters=30)
        # one poisoned backward must not leak NaN anywhere
        assert np.isfinite(placer.pos.data).all()
        assert np.isfinite(result.x).all() and np.isfinite(result.y).all()
        assert np.isfinite(result.hpwl)
        assert result.recoveries >= 1

    def test_normal_run_unaffected(self):
        params = PlacementParams(max_global_iters=200, seed=5)
        result = GlobalPlacer(make_db(cells=200, seed=5), params).place()
        assert result.recoveries == 0
        assert not result.diverged
        assert math.isfinite(result.best_hpwl)

    def test_converged_run_never_worse_than_best_feasible(self):
        params = PlacementParams(max_global_iters=300, seed=5)
        result = GlobalPlacer(make_db(cells=200, seed=5), params).place()
        feasible = [
            h for h, o in zip(result.hpwl_trace, result.overflow_trace)
            if o <= params.stop_overflow
        ]
        if feasible:
            assert result.hpwl <= min(feasible) + 1e-9


# ----------------------------------------------------------------------
class TestSnapshotRestore:
    def test_exact_rollback(self):
        placer = GlobalPlacer(make_db(), PlacementParams(seed=9))
        result = placer.place(max_iters=10)
        optimizer = placer._optimizer
        weight = placer._init_density_weight()
        snap = placer._capture_snapshot(
            10, result.hpwl, result.overflow, optimizer, None, weight,
        )
        pos = placer.pos.data.copy()
        lam = weight.value
        # wreck the state, then restore
        placer.pos.data = placer.pos.data + 7.0
        placer.objective.density_weight *= 100.0
        weight.value *= 100.0
        placer._restore_snapshot(snap, optimizer, None, weight)
        np.testing.assert_allclose(placer.pos.data, pos)
        assert weight.value == pytest.approx(lam)
        assert placer.objective.density_weight == pytest.approx(lam)

    def test_lambda_damping_applied(self):
        placer = GlobalPlacer(make_db(), PlacementParams(seed=9))
        placer.place(max_iters=5)
        weight = placer._init_density_weight()
        snap = placer._capture_snapshot(
            5, 1.0, 1.0, placer._optimizer, None, weight,
        )
        value = weight.value
        placer._restore_snapshot(snap, placer._optimizer, None, weight,
                                 lambda_damping=0.25)
        assert weight.value == pytest.approx(0.25 * value)

    def test_snapshot_preserves_dtype(self):
        params = PlacementParams(dtype="float32", seed=9)
        placer = GlobalPlacer(make_db(), params)
        placer.place(max_iters=5)
        weight = placer._init_density_weight()
        snap = placer._capture_snapshot(
            5, 1.0, 1.0, placer._optimizer, None, weight,
        )
        placer._restore_snapshot(snap, placer._optimizer, None, weight)
        assert placer.pos.data.dtype == np.float32


# ----------------------------------------------------------------------
class TestFloat32Invariant:
    @pytest.mark.parametrize("optimizer",
                             ["nesterov", "adam", "sgd", "rmsprop", "cg"])
    def test_dtype_never_upcast(self, optimizer):
        params = PlacementParams(dtype="float32", optimizer=optimizer,
                                 learning_rate=0.01, min_global_iters=1,
                                 seed=3)
        placer = GlobalPlacer(make_db(seed=3, cells=80), params)
        assert placer._lo.dtype == np.float32
        assert placer._hi.dtype == np.float32
        result = placer.place(max_iters=10)
        assert placer.pos.data.dtype == np.float32
        assert np.isfinite(result.hpwl)

    def test_float32_end_to_end_with_warm_restart(self):
        params = PlacementParams(dtype="float32", seed=3)
        placer = GlobalPlacer(make_db(seed=3, cells=80), params)
        result = placer.place(max_iters=10)
        placer.set_positions(result.x, result.y)
        assert placer.pos.data.dtype == np.float32
        placer.place(max_iters=5)
        assert placer.pos.data.dtype == np.float32


# ----------------------------------------------------------------------
class TestWarmRestartWiring:
    def test_optimizer_persists_across_place_calls(self):
        placer = GlobalPlacer(make_db(), PlacementParams(seed=9))
        placer.place(max_iters=5)
        first = placer._optimizer
        assert first is not None
        placer.place(max_iters=5)
        assert placer._optimizer is first

    def test_set_positions_rebinds_optimizer(self):
        placer = GlobalPlacer(make_db(), PlacementParams(seed=9))
        result = placer.place(max_iters=5)
        assert placer._optimizer._v is not None or \
            placer._optimizer._g is not None
        placer.set_positions(result.x, result.y)
        # rebind() dropped the value-derived caches
        assert placer._optimizer._v is None
        assert placer._optimizer._g is None

    def test_shared_monitor_across_rounds(self):
        db = make_db()
        placer = GlobalPlacer(db, PlacementParams(seed=9))
        monitor = ConvergenceMonitor(stop_overflow=0.1)
        placer.place(max_iters=5, monitor=monitor)
        best = monitor.best_hpwl
        placer.place(max_iters=5, monitor=monitor)
        # divergence anchor carried across rounds
        assert monitor.best_hpwl <= best

    def test_reset_momentum_noop_for_memoryless(self):
        p = Parameter([1.0])
        opt = SGD([p], lr=0.1)  # momentum 0: velocity stays zero
        opt.reset_momentum()
        opt.rebind()


# ----------------------------------------------------------------------
class TestFlowPropagation:
    def test_placement_result_carries_recovery_fields(self):
        from repro.core import DreamPlacer

        db = make_db(cells=120)
        params = PlacementParams(max_global_iters=60, min_global_iters=1,
                                 legalize=False, detailed=False, seed=9)
        result = DreamPlacer(db, params).run()
        assert result.recoveries == 0
        assert result.diverged is False
        assert math.isfinite(result.best_hpwl)

    def test_cli_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["place", "demo.aux", "--no-recovery", "--max-recoveries", "5"]
        )
        assert args.no_recovery
        assert args.max_recoveries == 5

    def test_snapshot_dataclass_defaults(self):
        snap = PlacerSnapshot(0, 1.0, 0.5, np.zeros(4))
        assert snap.optimizer_state is None
        assert math.isnan(snap.gamma)
