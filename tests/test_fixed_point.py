"""Tests for the fixed-point determinism extension."""

import numpy as np
import pytest

from repro.geometry import BinGrid, PlacementRegion
from repro.ops.density_map import scatter_density
from repro.ops.fixed_point import (
    SCALE,
    deterministic_sum,
    from_fixed,
    hpwl_fixed,
    scatter_density_fixed,
    to_fixed,
)
from repro.ops.hpwl import hpwl


@pytest.fixture
def cells():
    rng = np.random.default_rng(5)
    n = 40
    return (
        rng.uniform(0, 28, n), rng.uniform(0, 28, n),
        rng.uniform(0.3, 4.0, n), rng.uniform(0.3, 4.0, n),
        rng.uniform(0.2, 2.0, n),
    )


class TestQuantization:
    def test_roundtrip_within_resolution(self):
        values = np.array([0.0, 1.0, -2.5, 1e-7, 123.456])
        back = from_fixed(to_fixed(values))
        np.testing.assert_allclose(back, values, atol=1.0 / SCALE)

    def test_deterministic_sum_order_independent(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=10000) * 1e3
        a = deterministic_sum(values)
        b = deterministic_sum(values[::-1])
        c = deterministic_sum(rng.permutation(values))
        assert a == b == c

    def test_float_sum_is_order_dependent_here(self):
        """The motivating failure: float accumulation differs by order
        (if it happens to agree for this data, determinism is moot)."""
        rng = np.random.default_rng(1)
        values = rng.normal(size=200000) * np.logspace(-8, 8, 200000)
        f1 = float(np.add.reduce(values.astype(np.float32)))
        f2 = float(np.add.reduce(values[::-1].astype(np.float32)))
        d1 = deterministic_sum(values)
        d2 = deterministic_sum(values[::-1])
        assert d1 == d2
        # float32 forward/backward sums typically differ on this data
        if f1 == f2:
            pytest.skip("float accumulation happened to agree")


class TestFixedScatter:
    def test_bit_identical_under_shuffling(self, region, cells):
        grid = BinGrid(region, 16, 16)
        xl, yl, w, h, weight = cells
        maps = [
            scatter_density_fixed(grid, xl, yl, w, h, weight,
                                  shuffle_seed=seed)
            for seed in (None, 1, 2, 3)
        ]
        for other in maps[1:]:
            assert np.array_equal(maps[0], other)

    def test_close_to_float_scatter(self, region, cells):
        grid = BinGrid(region, 16, 16)
        xl, yl, w, h, weight = cells
        fixed = scatter_density_fixed(grid, xl, yl, w, h, weight)
        floating = scatter_density(grid, xl, yl, w, h, weight, "naive")
        np.testing.assert_allclose(fixed, floating,
                                   atol=len(xl) / SCALE * 4)

    def test_mass_conserved_to_resolution(self, region, cells):
        grid = BinGrid(region, 16, 16)
        xl, yl, w, h, weight = cells
        fixed = scatter_density_fixed(grid, xl, yl, w, h, weight)
        expected = (weight * w * h).sum()
        assert fixed.sum() == pytest.approx(expected, abs=1e-3)


class TestFixedHpwl:
    def test_matches_float_hpwl(self, small_db):
        px, py = small_db.pin_positions()
        fixed = hpwl_fixed(px, py, small_db.pin_net, small_db.num_nets)
        floating = hpwl(px, py, small_db.pin_net, small_db.num_nets)
        assert fixed == pytest.approx(floating, abs=1e-4)

    def test_empty_net_zero(self):
        px = np.array([1.0, 2.0])
        py = np.array([1.0, 2.0])
        net = np.array([1, 1])
        assert hpwl_fixed(px, py, net, 2) == pytest.approx(1.0 + 1.0)

    def test_deterministic_across_pin_order(self, small_db):
        px, py = small_db.pin_positions()
        perm = np.random.default_rng(0).permutation(px.shape[0])
        a = hpwl_fixed(px, py, small_db.pin_net, small_db.num_nets)
        b = hpwl_fixed(px[perm], py[perm], small_db.pin_net[perm],
                       small_db.num_nets)
        assert a == b
