"""Tests for HPWL, WA and LSE wirelength operators."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.ops import hpwl, hpwl_per_net
from repro.ops.lse_wirelength import LogSumExpWirelength
from repro.ops.wa_wirelength import STRATEGIES, WeightedAverageWirelength


def pos_vector(db, dtype=np.float64):
    return np.concatenate([db.cell_x, db.cell_y]).astype(dtype)


class TestHpwl:
    def test_single_two_pin_net(self):
        px = np.array([0.0, 3.0])
        py = np.array([0.0, 4.0])
        net = np.array([0, 0])
        assert hpwl(px, py, net, 1) == 7.0

    def test_per_net(self):
        px = np.array([0.0, 3.0, 1.0, 5.0])
        py = np.array([0.0, 0.0, 2.0, 2.0])
        net = np.array([0, 0, 1, 1])
        np.testing.assert_allclose(
            hpwl_per_net(px, py, net, 2), [3.0, 4.0]
        )

    def test_empty_net_contributes_zero(self):
        px = np.array([1.0, 2.0])
        py = np.array([0.0, 0.0])
        net = np.array([1, 1])
        lengths = hpwl_per_net(px, py, net, 2)
        assert lengths[0] == 0.0

    def test_net_weights_scale(self):
        px = np.array([0.0, 1.0])
        py = np.array([0.0, 0.0])
        net = np.array([0, 0])
        assert hpwl(px, py, net, 1, np.array([3.0])) == 3.0

    def test_single_pin_net_zero(self):
        lengths = hpwl_per_net(
            np.array([5.0]), np.array([5.0]), np.array([0]), 1
        )
        assert lengths[0] == 0.0


class TestWAWirelength:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_upper_bounds_hpwl_from_below(self, small_db, strategy):
        """WA underestimates HPWL (it is a smooth lower-ish surrogate)."""
        op = WeightedAverageWirelength(small_db, gamma=0.5, strategy=strategy)
        wa = op(Tensor(pos_vector(small_db))).item()
        exact = small_db.hpwl()
        assert wa <= exact + 1e-9

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_converges_to_hpwl_as_gamma_shrinks(self, small_db, strategy):
        exact = small_db.hpwl()
        errors = []
        for gamma in (2.0, 0.5, 0.05):
            op = WeightedAverageWirelength(
                small_db, gamma=gamma, strategy=strategy
            )
            errors.append(abs(op(Tensor(pos_vector(small_db))).item() - exact))
        assert errors[2] < errors[1] < errors[0]
        assert errors[2] / exact < 0.01

    def test_strategies_agree(self, small_db):
        pos = pos_vector(small_db)
        values = []
        grads = []
        for strategy in STRATEGIES:
            op = WeightedAverageWirelength(
                small_db, gamma=0.7, strategy=strategy
            )
            from repro.nn import Parameter

            p = Parameter(pos)
            out = op(p)
            out.backward()
            values.append(out.item())
            grads.append(p.grad.copy())
        assert max(values) - min(values) < 1e-9
        for g in grads[1:]:
            np.testing.assert_allclose(g, grads[0], atol=1e-9)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_gradient_matches_finite_difference(self, small_db, strategy):
        from repro.nn import Parameter

        op = WeightedAverageWirelength(small_db, gamma=0.8, strategy=strategy)
        pos = pos_vector(small_db)
        p = Parameter(pos)
        op(p).backward()
        rng = np.random.default_rng(0)
        eps = 1e-6
        for j in rng.choice(pos.shape[0], size=10, replace=False):
            cell = j % small_db.num_cells
            if not small_db.movable[cell]:
                continue
            trial = pos.copy()
            trial[j] += eps
            up = op(Tensor(trial)).item()
            trial[j] -= 2 * eps
            down = op(Tensor(trial)).item()
            fd = (up - down) / (2 * eps)
            assert p.grad[j] == pytest.approx(fd, rel=1e-4, abs=1e-7)

    def test_fixed_cells_zero_gradient(self, small_db):
        from repro.nn import Parameter

        op = WeightedAverageWirelength(small_db, gamma=0.8)
        p = Parameter(pos_vector(small_db))
        op(p).backward()
        n = small_db.num_cells
        fixed = np.flatnonzero(~small_db.movable)
        assert np.all(p.grad[fixed] == 0.0)
        assert np.all(p.grad[n + fixed] == 0.0)

    def test_translation_invariance(self, small_db):
        op = WeightedAverageWirelength(small_db, gamma=0.6)
        pos = pos_vector(small_db)
        base = op(Tensor(pos)).item()
        shifted = op(Tensor(pos + 5.0)).item()
        assert shifted == pytest.approx(base, rel=1e-9)

    def test_gradient_sums_to_zero_per_axis(self, small_db):
        """Internal forces balance: translation invariance of the cost."""
        from repro.nn import Parameter

        # use a db with no fixed cells contributing pins for exact balance
        db = small_db
        op = WeightedAverageWirelength(db, gamma=0.6)
        p = Parameter(pos_vector(db))
        op(p).backward()
        n = db.num_cells
        # include what would flow to fixed cells: rebuild without masking
        op.fixed_idx = np.empty(0, dtype=np.int64)
        p2 = Parameter(pos_vector(db))
        op(p2).backward()
        assert abs(p2.grad[:n].sum()) < 1e-8
        assert abs(p2.grad[n:].sum()) < 1e-8

    def test_float32_supported(self, small_db):
        op = WeightedAverageWirelength(small_db, gamma=0.7, dtype=np.float32)
        out = op(Tensor(pos_vector(small_db, np.float32)))
        assert out.dtype == np.float32

    def test_float32_close_to_float64(self, small_db):
        pos = pos_vector(small_db)
        v64 = WeightedAverageWirelength(small_db, gamma=0.7)(
            Tensor(pos)
        ).item()
        v32 = WeightedAverageWirelength(small_db, gamma=0.7,
                                        dtype=np.float32)(
            Tensor(pos.astype(np.float32))
        ).item()
        assert v32 == pytest.approx(v64, rel=1e-4)

    def test_numerical_stability_large_coordinates(self, small_db):
        """The max/min-shifted exponents avoid overflow (Section III-A)."""
        op = WeightedAverageWirelength(small_db, gamma=0.01)
        pos = pos_vector(small_db) * 1e4
        out = op(Tensor(pos)).item()
        assert np.isfinite(out)

    def test_unknown_strategy_rejected(self, small_db):
        with pytest.raises(ValueError):
            WeightedAverageWirelength(small_db, strategy="cuda")

    def test_extended_pos_with_fillers(self, small_db):
        """Filler entries appended to pos don't change WL, get zero grad."""
        from repro.nn import Parameter

        op = WeightedAverageWirelength(small_db, gamma=0.7)
        pos = pos_vector(small_db)
        n = small_db.num_cells
        base = op(Tensor(pos)).item()
        extended = np.concatenate(
            [pos[:n], [3.0, 4.0], pos[n:], [5.0, 6.0]]
        )
        p = Parameter(extended)
        out = op(p)
        out.backward()
        assert out.item() == pytest.approx(base)
        assert p.grad[n] == 0.0 and p.grad[n + 1] == 0.0


class TestLSEWirelength:
    def test_upper_bounds_hpwl(self, small_db):
        """LSE overestimates HPWL (log-sum-exp >= max)."""
        op = LogSumExpWirelength(small_db, gamma=0.5)
        lse = op(Tensor(pos_vector(small_db))).item()
        assert lse >= small_db.hpwl() - 1e-9

    def test_converges_to_hpwl(self, small_db):
        exact = small_db.hpwl()
        op = LogSumExpWirelength(small_db, gamma=0.02)
        assert op(Tensor(pos_vector(small_db))).item() == \
            pytest.approx(exact, rel=0.01)

    def test_gradient_matches_finite_difference(self, small_db):
        from repro.nn import Parameter

        op = LogSumExpWirelength(small_db, gamma=0.8)
        pos = pos_vector(small_db)
        p = Parameter(pos)
        op(p).backward()
        rng = np.random.default_rng(1)
        eps = 1e-6
        for j in rng.choice(pos.shape[0], size=8, replace=False):
            cell = j % small_db.num_cells
            if not small_db.movable[cell]:
                continue
            trial = pos.copy()
            trial[j] += eps
            up = op(Tensor(trial)).item()
            trial[j] -= 2 * eps
            down = op(Tensor(trial)).item()
            fd = (up - down) / (2 * eps)
            assert p.grad[j] == pytest.approx(fd, rel=1e-4, abs=1e-7)

    def test_wa_tighter_than_lse(self, small_db):
        """At equal gamma, WA approximates HPWL at least as well as LSE
        from below vs above; both bracket HPWL."""
        pos = Tensor(pos_vector(small_db))
        wa = WeightedAverageWirelength(small_db, gamma=0.5)(pos).item()
        lse = LogSumExpWirelength(small_db, gamma=0.5)(pos).item()
        exact = small_db.hpwl()
        assert wa <= exact <= lse
