"""Tests for the placement service (repro.serve).

Covers the acceptance criteria of the service subsystem:

- a design placed over HTTP produces the same job hash, the same
  ``runs/<hash16>/`` layout and the same (deterministic) metrics as the
  same spec run through ``execute_job``/``repro batch``,
- resubmitting a completed job over HTTP is a cache hit that executes
  zero placement iterations,
- submissions over the admission bound are rejected with ``429`` and a
  ``Retry-After`` hint,
- the SSE stream delivers live iteration events and a terminal ``end``
  frame,
- SIGTERM (and the in-process ``shutdown(interrupt=True)`` it drives)
  leaves no leased or still-``running`` run behind — every interrupted
  run is a failed-with-checkpoint resume candidate that continues
  bit-exactly after a restart,

plus the incremental event-log cursor, thread-safety of the shared
cache counters, and concurrent-submission dedup.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.benchgen import CircuitSpec, generate
from repro.core import PlacementParams
from repro.runner import (
    DesignRef,
    EventLog,
    JobSpec,
    ResultCache,
    RunStore,
    execute_job,
    read_events,
    tail_events,
)
from repro.runner.store import _atomic_write_json
from repro.serve import (
    AsyncScheduler,
    PlacementClient,
    PlacementServer,
    QueueFull,
    ServiceError,
)


def make_db(seed=5, num_cells=60):
    return generate(CircuitSpec(
        name="servetest", num_cells=num_cells, num_ios=8,
        utilization=0.6, seed=seed,
    ))


def gp_spec(**overrides) -> JobSpec:
    """A fast GP-only job spec for a pre-loaded database."""
    overrides.setdefault("max_global_iters", 60)
    overrides.setdefault("min_global_iters", 5)
    params = PlacementParams(**overrides)
    return JobSpec(design=DesignRef("servetest", scale=1),
                   params=params, stages=("gp",))


def deterministic_metrics(metrics: dict) -> dict:
    """The metrics payload minus wall-clock runtimes.

    Placement is deterministic, so every field except the measured
    stage durations must be byte-identical across executions of the
    same spec.
    """
    out = dict(metrics)
    out.pop("runtime", None)
    return out


def wait_for(predicate, timeout=30.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


@pytest.fixture()
def db(monkeypatch):
    database = make_db()
    monkeypatch.setattr(DesignRef, "load", lambda self: database)
    return database


def start_server(tmp_path, name="store", **scheduler_kwargs):
    store = RunStore(str(tmp_path / name))
    cache = ResultCache(store)
    scheduler_kwargs.setdefault("workers", 1)
    scheduler = AsyncScheduler(store, cache=cache, **scheduler_kwargs)
    server = PlacementServer(store, scheduler, port=0).start()
    return server, store, cache


@pytest.fixture()
def server(tmp_path, db):
    srv, store, cache = start_server(tmp_path, queue_limit=8)
    yield srv
    srv.stop(interrupt=True)


# ----------------------------------------------------------------------
class TestTailEvents:
    def test_incremental_cursor(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with EventLog(path) as log:
            log.emit("a", n=1)
            log.emit("b", n=2)
        events, offset = tail_events(path, 0)
        assert [e["type"] for e in events] == ["a", "b"]
        assert offset == os.path.getsize(path)
        # nothing new: same offset back, no events
        events, offset2 = tail_events(path, offset)
        assert events == [] and offset2 == offset
        with EventLog(path) as log:
            log.emit("c", n=3)
        events, offset3 = tail_events(path, offset)
        assert [e["type"] for e in events] == ["c"]
        assert offset3 > offset

    def test_torn_tail_left_for_next_poll(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with open(path, "w") as handle:
            handle.write(json.dumps({"type": "a"}) + "\n")
            handle.write('{"type": "tor')  # writer mid-emit
        events, offset = tail_events(path, 0)
        assert [e["type"] for e in events] == ["a"]
        # the cursor stops *before* the unterminated line
        with open(path, "a") as handle:
            handle.write('n"}\n')
        events, offset = tail_events(path, offset)
        assert [e["type"] for e in events] == ["torn"]

    def test_unparseable_complete_line_skipped(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with open(path, "w") as handle:
            handle.write("not json at all\n")
            handle.write(json.dumps({"type": "ok"}) + "\n")
        events, offset = tail_events(path, 0)
        assert [e["type"] for e in events] == ["ok"]
        assert offset == os.path.getsize(path)

    def test_per_event_offsets_are_resume_cursors(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with EventLog(path) as log:
            for i in range(5):
                log.emit("e", n=i)
        pairs, end = tail_events(path, 0, offsets=True)
        assert pairs[-1][1] == end
        # resuming from any mid-batch cursor yields exactly the rest
        for i, (_, cursor) in enumerate(pairs):
            rest, _ = tail_events(path, cursor)
            assert [r["n"] for r in rest] \
                == [r["n"] for r, _ in pairs[i + 1:]]

    def test_missing_file(self, tmp_path):
        events, offset = tail_events(str(tmp_path / "nope.jsonl"), 7)
        assert events == [] and offset == 7

    def test_read_events_still_filters(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with EventLog(path) as log:
            log.emit("a")
            log.emit("b")
            log.emit("a")
        assert len(list(read_events(path, type="a"))) == 2


# ----------------------------------------------------------------------
class TestAsyncScheduler:
    def test_submit_runs_to_completion(self, tmp_path, db):
        store = RunStore(str(tmp_path / "store"))
        sched = AsyncScheduler(store, cache=ResultCache(store),
                               queue_limit=4).start()
        try:
            job = sched.submit(gp_spec())
            assert wait_for(lambda: job.terminal)
            assert job.state == "complete"
            assert job.outcome.ok
            assert store.load(job.job_hash).complete
        finally:
            sched.shutdown()

    def test_duplicate_submit_same_ticket(self, tmp_path, db):
        store = RunStore(str(tmp_path / "store"))
        # never started: jobs stay queued, so the second submit must
        # dedup against the first instead of double-queueing
        sched = AsyncScheduler(store, cache=ResultCache(store),
                               queue_limit=4)
        first = sched.submit(gp_spec())
        second = sched.submit(gp_spec())
        assert first is second
        assert sched.queued == 1

    def test_queue_full_raises(self, tmp_path, db):
        store = RunStore(str(tmp_path / "store"))
        sched = AsyncScheduler(store, cache=ResultCache(store),
                               queue_limit=1, retry_after=3.5)
        sched.submit(gp_spec(seed=1))
        with pytest.raises(QueueFull) as info:
            sched.submit(gp_spec(seed=2))
        assert info.value.retry_after == 3.5

    def test_cancel_queued_job(self, tmp_path, db):
        store = RunStore(str(tmp_path / "store"))
        sched = AsyncScheduler(store, cache=ResultCache(store),
                               queue_limit=4)
        job = sched.submit(gp_spec())
        cancelled = sched.cancel(job.job_hash)
        assert cancelled is job and job.state == "cancelled"
        # dispatch (started late) must skip it, not run it
        sched.start()
        time.sleep(0.3)
        assert job.state == "cancelled"
        assert not os.path.exists(store.run_dir(job.job_hash))
        sched.shutdown()

    def test_cached_submit_answers_without_queueing(self, tmp_path, db):
        store = RunStore(str(tmp_path / "store"))
        cache = ResultCache(store)
        reference = execute_job(gp_spec(), store, db=db)
        assert reference.ok
        events_before = len(list(read_events(
            os.path.join(reference.directory, "events.jsonl"),
            type="iteration")))
        sched = AsyncScheduler(store, cache=cache, queue_limit=4)
        job = sched.submit(gp_spec())  # not even started
        assert job.state == "complete" and job.cached
        assert job.outcome.metrics == reference.metrics
        events_path = os.path.join(reference.directory, "events.jsonl")
        assert len(list(read_events(events_path, type="iteration"))) \
            == events_before
        assert len(list(read_events(events_path, type="cache_hit"))) == 1

    def test_interrupt_shutdown_then_bit_exact_resume(self, tmp_path,
                                                      db):
        spec = gp_spec(max_global_iters=400, min_global_iters=400)
        reference = execute_job(
            spec, RunStore(str(tmp_path / "ref")), db=db)
        assert reference.ok

        store = RunStore(str(tmp_path / "store"))
        sched = AsyncScheduler(store, cache=ResultCache(store),
                               queue_limit=4, checkpoint_every=10).start()
        job = sched.submit(spec)
        run_dir = store.run_dir(job.job_hash)
        events = os.path.join(run_dir, "events.jsonl")
        assert wait_for(lambda: list(read_events(events,
                                                 type="iteration")))
        sched.shutdown(interrupt=True)

        # the drained run: failed-with-checkpoint, lease released
        record = store.load(job.job_hash)
        assert record.state == "failed"
        assert "interrupted by shutdown" in (record.status or {})["error"]
        assert os.path.exists(record.checkpoint_path)
        assert not os.path.exists(record.lock_path)
        interrupted_at = max(
            e["iteration"] for e in read_events(events, type="iteration"))
        assert interrupted_at < 400

        # "restart": a fresh scheduler resumes from the checkpoint and
        # the final metrics are bit-exact against the uninterrupted run
        sched2 = AsyncScheduler(store, cache=ResultCache(store),
                                queue_limit=4).start()
        job2 = sched2.submit(spec)
        assert wait_for(lambda: job2.terminal, timeout=60)
        sched2.shutdown()
        assert job2.state == "complete"
        resumes = list(read_events(events, type="resume"))
        assert resumes and resumes[-1]["iteration"] == interrupted_at
        assert deterministic_metrics(job2.outcome.metrics) \
            == deterministic_metrics(reference.metrics)


# ----------------------------------------------------------------------
class TestHTTPAPI:
    def test_http_matches_batch_execution(self, tmp_path, db, server):
        client = PlacementClient(server.url)
        response = client.submit({"design": "servetest", "scale": 1,
                                  "stages": ["gp"],
                                  "params": {"max_global_iters": 60,
                                             "min_global_iters": 5}})
        job_hash = response["job_hash"]
        assert wait_for(lambda: client.job(job_hash)["state"]
                        in ("complete", "failed"))
        view = client.job(job_hash)
        assert view["state"] == "complete"

        # the same spec through the direct (batch) path: same content
        # hash, same directory layout, same deterministic metrics
        reference = execute_job(gp_spec(), RunStore(str(tmp_path / "ref")),
                                db=db)
        assert reference.job_hash == job_hash
        assert deterministic_metrics(view["metrics"]) \
            == deterministic_metrics(reference.metrics)
        run_dir = server.store.run_dir(job_hash)
        for artifact in ("spec.json", "status.json", "metrics.json",
                         "events.jsonl"):
            assert os.path.exists(os.path.join(run_dir, artifact))
        assert not os.path.exists(os.path.join(run_dir, "lock.json"))

    def test_duplicate_submit_is_cache_hit(self, tmp_path, db, server):
        client = PlacementClient(server.url)
        spec = {"design": "servetest", "scale": 1, "stages": ["gp"],
                "params": {"max_global_iters": 60,
                           "min_global_iters": 5}}
        first = client.submit(spec)
        assert wait_for(lambda: client.job(first["job_hash"])["state"]
                        == "complete")
        events_path = server.events_path(first["job_hash"])
        iterations = len(list(read_events(events_path, type="iteration")))

        second = client.submit(spec)
        assert second["job_hash"] == first["job_hash"]
        assert second["state"] == "complete"
        assert second["cached"] is True
        # acceptance: the duplicate executed zero placement iterations
        assert len(list(read_events(events_path, type="iteration"))) \
            == iterations
        assert list(read_events(events_path, type="cache_hit"))

    def test_queue_overflow_is_429_with_retry_after(self, tmp_path, db):
        srv, _, _ = start_server(tmp_path, queue_limit=0,
                                 retry_after=4.0)
        try:
            body = json.dumps({"design": "servetest", "scale": 1,
                               "stages": ["gp"]}).encode()
            request = urllib.request.Request(
                f"{srv.url}/v1/jobs", data=body, method="POST",
                headers={"Content-Type": "application/json"})
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(request, timeout=10)
            assert info.value.code == 429
            assert float(info.value.headers["Retry-After"]) == 4.0
        finally:
            srv.stop()

    def test_sse_stream_sees_iterations_and_end(self, db, server):
        client = PlacementClient(server.url)
        response = client.submit({"design": "servetest", "scale": 1,
                                  "stages": ["gp"],
                                  "params": {"max_global_iters": 120,
                                             "min_global_iters": 120}})
        events = list(client.iter_events(response["job_hash"]))
        kinds = [e.get("_event") for e in events]
        assert "iteration" in kinds
        assert kinds[-1] == "end"
        assert events[-1]["state"] == "complete"
        offsets = [e["_offset"] for e in events]
        assert offsets == sorted(offsets)

    def test_sse_offset_resumes_without_replay(self, db, server):
        client = PlacementClient(server.url)
        response = client.submit({"design": "servetest", "scale": 1,
                                  "stages": ["gp"],
                                  "params": {"max_global_iters": 60,
                                             "min_global_iters": 5}})
        job_hash = response["job_hash"]
        all_events = list(client.iter_events(job_hash))
        cut = all_events[len(all_events) // 2]
        rest = list(client.iter_events(job_hash,
                                       offset=cut["_offset"]))
        replayed = [e for e in rest if e.get("_event") != "end"]
        expected = [e for e in all_events[all_events.index(cut) + 1:]
                    if e.get("_event") != "end"]
        assert [e.get("iteration") for e in replayed] \
            == [e.get("iteration") for e in expected]

    def test_cancel_running_job(self, db, server):
        client = PlacementClient(server.url)
        response = client.submit(
            {"design": "servetest", "scale": 1, "stages": ["gp"],
             "params": {"max_global_iters": 100000,
                        "min_global_iters": 100000}})
        job_hash = response["job_hash"]
        events_path = server.events_path(job_hash)
        assert wait_for(lambda: list(read_events(events_path,
                                                 type="iteration")))
        view = client.cancel(job_hash)
        assert view["job_hash"] == job_hash
        assert wait_for(lambda: client.job(job_hash)["state"]
                        == "cancelled")
        record = server.store.load(job_hash)
        assert record.state == "failed"  # on disk: resumable failure
        assert os.path.exists(record.checkpoint_path)
        assert not os.path.exists(record.lock_path)

    def test_listing_and_state_filter(self, db, server):
        client = PlacementClient(server.url)
        response = client.submit({"design": "servetest", "scale": 1,
                                  "stages": ["gp"],
                                  "params": {"max_global_iters": 60,
                                             "min_global_iters": 5}})
        assert wait_for(lambda: client.job(response["job_hash"])["state"]
                        == "complete")
        runs = client.jobs()
        assert [r["job_hash"] for r in runs] == [response["job_hash"]]
        assert client.jobs(states=["complete"])
        assert client.jobs(states=["failed"]) == []

    def test_unknown_job_404(self, db, server):
        client = PlacementClient(server.url)
        with pytest.raises(ServiceError) as info:
            client.job("feedfacedeadbeef")
        assert info.value.status == 404

    def test_healthz_reports_recovered_orphans(self, tmp_path, db):
        # fabricate an orphan: a `running` run whose owner is dead
        store = RunStore(str(tmp_path / "store"))
        outcome = execute_job(gp_spec(), store, db=db)
        run_dir = store.run_dir(outcome.job_hash)
        status_path = os.path.join(run_dir, "status.json")
        status = json.load(open(status_path))
        status["status"] = "running"
        _atomic_write_json(status_path, status)
        _atomic_write_json(os.path.join(run_dir, "lock.json"),
                           {"pid": 2 ** 22 + 17, "host": "gone",
                            "heartbeat": 1.0})

        srv, _, _ = start_server(tmp_path, queue_limit=4)
        try:
            health = PlacementClient(srv.url).healthz()
            assert health["status"] == "ok"
            assert health["recovered_orphans"] == 1
            record = srv.store.load(outcome.job_hash)
            assert record.state == "failed"
            assert not os.path.exists(record.lock_path)
        finally:
            srv.stop()

    def test_metrics_endpoint(self, db, server):
        client = PlacementClient(server.url)
        client.healthz()
        text = client.metrics_text()
        assert "repro_http_requests_total" in text
        assert 'route="/healthz"' in text
        assert "repro_serve_queue_depth" in text

    def test_bad_spec_is_400(self, db, server):
        client = PlacementClient(server.url)
        with pytest.raises(ServiceError) as info:
            client.submit({"scale": 1})  # no design
        assert info.value.status == 400

    def test_concurrent_identical_submissions_dedup(self, db, server):
        client = PlacementClient(server.url)
        spec = {"design": "servetest", "scale": 1, "stages": ["gp"],
                "params": {"max_global_iters": 60,
                           "min_global_iters": 5}}
        results, errors = [], []

        def submit():
            try:
                results.append(client.submit(spec))
            except Exception as exc:  # noqa: BLE001 — recorded
                errors.append(exc)

        threads = [threading.Thread(target=submit) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        hashes = {r["job_hash"] for r in results}
        assert len(hashes) == 1
        job_hash = hashes.pop()
        assert wait_for(lambda: client.job(job_hash)["state"]
                        == "complete")
        # exactly one run on disk, started exactly once
        assert len(server.store.list_runs()) == 1
        starts = list(read_events(server.events_path(job_hash),
                                  type="run_start"))
        assert len(starts) == 1


# ----------------------------------------------------------------------
class TestThreadSafety:
    def test_cache_stats_counters_are_exact(self, tmp_path):
        from repro.runner.cache import CacheStats

        stats = CacheStats()

        def hammer():
            for _ in range(500):
                stats.record_hit()
                stats.record_miss()
                stats.record_hit(degraded=True)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert stats.hits == 8 * 1000
        assert stats.misses == 8 * 500
        assert stats.degraded_hits == 8 * 500

    def test_registry_counters_are_exact_across_threads(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()

        def hammer(i):
            for _ in range(1000):
                registry.counter("t_total").inc()
                registry.histogram("t_seconds").observe(0.001 * i)

        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.value("t_total") == 8000


# ----------------------------------------------------------------------
class TestServeCLI:
    def test_runs_json_matches_service_listing_schema(self, tmp_path,
                                                      db, capsys):
        from repro.cli import main

        store = RunStore(str(tmp_path / "store"))
        execute_job(gp_spec(), store, db=db)
        out_path = str(tmp_path / "listing.json")
        assert main(["runs", "--store", str(tmp_path / "store"),
                     "--json", out_path]) == 0
        listing = json.load(open(out_path))
        entry = listing["runs"][0]
        # the exact key set GET /v1/jobs serves for store-backed runs
        assert set(entry) == set(store.list_runs()[0].summary())
        assert entry["state"] == "complete"
        assert entry["hpwl"] is not None

        # bare --json streams the same payload to stdout, nothing else
        capsys.readouterr()
        assert main(["runs", "--store", str(tmp_path / "store"),
                     "--json"]) == 0
        assert json.loads(capsys.readouterr().out) == listing

    @pytest.mark.slow
    def test_sigterm_drains_and_restart_resumes(self, tmp_path):
        """End-to-end: real daemon, real SIGTERM, bit-exact resume."""
        from repro.bookshelf import write_bookshelf

        aux = write_bookshelf(make_db(), str(tmp_path / "design"))
        spec = {"design": aux, "stages": ["gp"],
                "params": {"max_global_iters": 700,
                           "min_global_iters": 700}}
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        store_root = str(tmp_path / "runs")

        def launch():
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro", "serve", "--port", "0",
                 "--store", store_root, "--checkpoint-every", "10"],
                env=env, stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT, text=True)
            # the daemon prints its (ephemeral) URL on startup
            line = ""
            while "serving placements on " not in line:
                line = proc.stdout.readline()
                assert line, "server exited before announcing its URL"
            url = line.split("serving placements on ", 1)[1].split()[0]
            return proc, url

        proc, url = launch()
        try:
            client = PlacementClient(url)
            job_hash = client.submit(spec)["job_hash"]
            events_path = os.path.join(
                store_root, "runs", job_hash[:16], "events.jsonl")
            assert wait_for(
                lambda: len(list(read_events(events_path,
                                             type="iteration"))) >= 5,
                timeout=30)
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()

        # acceptance: no leased or running runs left behind
        store = RunStore(store_root)
        record = store.load(job_hash)
        assert record.state == "failed"
        assert not os.path.exists(record.lock_path)
        assert os.path.exists(record.checkpoint_path)

        # restart; the resubmitted hash resumes and completes
        proc, url = launch()
        try:
            client = PlacementClient(url)
            assert client.healthz()["status"] == "ok"
            resumed = client.submit(spec)
            assert resumed["job_hash"] == job_hash
            assert wait_for(
                lambda: client.job(job_hash)["state"]
                in ("complete", "failed"), timeout=60)
            view = client.job(job_hash)
            assert view["state"] == "complete"
            assert list(read_events(events_path, type="resume"))
            http_metrics = deterministic_metrics(view["metrics"])
        finally:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()

        # bit-exact against an uninterrupted in-process run
        reference = execute_job(
            JobSpec(design=DesignRef.parse(aux),
                    params=PlacementParams(max_global_iters=700,
                                           min_global_iters=700),
                    stages=("gp",)),
            RunStore(str(tmp_path / "ref")))
        assert reference.job_hash == job_hash
        assert http_metrics == deterministic_metrics(reference.metrics)
