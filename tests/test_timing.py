"""Tests for the STA substrate and timing-driven net weighting."""

import numpy as np
import pytest

from repro.core import PlacementParams
from repro.geometry import PlacementRegion
from repro.netlist import CellKind, Netlist
from repro.timing import (
    StaticTimingAnalysis,
    criticality_weights,
    timing_driven_place,
)


def chain_with_positions(positions, spacing_net=None):
    """c0 -> c1 -> ... chain at given x positions (driver = first pin)."""
    region = PlacementRegion(0, 0, 64, 16)
    netlist = Netlist("chain")
    for i, x in enumerate(positions):
        netlist.add_cell(f"c{i}", 1.0, 1.0, CellKind.MOVABLE, x=x, y=8.0)
    for i in range(len(positions) - 1):
        netlist.add_net(f"n{i}", [(i, 0.5, 0.5), (i + 1, 0.5, 0.5)])
    return netlist.compile(region)


class TestSTA:
    def test_chain_arrival_times(self):
        db = chain_with_positions([0.0, 10.0, 20.0])
        sta = StaticTimingAnalysis(db, cell_delay=1.0,
                                   wire_delay_per_unit=0.1)
        report = sta.run()
        # c0: 0; c1: 1 + 0.1*10 = 2; c2: 2 + 1 + 0.1*10 = 4
        np.testing.assert_allclose(report.arrival, [0.0, 2.0, 4.0])

    def test_critical_path_follows_chain(self):
        db = chain_with_positions([0.0, 10.0, 20.0, 30.0])
        report = StaticTimingAnalysis(db).run()
        assert report.critical_path == [0, 1, 2, 3]

    def test_zero_wns_without_clock(self):
        db = chain_with_positions([0.0, 5.0, 15.0])
        report = StaticTimingAnalysis(db).run()
        assert report.wns == pytest.approx(0.0, abs=1e-9)
        assert report.tns == pytest.approx(0.0, abs=1e-9)

    def test_tight_clock_creates_negative_slack(self):
        db = chain_with_positions([0.0, 10.0, 20.0])
        report = StaticTimingAnalysis(db, clock_period=1.0).run()
        assert report.wns < 0
        assert report.tns < 0

    def test_wire_delay_scales_with_placement(self):
        near = chain_with_positions([0.0, 1.0, 2.0])
        far = chain_with_positions([0.0, 20.0, 40.0])
        assert StaticTimingAnalysis(far).run().max_arrival > \
            StaticTimingAnalysis(near).run().max_arrival

    def test_positions_override(self):
        db = chain_with_positions([0.0, 10.0, 20.0])
        sta = StaticTimingAnalysis(db)
        x, y = db.positions()
        x[2] = 50.0
        assert sta.run(x, y).max_arrival > sta.run().max_arrival

    def test_branching_takes_worst_path(self):
        region = PlacementRegion(0, 0, 64, 16)
        netlist = Netlist("branch")
        netlist.add_cell("src", 1, 1, CellKind.MOVABLE, x=0, y=8)
        netlist.add_cell("near", 1, 1, CellKind.MOVABLE, x=2, y=8)
        # the far branch detours vertically, so its total wire is longer
        netlist.add_cell("far", 1, 1, CellKind.MOVABLE, x=40, y=2)
        netlist.add_cell("out", 1, 1, CellKind.MOVABLE, x=44, y=8)
        netlist.add_net("a", [(0, 0, 0), (1, 0, 0), (2, 0, 0)])
        netlist.add_net("b", [(1, 0, 0), (3, 0, 0)])
        netlist.add_net("c", [(2, 0, 0), (3, 0, 0)])
        db = netlist.compile(region)
        report = StaticTimingAnalysis(db).run()
        assert report.critical_path[-1] == 3
        assert 2 in report.critical_path  # through the far branch

    def test_cycles_handled(self):
        region = PlacementRegion(0, 0, 32, 16)
        netlist = Netlist("loop")
        netlist.add_cell("a", 1, 1, CellKind.MOVABLE, x=1, y=8)
        netlist.add_cell("b", 1, 1, CellKind.MOVABLE, x=5, y=8)
        netlist.add_net("ab", [(0, 0, 0), (1, 0, 0)])
        netlist.add_net("ba", [(1, 0, 0), (0, 0, 0)])  # back edge
        db = netlist.compile(region)
        report = StaticTimingAnalysis(db).run()
        assert np.isfinite(report.arrival).all()

    def test_net_slack_finite_for_driven_nets(self):
        db = chain_with_positions([0.0, 10.0, 20.0])
        report = StaticTimingAnalysis(db).run()
        assert np.isfinite(report.net_slack).all()


class TestNetWeighting:
    def test_critical_nets_weighted_up(self):
        """A non-critical stub net gets a lower weight than path nets."""
        region = PlacementRegion(0, 0, 64, 16)
        netlist = Netlist("stub")
        netlist.add_cell("src", 1, 1, CellKind.MOVABLE, x=0, y=8)
        netlist.add_cell("mid", 1, 1, CellKind.MOVABLE, x=30, y=8)
        netlist.add_cell("end", 1, 1, CellKind.MOVABLE, x=60, y=8)
        netlist.add_cell("stub", 1, 1, CellKind.MOVABLE, x=1, y=8)
        netlist.add_net("long1", [(0, 0, 0), (1, 0, 0)])
        netlist.add_net("long2", [(1, 0, 0), (2, 0, 0)])
        netlist.add_net("stubnet", [(0, 0, 0), (3, 0, 0)])
        db = netlist.compile(region)
        report = StaticTimingAnalysis(db).run()
        weights = criticality_weights(report, db.net_weight.copy())
        assert weights[0] > weights[2]
        assert weights[1] > weights[2]

    def test_mean_weight_preserved(self):
        db = chain_with_positions([0.0, 10.0, 25.0, 26.0])
        report = StaticTimingAnalysis(db).run()
        weights = criticality_weights(report, db.net_weight.copy())
        assert weights.mean() == pytest.approx(1.0)

    def test_max_weight_bounds_multiplier(self):
        db = chain_with_positions([0.0, 30.0, 31.0])
        report = StaticTimingAnalysis(db).run()
        base = db.net_weight.copy()
        weights = criticality_weights(report, base, max_weight=4.0)
        # before renormalization the multiplier is at most max_weight
        assert weights.max() / weights.min() <= 4.0 + 1e-9


class TestTimingDrivenFlow:
    def test_reduces_critical_delay(self, tiny_design):
        db = tiny_design
        params = PlacementParams(max_global_iters=150, detailed=False)
        result = timing_driven_place(db, params, rounds=2)
        assert result.max_arrival <= result.initial_max_arrival * 1.02
        assert result.rounds == 2
        assert len(result.reports) == 3

    def test_restores_original_weights(self, tiny_design):
        db = tiny_design
        before = db.net_weight.copy()
        params = PlacementParams(max_global_iters=60, detailed=False,
                                 min_global_iters=1)
        timing_driven_place(db, params, rounds=1)
        np.testing.assert_allclose(db.net_weight, before)
