"""Abacus cluster math verified against brute-force quadratic solves."""

import itertools

import numpy as np
import pytest

from repro.lg.abacus import _Cluster, _legalize_segment


def brute_force_segment(desired, widths, weights, lo, hi, grid=0.25):
    """Exhaustive search over packed, ordered placements on a fine grid.

    Order is fixed (Abacus preserves it); the only freedom is each
    cell's position subject to packing, so positions are determined by
    the gaps before each cell.  We search gap allocations on a grid.
    """
    n = len(desired)
    total_width = sum(widths)
    slack = hi - lo - total_width
    steps = int(round(slack / grid))
    best = None
    # enumerate split points of the slack across n+1 gaps (coarse)
    for splits in itertools.combinations_with_replacement(
            range(steps + 1), n):
        gaps = [splits[0]] + [
            splits[i] - splits[i - 1] for i in range(1, n)
        ]
        if any(g < 0 for g in gaps):
            continue
        xs = []
        cursor = lo
        for i in range(n):
            cursor += gaps[i] * grid
            xs.append(cursor)
            cursor += widths[i]
        if cursor > hi + 1e-9:
            continue
        cost = sum(
            weights[i] * (xs[i] - desired[i]) ** 2 for i in range(n)
        )
        if best is None or cost < best[0]:
            best = (cost, xs)
    return best


class TestClusterAlgebra:
    def test_single_cell_sits_at_desired(self):
        cluster = _Cluster()
        cluster.add_cell(0, desired=5.0, width=2.0, weight=1.0)
        cluster.place(0.0, 20.0)
        assert cluster.x == 5.0

    def test_single_cell_clamped(self):
        cluster = _Cluster()
        cluster.add_cell(0, desired=30.0, width=2.0, weight=1.0)
        cluster.place(0.0, 20.0)
        assert cluster.x == 18.0

    def test_merged_cluster_weighted_mean(self):
        # cells of width 1 desiring 0 and 10: merged cluster of width 2
        # minimizes w1(x-0)^2 + w2(x+1-10)^2
        cluster = _Cluster()
        cluster.add_cell(0, 0.0, 1.0, weight=1.0)
        other = _Cluster()
        other.add_cell(1, 10.0, 1.0, weight=3.0)
        cluster.add_cluster(other)
        cluster.place(-100.0, 100.0)
        # d/dx [ (x-0)^2 + 3(x+1-10)^2 ] = 0 -> x = (0 + 3*9)/4
        assert cluster.x == pytest.approx(27.0 / 4.0)

    def test_heavier_cell_dominates(self):
        light = _Cluster()
        light.add_cell(0, 0.0, 1.0, weight=1.0)
        heavy = _Cluster()
        heavy.add_cell(1, 10.0, 1.0, weight=100.0)
        light.add_cluster(heavy)
        light.place(-100.0, 100.0)
        assert light.x > 8.0


class TestSegmentOptimality:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        n = 3
        widths = {i: float(rng.integers(1, 3)) for i in range(n)}
        desired = np.sort(rng.uniform(0, 10, n))
        desired_map = {i: desired[i] for i in range(n)}
        weights = {i: 1.0 for i in range(n)}
        lo, hi = 0.0, 12.0
        placed = _legalize_segment(
            list(range(n)),
            {i: desired_map[i] for i in range(n)},
            widths, weights, lo, hi,
        )
        cost = sum(
            (placed[i] - desired_map[i]) ** 2 for i in range(n)
        )
        brute = brute_force_segment(
            [desired_map[i] for i in range(n)],
            [widths[i] for i in range(n)],
            [1.0] * n, lo, hi,
        )
        assert brute is not None
        # Abacus is optimal for ordered packing; allow grid resolution
        assert cost <= brute[0] + 0.15

    def test_non_overlapping_output(self):
        widths = {0: 2.0, 1: 2.0, 2: 2.0}
        desired = {0: 5.0, 1: 5.0, 2: 5.0}
        weights = {0: 1.0, 1: 1.0, 2: 1.0}
        placed = _legalize_segment([0, 1, 2], desired, widths, weights,
                                   0.0, 20.0)
        xs = sorted(placed.values())
        assert xs[1] >= xs[0] + 2.0 - 1e-9
        assert xs[2] >= xs[1] + 2.0 - 1e-9

    def test_overfull_segment_packs_from_lo(self):
        widths = {0: 5.0, 1: 5.0}
        desired = {0: 9.0, 1: 9.5}
        weights = {0: 1.0, 1: 1.0}
        placed = _legalize_segment([0, 1], desired, widths, weights,
                                   0.0, 10.0)
        assert placed[0] == pytest.approx(0.0)
        assert placed[1] == pytest.approx(5.0)
