"""Tests for the autograd tensor."""

import numpy as np
import pytest

from repro.nn import Tensor, Parameter, no_grad
from repro.nn import functional as F


class TestTensorBasics:
    def test_wraps_array(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.dtype == np.float64

    def test_dtype_override(self):
        t = Tensor([1.0, 2.0], dtype=np.float32)
        assert t.dtype == np.float32

    def test_int_input_promoted_to_float(self):
        t = Tensor([1, 2, 3])
        assert np.issubdtype(t.dtype, np.floating)

    def test_item_scalar(self):
        assert Tensor(3.5).item() == 3.5

    def test_item_nonscalar_raises(self):
        with pytest.raises(Exception):
            Tensor([1.0, 2.0]).item()

    def test_parameter_requires_grad(self):
        p = Parameter([1.0, 2.0])
        assert p.requires_grad

    def test_detach_drops_grad(self):
        p = Parameter([1.0])
        assert not p.detach().requires_grad

    def test_clone_independent(self):
        p = Parameter([1.0, 2.0])
        q = p.clone()
        q.data[0] = 9.0
        assert p.data[0] == 1.0

    def test_len(self):
        assert len(Tensor([1.0, 2.0, 3.0])) == 3

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Parameter([1.0]))


class TestBackward:
    def test_sum_gradient_is_ones(self):
        p = Parameter([1.0, 2.0, 3.0])
        p.sum().backward()
        np.testing.assert_allclose(p.grad, np.ones(3))

    def test_chain_rule_through_mul(self):
        p = Parameter([2.0, 3.0])
        (p * p).sum().backward()
        np.testing.assert_allclose(p.grad, [4.0, 6.0])

    def test_add_broadcast_scalar(self):
        p = Parameter([1.0, 2.0])
        (p + 1.0).sum().backward()
        np.testing.assert_allclose(p.grad, [1.0, 1.0])

    def test_sub_gradients(self):
        a = Parameter([5.0])
        b = Parameter([3.0])
        (a - b).sum().backward()
        assert a.grad[0] == 1.0
        assert b.grad[0] == -1.0

    def test_rsub(self):
        p = Parameter([3.0])
        (10.0 - p).sum().backward()
        assert p.grad[0] == -1.0

    def test_div_gradients(self):
        a = Parameter([6.0])
        b = Parameter([2.0])
        (a / b).sum().backward()
        assert a.grad[0] == pytest.approx(0.5)
        assert b.grad[0] == pytest.approx(-1.5)

    def test_neg(self):
        p = Parameter([4.0])
        (-p).sum().backward()
        assert p.grad[0] == -1.0

    def test_grad_accumulates_across_backwards(self):
        p = Parameter([1.0])
        p.sum().backward()
        p.sum().backward()
        assert p.grad[0] == 2.0

    def test_zero_grad(self):
        p = Parameter([1.0])
        p.sum().backward()
        p.zero_grad()
        assert p.grad is None

    def test_shared_subexpression_accumulates(self):
        p = Parameter([2.0])
        y = p * 3.0
        z = (y + y).sum()
        z.backward()
        assert p.grad[0] == pytest.approx(6.0)

    def test_backward_nonscalar_requires_grad_arg(self):
        p = Parameter([1.0, 2.0])
        out = p * 2.0
        with pytest.raises(RuntimeError):
            out.backward()

    def test_backward_explicit_grad(self):
        p = Parameter([1.0, 2.0])
        (p * 2.0).backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(p.grad, [2.0, 20.0])

    def test_no_grad_context(self):
        p = Parameter([1.0])
        with no_grad():
            out = p * 2.0
        assert out._creator is None
        assert not out.requires_grad

    def test_no_grad_restores(self):
        p = Parameter([1.0])
        with no_grad():
            pass
        out = p * 2.0
        assert out.requires_grad

    def test_constant_inputs_get_no_grad(self):
        p = Parameter([1.0])
        c = Tensor([5.0])
        (p * c).sum().backward()
        assert c.grad is None


class TestFunctional:
    def test_abs_gradient_signs(self):
        p = Parameter([-2.0, 3.0])
        F.absolute(p).sum().backward()
        np.testing.assert_allclose(p.grad, [-1.0, 1.0])

    def test_square(self):
        p = Parameter([3.0])
        F.square(p).sum().backward()
        assert p.grad[0] == 6.0

    def test_square_matches_mul(self):
        p = Parameter([1.5, -2.5])
        np.testing.assert_allclose(
            F.square(p).numpy(), (p * p).numpy()
        )

    def test_tensor_sum_value(self):
        assert F.tensor_sum(Tensor([1.0, 2.0, 3.0])).item() == 6.0
