"""Tests for the perf subsystem: workspaces, profiler, pooled kernels.

Covers the zero-allocation hot-loop contract: pooled kernels must agree
with the reference kernels to near machine precision and must not
allocate large temporaries in steady state.
"""

from __future__ import annotations

import time
import tracemalloc

import numpy as np
import pytest

from repro.geometry import BinGrid, PlacementRegion
from repro.netlist import CellKind, Netlist
from repro.nn import Parameter, Tensor
from repro.ops.density_op import ElectricDensity
from repro.ops.density_overflow import density_overflow, fixed_free_area
from repro.ops.lse_wirelength import LogSumExpWirelength
from repro.ops.wa_wirelength import STRATEGIES, WeightedAverageWirelength
from repro.perf import NullWorkspace, Profiler, Workspace, active, profiled


def random_db(seed=7, num_cells=120, num_nets=90, size=64.0):
    """A randomized netlist including degree-1 nets and terminals."""
    rng = np.random.default_rng(seed)
    region = PlacementRegion(0.0, 0.0, size, size, row_height=1.0,
                             site_width=1.0)
    netlist = Netlist("rand")
    for i in range(num_cells):
        netlist.add_cell(
            f"c{i}", 1.0 + float(rng.integers(0, 3)), 1.0,
            CellKind.MOVABLE,
            x=float(rng.uniform(1, size - 4)),
            y=float(rng.integers(1, int(size) - 2)),
        )
    netlist.add_cell("pad0", 0.0, 0.0, CellKind.TERMINAL, x=0.0, y=size / 2)
    netlist.add_cell("pad1", 0.0, 0.0, CellKind.TERMINAL, x=size, y=size / 2)
    for e in range(num_nets):
        if e % 9 == 0:
            degree = 1  # degree-1 nets must contribute zero WL and grad
        else:
            degree = int(rng.integers(2, 8))
        cells = rng.choice(num_cells, size=degree, replace=False)
        pins = [
            (int(c), float(rng.uniform(0, 1)), float(rng.uniform(0, 1)))
            for c in cells
        ]
        if e % 13 == 0:
            pins.append((num_cells + e % 2, 0.0, 0.0))
        netlist.add_net(f"e{e}", pins)
    return netlist.compile(region)


def pos_vector(db):
    return np.concatenate([db.cell_x, db.cell_y])


# ---------------------------------------------------------------------------
# Workspace
# ---------------------------------------------------------------------------
class TestWorkspace:
    def test_acquire_is_persistent(self):
        ws = Workspace()
        a = ws.acquire("a", 16)
        b = ws.acquire("a", 16)
        assert a is b

    def test_acquire_reallocates_on_shape_change(self):
        ws = Workspace()
        a = ws.acquire("a", 16)
        b = ws.acquire("a", 32)
        assert a is not b and b.shape == (32,)

    def test_acquire_reallocates_on_dtype_change(self):
        ws = Workspace()
        a = ws.acquire("a", 8, np.float64)
        b = ws.acquire("a", 8, np.float32)
        assert b.dtype == np.float32 and a is not b

    def test_acquire_2d(self):
        ws = Workspace()
        a = ws.acquire("m", (4, 5))
        assert a.shape == (4, 5)
        assert ws.acquire("m", (4, 5)) is a

    def test_zeros_cleared(self):
        ws = Workspace()
        a = ws.acquire("z", 8)
        a.fill(7.0)
        assert not ws.zeros("z", 8).any()

    def test_acquire_flat_views_capacity(self):
        ws = Workspace()
        a = ws.acquire_flat("f", 10)
        base = a.base
        b = ws.acquire_flat("f", 6)
        assert b.base is base and b.shape == (6,)
        c = ws.acquire_flat("f", 11)  # grows geometrically
        assert c.base is not base and c.base.size >= 20

    def test_arange(self):
        ws = Workspace()
        np.testing.assert_array_equal(ws.arange(5), np.arange(5))
        big = ws.arange(9)
        np.testing.assert_array_equal(big, np.arange(9))

    def test_nbytes_len_clear(self):
        ws = Workspace()
        ws.acquire("a", 8, np.float64)
        ws.acquire_flat("b", 4, np.float64)
        assert len(ws) == 2 and ws.nbytes >= 8 * 8
        ws.clear()
        assert len(ws) == 0 and ws.nbytes == 0

    def test_null_workspace_allocates_fresh(self):
        ws = NullWorkspace()
        assert ws.acquire("a", 8) is not ws.acquire("a", 8)
        assert not ws.zeros("a", 8).any()
        assert ws.acquire_flat("f", 3).shape == (3,)
        np.testing.assert_array_equal(ws.arange(4), np.arange(4))


# ---------------------------------------------------------------------------
# Profiler
# ---------------------------------------------------------------------------
class TestProfiler:
    def test_records_calls_and_time(self):
        with Profiler() as prof:
            for _ in range(3):
                with profiled("op.a"):
                    time.sleep(0.001)
        stats = prof.stats["op.a"]
        assert stats.calls == 3
        assert stats.seconds >= 0.003
        assert stats.self_seconds == pytest.approx(stats.seconds)

    def test_nesting_self_time(self):
        with Profiler() as prof:
            with profiled("outer"):
                with profiled("inner"):
                    time.sleep(0.002)
        outer = prof.stats["outer"]
        inner = prof.stats["inner"]
        assert outer.seconds >= inner.seconds
        assert outer.self_seconds == pytest.approx(
            outer.seconds - inner.seconds
        )

    def test_inactive_is_noop(self):
        assert active() is None
        with profiled("nothing"):
            pass  # no profiler installed: must not raise or record

    def test_active_restored_on_exit(self):
        with Profiler() as outer:
            assert active() is outer
            with Profiler() as inner:
                assert active() is inner
            assert active() is outer
        assert active() is None

    def test_table_and_as_dict(self):
        with Profiler() as prof:
            with profiled("op.x"):
                pass
        table = prof.table(title="breakdown")
        assert "breakdown" in table and "op.x" in table
        d = prof.as_dict()
        assert d["op.x"]["calls"] == 1

    def test_trace_alloc_counts_bytes(self):
        with Profiler(trace_alloc=True) as prof:
            with profiled("alloc"):
                _ = np.empty(1 << 16)  # 512 KB
        stats = prof.stats["alloc"]
        assert stats.peak_bytes >= (1 << 16) * 8


# ---------------------------------------------------------------------------
# cross-strategy / pooled-vs-reference regression
# ---------------------------------------------------------------------------
class TestCrossStrategyRegression:
    def _run(self, op, pos):
        p = Parameter(pos.copy())
        out = op(p)
        out.backward()
        return out.item(), p.grad.copy()

    def test_wa_strategies_and_pooling_agree(self):
        db = random_db()
        pos = pos_vector(db)
        reference = None
        for strategy in STRATEGIES:
            for pooled in (False, True):
                op = WeightedAverageWirelength(
                    db, gamma=0.8, strategy=strategy, pooled=pooled
                )
                value, grad = self._run(op, pos)
                if reference is None:
                    reference = (value, grad)
                    continue
                assert value == pytest.approx(reference[0], rel=1e-10)
                np.testing.assert_allclose(
                    grad, reference[1], rtol=1e-10, atol=1e-10
                )

    def test_degree_one_nets_contribute_nothing(self):
        db = random_db()
        degree_one = np.flatnonzero(db.net_degree == 1)
        assert degree_one.size > 0, "fixture must include degree-1 nets"
        pos = pos_vector(db)
        for strategy in STRATEGIES:
            op = WeightedAverageWirelength(db, gamma=0.8, strategy=strategy)
            base, grad = self._run(op, pos)
            # moving the lone pin of a degree-1 net changes nothing
            cell = db.pin_cell[db.net2pin[db.net2pin_start[degree_one[0]]]]
            if db.movable[cell]:
                trial = pos.copy()
                trial[cell] += 3.0
                moved = op(Tensor(trial)).item()
                only = db.net_degree[db.pin_net[
                    np.flatnonzero(db.pin_cell == cell)
                ]]
                if (only == 1).all():
                    assert moved == pytest.approx(base)

    def test_lse_pooling_agrees(self):
        db = random_db(seed=17)
        pos = pos_vector(db)
        ref = None
        for pooled in (False, True):
            op = LogSumExpWirelength(db, gamma=0.8, pooled=pooled)
            value, grad = self._run(op, pos)
            if ref is None:
                ref = (value, grad)
                continue
            assert value == pytest.approx(ref[0], rel=1e-10)
            np.testing.assert_allclose(grad, ref[1], rtol=1e-10, atol=1e-10)

    def test_density_pooling_agrees(self):
        db = random_db(seed=23)
        grid = BinGrid(db.region, 16, 16)
        pos = pos_vector(db)
        ref = None
        for pooled in (False, True):
            op = ElectricDensity(db, grid, pooled=pooled)
            value, grad = self._run(op, pos)
            if ref is None:
                ref = (value, grad)
                continue
            assert value == pytest.approx(ref[0], rel=1e-9)
            np.testing.assert_allclose(grad, ref[1], rtol=1e-9, atol=1e-9)

    def test_density_overflow_pooled_agrees(self):
        db = random_db(seed=29)
        grid = BinGrid(db.region, 16, 16)
        base = density_overflow(db, grid, target_density=0.8)
        pooled = density_overflow(
            db, grid, target_density=0.8,
            free_area=fixed_free_area(db, grid), workspace=Workspace(),
        )
        assert pooled == pytest.approx(base, rel=1e-12)

    def test_shared_workspace_across_ops(self):
        """Prefixed buffer names keep ops on one pool from clobbering."""
        db = random_db(seed=31)
        grid = BinGrid(db.region, 16, 16)
        pos = pos_vector(db)
        ws = Workspace()
        wl = WeightedAverageWirelength(db, gamma=0.8, workspace=ws)
        den = ElectricDensity(db, grid, workspace=ws)
        solo_wl = self._run(
            WeightedAverageWirelength(db, gamma=0.8), pos
        )
        solo_den = self._run(ElectricDensity(db, grid), pos)
        for _ in range(2):  # second pass runs on warm buffers
            got_wl = self._run(wl, pos)
            got_den = self._run(den, pos)
            assert got_wl[0] == pytest.approx(solo_wl[0])
            np.testing.assert_allclose(got_wl[1], solo_wl[1], atol=1e-12)
            assert got_den[0] == pytest.approx(solo_den[0])
            np.testing.assert_allclose(got_den[1], solo_den[1], atol=1e-12)


# ---------------------------------------------------------------------------
# zero-allocation steady state
# ---------------------------------------------------------------------------
class TestZeroAllocation:
    def test_pooled_merged_steady_state_allocates_nothing_large(self):
        db = random_db(seed=41, num_cells=1500, num_nets=1200)
        op = WeightedAverageWirelength(db, gamma=0.9, strategy="merged",
                                       pooled=True)
        pos = pos_vector(db)
        p = Parameter(pos)
        for _ in range(3):  # warm the pools and the grad buffer
            p.zero_grad()
            op(p).backward()
        pin_bytes = op.pin_cell_sorted.shape[0] * 8
        assert pin_bytes > 8 * 4096, "fixture too small to detect leaks"
        tracemalloc.start()
        try:
            p.zero_grad()
            op(p).backward()  # settle tracemalloc bookkeeping
            base = tracemalloc.get_traced_memory()[0]
            tracemalloc.reset_peak()
            for _ in range(4):
                p.zero_grad()
                op(p).backward()
            current, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        # steady state must not allocate even one pin-sized temporary
        assert peak - base < pin_bytes // 2, (peak - base, pin_bytes)
        assert current - base < 8192, (current - base,)

    def test_unpooled_merged_allocates(self):
        """The baseline really does allocate (the bench's 'before')."""
        db = random_db(seed=41, num_cells=1500, num_nets=1200)
        op = WeightedAverageWirelength(db, gamma=0.9, strategy="merged",
                                       pooled=False)
        p = Parameter(pos_vector(db))
        for _ in range(2):
            p.zero_grad()
            op(p).backward()
        pin_bytes = op.pin_cell_sorted.shape[0] * 8
        tracemalloc.start()
        try:
            base = tracemalloc.get_traced_memory()[0]
            tracemalloc.reset_peak()
            p.zero_grad()
            op(p).backward()
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert peak - base > 2 * pin_bytes
