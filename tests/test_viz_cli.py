"""Tests for visualization helpers and the command-line interface."""

import os

import numpy as np
import pytest

from repro.viz import ascii_density_map, placement_svg, write_placement_svg
from repro.viz.svg import _heat_color


class TestSvg:
    def test_contains_all_cells(self, small_db):
        svg = placement_svg(small_db)
        rects = svg.count("<rect")
        circles = svg.count("<circle")
        # background + die outline + cells; pads are circles
        assert circles == int(small_db.terminal.sum())
        assert rects >= small_db.num_cells - circles

    def test_valid_xml_structure(self, small_db):
        import xml.etree.ElementTree as ET

        ET.fromstring(placement_svg(small_db))

    def test_heat_overlay(self, small_db):
        heat = np.zeros((8, 8))
        heat[3, 3] = 1.0
        svg = placement_svg(small_db, heat=heat)
        assert "rgb(" in svg

    def test_heat_colors(self):
        assert _heat_color(0.0) == "rgb(255,255,255)"
        assert _heat_color(1.0) == "rgb(255,0,0)"
        assert _heat_color(0.5) == "rgb(255,255,0)"

    def test_write_to_file(self, small_db, tmp_path):
        path = write_placement_svg(small_db, str(tmp_path / "p.svg"))
        assert os.path.exists(path)
        with open(path) as handle:
            assert handle.read().startswith("<svg")

    def test_position_override(self, small_db):
        x, y = small_db.positions()
        x += 1.0
        svg_moved = placement_svg(small_db, x, y)
        assert svg_moved != placement_svg(small_db)

    def test_movable_macros_styled_differently(self):
        from repro.benchgen import CircuitSpec, generate

        db = generate(CircuitSpec(
            name="m", num_cells=50, num_macros=2,
            macro_area_fraction=0.1, movable_macros=True, seed=1,
        ))
        assert "#c0504d" in placement_svg(db)


class TestAsciiMap:
    def test_peak_is_darkest(self):
        values = np.zeros((16, 16))
        values[4, 4] = 10.0
        art = ascii_density_map(values, max_cols=16)
        assert "@" in art

    def test_shape(self):
        art = ascii_density_map(np.ones((32, 16)), max_cols=32)
        lines = art.splitlines()
        assert len(lines) == 16
        assert len(lines[0]) == 32

    def test_downsampling(self):
        art = ascii_density_map(np.ones((64, 64)), max_cols=16)
        assert len(art.splitlines()[0]) <= 32

    def test_orientation_top_is_high_y(self):
        values = np.zeros((8, 8))
        values[:, 7] = 5.0  # high y
        art = ascii_density_map(values, max_cols=8)
        lines = art.splitlines()
        assert "@" in lines[0]
        assert "@" not in lines[-1]

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            ascii_density_map(np.ones(8))

    def test_all_zero_map(self):
        art = ascii_density_map(np.zeros((8, 8)), max_cols=8)
        assert set(art.replace("\n", "")) == {" "}


class TestCli:
    def run_cli(self, *argv) -> int:
        from repro.cli import main

        return main(list(argv))

    def test_generate_writes_bookshelf(self, tmp_path, capsys):
        out = tmp_path / "gen"
        code = self.run_cli("generate", "clidemo", "--cells", "200",
                            "--output", str(out))
        assert code == 0
        assert (out / "clidemo.aux").exists()

    def test_place_and_report_roundtrip(self, tmp_path, capsys):
        gen_dir = tmp_path / "gen"
        self.run_cli("generate", "c2", "--cells", "200", "--output",
                     str(gen_dir), "--seed", "3")
        out_dir = tmp_path / "out"
        svg = tmp_path / "plot.svg"
        code = self.run_cli("place", str(gen_dir / "c2.aux"),
                            "--output", str(out_dir), "--svg", str(svg),
                            "--no-dp")
        assert code == 0
        assert (out_dir / "c2.aux").exists()
        assert svg.exists()
        captured = capsys.readouterr()
        assert "HPWL" in captured.out
        assert "legal    : True" in captured.out

        code = self.run_cli("report", str(out_dir / "c2.aux"),
                            "--density-map")
        assert code == 0
        assert "utilization" in capsys.readouterr().out

    def test_route_command(self, tmp_path, capsys):
        gen_dir = tmp_path / "gen"
        self.run_cli("generate", "c3", "--cells", "200", "--output",
                     str(gen_dir), "--seed", "5")
        code = self.run_cli("route", str(gen_dir / "c3.aux"),
                            "--tiles", "8")
        assert code == 0
        out = capsys.readouterr().out
        assert "RC" in out
        assert "calibrated capacity" in out

    def test_place_suite_design(self, capsys):
        code = self.run_cli("place", "tiny1", "--no-dp", "--scale", "400")
        assert code == 0
        assert "HPWL" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            self.run_cli("frobnicate")
