"""Tests for the batch placement service (repro.runner).

Covers the three acceptance criteria of the runner subsystem:

- resubmitting a byte-identical job is a cache hit: no placement
  iterations run (verified by the absence of new ``iteration`` events),
- a run killed mid-GP resumes from its on-disk checkpoint and finishes
  with *bit-exact* positions/HPWL versus the uninterrupted run (both
  float32 and float64),
- a 3x3 parameter sweep through one scheduler produces nine populated
  run directories,

plus the spec/hash semantics, store/event/checkpoint plumbing,
scheduler policy (retry, backoff, failure isolation, warm design
reuse) and the CLI verbs.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.benchgen import CircuitSpec, generate
from repro.core import DEFAULT_SEED, PlacementParams
from repro.runner import (
    DesignRef,
    EventLog,
    EventType,
    JobSpec,
    PlacerCheckpoint,
    ResultCache,
    RunLocked,
    RunStore,
    Scheduler,
    count_events,
    execute_job,
    expand_sweep,
    read_events,
)
from repro.runner.store import (
    STATUS_COMPLETE,
    STATUS_FAILED,
    STATUS_RUNNING,
    STATUS_TIMEOUT,
    _atomic_write_json,
)


def make_db(seed=5, num_cells=60):
    return generate(CircuitSpec(
        name="runnertest", num_cells=num_cells, num_ios=8,
        utilization=0.6, seed=seed,
    ))


def gp_spec(**overrides) -> JobSpec:
    """A fast GP-only job spec for a pre-loaded database."""
    params = PlacementParams(max_global_iters=120, **overrides)
    return JobSpec(design=DesignRef("runnertest", scale=1),
                   params=params, stages=("gp",))


def _dead_pid() -> int:
    """A pid that existed a moment ago and is certainly gone now."""
    import subprocess

    proc = subprocess.Popen(["true"])
    proc.wait()  # reaped: os.kill(pid, 0) now raises ProcessLookupError
    return proc.pid


# ----------------------------------------------------------------------
class TestJobSpec:
    def test_design_ref_parse(self):
        ref = DesignRef.parse("designs/adaptec1.aux", scale=7)
        assert ref.source == "bookshelf"
        assert ref.scale == 7
        assert DesignRef.parse("tiny1").source == "suite"
        with pytest.raises(ValueError):
            DesignRef(name="x", source="magnetic-tape")

    def test_stage_validation(self):
        with pytest.raises(ValueError):
            JobSpec(design=DesignRef("a"), stages=("lg",))
        with pytest.raises(ValueError):
            JobSpec(design=DesignRef("a"), stages=("gp", "dp"))
        with pytest.raises(ValueError):
            JobSpec(design=DesignRef("a"), stages=("gp", "warp"))

    def test_effective_params_fold_stages(self):
        spec = JobSpec(design=DesignRef("a"), stages=("gp",))
        params = spec.effective_params()
        assert not params.legalize and not params.detailed
        spec = JobSpec(design=DesignRef("a"),
                       stages=("gp", "lg", "dp", "route"))
        params = spec.effective_params()
        assert params.legalize and params.detailed and params.routability

    def test_dict_roundtrip_preserves_hash(self):
        db = make_db()
        spec = gp_spec(seed=9, target_density=0.9)
        clone = JobSpec.from_dict(json.loads(
            json.dumps(spec.to_dict())))
        assert clone.job_hash(db) == spec.job_hash(db)
        assert clone.canonical_json() == spec.canonical_json()

    def test_hash_sensitivity(self):
        db = make_db()
        base = gp_spec()
        assert base.with_param_overrides(seed=1).job_hash(db) \
            != base.job_hash(db)
        assert base.with_param_overrides(target_density=0.8).job_hash(db) \
            != base.job_hash(db)
        # stage selection is part of the identity
        lg = JobSpec(design=base.design, params=base.params,
                     stages=("gp", "lg"))
        assert lg.job_hash(db) != base.job_hash(db)

    def test_hash_neutral_verbose(self):
        db = make_db()
        base = gp_spec()
        assert base.with_param_overrides(verbose=True).job_hash(db) \
            == base.job_hash(db)

    def test_hash_tracks_netlist_content(self):
        spec = gp_spec()
        assert spec.job_hash(make_db(seed=5)) \
            == spec.job_hash(make_db(seed=5))
        assert spec.job_hash(make_db(seed=5)) \
            != spec.job_hash(make_db(seed=6))

    def test_from_dict_rejects_newer_schema(self):
        data = gp_spec().to_dict()
        data["schema"] = 999
        with pytest.raises(ValueError):
            JobSpec.from_dict(data)


# ----------------------------------------------------------------------
class TestEvents:
    def test_roundtrip_and_counts(self, tmp_path):
        path = str(tmp_path / "ev.jsonl")
        with EventLog(path) as log:
            log.emit(EventType.RUN_START, design="d")
            log.emit(EventType.ITERATION, iteration=1, hpwl=10.0)
            log.emit(EventType.ITERATION, iteration=2, hpwl=9.0)
        events = list(read_events(path))
        assert [e["type"] for e in events] \
            == ["run_start", "iteration", "iteration"]
        assert events[1]["hpwl"] == 10.0
        assert count_events(path) == {"run_start": 1, "iteration": 2}

    def test_torn_tail_tolerated(self, tmp_path):
        path = str(tmp_path / "ev.jsonl")
        with EventLog(path) as log:
            log.emit(EventType.ITERATION, iteration=1)
        with open(path, "a") as handle:
            handle.write('{"type": "iterat')  # SIGKILL mid-write
        assert len(list(read_events(path))) == 1
        assert list(read_events(path, type="iteration"))[0]["iteration"] == 1


# ----------------------------------------------------------------------
class TestStoreAndCheckpoint:
    def test_store_layout_and_status(self, tmp_path):
        store = RunStore(str(tmp_path / "store"))
        spec = gp_spec()
        handle = store.open_run(spec, "ab" * 32)
        handle.set_status("running", attempts=1)
        handle.set_status(STATUS_COMPLETE, attempts=2)
        handle.write_metrics({"hpwl": {"final": 1.0}})
        handle.close()
        record = store.load("abab")
        assert record.state == STATUS_COMPLETE
        assert record.status["attempts"] == 2
        assert "created" in record.status
        assert record.load_spec().canonical_json() == spec.canonical_json()

    def test_load_by_prefix_rejects_ambiguity(self, tmp_path):
        store = RunStore(str(tmp_path / "store"))
        spec = gp_spec()
        store.open_run(spec, "aa" + "0" * 62).close()
        store.open_run(spec, "aa" + "1" * 62).close()
        with pytest.raises(KeyError):
            store.load("aa")
        with pytest.raises(KeyError):
            store.load("zz")
        assert store.load("aa0").job_hash == "aa" + "0" * 62

    def test_checkpoint_roundtrip_and_guards(self, tmp_path):
        path = str(tmp_path / "c" / "ckpt.pkl")
        state = {"pos": np.arange(4.0), "iteration": 30}
        PlacerCheckpoint(job_hash="x" * 64, iteration=30,
                         loop_state=state).save(path)
        ckpt = PlacerCheckpoint.load(path, expect_job_hash="x" * 64)
        assert ckpt.iteration == 30
        np.testing.assert_array_equal(ckpt.loop_state["pos"],
                                      state["pos"])
        with pytest.raises(ValueError):
            PlacerCheckpoint.load(path, expect_job_hash="y" * 64)


# ----------------------------------------------------------------------
class TestCacheHit:
    def test_identical_resubmission_runs_zero_iterations(self, tmp_path):
        """Acceptance: cache hit = no placement work, by event log."""
        db = make_db()
        store = RunStore(str(tmp_path / "store"))
        cache = ResultCache(store)
        spec = gp_spec()

        first = execute_job(spec, store, cache=cache, db=db)
        assert first.ok and not first.cached
        iters_before = count_events(
            os.path.join(first.directory, "events.jsonl"))["iteration"]
        assert iters_before > 0

        second = execute_job(spec, store, cache=cache, db=db)
        assert second.ok and second.cached
        assert second.metrics["hpwl"]["final"] \
            == first.metrics["hpwl"]["final"]
        counts = count_events(
            os.path.join(second.directory, "events.jsonl"))
        assert counts["iteration"] == iters_before  # no new iterations
        assert counts["cache_hit"] == 1
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_corrupt_entry_is_invalidated(self, tmp_path):
        db = make_db()
        store = RunStore(str(tmp_path / "store"))
        cache = ResultCache(store)
        spec = gp_spec()
        outcome = execute_job(spec, store, cache=cache, db=db)
        os.remove(os.path.join(outcome.directory, "metrics.json"))
        assert cache.lookup(outcome.job_hash) is None
        assert cache.stats.invalidations == 1

    def test_different_params_miss(self, tmp_path):
        db = make_db()
        store = RunStore(str(tmp_path / "store"))
        cache = ResultCache(store)
        execute_job(gp_spec(), store, cache=cache, db=db)
        other = execute_job(gp_spec(seed=123), store, cache=cache, db=db)
        assert not other.cached
        assert cache.stats.hits == 0 and cache.stats.misses == 2


# ----------------------------------------------------------------------
class _FakeClock:
    """monotonic() advancing one 'second' per call: the Nth GP
    iteration observes time N+1, so ``timeout=K`` kills the run
    deterministically at iteration K+1."""

    def __init__(self):
        self.now = 0.0

    def monotonic(self):
        self.now += 1.0
        return self.now


class TestKillResume:
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_killed_run_resumes_bit_exactly(self, tmp_path, monkeypatch,
                                            dtype):
        """Acceptance: SIGKILL mid-GP -> resume -> bit-exact result."""
        db = make_db()
        spec = gp_spec(dtype=dtype)

        # uninterrupted reference run
        ref_store = RunStore(str(tmp_path / "ref"))
        reference = execute_job(spec, ref_store, db=db)
        assert reference.ok

        # deterministically "kill" a second run at GP iteration 34
        # (fake clock + cooperative timeout stands in for SIGKILL: the
        # run dies between checkpoint writes exactly like a killed
        # process, leaving checkpoint.pkl from iteration 30 behind)
        store = RunStore(str(tmp_path / "killed"))
        import repro.runner.execute as execute_mod

        monkeypatch.setattr(execute_mod, "time", _FakeClock())
        killed = execute_job(spec, store, db=db, checkpoint_every=10,
                             timeout=33.0)
        monkeypatch.undo()
        assert killed.status == STATUS_TIMEOUT
        ckpt_path = os.path.join(killed.directory, "checkpoint.pkl")
        assert os.path.exists(ckpt_path)
        assert PlacerCheckpoint.load(ckpt_path).iteration == 30

        resumed = execute_job(spec, store, db=db, resume=True)
        assert resumed.ok
        assert resumed.resumed_from == 30
        events = list(read_events(
            os.path.join(resumed.directory, "events.jsonl"),
            type="resume"))
        assert events and events[-1]["iteration"] == 30

        # bit-exact, not approximately equal
        assert resumed.metrics["hpwl"]["final"] \
            == reference.metrics["hpwl"]["final"]
        assert resumed.metrics["iterations"] \
            == reference.metrics["iterations"]
        np.testing.assert_array_equal(resumed.result.x, reference.result.x)
        np.testing.assert_array_equal(resumed.result.y, reference.result.y)

    def test_resume_without_checkpoint_restarts(self, tmp_path):
        db = make_db()
        store = RunStore(str(tmp_path / "store"))
        outcome = execute_job(gp_spec(), store, db=db, resume=True,
                              checkpoint_every=0)
        assert outcome.ok
        assert outcome.resumed_from is None


# ----------------------------------------------------------------------
class TestExecutePolicy:
    def test_failure_is_isolated_and_recorded(self, tmp_path):
        db = make_db()
        store = RunStore(str(tmp_path / "store"))
        outcome = execute_job(gp_spec(optimizer="levitation"), store,
                              db=db)
        assert outcome.status == STATUS_FAILED
        assert "levitation" in outcome.error
        record = store.load(outcome.job_hash[:16])
        assert record.state == STATUS_FAILED
        assert list(read_events(record.events_path, type="run_failed"))

    def test_timeout_keeps_checkpoint_not_cached(self, tmp_path,
                                                 monkeypatch):
        db = make_db()
        store = RunStore(str(tmp_path / "store"))
        cache = ResultCache(store)
        import repro.runner.execute as execute_mod

        monkeypatch.setattr(execute_mod, "time", _FakeClock())
        outcome = execute_job(gp_spec(), store, cache=cache, db=db,
                              checkpoint_every=5, timeout=12.0)
        monkeypatch.undo()
        assert outcome.status == STATUS_TIMEOUT
        assert os.path.exists(
            os.path.join(outcome.directory, "checkpoint.pkl"))
        # a timed-out run is not a cache hit; resubmission resumes it
        assert cache.lookup(outcome.job_hash) is None


# ----------------------------------------------------------------------
class TestScheduler:
    def test_expand_sweep_cross_product(self):
        base = gp_spec()
        specs = expand_sweep(base, {"seed": [1, 2, 3],
                                    "target_density": [0.8, 0.9, 1.0]})
        assert len(specs) == 9
        combos = {(s.params.seed, s.params.target_density) for s in specs}
        assert len(combos) == 9
        with pytest.raises(ValueError):
            expand_sweep(base, {"frobnicate": [1]})
        assert expand_sweep(base, {}) == [base]

    def test_three_by_three_sweep_populates_nine_runs(self, tmp_path,
                                                      monkeypatch):
        """Acceptance: 3x3 sweep -> nine populated run directories."""
        db = make_db()
        monkeypatch.setattr(DesignRef, "load", lambda self: db)
        store = RunStore(str(tmp_path / "store"))
        scheduler = Scheduler(store, cache=ResultCache(store))
        base = JobSpec(design=DesignRef("runnertest", scale=1),
                       params=PlacementParams(max_global_iters=40,
                                              min_global_iters=5),
                       stages=("gp",))
        count = scheduler.submit_sweep(
            base, {"seed": [1, 2, 3], "target_density": [0.8, 0.9, 1.0]})
        assert count == 9 and scheduler.pending == 9
        outcomes = scheduler.run()
        assert scheduler.pending == 0
        assert len(outcomes) == 9
        assert all(o.ok for o in outcomes)
        assert len({o.job_hash for o in outcomes}) == 9
        records = store.list_runs()
        assert len(records) == 9
        for record in records:
            assert record.complete
            assert record.metrics["hpwl"]["final"] > 0
            assert os.path.exists(record.events_path)

    def test_warm_design_reuse(self, tmp_path, monkeypatch):
        db = make_db()
        loads = []

        def fake_load(self):
            loads.append(self.name)
            return db

        monkeypatch.setattr(DesignRef, "load", fake_load)
        store = RunStore(str(tmp_path / "store"))
        scheduler = Scheduler(store)
        base = JobSpec(design=DesignRef("runnertest", scale=1),
                       params=PlacementParams(max_global_iters=30,
                                              min_global_iters=5),
                       stages=("gp",))
        scheduler.submit(base)
        scheduler.submit(base.with_param_overrides(seed=2))
        scheduler.run()
        assert loads == ["runnertest"]  # loaded once, reused

    def test_retry_with_backoff_then_give_up(self, tmp_path, monkeypatch):
        db = make_db()
        monkeypatch.setattr(DesignRef, "load", lambda self: db)
        store = RunStore(str(tmp_path / "store"))
        delays = []
        scheduler = Scheduler(store, max_retries=2, backoff=0.5,
                              sleep=delays.append)
        scheduler.submit(gp_spec(optimizer="levitation"))
        outcome = scheduler.run()[0]
        assert outcome.status == STATUS_FAILED
        assert delays == [0.5, 1.0]  # exponential backoff
        record = store.load(outcome.job_hash[:16])
        assert record.status["attempts"] == 3
        retries = list(read_events(record.events_path, type="retry"))
        assert [r["attempt"] for r in retries] == [1, 2]

    def test_bad_design_is_isolated(self, tmp_path):
        store = RunStore(str(tmp_path / "store"))
        scheduler = Scheduler(store, max_retries=0)
        scheduler.submit(JobSpec(
            design=DesignRef("no-such-design-anywhere"), stages=("gp",)))
        outcomes = scheduler.run()
        assert outcomes[0].status == STATUS_FAILED
        assert "design load failed" in outcomes[0].error


# ----------------------------------------------------------------------
class TestSeedUnification:
    def test_one_default_seed_everywhere(self):
        assert DEFAULT_SEED == 42
        assert PlacementParams().seed == DEFAULT_SEED
        assert CircuitSpec(name="x", num_cells=2).seed == DEFAULT_SEED

    def test_cli_defaults_match(self):
        from repro.cli import build_parser

        parser = build_parser()
        assert parser.parse_args(["place", "d"]).seed == DEFAULT_SEED
        assert parser.parse_args(
            ["generate", "d", "--output", "o"]).seed == DEFAULT_SEED


# ----------------------------------------------------------------------
class TestCli:
    def run_cli(self, *argv) -> int:
        from repro.cli import main

        return main(list(argv))

    def test_place_json_creates_parent_dirs(self, tmp_path, capsys):
        gen_dir = tmp_path / "gen"
        self.run_cli("generate", "cj", "--cells", "80", "--output",
                     str(gen_dir))
        json_path = tmp_path / "deep" / "nested" / "metrics.json"
        svg_path = tmp_path / "deeper" / "plot.svg"
        code = self.run_cli("place", str(gen_dir / "cj.aux"), "--no-dp",
                            "--json", str(json_path),
                            "--svg", str(svg_path))
        assert code == 0
        assert svg_path.exists()
        metrics = json.loads(json_path.read_text())
        assert set(metrics) >= {"hpwl", "overflow", "iterations",
                                "runtime", "legal"}
        assert metrics["hpwl"]["final"] > 0

        report_json = tmp_path / "r" / "report.json"
        code = self.run_cli("report", str(gen_dir / "cj.aux"),
                            "--json", str(report_json))
        assert code == 0
        report = json.loads(report_json.read_text())
        assert report["hpwl"]["final"] > 0
        assert report["design"]["num_cells"] >= 80  # movables + pads

    def test_sweep_resume_runs_verbs(self, tmp_path, capsys, monkeypatch):
        db = make_db()
        monkeypatch.setattr(DesignRef, "load", lambda self: db)
        store = str(tmp_path / "store")
        code = self.run_cli(
            "sweep", "runnertest", "--store", store, "--stages", "gp",
            "--param", "seed=1,2", "--param", "max_global_iters=40",
            "--json", str(tmp_path / "sweep.json"))
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep: 2 job(s)" in out
        payload = json.loads((tmp_path / "sweep.json").read_text())
        assert len(payload["outcomes"]) == 2
        assert all(o["status"] == "complete"
                   for o in payload["outcomes"])

        # identical resubmission: pure cache hits
        code = self.run_cli(
            "sweep", "runnertest", "--store", store, "--stages", "gp",
            "--param", "seed=1,2", "--param", "max_global_iters=40")
        assert code == 0
        assert "cache: 2 hit(s), 0 miss(es)" in capsys.readouterr().out

        code = self.run_cli("runs", "--store", store)
        assert code == 0
        listing = capsys.readouterr().out
        assert "complete" in listing
        short = payload["outcomes"][0]["job_hash"][:16]
        assert short in listing

        code = self.run_cli("runs", short, "--store", store)
        assert code == 0
        detail = capsys.readouterr().out
        assert "cache_hit=1" in detail

        code = self.run_cli("resume", short, "--store", store)
        assert code == 0
        assert "resum" in capsys.readouterr().out

    def test_batch_verb(self, tmp_path, capsys, monkeypatch):
        db = make_db()
        monkeypatch.setattr(DesignRef, "load", lambda self: db)
        specfile = tmp_path / "jobs.json"
        specfile.write_text(json.dumps({"jobs": [
            {"design": "runnertest", "stages": ["gp"],
             "params": {"max_global_iters": 40}},
            {"design": "runnertest", "stages": ["gp"],
             "params": {"max_global_iters": 40, "seed": 2}},
        ]}))
        store = str(tmp_path / "store")
        code = self.run_cli("batch", str(specfile), "--store", store)
        assert code == 0
        out = capsys.readouterr().out
        assert "batch: 2 job(s)" in out
        assert len(RunStore(store).list_runs()) == 2

    def test_workers_flag_parses(self):
        from repro.cli import build_parser

        parser = build_parser()
        assert parser.parse_args(["sweep", "d"]).workers == 1
        assert parser.parse_args(
            ["sweep", "d", "--workers", "4"]).workers == 4
        assert parser.parse_args(
            ["batch", "jobs.json", "--workers", "2"]).workers == 2


# ----------------------------------------------------------------------
class TestArtifactErrorRegression:
    """A failed Bookshelf write must not produce silent artifact-less
    cache hits (it used to emit RUN_FAILED then mark complete anyway)."""

    def test_bookshelf_failure_completes_but_degraded(self, tmp_path,
                                                      monkeypatch):
        import repro.bookshelf as bookshelf

        def boom(db, directory):
            raise OSError("disk full")

        monkeypatch.setattr(bookshelf, "write_bookshelf", boom)
        db = make_db()
        store = RunStore(str(tmp_path / "store"))
        cache = ResultCache(store)
        outcome = execute_job(gp_spec(), store, cache=cache, db=db)
        # metrics persisted, so the run is complete — but flagged
        assert outcome.ok
        assert "disk full" in outcome.artifact_error
        record = store.load(outcome.job_hash[:16])
        assert record.state == STATUS_COMPLETE
        assert "disk full" in record.artifact_error
        counts = count_events(record.events_path)
        assert counts["artifact_error"] == 1
        assert counts.get("run_failed", 0) == 0  # not a failure event

        # the cache serves the hit but surfaces the degraded state
        hit = execute_job(gp_spec(), store, cache=cache, db=db)
        assert hit.cached and hit.ok
        assert "disk full" in hit.artifact_error
        assert cache.stats.hits == 1
        assert cache.stats.degraded_hits == 1

    def test_metrics_failure_fails_the_run(self, tmp_path, monkeypatch):
        from repro.runner.store import RunHandle

        def boom(self, metrics):
            raise OSError("disk full")

        monkeypatch.setattr(RunHandle, "write_metrics", boom)
        db = make_db()
        store = RunStore(str(tmp_path / "store"))
        cache = ResultCache(store)
        outcome = execute_job(gp_spec(), store, cache=cache, db=db)
        assert outcome.status == STATUS_FAILED
        assert "metrics write failed" in outcome.error
        assert store.load(outcome.job_hash[:16]).state == STATUS_FAILED
        monkeypatch.undo()
        assert cache.lookup(outcome.job_hash) is None  # never a hit


# ----------------------------------------------------------------------
class TestDesignLoadFailureRegression:
    """A design-load failure must leave a visible run directory (it
    used to return an outcome with empty hash/directory — no status,
    no events, invisible to `runs`/`resume`)."""

    def test_load_failure_persists_a_run(self, tmp_path):
        store = RunStore(str(tmp_path / "store"))
        scheduler = Scheduler(store, max_retries=0)
        scheduler.submit(JobSpec(
            design=DesignRef("no-such-design-anywhere"), stages=("gp",)))
        outcome = scheduler.run()[0]
        assert outcome.status == STATUS_FAILED
        assert "design load failed" in outcome.error
        # the failure now has a home in the store
        assert outcome.job_hash and outcome.directory
        assert os.path.isdir(outcome.directory)
        record = store.load(outcome.job_hash[:16])
        assert record.state == STATUS_FAILED
        assert "design load failed" in record.status["error"]
        assert list(read_events(record.events_path, type="run_failed"))
        assert record.load_spec().design.name == "no-such-design-anywhere"

    def test_fallback_hash_is_deterministic_and_distinct(self):
        spec = JobSpec(design=DesignRef("missing"), stages=("gp",))
        assert spec.fallback_hash() == spec.fallback_hash()
        other_design = JobSpec(design=DesignRef("missing2"),
                               stages=("gp",))
        assert spec.fallback_hash() != other_design.fallback_hash()
        other_params = spec.with_param_overrides(seed=123)
        assert spec.fallback_hash() != other_params.fallback_hash()
        # retries of the same broken job share one directory
        assert JobSpec(design=DesignRef("missing"),
                       stages=("gp",)).fallback_hash() \
            == spec.fallback_hash()


# ----------------------------------------------------------------------
class TestTimeoutClockRegression:
    """The cooperative deadline must start at entry, not after the
    design load — a cold load used to escape the budget entirely."""

    def test_design_load_counts_against_the_budget(self, tmp_path,
                                                   monkeypatch):
        db = make_db()
        import repro.runner.execute as execute_mod

        clock = _FakeClock()
        monkeypatch.setattr(execute_mod, "time", clock)

        def slow_load(self):
            clock.now += 10.0  # the load burns 10 "seconds"
            return db

        monkeypatch.setattr(DesignRef, "load", slow_load)
        # budget 5s, load costs 10s: with the deadline started at entry
        # the very first iteration must observe the blown budget
        outcome = execute_job(gp_spec(), RunStore(str(tmp_path / "s")),
                              timeout=5.0)
        assert outcome.status == STATUS_TIMEOUT
        events = list(read_events(
            os.path.join(outcome.directory, "events.jsonl"),
            type="timeout"))
        assert events and events[-1]["iteration"] == 1


# ----------------------------------------------------------------------
class TestQueueDiscipline:
    """The queue is a deque drained with popleft — O(1) per job instead
    of list.pop(0)'s O(n) shift — and stays strictly FIFO."""

    def test_queue_is_a_deque_and_fifo(self, tmp_path, monkeypatch):
        from collections import deque

        import repro.runner.scheduler as sched_mod

        ran = []

        def stub_execute(spec, store, **kwargs):
            ran.append(spec.params.seed)
            return JobOutcomeStub(spec)

        class JobOutcomeStub:
            def __init__(self, spec):
                self.job_hash = "0" * 64
                self.directory = ""
                self.status = STATUS_COMPLETE
                self.design = spec.design.name
                self.cached = False
                self.ok = True

        monkeypatch.setattr(sched_mod, "execute_job", stub_execute)
        scheduler = Scheduler(RunStore(str(tmp_path / "store")))
        assert isinstance(scheduler._queue, deque)
        for seed in (3, 1, 2):
            scheduler.submit(gp_spec(seed=seed))
        outcomes = scheduler.run()
        assert ran == [3, 1, 2]  # submission order, not sorted
        assert len(outcomes) == 3


# ----------------------------------------------------------------------
class TestRunLease:
    """Advisory per-run locks: contention, stealing, orphan recovery."""

    def test_second_open_of_a_locked_run_raises(self, tmp_path):
        store = RunStore(str(tmp_path / "store"))
        spec = gp_spec()
        handle = store.open_run(spec, "ab" * 32)
        with pytest.raises(RunLocked):
            store.open_run(spec, "ab" * 32)
        handle.close()  # releasing the lease frees the run
        store.open_run(spec, "ab" * 32).close()

    def test_dead_owner_lease_is_stolen(self, tmp_path):
        import socket
        import time as time_mod

        store = RunStore(str(tmp_path / "store"))
        spec = gp_spec()
        directory = store.run_dir("cd" * 32)
        os.makedirs(directory)
        _atomic_write_json(os.path.join(directory, "lock.json"), {
            "pid": _dead_pid(), "host": socket.gethostname(),
            "heartbeat": time_mod.time(),  # fresh — pid check must win
        })
        handle = store.open_run(spec, "cd" * 32)  # steals, no raise
        assert handle.lease is not None
        handle.close()

    def test_expired_heartbeat_is_stolen_live_is_not(self, tmp_path):
        import time as time_mod

        store = RunStore(str(tmp_path / "store"))
        spec = gp_spec()
        directory = store.run_dir("ef" * 32)
        os.makedirs(directory)
        lock_path = os.path.join(directory, "lock.json")
        # another *host* (pid liveness unknowable) with an expired lease
        _atomic_write_json(lock_path, {
            "pid": 1, "host": "some-other-host",
            "heartbeat": time_mod.time() - 9999.0,
        })
        store.open_run(spec, "ef" * 32).close()
        # fresh heartbeat from another host: genuinely held
        _atomic_write_json(lock_path, {
            "pid": 1, "host": "some-other-host",
            "heartbeat": time_mod.time(),
        })
        with pytest.raises(RunLocked):
            store.open_run(spec, "ef" * 32)

    def test_recover_orphans_marks_failed_with_checkpoint(
            self, tmp_path, monkeypatch):
        import socket
        import time as time_mod

        db = make_db()
        store = RunStore(str(tmp_path / "store"))
        cache = ResultCache(store)
        import repro.runner.execute as execute_mod

        # leave a checkpoint behind via a deterministic timeout
        monkeypatch.setattr(execute_mod, "time", _FakeClock())
        killed = execute_job(gp_spec(), store, db=db,
                             checkpoint_every=10, timeout=12.0)
        monkeypatch.undo()
        assert os.path.exists(
            os.path.join(killed.directory, "checkpoint.pkl"))

        # simulate SIGKILL: status stuck `running`, stale lock on disk
        status_path = os.path.join(killed.directory, "status.json")
        status = json.loads(open(status_path).read())
        status["status"] = STATUS_RUNNING
        _atomic_write_json(status_path, status)
        _atomic_write_json(os.path.join(killed.directory, "lock.json"), {
            "pid": _dead_pid(), "host": socket.gethostname(),
            "heartbeat": time_mod.time(),
        })

        recovered = store.recover_orphans()
        assert [r.job_hash for r in recovered] == [killed.job_hash]
        record = store.load(killed.job_hash[:16])
        assert record.state == STATUS_FAILED
        assert record.status["orphaned"] is True
        assert "orphaned" in record.status["error"]
        assert not os.path.exists(record.lock_path)  # lock cleared
        assert os.path.exists(record.checkpoint_path)  # kept
        assert list(read_events(record.events_path, type="orphaned"))
        assert cache.lookup(killed.job_hash) is None  # not a hit

        # ...and the orphan is resumable from its checkpoint
        resumed = execute_job(gp_spec(), store, db=db, resume=True)
        assert resumed.ok
        assert resumed.resumed_from == 10

    def test_recover_orphans_spares_live_runs(self, tmp_path):
        store = RunStore(str(tmp_path / "store"))
        handle = store.open_run(gp_spec(), "aa" * 32)
        handle.set_status(STATUS_RUNNING, attempts=1)
        assert store.recover_orphans() == []  # our own live lease
        handle.close()
