"""Tests for the batch placement service (repro.runner).

Covers the three acceptance criteria of the runner subsystem:

- resubmitting a byte-identical job is a cache hit: no placement
  iterations run (verified by the absence of new ``iteration`` events),
- a run killed mid-GP resumes from its on-disk checkpoint and finishes
  with *bit-exact* positions/HPWL versus the uninterrupted run (both
  float32 and float64),
- a 3x3 parameter sweep through one scheduler produces nine populated
  run directories,

plus the spec/hash semantics, store/event/checkpoint plumbing,
scheduler policy (retry, backoff, failure isolation, warm design
reuse) and the CLI verbs.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.benchgen import CircuitSpec, generate
from repro.core import DEFAULT_SEED, PlacementParams
from repro.runner import (
    DesignRef,
    EventLog,
    EventType,
    JobSpec,
    PlacerCheckpoint,
    ResultCache,
    RunStore,
    Scheduler,
    count_events,
    execute_job,
    expand_sweep,
    read_events,
)
from repro.runner.store import STATUS_COMPLETE, STATUS_FAILED, STATUS_TIMEOUT


def make_db(seed=5, num_cells=60):
    return generate(CircuitSpec(
        name="runnertest", num_cells=num_cells, num_ios=8,
        utilization=0.6, seed=seed,
    ))


def gp_spec(**overrides) -> JobSpec:
    """A fast GP-only job spec for a pre-loaded database."""
    params = PlacementParams(max_global_iters=120, **overrides)
    return JobSpec(design=DesignRef("runnertest", scale=1),
                   params=params, stages=("gp",))


# ----------------------------------------------------------------------
class TestJobSpec:
    def test_design_ref_parse(self):
        ref = DesignRef.parse("designs/adaptec1.aux", scale=7)
        assert ref.source == "bookshelf"
        assert ref.scale == 7
        assert DesignRef.parse("tiny1").source == "suite"
        with pytest.raises(ValueError):
            DesignRef(name="x", source="magnetic-tape")

    def test_stage_validation(self):
        with pytest.raises(ValueError):
            JobSpec(design=DesignRef("a"), stages=("lg",))
        with pytest.raises(ValueError):
            JobSpec(design=DesignRef("a"), stages=("gp", "dp"))
        with pytest.raises(ValueError):
            JobSpec(design=DesignRef("a"), stages=("gp", "warp"))

    def test_effective_params_fold_stages(self):
        spec = JobSpec(design=DesignRef("a"), stages=("gp",))
        params = spec.effective_params()
        assert not params.legalize and not params.detailed
        spec = JobSpec(design=DesignRef("a"),
                       stages=("gp", "lg", "dp", "route"))
        params = spec.effective_params()
        assert params.legalize and params.detailed and params.routability

    def test_dict_roundtrip_preserves_hash(self):
        db = make_db()
        spec = gp_spec(seed=9, target_density=0.9)
        clone = JobSpec.from_dict(json.loads(
            json.dumps(spec.to_dict())))
        assert clone.job_hash(db) == spec.job_hash(db)
        assert clone.canonical_json() == spec.canonical_json()

    def test_hash_sensitivity(self):
        db = make_db()
        base = gp_spec()
        assert base.with_param_overrides(seed=1).job_hash(db) \
            != base.job_hash(db)
        assert base.with_param_overrides(target_density=0.8).job_hash(db) \
            != base.job_hash(db)
        # stage selection is part of the identity
        lg = JobSpec(design=base.design, params=base.params,
                     stages=("gp", "lg"))
        assert lg.job_hash(db) != base.job_hash(db)

    def test_hash_neutral_verbose(self):
        db = make_db()
        base = gp_spec()
        assert base.with_param_overrides(verbose=True).job_hash(db) \
            == base.job_hash(db)

    def test_hash_tracks_netlist_content(self):
        spec = gp_spec()
        assert spec.job_hash(make_db(seed=5)) \
            == spec.job_hash(make_db(seed=5))
        assert spec.job_hash(make_db(seed=5)) \
            != spec.job_hash(make_db(seed=6))

    def test_from_dict_rejects_newer_schema(self):
        data = gp_spec().to_dict()
        data["schema"] = 999
        with pytest.raises(ValueError):
            JobSpec.from_dict(data)


# ----------------------------------------------------------------------
class TestEvents:
    def test_roundtrip_and_counts(self, tmp_path):
        path = str(tmp_path / "ev.jsonl")
        with EventLog(path) as log:
            log.emit(EventType.RUN_START, design="d")
            log.emit(EventType.ITERATION, iteration=1, hpwl=10.0)
            log.emit(EventType.ITERATION, iteration=2, hpwl=9.0)
        events = list(read_events(path))
        assert [e["type"] for e in events] \
            == ["run_start", "iteration", "iteration"]
        assert events[1]["hpwl"] == 10.0
        assert count_events(path) == {"run_start": 1, "iteration": 2}

    def test_torn_tail_tolerated(self, tmp_path):
        path = str(tmp_path / "ev.jsonl")
        with EventLog(path) as log:
            log.emit(EventType.ITERATION, iteration=1)
        with open(path, "a") as handle:
            handle.write('{"type": "iterat')  # SIGKILL mid-write
        assert len(list(read_events(path))) == 1
        assert list(read_events(path, type="iteration"))[0]["iteration"] == 1


# ----------------------------------------------------------------------
class TestStoreAndCheckpoint:
    def test_store_layout_and_status(self, tmp_path):
        store = RunStore(str(tmp_path / "store"))
        spec = gp_spec()
        handle = store.open_run(spec, "ab" * 32)
        handle.set_status("running", attempts=1)
        handle.set_status(STATUS_COMPLETE, attempts=2)
        handle.write_metrics({"hpwl": {"final": 1.0}})
        handle.close()
        record = store.load("abab")
        assert record.state == STATUS_COMPLETE
        assert record.status["attempts"] == 2
        assert "created" in record.status
        assert record.load_spec().canonical_json() == spec.canonical_json()

    def test_load_by_prefix_rejects_ambiguity(self, tmp_path):
        store = RunStore(str(tmp_path / "store"))
        spec = gp_spec()
        store.open_run(spec, "aa" + "0" * 62).close()
        store.open_run(spec, "aa" + "1" * 62).close()
        with pytest.raises(KeyError):
            store.load("aa")
        with pytest.raises(KeyError):
            store.load("zz")
        assert store.load("aa0").job_hash == "aa" + "0" * 62

    def test_checkpoint_roundtrip_and_guards(self, tmp_path):
        path = str(tmp_path / "c" / "ckpt.pkl")
        state = {"pos": np.arange(4.0), "iteration": 30}
        PlacerCheckpoint(job_hash="x" * 64, iteration=30,
                         loop_state=state).save(path)
        ckpt = PlacerCheckpoint.load(path, expect_job_hash="x" * 64)
        assert ckpt.iteration == 30
        np.testing.assert_array_equal(ckpt.loop_state["pos"],
                                      state["pos"])
        with pytest.raises(ValueError):
            PlacerCheckpoint.load(path, expect_job_hash="y" * 64)


# ----------------------------------------------------------------------
class TestCacheHit:
    def test_identical_resubmission_runs_zero_iterations(self, tmp_path):
        """Acceptance: cache hit = no placement work, by event log."""
        db = make_db()
        store = RunStore(str(tmp_path / "store"))
        cache = ResultCache(store)
        spec = gp_spec()

        first = execute_job(spec, store, cache=cache, db=db)
        assert first.ok and not first.cached
        iters_before = count_events(
            os.path.join(first.directory, "events.jsonl"))["iteration"]
        assert iters_before > 0

        second = execute_job(spec, store, cache=cache, db=db)
        assert second.ok and second.cached
        assert second.metrics["hpwl"]["final"] \
            == first.metrics["hpwl"]["final"]
        counts = count_events(
            os.path.join(second.directory, "events.jsonl"))
        assert counts["iteration"] == iters_before  # no new iterations
        assert counts["cache_hit"] == 1
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_corrupt_entry_is_invalidated(self, tmp_path):
        db = make_db()
        store = RunStore(str(tmp_path / "store"))
        cache = ResultCache(store)
        spec = gp_spec()
        outcome = execute_job(spec, store, cache=cache, db=db)
        os.remove(os.path.join(outcome.directory, "metrics.json"))
        assert cache.lookup(outcome.job_hash) is None
        assert cache.stats.invalidations == 1

    def test_different_params_miss(self, tmp_path):
        db = make_db()
        store = RunStore(str(tmp_path / "store"))
        cache = ResultCache(store)
        execute_job(gp_spec(), store, cache=cache, db=db)
        other = execute_job(gp_spec(seed=123), store, cache=cache, db=db)
        assert not other.cached
        assert cache.stats.hits == 0 and cache.stats.misses == 2


# ----------------------------------------------------------------------
class _FakeClock:
    """monotonic() advancing one 'second' per call: the Nth GP
    iteration observes time N+1, so ``timeout=K`` kills the run
    deterministically at iteration K+1."""

    def __init__(self):
        self.now = 0.0

    def monotonic(self):
        self.now += 1.0
        return self.now


class TestKillResume:
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_killed_run_resumes_bit_exactly(self, tmp_path, monkeypatch,
                                            dtype):
        """Acceptance: SIGKILL mid-GP -> resume -> bit-exact result."""
        db = make_db()
        spec = gp_spec(dtype=dtype)

        # uninterrupted reference run
        ref_store = RunStore(str(tmp_path / "ref"))
        reference = execute_job(spec, ref_store, db=db)
        assert reference.ok

        # deterministically "kill" a second run at GP iteration 34
        # (fake clock + cooperative timeout stands in for SIGKILL: the
        # run dies between checkpoint writes exactly like a killed
        # process, leaving checkpoint.pkl from iteration 30 behind)
        store = RunStore(str(tmp_path / "killed"))
        import repro.runner.execute as execute_mod

        monkeypatch.setattr(execute_mod, "time", _FakeClock())
        killed = execute_job(spec, store, db=db, checkpoint_every=10,
                             timeout=33.0)
        monkeypatch.undo()
        assert killed.status == STATUS_TIMEOUT
        ckpt_path = os.path.join(killed.directory, "checkpoint.pkl")
        assert os.path.exists(ckpt_path)
        assert PlacerCheckpoint.load(ckpt_path).iteration == 30

        resumed = execute_job(spec, store, db=db, resume=True)
        assert resumed.ok
        assert resumed.resumed_from == 30
        events = list(read_events(
            os.path.join(resumed.directory, "events.jsonl"),
            type="resume"))
        assert events and events[-1]["iteration"] == 30

        # bit-exact, not approximately equal
        assert resumed.metrics["hpwl"]["final"] \
            == reference.metrics["hpwl"]["final"]
        assert resumed.metrics["iterations"] \
            == reference.metrics["iterations"]
        np.testing.assert_array_equal(resumed.result.x, reference.result.x)
        np.testing.assert_array_equal(resumed.result.y, reference.result.y)

    def test_resume_without_checkpoint_restarts(self, tmp_path):
        db = make_db()
        store = RunStore(str(tmp_path / "store"))
        outcome = execute_job(gp_spec(), store, db=db, resume=True,
                              checkpoint_every=0)
        assert outcome.ok
        assert outcome.resumed_from is None


# ----------------------------------------------------------------------
class TestExecutePolicy:
    def test_failure_is_isolated_and_recorded(self, tmp_path):
        db = make_db()
        store = RunStore(str(tmp_path / "store"))
        outcome = execute_job(gp_spec(optimizer="levitation"), store,
                              db=db)
        assert outcome.status == STATUS_FAILED
        assert "levitation" in outcome.error
        record = store.load(outcome.job_hash[:16])
        assert record.state == STATUS_FAILED
        assert list(read_events(record.events_path, type="run_failed"))

    def test_timeout_keeps_checkpoint_not_cached(self, tmp_path,
                                                 monkeypatch):
        db = make_db()
        store = RunStore(str(tmp_path / "store"))
        cache = ResultCache(store)
        import repro.runner.execute as execute_mod

        monkeypatch.setattr(execute_mod, "time", _FakeClock())
        outcome = execute_job(gp_spec(), store, cache=cache, db=db,
                              checkpoint_every=5, timeout=12.0)
        monkeypatch.undo()
        assert outcome.status == STATUS_TIMEOUT
        assert os.path.exists(
            os.path.join(outcome.directory, "checkpoint.pkl"))
        # a timed-out run is not a cache hit; resubmission resumes it
        assert cache.lookup(outcome.job_hash) is None


# ----------------------------------------------------------------------
class TestScheduler:
    def test_expand_sweep_cross_product(self):
        base = gp_spec()
        specs = expand_sweep(base, {"seed": [1, 2, 3],
                                    "target_density": [0.8, 0.9, 1.0]})
        assert len(specs) == 9
        combos = {(s.params.seed, s.params.target_density) for s in specs}
        assert len(combos) == 9
        with pytest.raises(ValueError):
            expand_sweep(base, {"frobnicate": [1]})
        assert expand_sweep(base, {}) == [base]

    def test_three_by_three_sweep_populates_nine_runs(self, tmp_path,
                                                      monkeypatch):
        """Acceptance: 3x3 sweep -> nine populated run directories."""
        db = make_db()
        monkeypatch.setattr(DesignRef, "load", lambda self: db)
        store = RunStore(str(tmp_path / "store"))
        scheduler = Scheduler(store, cache=ResultCache(store))
        base = JobSpec(design=DesignRef("runnertest", scale=1),
                       params=PlacementParams(max_global_iters=40,
                                              min_global_iters=5),
                       stages=("gp",))
        count = scheduler.submit_sweep(
            base, {"seed": [1, 2, 3], "target_density": [0.8, 0.9, 1.0]})
        assert count == 9 and scheduler.pending == 9
        outcomes = scheduler.run()
        assert scheduler.pending == 0
        assert len(outcomes) == 9
        assert all(o.ok for o in outcomes)
        assert len({o.job_hash for o in outcomes}) == 9
        records = store.list_runs()
        assert len(records) == 9
        for record in records:
            assert record.complete
            assert record.metrics["hpwl"]["final"] > 0
            assert os.path.exists(record.events_path)

    def test_warm_design_reuse(self, tmp_path, monkeypatch):
        db = make_db()
        loads = []

        def fake_load(self):
            loads.append(self.name)
            return db

        monkeypatch.setattr(DesignRef, "load", fake_load)
        store = RunStore(str(tmp_path / "store"))
        scheduler = Scheduler(store)
        base = JobSpec(design=DesignRef("runnertest", scale=1),
                       params=PlacementParams(max_global_iters=30,
                                              min_global_iters=5),
                       stages=("gp",))
        scheduler.submit(base)
        scheduler.submit(base.with_param_overrides(seed=2))
        scheduler.run()
        assert loads == ["runnertest"]  # loaded once, reused

    def test_retry_with_backoff_then_give_up(self, tmp_path, monkeypatch):
        db = make_db()
        monkeypatch.setattr(DesignRef, "load", lambda self: db)
        store = RunStore(str(tmp_path / "store"))
        delays = []
        scheduler = Scheduler(store, max_retries=2, backoff=0.5,
                              sleep=delays.append)
        scheduler.submit(gp_spec(optimizer="levitation"))
        outcome = scheduler.run()[0]
        assert outcome.status == STATUS_FAILED
        assert delays == [0.5, 1.0]  # exponential backoff
        record = store.load(outcome.job_hash[:16])
        assert record.status["attempts"] == 3
        retries = list(read_events(record.events_path, type="retry"))
        assert [r["attempt"] for r in retries] == [1, 2]

    def test_bad_design_is_isolated(self, tmp_path):
        store = RunStore(str(tmp_path / "store"))
        scheduler = Scheduler(store, max_retries=0)
        scheduler.submit(JobSpec(
            design=DesignRef("no-such-design-anywhere"), stages=("gp",)))
        outcomes = scheduler.run()
        assert outcomes[0].status == STATUS_FAILED
        assert "design load failed" in outcomes[0].error


# ----------------------------------------------------------------------
class TestSeedUnification:
    def test_one_default_seed_everywhere(self):
        assert DEFAULT_SEED == 42
        assert PlacementParams().seed == DEFAULT_SEED
        assert CircuitSpec(name="x", num_cells=2).seed == DEFAULT_SEED

    def test_cli_defaults_match(self):
        from repro.cli import build_parser

        parser = build_parser()
        assert parser.parse_args(["place", "d"]).seed == DEFAULT_SEED
        assert parser.parse_args(
            ["generate", "d", "--output", "o"]).seed == DEFAULT_SEED


# ----------------------------------------------------------------------
class TestCli:
    def run_cli(self, *argv) -> int:
        from repro.cli import main

        return main(list(argv))

    def test_place_json_creates_parent_dirs(self, tmp_path, capsys):
        gen_dir = tmp_path / "gen"
        self.run_cli("generate", "cj", "--cells", "80", "--output",
                     str(gen_dir))
        json_path = tmp_path / "deep" / "nested" / "metrics.json"
        svg_path = tmp_path / "deeper" / "plot.svg"
        code = self.run_cli("place", str(gen_dir / "cj.aux"), "--no-dp",
                            "--json", str(json_path),
                            "--svg", str(svg_path))
        assert code == 0
        assert svg_path.exists()
        metrics = json.loads(json_path.read_text())
        assert set(metrics) >= {"hpwl", "overflow", "iterations",
                                "runtime", "legal"}
        assert metrics["hpwl"]["final"] > 0

        report_json = tmp_path / "r" / "report.json"
        code = self.run_cli("report", str(gen_dir / "cj.aux"),
                            "--json", str(report_json))
        assert code == 0
        report = json.loads(report_json.read_text())
        assert report["hpwl"]["final"] > 0
        assert report["design"]["num_cells"] >= 80  # movables + pads

    def test_sweep_resume_runs_verbs(self, tmp_path, capsys, monkeypatch):
        db = make_db()
        monkeypatch.setattr(DesignRef, "load", lambda self: db)
        store = str(tmp_path / "store")
        code = self.run_cli(
            "sweep", "runnertest", "--store", store, "--stages", "gp",
            "--param", "seed=1,2", "--param", "max_global_iters=40",
            "--json", str(tmp_path / "sweep.json"))
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep: 2 job(s)" in out
        payload = json.loads((tmp_path / "sweep.json").read_text())
        assert len(payload["outcomes"]) == 2
        assert all(o["status"] == "complete"
                   for o in payload["outcomes"])

        # identical resubmission: pure cache hits
        code = self.run_cli(
            "sweep", "runnertest", "--store", store, "--stages", "gp",
            "--param", "seed=1,2", "--param", "max_global_iters=40")
        assert code == 0
        assert "cache: 2 hit(s), 0 miss(es)" in capsys.readouterr().out

        code = self.run_cli("runs", "--store", store)
        assert code == 0
        listing = capsys.readouterr().out
        assert "complete" in listing
        short = payload["outcomes"][0]["job_hash"][:16]
        assert short in listing

        code = self.run_cli("runs", short, "--store", store)
        assert code == 0
        detail = capsys.readouterr().out
        assert "cache_hit=1" in detail

        code = self.run_cli("resume", short, "--store", store)
        assert code == 0
        assert "resum" in capsys.readouterr().out

    def test_batch_verb(self, tmp_path, capsys, monkeypatch):
        db = make_db()
        monkeypatch.setattr(DesignRef, "load", lambda self: db)
        specfile = tmp_path / "jobs.json"
        specfile.write_text(json.dumps({"jobs": [
            {"design": "runnertest", "stages": ["gp"],
             "params": {"max_global_iters": 40}},
            {"design": "runnertest", "stages": ["gp"],
             "params": {"max_global_iters": 40, "seed": 2}},
        ]}))
        store = str(tmp_path / "store")
        code = self.run_cli("batch", str(specfile), "--store", store)
        assert code == 0
        out = capsys.readouterr().out
        assert "batch: 2 job(s)" in out
        assert len(RunStore(store).list_runs()) == 2
