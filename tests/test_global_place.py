"""Tests for the global placement loop and the objective module."""

import numpy as np
import pytest

from repro.core import GlobalPlacer, PlacementParams
from repro.core.objective import PlacementObjective
from repro.geometry import BinGrid
from repro.nn import Parameter
from repro.ops.density_op import ElectricDensity
from repro.ops.wa_wirelength import WeightedAverageWirelength


class TestObjective:
    def test_combines_wl_and_density(self, small_db):
        grid = BinGrid(small_db.region, 16, 16)
        objective = PlacementObjective(
            WeightedAverageWirelength(small_db, gamma=0.5),
            ElectricDensity(small_db, grid),
        )
        objective.density_weight = 2.0
        pos = Parameter(np.concatenate([small_db.cell_x, small_db.cell_y]))
        total = objective(pos)
        assert total.item() == pytest.approx(
            objective.last_wirelength + 2.0 * objective.last_density
        )

    def test_gradient_flows_from_both_terms(self, small_db):
        grid = BinGrid(small_db.region, 16, 16)
        objective = PlacementObjective(
            WeightedAverageWirelength(small_db, gamma=0.5),
            ElectricDensity(small_db, grid),
        )
        objective.density_weight = 1.0
        pos = Parameter(np.concatenate([small_db.cell_x, small_db.cell_y]))
        objective(pos).backward()
        grad_both = pos.grad.copy()
        pos.zero_grad()
        objective.density_weight = 0.0
        objective(pos).backward()
        assert not np.allclose(grad_both, pos.grad)

    def test_gamma_passthrough(self, small_db):
        grid = BinGrid(small_db.region, 16, 16)
        objective = PlacementObjective(
            WeightedAverageWirelength(small_db, gamma=0.5),
            ElectricDensity(small_db, grid),
        )
        objective.gamma = 2.5
        assert objective.wirelength.gamma == 2.5


@pytest.fixture(scope="module")
def placed(request):
    """One shared small GP run (expensive)."""
    from repro.benchgen import CircuitSpec, generate

    db = generate(CircuitSpec(name="gp", num_cells=250, num_ios=12,
                              utilization=0.6, seed=5))
    params = PlacementParams(max_global_iters=250, seed=5)
    placer = GlobalPlacer(db, params)
    initial_hpwl = placer.hpwl()
    initial_overflow = placer.overflow()
    result = placer.place()
    return db, placer, result, initial_hpwl, initial_overflow


class TestGlobalPlacer:
    def test_overflow_reduced(self, placed):
        _, _, result, _, initial_overflow = placed
        assert result.overflow < initial_overflow
        assert result.overflow <= 0.12

    def test_converged_flag(self, placed):
        _, _, result, _, _ = placed
        assert result.converged

    def test_positions_inside_region(self, placed):
        db, _, result, _, _ = placed
        movable = db.movable_index
        assert db.region.contains(
            result.x[movable], result.y[movable],
            db.cell_width[movable], db.cell_height[movable],
        ).all()

    def test_fixed_cells_never_move(self, placed):
        db, _, result, _, _ = placed
        fixed = db.fixed_index
        np.testing.assert_allclose(result.x[fixed], db.cell_x[fixed])
        np.testing.assert_allclose(result.y[fixed], db.cell_y[fixed])

    def test_traces_recorded(self, placed):
        _, _, result, _, _ = placed
        assert len(result.hpwl_trace) == result.iterations
        assert len(result.overflow_trace) == result.iterations

    def test_overflow_trace_trends_down(self, placed):
        _, _, result, _, _ = placed
        trace = result.overflow_trace
        head = np.mean(trace[: max(len(trace) // 5, 1)])
        tail = np.mean(trace[-max(len(trace) // 5, 1):])
        assert tail < head

    def test_write_back(self, placed):
        db, placer, result, _, _ = placed
        placer.write_back()
        movable = db.movable_index
        np.testing.assert_allclose(db.cell_x[movable], result.x[movable])

    def test_set_positions_roundtrip(self, placed):
        db, placer, result, _, _ = placed
        x = result.x.copy()
        y = result.y.copy()
        placer.set_positions(x, y)
        nx, ny = placer._positions()
        movable = db.movable_index
        np.testing.assert_allclose(nx[movable], x[movable], atol=1e-9)

    def test_hpwl_spreading_tradeoff(self, placed):
        """Spreading from the center costs HPWL (it grows from init)."""
        _, _, result, initial_hpwl, _ = placed
        assert result.hpwl > initial_hpwl


class TestGlobalPlacerConfigs:
    def make_db(self):
        from repro.benchgen import CircuitSpec, generate

        return generate(CircuitSpec(name="cfg", num_cells=150,
                                    num_ios=8, utilization=0.55, seed=9))

    def test_no_fillers_mode(self):
        db = self.make_db()
        params = PlacementParams(use_fillers=False, max_global_iters=30)
        placer = GlobalPlacer(db, params)
        assert placer.num_fillers == 0
        placer.place(max_iters=5)

    def test_lse_wirelength_mode(self):
        db = self.make_db()
        params = PlacementParams(wirelength="lse", max_global_iters=30)
        result = GlobalPlacer(db, params).place(max_iters=10)
        assert np.isfinite(result.hpwl)

    def test_bad_wirelength_rejected(self):
        db = self.make_db()
        with pytest.raises(ValueError):
            GlobalPlacer(db, PlacementParams(wirelength="steiner"))

    def test_bad_optimizer_rejected(self):
        db = self.make_db()
        placer = GlobalPlacer(
            db, PlacementParams(optimizer="lbfgs")
        )
        with pytest.raises(ValueError):
            placer.place(max_iters=1)

    @pytest.mark.parametrize("optimizer", ["adam", "sgd", "rmsprop", "cg"])
    def test_alternative_solvers_run(self, optimizer):
        db = self.make_db()
        params = PlacementParams(
            optimizer=optimizer, max_global_iters=20,
            learning_rate=0.01, lr_decay=0.99, min_global_iters=1,
        )
        result = GlobalPlacer(db, params).place(max_iters=20)
        assert np.isfinite(result.hpwl)

    def test_float32_runs(self):
        db = self.make_db()
        params = PlacementParams(dtype="float32", max_global_iters=30)
        result = GlobalPlacer(db, params).place(max_iters=10)
        assert np.isfinite(result.hpwl)

    def test_seed_reproducibility(self):
        results = []
        for _ in range(2):
            db = self.make_db()
            params = PlacementParams(max_global_iters=15, seed=3)
            results.append(GlobalPlacer(db, params).place(max_iters=15).hpwl)
        assert results[0] == pytest.approx(results[1], rel=1e-12)

    def test_lambda_period_slows_updates(self):
        db = self.make_db()
        params = PlacementParams(max_global_iters=12, min_global_iters=1)
        fast = GlobalPlacer(db, params)
        fast.place(max_iters=12)
        lam_fast = fast.objective.density_weight

        db2 = self.make_db()
        slow = GlobalPlacer(db2, params)
        slow.lambda_period = 5
        slow.place(max_iters=12)
        lam_slow = slow.objective.density_weight
        assert lam_slow < lam_fast
