"""Tests for the bounded maze-routing fallback."""

import numpy as np
import pytest

from repro.route import GlobalRouter, RoutingGrid
from repro.route.maze import maze_route_segment
from repro.route.pattern_route import route_segment


class TestMazeRoute:
    def test_straight_path_when_clear(self, tiny_design):
        grid = RoutingGrid(tiny_design, num_tiles=12, macro_blockage=0.0)
        used = maze_route_segment(grid, 1, 1, 5, 1)
        assert len(used) == 4
        assert all(kind == "h" for kind, _, _ in used)
        assert grid.demand_h.sum() == 4.0

    def test_same_tile_empty(self, tiny_design):
        grid = RoutingGrid(tiny_design, num_tiles=12)
        assert maze_route_segment(grid, 3, 3, 3, 3) == []

    def test_path_length_is_manhattan_when_uncongested(self, tiny_design):
        grid = RoutingGrid(tiny_design, num_tiles=12, macro_blockage=0.0)
        used = maze_route_segment(grid, 2, 2, 6, 5)
        assert len(used) == (6 - 2) + (5 - 2)

    def test_detours_around_congestion(self, tiny_design):
        grid = RoutingGrid(tiny_design, num_tiles=12, macro_blockage=0.0)
        # saturate the straight corridor at y=2
        grid.demand_h[:, 2] = grid.capacity_h[:, 2] * 3
        used = maze_route_segment(grid, 1, 2, 6, 2, margin=3)
        # the maze should leave row 2 (some vertical edges used)
        assert any(kind == "v" for kind, _, _ in used)

    def test_commits_and_ripup_consistent(self, tiny_design):
        from repro.route.pattern_route import rip_up

        grid = RoutingGrid(tiny_design, num_tiles=12, macro_blockage=0.0)
        used = maze_route_segment(grid, 0, 0, 4, 4)
        rip_up(grid, used)
        assert grid.demand_h.sum() == 0.0
        assert grid.demand_v.sum() == 0.0

    def test_maze_rrr_helps_in_mild_congestion(self, tiny_design):
        """With calibrated (mildly tight) capacities, maze escalation
        resolves at least as much overflow as pattern-only rerouting."""
        from repro.route.router import calibrate_capacity

        capacity = calibrate_capacity(tiny_design, num_tiles=12)
        pattern_only = GlobalRouter(tiny_design, num_tiles=12,
                                    tile_capacity=capacity,
                                    use_maze=False, rrr_rounds=2)
        with_maze = GlobalRouter(tiny_design, num_tiles=12,
                                 tile_capacity=capacity,
                                 use_maze=True, rrr_rounds=2)
        a = pattern_only.route()
        b = with_maze.route()
        assert b.total_overflow <= a.total_overflow + 1e-9

    def test_margin_zero_still_connects_in_box(self, tiny_design):
        grid = RoutingGrid(tiny_design, num_tiles=12, macro_blockage=0.0)
        used = maze_route_segment(grid, 2, 2, 4, 4, margin=0)
        assert used is not None
        assert len(used) == 4
