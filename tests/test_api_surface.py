"""Public-API surface tests: imports, exports, lazy attributes."""

import importlib

import pytest


class TestTopLevel:
    def test_version(self):
        import repro

        assert repro.__version__

    def test_lazy_placer_attrs(self):
        import repro

        assert repro.DreamPlacer is not None
        assert repro.PlacementParams is not None
        assert repro.GlobalPlacer is not None

    def test_unknown_attr_raises(self):
        import repro

        with pytest.raises(AttributeError):
            repro.NoSuchThing

    @pytest.mark.parametrize("module", [
        "repro.nn", "repro.nn.optim", "repro.ops", "repro.core",
        "repro.lg", "repro.dp", "repro.route", "repro.timing",
        "repro.baseline", "repro.benchgen", "repro.bookshelf",
        "repro.geometry", "repro.netlist", "repro.viz", "repro.cli",
    ])
    def test_all_exports_resolve(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert getattr(mod, name) is not None

    def test_ops_expose_strategy_lists(self):
        from repro.ops.density_map import STRATEGIES as density
        from repro.ops.wa_wirelength import STRATEGIES as wirelength

        assert set(wirelength) == {"net_by_net", "atomic", "merged"}
        assert set(density) == {"naive", "sorted", "stamp"}

    def test_public_items_documented(self):
        """Every exported callable/class carries a docstring."""
        for module_name in ("repro.core", "repro.ops", "repro.lg",
                            "repro.dp", "repro.route", "repro.timing",
                            "repro.nn"):
            mod = importlib.import_module(module_name)
            for name in getattr(mod, "__all__", []):
                obj = getattr(mod, name)
                if callable(obj) or isinstance(obj, type):
                    assert obj.__doc__, f"{module_name}.{name} undocumented"
