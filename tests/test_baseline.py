"""Tests for the RePlAce-style baseline (B2B init + reference kernels)."""

import numpy as np
import pytest

from repro.baseline import ReplacePlacer, bound2bound_place
from repro.core import PlacementParams
from tests.conftest import make_chain_db


class TestB2B:
    def test_chain_collapses_toward_line(self):
        """Quadratic placement pulls a chain's cells together."""
        db = make_chain_db(num_cells=6, spacing=5.0)
        x, y = bound2bound_place(db, iterations=4)
        movable = db.movable_index
        # free-floating quadratic system with no anchors collapses
        assert np.ptp(x[movable]) < np.ptp(db.cell_x[movable])

    def test_anchored_chain_spreads_between_pads(self, small_db):
        """With fixed pads the solution interpolates between them."""
        x, y = bound2bound_place(small_db, iterations=4)
        movable = small_db.movable_index
        assert small_db.region.contains(
            x[movable], y[movable],
            small_db.cell_width[movable],
            small_db.cell_height[movable],
        ).all()

    def test_reduces_hpwl_vs_random(self, tiny_design):
        db = tiny_design
        rng = np.random.default_rng(0)
        movable = db.movable_index
        rand_x = db.cell_x.copy()
        rand_y = db.cell_y.copy()
        rand_x[movable] = rng.uniform(0, db.region.width, movable.shape[0])
        rand_y[movable] = rng.uniform(0, db.region.height, movable.shape[0])
        bx, by = bound2bound_place(db, iterations=3)
        assert db.hpwl(bx, by) < db.hpwl(rand_x, rand_y)

    def test_fixed_cells_untouched(self, small_db):
        x, y = bound2bound_place(small_db)
        fixed = small_db.fixed_index
        np.testing.assert_allclose(x[fixed], small_db.cell_x[fixed])

    def test_deterministic_given_rng(self, small_db):
        x1, _ = bound2bound_place(small_db, rng=np.random.default_rng(5))
        x2, _ = bound2bound_place(small_db, rng=np.random.default_rng(5))
        np.testing.assert_allclose(x1, x2)


class TestReplacePlacer:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.benchgen import CircuitSpec, generate

        db = generate(CircuitSpec(name="bl", num_cells=200, num_ios=8,
                                  utilization=0.55, seed=13))
        params = PlacementParams(max_global_iters=400, detailed_passes=1)
        return db, ReplacePlacer(db, params).run()

    def test_reference_strategies_forced(self):
        from repro.benchgen import CircuitSpec, generate

        db = generate(CircuitSpec(name="bl2", num_cells=100, seed=1))
        placer = ReplacePlacer(
            db, PlacementParams(wirelength_strategy="merged",
                                density_strategy="stamp"),
        )
        assert placer.params.wirelength_strategy == "net_by_net"
        assert placer.params.density_strategy == "naive"
        assert placer.params.dct_impl == "2n"

    def test_flow_converges_and_legal(self, result):
        db, res = result
        assert res.overflow <= 0.15
        assert res.legality is not None and res.legality.legal

    def test_init_time_tracked_separately(self, result):
        _, res = result
        assert res.init_place_time > 0
        assert res.nonlinear_time > 0
        assert res.gp_time == pytest.approx(
            res.init_place_time + res.nonlinear_time
        )

    def test_hpwl_reported(self, result):
        _, res = result
        assert np.isfinite(res.hpwl_final)
        assert res.hpwl_final > 0
