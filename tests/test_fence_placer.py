"""Tests for fence-aware global placement (fences in GlobalPlacer)."""

import numpy as np
import pytest

from repro.core import FenceRegion, GlobalPlacer, PlacementParams
from repro.geometry import PlacementRegion
from repro.netlist import CellKind, Netlist


@pytest.fixture
def fenced_design():
    region = PlacementRegion(0, 0, 48, 48)
    netlist = Netlist("fgp")
    rng = np.random.default_rng(3)
    for i in range(80):
        netlist.add_cell(f"c{i}", float(rng.integers(1, 4)), 1.0,
                         CellKind.MOVABLE, x=24.0, y=24.0)
    for e in range(80):
        a = int(rng.integers(80))
        b = int(rng.integers(80))
        if a == b:
            b = (b + 1) % 80
        netlist.add_net(f"n{e}", [(a, 0.5, 0.5), (b, 0.5, 0.5)])
    db = netlist.compile(region)
    fences = [
        FenceRegion("L", 2, 2, 20, 46, cells=list(range(40))),
        FenceRegion("R", 28, 2, 46, 46, cells=list(range(40, 80))),
    ]
    return db, fences


class TestFencedGlobalPlacer:
    @pytest.fixture(scope="class")
    def placed(self):
        # class-scoped: run the fenced GP once
        region = PlacementRegion(0, 0, 48, 48)
        netlist = Netlist("fgp")
        rng = np.random.default_rng(3)
        for i in range(80):
            netlist.add_cell(f"c{i}", float(rng.integers(1, 4)), 1.0,
                             CellKind.MOVABLE, x=24.0, y=24.0)
        for e in range(80):
            a = int(rng.integers(80))
            b = int(rng.integers(80))
            if a == b:
                b = (b + 1) % 80
            netlist.add_net(f"n{e}", [(a, 0.5, 0.5), (b, 0.5, 0.5)])
        db = netlist.compile(region)
        fences = [
            FenceRegion("L", 2, 2, 20, 46, cells=list(range(40))),
            FenceRegion("R", 28, 2, 46, 46, cells=list(range(40, 80))),
        ]
        placer = GlobalPlacer(
            db, PlacementParams(max_global_iters=150, min_global_iters=5),
            fences=fences,
        )
        return db, fences, placer.place()

    def test_cells_stay_in_fences(self, placed):
        db, fences, result = placed
        x = result.x
        left, right = fences
        assert (x[:40] >= left.xl - 1e-6).all()
        assert (x[:40] + db.cell_width[:40] <= left.xh + 1e-6).all()
        assert (x[40:] >= right.xl - 1e-6).all()
        assert (x[40:] + db.cell_width[40:] <= right.xh + 1e-6).all()

    def test_spreads_within_fences(self, placed):
        db, fences, result = placed
        assert result.overflow < 0.25

    def test_fillers_disabled_with_fences(self, fenced_design):
        db, fences = fenced_design
        placer = GlobalPlacer(db, PlacementParams(use_fillers=True),
                              fences=fences)
        assert placer.num_fillers == 0

    def test_initial_positions_projected_into_fences(self, fenced_design):
        db, fences = fenced_design
        placer = GlobalPlacer(db, PlacementParams(), fences=fences)
        x, y = placer._positions()
        left = fences[0]
        assert (x[:40] + db.cell_width[:40] <= left.xh + 1e-6).all()
