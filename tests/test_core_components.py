"""Tests for params, gamma annealing, density weight, initialization."""

import numpy as np
import pytest

from repro.core.density_weight import DensityWeight
from repro.core.gamma import GammaScheduler
from repro.core.initial_place import (
    compute_fillers,
    random_center_init,
    uniform_filler_init,
)
from repro.core.params import PlacementParams


class TestParams:
    def test_defaults_valid(self):
        params = PlacementParams()
        assert params.np_dtype() == np.float64

    def test_float32(self):
        assert PlacementParams(dtype="float32").np_dtype() == np.float32

    def test_bad_dtype(self):
        with pytest.raises(ValueError):
            PlacementParams(dtype="float16").np_dtype()

    def test_resolve_num_bins_power_of_two(self):
        params = PlacementParams()
        for n in (100, 1000, 40000):
            bins = params.resolve_num_bins(n)
            assert bins & (bins - 1) == 0
            assert 16 <= bins <= 512

    def test_resolve_num_bins_grows_with_size(self):
        params = PlacementParams()
        assert params.resolve_num_bins(100000) > params.resolve_num_bins(500)

    def test_explicit_num_bins_wins(self):
        assert PlacementParams(num_bins=48).resolve_num_bins(10**6) == 48

    def test_with_overrides(self):
        base = PlacementParams()
        other = base.with_overrides(dtype="float32", seed=9)
        assert other.dtype == "float32"
        assert other.seed == 9
        assert base.dtype == "float64"


class TestGamma:
    def test_monotone_in_overflow(self, grid):
        schedule = GammaScheduler(grid)
        values = [schedule(o) for o in (1.0, 0.5, 0.2, 0.1, 0.0)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_endpoints(self, grid):
        schedule = GammaScheduler(grid, gamma_factor=4.0)
        base = 4.0 * 0.5 * (grid.bin_w + grid.bin_h)
        assert schedule(1.0) == pytest.approx(10.0 * base)
        assert schedule(0.1) == pytest.approx(0.1 * base)

    def test_clamps_out_of_range(self, grid):
        schedule = GammaScheduler(grid)
        assert schedule(2.0) == schedule(1.0)
        assert schedule(-1.0) == schedule(0.0)


class TestDensityWeight:
    def test_initialize_balances_gradients(self):
        weight = DensityWeight()
        wl_grad = np.array([1.0, -1.0, 2.0])
        d_grad = np.array([0.5, 0.5, 1.0])
        assert weight.initialize(wl_grad, d_grad) == pytest.approx(2.0)

    def test_initialize_zero_density_grad(self):
        weight = DensityWeight()
        assert weight.initialize(np.ones(3), np.zeros(3)) == 1.0

    def test_grows_when_hpwl_improves(self):
        weight = DensityWeight(tcad_tweak=False, ref_delta_hpwl=100.0)
        weight.initialize(np.ones(2), np.ones(2))
        weight.update(1000.0)
        before = weight.value
        weight.update(900.0)  # HPWL improved -> mu = mu_max
        assert weight.value == pytest.approx(before * 1.05)

    def test_slows_when_hpwl_degrades(self):
        weight = DensityWeight(tcad_tweak=False, ref_delta_hpwl=100.0)
        weight.initialize(np.ones(2), np.ones(2))
        weight.update(1000.0)
        before = weight.value
        weight.update(1100.0)  # p = 1 -> mu = max(mu_min, mu_max^0) = 1
        assert weight.value == pytest.approx(before * 1.0)

    def test_mu_floor(self):
        weight = DensityWeight(tcad_tweak=False, ref_delta_hpwl=1.0)
        weight.initialize(np.ones(2), np.ones(2))
        weight.update(0.0)
        before = weight.value
        weight.update(1e9)  # enormous degradation -> mu = mu_min
        assert weight.value == pytest.approx(before * 0.95)

    def test_tcad_tweak_reduces_mu(self):
        plain = DensityWeight(tcad_tweak=False, ref_delta_hpwl=100.0)
        tweaked = DensityWeight(tcad_tweak=True, ref_delta_hpwl=100.0)
        for w in (plain, tweaked):
            w.initialize(np.ones(2), np.ones(2))
            for k in range(30):
                w.update(1000.0 - k)  # always improving
        assert tweaked.value < plain.value

    def test_tcad_tweak_floor_098(self):
        weight = DensityWeight(tcad_tweak=True)
        weight._iteration = 10 ** 6  # 0.9999^1e6 << 0.98
        weight.value = 1.0
        weight._last_hpwl = 100.0
        weight.update(50.0)
        assert weight.value == pytest.approx(1.05 * 0.98)


class TestInitialPlace:
    def test_center_with_noise(self, small_db):
        rng = np.random.default_rng(0)
        x, y = random_center_init(small_db, 0.001, rng)
        movable = small_db.movable_index
        cx, cy = small_db.region.center
        centers_x = x[movable] + 0.5 * small_db.cell_width[movable]
        assert np.abs(centers_x - cx).max() < 0.05 * small_db.region.width

    def test_noise_scale(self, small_db):
        rng = np.random.default_rng(0)
        x1, _ = random_center_init(small_db, 0.001, rng)
        rng = np.random.default_rng(0)
        x2, _ = random_center_init(small_db, 0.1, rng)
        movable = small_db.movable_index
        assert np.std(x2[movable]) > np.std(x1[movable])

    def test_fixed_untouched(self, small_db):
        x, y = random_center_init(small_db)
        fixed = small_db.fixed_index
        np.testing.assert_array_equal(x[fixed], small_db.cell_x[fixed])

    def test_inside_region(self, small_db):
        x, y = random_center_init(small_db, 0.2)
        movable = small_db.movable_index
        assert small_db.region.contains(
            x[movable], y[movable],
            small_db.cell_width[movable], small_db.cell_height[movable],
        ).all()

    def test_filler_count_covers_whitespace(self, small_db):
        count, fw, fh = compute_fillers(small_db, target_density=1.0)
        free = small_db.region.area - small_db.total_fixed_area
        filled = small_db.total_movable_area + count * fw * fh
        assert filled <= free
        assert filled > 0.9 * free

    def test_no_fillers_when_full(self, small_db):
        # target density below utilization -> no fillers
        count, _, _ = compute_fillers(small_db, target_density=0.01)
        assert count == 0

    def test_filler_positions_inside(self, small_db):
        rng = np.random.default_rng(0)
        fx, fy = uniform_filler_init(100, small_db, 2.0, 1.0, rng)
        assert (fx >= small_db.region.xl).all()
        assert (fx + 2.0 <= small_db.region.xh).all()
