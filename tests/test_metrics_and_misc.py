"""Tests for metrics, reporting, and miscellaneous surfaces."""

import numpy as np
import pytest

from repro.core import PlacementParams, placement_summary, scaled_hpwl
from repro.core.placer import StageTimes
from repro.route.router import calibrate_capacity


class TestStageTimes:
    def test_total_sums_stages(self):
        times = StageTimes(global_place=1.0, global_route=2.0,
                           legalize=0.5, detailed=0.25)
        assert times.total == pytest.approx(3.75)

    def test_defaults_zero(self):
        assert StageTimes().total == 0.0


class TestScaledHpwl:
    def test_no_congestion_identity(self):
        assert scaled_hpwl(12345.0, 100.0) == 12345.0

    def test_three_percent_per_rc_point(self):
        assert scaled_hpwl(1000.0, 101.0) == pytest.approx(1030.0)

    def test_matches_paper_equation(self):
        hpwl, rc = 62.39e6, 102.47
        assert scaled_hpwl(hpwl, rc) == pytest.approx(
            hpwl * (1 + 0.03 * (rc - 100))
        )


class TestPlacementSummary:
    def test_summary_fields(self, small_db):
        summary = placement_summary(small_db)
        assert summary.hpwl == pytest.approx(small_db.hpwl())
        assert summary.num_cells == small_db.num_cells
        assert summary.num_nets == small_db.num_nets
        assert summary.num_pins == small_db.num_pins

    def test_overrides_positions(self, small_db):
        x, y = small_db.positions()
        movable = small_db.movable_index
        x[movable] = 5.0
        y[movable] = 5.0
        piled = placement_summary(small_db, x, y)
        assert piled.overflow > placement_summary(small_db).overflow


class TestCalibrateCapacity:
    def test_returns_positive(self, tiny_design):
        assert calibrate_capacity(tiny_design, num_tiles=12) >= 1.0

    def test_tighter_percentile_lower_capacity(self, tiny_design):
        loose = calibrate_capacity(tiny_design, num_tiles=12,
                                   percentile=99.5, headroom=1.0)
        tight = calibrate_capacity(tiny_design, num_tiles=12,
                                   percentile=80.0, headroom=1.0)
        assert tight <= loose

    def test_produces_mild_congestion(self, tiny_design):
        from repro.route import GlobalRouter

        capacity = calibrate_capacity(tiny_design, num_tiles=12)
        result = GlobalRouter(tiny_design, num_tiles=12,
                              tile_capacity=capacity).route()
        # mildly congested: RC above the floor but not catastrophic
        assert 100.0 <= result.rc < 200.0


class TestReplaceExtrapolate:
    def test_extrapolate_matches_full_quality(self):
        from repro.baseline import ReplacePlacer
        from repro.benchgen import CircuitSpec, generate

        spec = CircuitSpec(name="ex", num_cells=120, num_ios=8,
                           utilization=0.55, seed=41)
        params = PlacementParams(max_global_iters=120, detailed=False,
                                 min_global_iters=1)
        db_full = generate(spec)
        full = ReplacePlacer(db_full, params, timing_mode="full").run()
        db_ex = generate(spec)
        extrapolated = ReplacePlacer(db_ex, params,
                                     timing_mode="extrapolate").run()
        # identical math -> near-identical quality
        assert extrapolated.hpwl_final == pytest.approx(
            full.hpwl_final, rel=0.02
        )
        # and the estimated time is the same order as the measured one
        ratio = extrapolated.nonlinear_time / max(full.nonlinear_time,
                                                  1e-9)
        assert 0.3 < ratio < 3.0

    def test_bad_timing_mode_rejected(self, small_db):
        from repro.baseline import ReplacePlacer

        with pytest.raises(ValueError):
            ReplacePlacer(small_db, timing_mode="guess")


class TestDtypeSweeps:
    """float32 vs float64 parity on the kernels (the paper's precisions)."""

    def test_scatter_dtype_respected(self, grid):
        from repro.ops.density_map import scatter_density

        out = scatter_density(
            grid, np.array([2.0]), np.array([2.0]), np.array([1.0]),
            np.array([1.0]), np.array([1.0]), dtype=np.float32,
        )
        assert out.dtype == np.float32

    def test_scatter_f32_close_to_f64(self, region, grid):
        from repro.ops.density_map import scatter_density

        rng = np.random.default_rng(0)
        n = 30
        xl = rng.uniform(0, 28, n)
        yl = rng.uniform(0, 28, n)
        w = rng.uniform(0.5, 3, n)
        h = rng.uniform(0.5, 3, n)
        ones = np.ones(n)
        a = scatter_density(grid, xl, yl, w, h, ones, dtype=np.float64)
        b = scatter_density(grid, xl, yl, w, h, ones, dtype=np.float32)
        np.testing.assert_allclose(a, b, rtol=1e-4, atol=1e-4)

    def test_density_op_f32_energy(self, blocked_db):
        from repro.geometry import BinGrid
        from repro.nn import Tensor
        from repro.ops.density_op import ElectricDensity

        grid = BinGrid(blocked_db.region, 16, 16)
        pos = np.concatenate([blocked_db.cell_x, blocked_db.cell_y])
        e64 = ElectricDensity(blocked_db, grid, dtype=np.float64)(
            Tensor(pos)
        ).item()
        e32 = ElectricDensity(blocked_db, grid, dtype=np.float32)(
            Tensor(pos.astype(np.float32))
        ).item()
        assert e32 == pytest.approx(e64, rel=1e-3)
