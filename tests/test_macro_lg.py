"""Tests for movable-macro legalization and the mixed-size flow."""

import numpy as np
import pytest

from repro.benchgen import CircuitSpec, generate
from repro.geometry import PlacementRegion
from repro.lg import check_legal, legalize
from repro.lg.macro_legalize import legalize_macros, movable_macro_index
from repro.netlist import CellKind, Netlist


@pytest.fixture
def mixed_db():
    return generate(CircuitSpec(
        name="mixed", num_cells=250, num_ios=12, utilization=0.55,
        macro_area_fraction=0.08, num_macros=3, movable_macros=True,
        seed=29,
    ))


class TestMacroLegalize:
    def test_macro_index_detection(self, mixed_db):
        macros = movable_macro_index(mixed_db)
        assert macros.size == 3
        assert (mixed_db.cell_height[macros] >
                mixed_db.region.row_height).all()

    def test_no_macros_is_noop(self, small_db):
        x0, y0 = small_db.positions()
        x, y, macros = legalize_macros(small_db)
        assert macros.size == 0
        np.testing.assert_allclose(x, x0)

    def test_macros_snap_to_grid(self, mixed_db):
        x, y, macros = legalize_macros(mixed_db)
        region = mixed_db.region
        rel_x = (x[macros] - region.xl) / region.site_width
        rel_y = (y[macros] - region.yl) / region.row_height
        np.testing.assert_allclose(rel_x, np.round(rel_x), atol=1e-9)
        np.testing.assert_allclose(rel_y, np.round(rel_y), atol=1e-9)

    def test_macros_inside_region(self, mixed_db):
        x, y, macros = legalize_macros(mixed_db)
        assert mixed_db.region.contains(
            x[macros], y[macros],
            mixed_db.cell_width[macros], mixed_db.cell_height[macros],
        ).all()

    def test_overlapping_macros_separated(self):
        region = PlacementRegion(0, 0, 32, 32)
        netlist = Netlist("mm")
        netlist.add_cell("m0", 6, 6, CellKind.MOVABLE, x=10, y=10)
        netlist.add_cell("m1", 6, 6, CellKind.MOVABLE, x=11, y=11)
        netlist.add_net("n", [(0, 0, 0), (1, 0, 0)])
        db = netlist.compile(region)
        x, y, macros = legalize_macros(db)
        from repro.geometry.boxes import rect_overlap_area

        overlap = rect_overlap_area(
            x[0], y[0], x[0] + 6, y[0] + 6,
            x[1], y[1], x[1] + 6, y[1] + 6,
        )
        assert overlap == 0.0

    def test_avoids_fixed_macros(self):
        region = PlacementRegion(0, 0, 32, 32)
        netlist = Netlist("mf")
        netlist.add_cell("mov", 6, 6, CellKind.MOVABLE, x=13, y=13)
        netlist.add_cell("fix", 8, 8, CellKind.FIXED, x=12, y=12)
        netlist.add_net("n", [(0, 0, 0), (1, 0, 0)])
        db = netlist.compile(region)
        x, y, _ = legalize_macros(db)
        from repro.geometry.boxes import rect_overlap_area

        assert rect_overlap_area(
            x[0], y[0], x[0] + 6, y[0] + 6, 12, 12, 20, 20
        ) == 0.0

    def test_impossible_fit_raises(self):
        region = PlacementRegion(0, 0, 8, 8)
        netlist = Netlist("big")
        netlist.add_cell("fix", 8, 8, CellKind.FIXED, x=0, y=0)
        netlist.add_cell("mov", 4, 4, CellKind.MOVABLE, x=2, y=2)
        netlist.add_net("n", [(0, 0, 0), (1, 0, 0)])
        db = netlist.compile(region)
        with pytest.raises(RuntimeError):
            legalize_macros(db)


class TestMixedSizeFlow:
    def test_full_legalize_with_macros(self, mixed_db):
        x, y = legalize(mixed_db)
        report = check_legal(mixed_db, x, y, check_sites=True)
        # macros are row/site aligned by construction; std cells legal
        assert report.overlaps == 0, report.messages
        assert report.outside == 0

    def test_std_cells_avoid_legalized_macros(self, mixed_db):
        x, y = legalize(mixed_db)
        report = check_legal(mixed_db, x, y)
        assert report.legal, report.messages

    def test_end_to_end_mixed_flow(self, mixed_db):
        from repro.core import DreamPlacer, PlacementParams

        result = DreamPlacer(
            mixed_db,
            PlacementParams(max_global_iters=120, detailed_passes=1,
                            min_global_iters=1),
        ).run()
        assert result.legality.legal, result.legality.messages
        assert result.hpwl_final > 0
