"""Tests for the captured-tape execution engine (repro.nn.tape).

The replay contract is bit-exactness: a captured objective graph must
produce the same objective value, the same gradients, and therefore the
same placement trajectory as eager evaluation, across wirelength models,
strategies and dtypes, and across every structural event that forces a
recapture (rollback, warm restart, checkpoint resume).
"""

import numpy as np
import pytest

from repro.benchgen import CircuitSpec, generate
from repro.core import FenceRegion, GlobalPlacer, PlacementParams
from repro.geometry import PlacementRegion
from repro.geometry.bins import BinGrid
from repro.netlist import CellKind, Netlist
from repro.nn import Parameter, Tensor
from repro.nn import functional as F
from repro.nn.function import Function
from repro.nn.tape import CaptureError, TapeInvalidated, capture
from repro.ops.electrostatics import PoissonSolver


def make_db(seed=7, cells=120):
    return generate(CircuitSpec(name="tape", num_cells=cells, num_ios=8,
                                utilization=0.55, seed=seed))


# ----------------------------------------------------------------------
class TestCaptureUnit:
    @staticmethod
    def _closure(p, c):
        def run():
            p.zero_grad()
            obj = F.tensor_sum(F.square(F.mul(F.add(p, c), p)))
            obj.backward()
            return obj
        return run

    def test_replay_matches_eager(self):
        p = Parameter(np.linspace(-1.0, 1.0, 7))
        c = Tensor(np.full(7, 0.25))
        run = self._closure(p, c)
        loss, tape = capture(run)
        assert tape is not None
        grad_eager = p.grad.copy()
        for _ in range(3):
            p.zero_grad()
            out = tape.replay()
            assert float(out.data) == float(loss.data)
            assert np.array_equal(p.grad, grad_eager)
        assert tape.replays == 3

    def test_leaf_rebind_flows_into_replay(self):
        p = Parameter(np.linspace(-1.0, 1.0, 7))
        c = Tensor(np.full(7, 0.25))
        run = self._closure(p, c)
        _, tape = capture(run)
        # the optimizer moves the parameter in place between iterations
        p.data[:] = np.linspace(0.5, 2.0, 7)
        p.zero_grad()
        replayed = tape.replay()
        grad_replay = p.grad.copy()
        eager = run()
        assert float(replayed.data) == float(eager.data)
        assert np.array_equal(grad_replay, p.grad)

    def test_leaf_shape_change_invalidates(self):
        p = Parameter(np.ones(5))
        c = Tensor(np.ones(5))
        _, tape = capture(self._closure(p, c))
        p.data = np.ones(6)
        p.zero_grad()
        with pytest.raises(TapeInvalidated):
            tape.replay()

    def test_leaf_dtype_change_invalidates(self):
        p = Parameter(np.ones(5))
        c = Tensor(np.ones(5))
        _, tape = capture(self._closure(p, c))
        p.data = np.ones(5, dtype=np.float32)
        p.zero_grad()
        with pytest.raises(TapeInvalidated):
            tape.replay()

    def test_unsafe_op_yields_no_tape(self):
        class _Opaque(Function):  # capture_safe defaults to False
            def forward(self, a):
                return a * 2.0

            def backward(self, grad_output):
                return 2.0 * grad_output

        p = Parameter(np.ones(4))

        def run():
            p.zero_grad()
            obj = F.tensor_sum(_Opaque.apply(p))
            obj.backward()
            return obj

        loss, tape = capture(run)
        assert tape is None  # eager result still valid
        assert float(loss.data) == 8.0
        assert np.array_equal(p.grad, np.full(4, 2.0))

    def test_no_backward_yields_no_tape(self):
        p = Parameter(np.ones(4))
        _, tape = capture(lambda: F.tensor_sum(p))
        assert tape is None

    def test_nested_capture_raises(self):
        p = Parameter(np.ones(3))

        def outer():
            capture(self._closure(p, Tensor(np.ones(3))))

        with pytest.raises(CaptureError):
            capture(outer)


# ----------------------------------------------------------------------
class TestDeepGraph:
    def test_deep_chain_backward_no_recursion_error(self):
        # regression: the recursive postorder build overflowed CPython's
        # stack around ~1000 chained ops
        p = Parameter(np.array([1.0]))
        c = Tensor(np.array([0.001]))
        out = p
        for _ in range(5000):
            out = F.add(out, c)
        loss = F.tensor_sum(out)
        loss.backward()
        assert np.array_equal(p.grad, np.array([1.0]))

    def test_deep_chain_replay_matches_eager(self):
        p = Parameter(np.array([2.0]))
        c = Tensor(np.array([1.0 + 1e-9]))

        def run():
            p.zero_grad()
            out = p
            for _ in range(2000):
                out = F.mul(out, c)
            obj = F.tensor_sum(out)
            obj.backward()
            return obj

        loss, tape = capture(run)
        assert tape is not None
        grad_eager = p.grad.copy()
        p.zero_grad()
        replayed = tape.replay()
        assert float(replayed.data) == float(loss.data)
        assert np.array_equal(p.grad, grad_eager)


# ----------------------------------------------------------------------
class TestBatchedSolver:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_solve_captured_bit_identical(self, dtype):
        region = PlacementRegion(0, 0, 64, 48)
        grid = BinGrid(region, 32, 16)
        solver = PoissonSolver(grid)
        rng = np.random.default_rng(5)
        rho = rng.random(grid.shape).astype(dtype)
        ref = solver.solve(np.asarray(rho, dtype=np.float64))
        for _ in range(2):  # warm buffers, then steady state
            got = solver.solve_captured(rho)
        assert np.array_equal(ref.potential, got.potential)
        assert np.array_equal(ref.field_x, got.field_x)
        assert np.array_equal(ref.field_y, got.field_y)


# ----------------------------------------------------------------------
def _place(db, capture_on, **overrides):
    base = dict(max_global_iters=25, min_global_iters=5, seed=5,
                graph_capture=capture_on)
    base.update(overrides)
    placer = GlobalPlacer(db, PlacementParams(**base))
    result = placer.place()
    return placer, result


class TestPlacerCapture:
    @pytest.mark.parametrize("config", [
        dict(wirelength="wa", wirelength_strategy="merged",
             dtype="float64"),
        dict(wirelength="lse", wirelength_strategy="atomic",
             dtype="float32"),
    ])
    def test_captured_place_bit_exact(self, config):
        placer_e, _ = _place(make_db(), False, **config)
        placer_r, _ = _place(make_db(), True, **config)
        assert placer_r._tape is not None
        assert placer_r._tape.replays > 0
        assert np.array_equal(placer_e.pos.data, placer_r.pos.data)

    def test_watched_metrics_flow_from_replay(self):
        placer, _ = _place(make_db(), True)
        assert placer._tape.replays > 0
        assert np.isfinite(placer.objective.last_wirelength)
        assert np.isfinite(placer.objective.last_density)

    def test_unsafe_wirelength_factory_falls_back_to_eager(self):
        def factory(db_, gamma, dtype):
            from repro.ops.wa_wirelength import WeightedAverageWirelength

            return WeightedAverageWirelength(db_, gamma=gamma, dtype=dtype)

        db = make_db()
        placer = GlobalPlacer(
            db, PlacementParams(max_global_iters=10, min_global_iters=2,
                                seed=5),
            wirelength_factory=factory,
        )
        result = placer.place()
        assert placer._tape is None
        assert np.isfinite(result.hpwl)

    def test_rollback_recaptures_and_stays_bit_exact(self):
        # forced divergence: the monitor rolls back (invalidating the
        # tape), the next closure recaptures, and the whole trajectory
        # still matches the eager run bit for bit
        overrides = dict(density_weight_scale=100.0, divergence_ratio=2.0,
                         min_global_iters=2, max_global_iters=40,
                         stop_overflow=0.0, max_recoveries=1,
                         recovery_lambda_damping=0.9, seed=9)
        placer_e, result_e = _place(make_db(seed=9, cells=150), False,
                                    **overrides)
        placer_r, result_r = _place(make_db(seed=9, cells=150), True,
                                    **overrides)
        assert result_r.recoveries >= 1
        assert result_r.recoveries == result_e.recoveries
        assert np.array_equal(placer_e.pos.data, placer_r.pos.data)

    def test_warm_restart_recaptures(self):
        db = make_db()
        placer, _ = _place(db, True, max_global_iters=8)
        first = placer._tape
        assert first is not None
        x = placer.pos.data[:db.num_cells].copy()
        y = placer.pos.data[db.num_cells:2 * db.num_cells].copy()
        placer.set_positions(x, y)
        assert placer._tape is None  # structural event drops the tape
        placer.place(max_iters=5)
        assert placer._tape is not None
        assert placer._tape is not first

    def test_checkpoint_resume_bit_exact(self):
        overrides = dict(max_global_iters=20)
        _, result_full = _place(make_db(), True, **overrides)

        class _Abort(Exception):
            pass

        state = {}

        def grab(placer, info):
            if info["iteration"] == 8:
                state["loop"] = placer.capture_loop_state()
                raise _Abort

        db = make_db()
        interrupted = GlobalPlacer(
            db, PlacementParams(max_global_iters=20, min_global_iters=5,
                                seed=5, graph_capture=True))
        with pytest.raises(_Abort):
            interrupted.place(on_iteration=grab)

        resumed = GlobalPlacer(
            db, PlacementParams(max_global_iters=20, min_global_iters=5,
                                seed=5, graph_capture=True))
        result_res = resumed.place(resume_state=state["loop"])
        assert resumed._tape is not None and resumed._tape.replays > 0
        assert np.array_equal(result_full.x, result_res.x)
        assert np.array_equal(result_full.y, result_res.y)

    def test_capture_disabled_runs_eager(self):
        placer, result = _place(make_db(), False, max_global_iters=8)
        assert placer._tape is None
        assert np.isfinite(result.hpwl)


# ----------------------------------------------------------------------
class TestFencedCapture:
    def _build(self):
        region = PlacementRegion(0, 0, 48, 48)
        netlist = Netlist("fcap")
        rng = np.random.default_rng(3)
        for i in range(80):
            netlist.add_cell(f"c{i}", float(rng.integers(1, 4)), 1.0,
                             CellKind.MOVABLE, x=24.0, y=24.0)
        for e in range(80):
            a = int(rng.integers(80))
            b = int(rng.integers(80))
            if a == b:
                b = (b + 1) % 80
            netlist.add_net(f"n{e}", [(a, 0.5, 0.5), (b, 0.5, 0.5)])
        db = netlist.compile(region)
        fences = [
            FenceRegion("L", 2, 2, 20, 46, cells=list(range(40))),
            FenceRegion("R", 28, 2, 46, 46, cells=list(range(40, 80))),
        ]
        return db, fences

    def test_fenced_place_bit_exact(self):
        db, fences = self._build()
        params = dict(max_global_iters=25, min_global_iters=5, seed=5)
        p_eager = GlobalPlacer(
            db, PlacementParams(graph_capture=False, **params),
            fences=fences)
        p_eager.place()
        db2, fences2 = self._build()
        p_replay = GlobalPlacer(
            db2, PlacementParams(graph_capture=True, **params),
            fences=fences2)
        p_replay.place()
        assert p_replay._tape is not None
        assert p_replay._tape.replays > 0
        assert np.array_equal(p_eager.pos.data, p_replay.pos.data)
