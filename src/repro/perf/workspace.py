"""Persistent kernel workspaces (the zero-allocation hot-loop contract).

The GP hot loop evaluates the same operators on same-shaped data ~1000
times; on CPU, re-allocating every temporary is pure overhead (the
analog of DREAMPlace's Algorithm 2, which merges kernels precisely so
intermediates never hit global memory).  A :class:`Workspace` is a small
named buffer pool: an op acquires each scratch array by name once per
call and numpy writes into it via ``out=`` arguments and in-place
ufuncs, so after a warmup call the steady state performs no new large
allocations.

Contract for pooled kernels:

- buffers are keyed by *name*; contents are undefined at ``acquire``
  time (use :meth:`Workspace.zeros` when a cleared buffer is needed),
- a buffer is only valid until the same name is acquired again, so
  kernels must consume a buffer before re-acquiring its name,
- shape or dtype changes trigger a (rare) reallocation, making pooling
  transparent when problem sizes change between calls.

:class:`NullWorkspace` has the same API but allocates fresh arrays on
every acquire — it is the "before" configuration of the pooling
benchmarks and a debugging aid (buffer-reuse bugs disappear under it).
"""

from __future__ import annotations

import numpy as np


class Workspace:
    """Dtype/shape-keyed pool of named scratch arrays."""

    def __init__(self):
        self._buffers: dict[str, np.ndarray] = {}
        self._flat: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    def acquire(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        """A persistent buffer of exactly ``shape``; contents undefined."""
        if np.isscalar(shape):
            shape = (int(shape),)
        else:
            shape = tuple(int(s) for s in shape)
        dtype = np.dtype(dtype)
        buf = self._buffers.get(name)
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            buf = np.empty(shape, dtype=dtype)
            self._buffers[name] = buf
        return buf

    def zeros(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        """Like :meth:`acquire` but cleared to zero."""
        buf = self.acquire(name, shape, dtype)
        buf.fill(0)
        return buf

    def acquire_flat(self, name: str, size: int, dtype=np.float64) -> np.ndarray:
        """A 1-D view of length ``size`` over a capacity-grown buffer.

        For data-dependent sizes (e.g. the number of cell/bin overlap
        pairs, which changes as cells move): capacity grows
        geometrically, so steady state reallocates never.
        """
        size = int(size)
        dtype = np.dtype(dtype)
        buf = self._flat.get(name)
        if buf is None or buf.dtype != dtype or buf.size < size:
            cap = size if buf is None else max(size, 2 * buf.size)
            buf = np.empty(max(cap, 8), dtype=dtype)
            self._flat[name] = buf
        return buf[:size]

    def arange(self, size: int) -> np.ndarray:
        """A cached ``arange(size)`` view (int64), grown like acquire_flat."""
        size = int(size)
        buf = self._flat.get("__arange__")
        if buf is None or buf.size < size:
            cap = max(size if buf is None else max(size, 2 * buf.size), 8)
            buf = np.arange(cap, dtype=np.int64)
            self._flat["__arange__"] = buf
        return buf[:size]

    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the pool."""
        return sum(b.nbytes for b in self._buffers.values()) + \
            sum(b.nbytes for b in self._flat.values())

    def __len__(self) -> int:
        return len(self._buffers) + len(self._flat)

    def clear(self) -> None:
        self._buffers.clear()
        self._flat.clear()


class NullWorkspace(Workspace):
    """Same API, but every acquire allocates fresh memory.

    Used as the "allocate everything per call" baseline in the pooling
    benchmarks, and to flush out buffer-aliasing bugs in pooled kernels.
    """

    def acquire(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        if np.isscalar(shape):
            shape = (int(shape),)
        return np.empty(tuple(int(s) for s in shape), dtype=np.dtype(dtype))

    def zeros(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        if np.isscalar(shape):
            shape = (int(shape),)
        return np.zeros(tuple(int(s) for s in shape), dtype=np.dtype(dtype))

    def acquire_flat(self, name: str, size: int, dtype=np.float64) -> np.ndarray:
        return np.empty(int(size), dtype=np.dtype(dtype))

    def arange(self, size: int) -> np.ndarray:
        return np.arange(int(size), dtype=np.int64)
