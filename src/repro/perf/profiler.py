"""Op-level profiling harness (the Fig. 9 instrumentation).

The paper's analysis lives on per-op runtime breakdowns (Fig. 9/10/12);
this module provides the measurement substrate: a :class:`Profiler`
collects per-op wall time and (optionally) tracemalloc-based allocation
counters, and the placement kernels report into whichever profiler is
*active* via the near-zero-overhead :func:`profiled` context manager.

Usage::

    with Profiler() as prof:
        DreamPlacer(db, params).run()
    print(prof.table())

Ops nest (``gp.forward`` contains ``wl.forward`` ...); the table reports
both inclusive time and *self* time (inclusive minus children), and
shares are computed over self time so nothing is double counted.
"""

from __future__ import annotations

import contextlib
import time
import tracemalloc
from dataclasses import dataclass, field

from repro.obs.trace import active as _active_tracer


@dataclass
class OpStats:
    """Accumulated statistics for one named op."""

    calls: int = 0
    seconds: float = 0.0       # inclusive wall time
    self_seconds: float = 0.0  # exclusive of nested profiled ops
    alloc_bytes: int = 0       # net allocated bytes (tracemalloc)
    peak_bytes: int = 0        # max transient allocation over one call


@dataclass
class _Frame:
    name: str
    start: float
    child_seconds: float = 0.0
    mem_before: int = 0


class Profiler:
    """Collects per-op timing/allocation stats while active.

    Entering the context installs the profiler as the process-wide
    active profiler consulted by :func:`profiled`; exiting restores the
    previous one (profilers nest).  With ``trace_alloc=True`` the
    profiler also records tracemalloc counters per op (starting
    tracemalloc if needed — substantially slower, meant for allocation
    debugging, not timing).
    """

    def __init__(self, trace_alloc: bool = False):
        self.trace_alloc = bool(trace_alloc)
        self.stats: dict[str, OpStats] = {}
        self._stack: list[_Frame] = []
        self._previous: "Profiler | None" = None
        self._started_tracemalloc = False

    # ------------------------------------------------------------------
    def __enter__(self) -> "Profiler":
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self
        if self.trace_alloc and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        return self

    def __exit__(self, *exc) -> None:
        global _ACTIVE
        _ACTIVE = self._previous
        self._previous = None
        if self._started_tracemalloc:
            tracemalloc.stop()
            self._started_tracemalloc = False

    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def op(self, name: str):
        """Measure one op invocation (may nest)."""
        frame = _Frame(name=name, start=time.perf_counter())
        if self.trace_alloc and tracemalloc.is_tracing():
            frame.mem_before = tracemalloc.get_traced_memory()[0]
            tracemalloc.reset_peak()
        self._stack.append(frame)
        try:
            yield self
        finally:
            self._stack.pop()
            elapsed = time.perf_counter() - frame.start
            stats = self.stats.get(name)
            if stats is None:
                stats = self.stats[name] = OpStats()
            stats.calls += 1
            stats.seconds += elapsed
            stats.self_seconds += elapsed - frame.child_seconds
            if self._stack:
                self._stack[-1].child_seconds += elapsed
            if self.trace_alloc and tracemalloc.is_tracing():
                current, peak = tracemalloc.get_traced_memory()
                stats.alloc_bytes += max(current - frame.mem_before, 0)
                stats.peak_bytes = max(
                    stats.peak_bytes, peak - frame.mem_before
                )

    # ------------------------------------------------------------------
    @property
    def total_self_seconds(self) -> float:
        return sum(s.self_seconds for s in self.stats.values())

    #: the three mutually exclusive GP closure execution modes
    CLOSURE_MODES = ("gp.graph_build", "gp.replay", "gp.eager")

    def closure_split(self) -> dict[str, OpStats] | None:
        """Stats of the GP closure modes seen, or None if none ran.

        ``gp.graph_build`` covers closure evaluations that recorded the
        objective tape (capture attempts), ``gp.replay`` the tape
        replays, and ``gp.eager`` plain define-by-run evaluations (tape
        disabled or capture-unsafe graph).
        """
        split = {m: self.stats[m] for m in self.CLOSURE_MODES
                 if m in self.stats}
        return split or None

    def closure_split_line(self) -> str | None:
        """One-line eager-vs-replay summary, or None if no closure ran."""
        split = self.closure_split()
        if split is None:
            return None
        parts = [
            f"{name.removeprefix('gp.')} {s.calls}x {s.seconds:.4f}s"
            for name, s in split.items()
        ]
        return "closure split: " + ", ".join(parts)

    def as_dict(self) -> dict[str, dict]:
        """Machine-readable stats (used by the benchmark harness)."""
        return {
            name: {
                "calls": s.calls,
                "seconds": s.seconds,
                "self_seconds": s.self_seconds,
                "alloc_bytes": s.alloc_bytes,
                "peak_bytes": s.peak_bytes,
            }
            for name, s in self.stats.items()
        }

    def table(self, title: str = "per-op breakdown") -> str:
        """A Fig.-9-style text table, sorted by self time."""
        header = (
            f"== {title} ==\n"
            f"{'op':<24} {'calls':>8} {'total s':>10} {'self s':>10} "
            f"{'share':>7}"
        )
        lines = [header]
        if self.trace_alloc:
            lines[0] += f" {'alloc':>10} {'peak':>10}"
        if not self.stats:
            # an all-zero table with fabricated 0.0% shares would read
            # as "everything was free"; say what actually happened
            lines.append("(no ops recorded)")
            return "\n".join(lines)
        total = self.total_self_seconds or 1.0
        for name, s in sorted(
            self.stats.items(), key=lambda kv: -kv[1].self_seconds
        ):
            row = (
                f"{name:<24} {s.calls:>8d} {s.seconds:>10.4f} "
                f"{s.self_seconds:>10.4f} {s.self_seconds / total:>6.1%}"
            )
            if self.trace_alloc:
                row += f" {_fmt_bytes(s.alloc_bytes):>10} " \
                       f"{_fmt_bytes(s.peak_bytes):>10}"
            lines.append(row)
        lines.append(f"{'total (self)':<24} {'':>8} {'':>10} {total:>10.4f}")
        return "\n".join(lines)


def _fmt_bytes(n: int) -> str:
    # scale a separate accumulator: mutating the argument made the GB
    # branch see an already-divided value (and repeat calls disagree)
    value = float(n)
    for unit in ("B", "KB", "MB"):
        if abs(value) < 1024:
            return f"{value:.0f}B" if unit == "B" else f"{value:.1f}{unit}"
        value /= 1024
    return f"{value:.1f}GB"


_ACTIVE: Profiler | None = None


def active() -> Profiler | None:
    """The currently installed profiler, or None."""
    return _ACTIVE


@contextlib.contextmanager
def profiled(name: str):
    """Report a region to the active profiler *and* the active tracer.

    Profiled ops double as trace spans (``repro.obs``): the same
    instrumentation point feeds the Fig.-9 table and the Chrome trace.
    Near-free when neither a profiler nor a tracer is installed (two
    global reads).
    """
    prof = _ACTIVE
    tracer = _active_tracer()
    if prof is None and tracer is None:
        yield None
        return
    if tracer is None:
        with prof.op(name):
            yield prof
        return
    with tracer.span(name):
        if prof is None:
            yield None
        else:
            with prof.op(name):
                yield prof
