"""Performance engineering subsystem: workspaces and op profiling.

Two halves serve the "as fast as the hardware allows" goal:

- :mod:`repro.perf.workspace` — persistent named buffer pools that make
  the GP hot loop allocation-free (kernels write into pooled buffers
  via ``out=`` arguments and in-place ufuncs),
- :mod:`repro.perf.profiler` — per-op wall-time and allocation
  instrumentation producing Fig.-9-style breakdown tables (exposed on
  the CLI as ``repro place --profile``).
"""

from repro.perf.profiler import OpStats, Profiler, active, profiled
from repro.perf.workspace import NullWorkspace, Workspace

__all__ = [
    "Workspace",
    "NullWorkspace",
    "Profiler",
    "OpStats",
    "active",
    "profiled",
]
