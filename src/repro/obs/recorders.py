"""Standard metric recorders shared by the CLI and the batch runner.

The GP loop reports iterations through its ``on_iteration`` hook; both
``repro place --metrics-out`` and ``execute_job`` translate those
callbacks into the *same* registry series via
:class:`IterationRecorder`, so a one-shot placement and a fleet sweep
expose identical metric names.
"""

from __future__ import annotations

import math
import time
from typing import Callable

from repro.obs.metrics import RATIO_BUCKETS, MetricsRegistry

#: canonical series names (one place, so dashboards never chase renames)
GP_ITERATIONS = "repro_gp_iterations_total"
GP_LEVEL_ITERATIONS = "repro_gp_level_iterations"
GP_ITERATION_SECONDS = "repro_gp_iteration_seconds"
GP_OVERFLOW = "repro_gp_overflow"
GP_HPWL_DELTA = "repro_gp_hpwl_rel_delta"
GP_RECOVERIES = "repro_gp_recoveries_total"
LEGALITY_VIOLATIONS = "repro_legality_violations"
FENCE_VIOLATIONS = "repro_fence_violations"
CACHE_HITS = "repro_cache_hits_total"
CACHE_MISSES = "repro_cache_misses_total"
CACHE_DEGRADED = "repro_cache_degraded_hits_total"
RUNS_TOTAL = "repro_runs_total"
RETRIES = "repro_retries_total"
WORKER_DEATHS = "repro_worker_deaths_total"
CHECKPOINTS = "repro_checkpoints_total"
# -- placement service (repro.serve) series ---------------------------
HTTP_REQUESTS = "repro_http_requests_total"
HTTP_REQUEST_SECONDS = "repro_http_request_seconds"
SERVE_QUEUE_DEPTH = "repro_serve_queue_depth"
SERVE_INFLIGHT = "repro_serve_inflight_jobs"
SERVE_REJECTED = "repro_serve_rejected_total"
SERVE_CANCELLED = "repro_serve_cancelled_total"
ORPHANS_RECOVERED = "repro_orphans_recovered_total"


class IterationRecorder:
    """Turns GP ``on_iteration`` callbacks into registry updates.

    Iteration *timing* uses an injectable monotonic clock (histograms
    must never record a negative duration because NTP stepped the wall
    clock back mid-run); the counter series are pure functions of the
    deterministic placement trajectory, which is what makes a
    ``workers=N`` sweep merge to bit-for-bit the serial counters.
    """

    def __init__(self, registry: MetricsRegistry,
                 monotonic: Callable[[], float] = time.monotonic):
        self.registry = registry
        self._monotonic = monotonic
        self._last_t = monotonic()
        self._last_hpwl: float | None = None
        self._recoveries = 0

    def __call__(self, placer, info: dict) -> None:
        reg = self.registry
        now = self._monotonic()
        reg.counter(GP_ITERATIONS,
                    help="GP iterations executed").inc()
        level = info.get("level")
        if level is not None:
            # multilevel cascade: per-level iteration counters (the
            # label keeps the flat-run series shape unchanged)
            reg.counter(GP_LEVEL_ITERATIONS,
                        help="GP iterations per cascade level",
                        level=str(level)).inc()
        reg.histogram(GP_ITERATION_SECONDS,
                      help="wall time per GP iteration").observe(
            max(now - self._last_t, 0.0))
        self._last_t = now

        hpwl = float(info["hpwl"])
        overflow = float(info["overflow"])
        if math.isfinite(overflow):
            reg.gauge(GP_OVERFLOW,
                      help="density overflow at the last GP "
                           "iteration").set(overflow)
        if (self._last_hpwl is not None and math.isfinite(hpwl)
                and math.isfinite(self._last_hpwl)
                and self._last_hpwl != 0.0):
            delta = abs(hpwl - self._last_hpwl) / abs(self._last_hpwl)
            reg.histogram(GP_HPWL_DELTA, buckets=RATIO_BUCKETS,
                          help="relative HPWL change per GP "
                               "iteration").observe(delta)
        if math.isfinite(hpwl):
            self._last_hpwl = hpwl

        recoveries = int(info.get("recoveries", 0))
        if recoveries > self._recoveries:
            reg.counter(GP_RECOVERIES,
                        help="divergence rollbacks performed").inc(
                recoveries - self._recoveries)
            self._recoveries = recoveries
