"""Span-based tracing with Chrome trace-event export.

One :class:`Tracer` is installed process-wide (the same active-context
pattern as :class:`repro.perf.Profiler`); code reports regions through
the near-free :func:`trace_span` context manager, which is a single
global read plus an early return when no tracer is installed.  Spans
record a **monotonic** start/duration (``time.perf_counter``) so
durations survive wall-clock steps; the start is anchored to the wall
clock once, at tracer creation, so spans from different processes (the
worker pool) line up on one timeline.

The collected :class:`Trace` exports as Chrome trace-event JSON
(``ph: "X"`` complete events with microsecond ``ts``/``dur``) loadable
in ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_;
nesting is implied by interval containment per pid/tid, so the GP
iteration spans visually contain the kernel op spans they ran.

Usage::

    with Tracer(process_label="repro main") as tracer:
        with trace_span("stage.gp", design="adaptec1"):
            ...
    tracer.trace.save("trace.json")

Worker processes build their own :class:`Tracer`, ship
``tracer.trace.as_dicts()`` over the outcome pipe, and the dispatcher
merges them with :meth:`Trace.extend_dicts` — every span carries the
pid/tid it ran on, so a fleet trace shows one lane per worker.
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
import time
from dataclasses import dataclass, field


@dataclass
class Span:
    """One completed region: wall-anchored start, monotonic duration.

    ``ts`` and ``dur`` are microseconds (the Chrome trace unit); ``ts``
    is anchored to the tracer's wall-clock epoch, ``dur`` is a pure
    ``perf_counter`` difference and never goes negative under NTP steps.
    """

    name: str
    ts: float
    dur: float
    pid: int
    tid: int
    args: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"name": self.name, "ts": self.ts, "dur": self.dur,
                "pid": self.pid, "tid": self.tid, "args": dict(self.args)}

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        return cls(name=data["name"], ts=float(data["ts"]),
                   dur=float(data["dur"]), pid=int(data["pid"]),
                   tid=int(data["tid"]), args=dict(data.get("args") or {}))


class Trace:
    """An ordered collection of spans, mergeable across processes."""

    def __init__(self):
        self.spans: list[Span] = []
        #: pid -> human label, exported as Chrome ``process_name``
        #: metadata so the pool's lanes read "worker w3", not "pid 1234"
        self.process_labels: dict[int, str] = {}

    def __len__(self) -> int:
        return len(self.spans)

    def add(self, span: Span) -> None:
        self.spans.append(span)

    # -- serialization -------------------------------------------------
    def as_dicts(self) -> list[dict]:
        """Spans as plain dicts (the worker -> dispatcher wire format)."""
        return [span.to_dict() for span in self.spans]

    def extend_dicts(self, spans: list,
                     process_labels: dict | None = None) -> None:
        """Merge spans shipped from another process."""
        for data in spans:
            self.spans.append(Span.from_dict(data))
        if process_labels:
            for pid, label in process_labels.items():
                self.process_labels[int(pid)] = str(label)

    def to_chrome_events(self) -> list[dict]:
        """The ``traceEvents`` list of the Chrome trace format."""
        events = []
        for pid in sorted(self.process_labels):
            events.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": self.process_labels[pid]},
            })
        for span in self.spans:
            events.append({
                "name": span.name, "cat": "repro", "ph": "X",
                "ts": span.ts, "dur": span.dur,
                "pid": span.pid, "tid": span.tid,
                "args": span.args,
            })
        return events

    def to_chrome_json(self, indent: int | None = None) -> str:
        """Chrome trace-event JSON (chrome://tracing / Perfetto)."""
        payload = {
            "traceEvents": self.to_chrome_events(),
            "displayTimeUnit": "ms",
        }
        return json.dumps(payload, indent=indent, sort_keys=True)

    def save(self, path: str, indent: int | None = None) -> str:
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w") as handle:
            handle.write(self.to_chrome_json(indent=indent))
            handle.write("\n")
        return path


class Tracer:
    """Collects spans while installed as the process-wide active tracer.

    Entering the context installs the tracer consulted by
    :func:`trace_span`; exiting restores the previous one (tracers
    nest).  Span appends are lock-protected so threaded callers (the
    pool dispatcher vs. a main-thread span) never tear the list.
    """

    def __init__(self, trace: Trace | None = None,
                 process_label: str | None = None):
        self.trace = trace if trace is not None else Trace()
        # wall anchor taken once: spans use monotonic time internally
        # and only this single offset references the wall clock, so a
        # mid-run NTP step cannot corrupt any recorded duration
        self._epoch_wall = time.time()
        self._epoch_mono = time.perf_counter()
        self._lock = threading.Lock()
        self._previous: "Tracer | None" = None
        if process_label is not None:
            self.trace.process_labels[os.getpid()] = process_label

    # ------------------------------------------------------------------
    def __enter__(self) -> "Tracer":
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self
        return self

    def __exit__(self, *exc) -> None:
        global _ACTIVE
        _ACTIVE = self._previous
        self._previous = None

    # ------------------------------------------------------------------
    def _timestamp_us(self, mono: float) -> float:
        return (self._epoch_wall + (mono - self._epoch_mono)) * 1e6

    @contextlib.contextmanager
    def span(self, name: str, **attrs):
        """Record one region; yields the span's mutable ``args`` dict so
        the caller can attach values computed inside the region."""
        start = time.perf_counter()
        try:
            yield attrs
        finally:
            end = time.perf_counter()
            span = Span(
                name=name,
                ts=self._timestamp_us(start),
                dur=(end - start) * 1e6,
                pid=os.getpid(),
                tid=threading.get_ident(),
                args=attrs,
            )
            with self._lock:
                self.trace.spans.append(span)


_ACTIVE: Tracer | None = None


def active() -> Tracer | None:
    """The currently installed tracer, or None."""
    return _ACTIVE


@contextlib.contextmanager
def trace_span(name: str, **attrs):
    """Report a span to the active tracer; near-free when none is.

    Yields the span's mutable attribute dict (or ``None`` when tracing
    is disabled), so instrumented code can attach late values::

        with trace_span("gp.iteration", iteration=i) as span:
            ...
            if span is not None:
                span["hpwl"] = hpwl
    """
    tracer = _ACTIVE
    if tracer is None:
        yield None
        return
    with tracer.span(name, **attrs) as args:
        yield args
