"""Metrics registry: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` holds named metrics (optionally labelled,
Prometheus-style) and exposes them two ways:

- :meth:`MetricsRegistry.to_prometheus` — the text exposition format
  (``# HELP`` / ``# TYPE`` headers, ``name{label="v"} value`` samples,
  cumulative ``_bucket``/``_sum``/``_count`` histogram series),
- :meth:`MetricsRegistry.as_dict` / :meth:`to_json` — a JSON-safe dump
  that round-trips through :meth:`merge`, the worker-pool wire format.

Merging is the fleet-aggregation primitive: counters and histograms
add, gauges take the incoming value (last writer wins).  Counter and
histogram addition is order-independent for the integer amounts the
runner records, so a ``workers=N`` sweep merges to bit-for-bit the same
counters as the serial run.
"""

from __future__ import annotations

import bisect
import json
import threading
from typing import Optional

#: default histogram buckets, tuned for seconds-scale timings
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: buckets for unitless relative deltas (e.g. per-iteration HPWL change)
RATIO_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)


class Counter:
    """Monotonically increasing value.

    Mutations take a per-metric lock: the HTTP service increments
    counters from many handler threads, and ``value += amount`` is a
    read-modify-write that loses increments under that interleaving.
    """

    kind = "counter"

    def __init__(self):
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0: {amount}")
        with self._lock:
            self.value += amount

    def state(self) -> dict:
        return {"value": self.value}

    def combine(self, state: dict) -> None:
        with self._lock:
            self.value += float(state["value"])


class Gauge:
    """Last-observed value (overflow, queue depth, lambda)."""

    kind = "gauge"

    def __init__(self):
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def state(self) -> dict:
        return {"value": self.value}

    def combine(self, state: dict) -> None:
        # gauges have no meaningful sum; the incoming value wins
        self.value = float(state["value"])


class Histogram:
    """Fixed-bucket histogram with Prometheus bucket semantics.

    ``buckets`` are upper bounds; counts are stored per bucket plus an
    implicit ``+Inf`` overflow bucket, and exported cumulatively.
    """

    kind = "histogram"

    def __init__(self, buckets: tuple = DEFAULT_BUCKETS):
        self.buckets = tuple(float(b) for b in buckets)
        if list(self.buckets) != sorted(self.buckets):
            raise ValueError(f"histogram buckets must ascend: {buckets}")
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.counts[bisect.bisect_left(self.buckets, value)] += 1
            self.sum += value
            self.count += 1

    def cumulative(self) -> list:
        """Cumulative counts per bucket (``+Inf`` last == ``count``)."""
        out = []
        running = 0
        for count in self.counts:
            running += count
            out.append(running)
        return out

    def state(self) -> dict:
        with self._lock:
            return {"buckets": list(self.buckets),
                    "counts": list(self.counts),
                    "sum": self.sum, "count": self.count}

    def combine(self, state: dict) -> None:
        if tuple(float(b) for b in state["buckets"]) != self.buckets:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{state['buckets']} vs {list(self.buckets)}"
            )
        with self._lock:
            for i, count in enumerate(state["counts"]):
                self.counts[i] += int(count)
            self.sum += float(state["sum"])
            self.count += int(state["count"])


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_labels(labels: tuple, extra: Optional[tuple] = None) -> str:
    pairs = list(labels) + list(extra or ())
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _format_value(value) -> str:
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _format_bound(bound: float) -> str:
    return _format_value(bound)


class MetricsRegistry:
    """Named metrics with get-or-create accessors and merge support."""

    def __init__(self):
        #: (name, label_key) -> metric instance
        self._metrics: dict = {}
        self._kinds: dict = {}   # name -> kind (a name has one type)
        self._help: dict = {}    # name -> help text
        # structural lock: get-or-create and export iterate the metric
        # dict, which HTTP handler threads grow concurrently with
        # dispatch-thread merges and /metrics scrapes
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def _get(self, name: str, kind: str, labels: dict,
             help: str = "", buckets: Optional[tuple] = None):
        with self._lock:
            known = self._kinds.get(name)
            if known is not None and known != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {known}, "
                    f"not {kind}"
                )
            key = (name, _label_key(labels))
            metric = self._metrics.get(key)
            if metric is None:
                if kind == "histogram":
                    metric = Histogram(buckets or DEFAULT_BUCKETS)
                else:
                    metric = _KINDS[kind]()
                self._metrics[key] = metric
                self._kinds[name] = kind
                if help and name not in self._help:
                    self._help[name] = help
            return metric

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get(name, "counter", labels, help=help)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get(name, "gauge", labels, help=help)

    def histogram(self, name: str, buckets: Optional[tuple] = None,
                  help: str = "", **labels) -> Histogram:
        return self._get(name, "histogram", labels, help=help,
                         buckets=buckets)

    # ------------------------------------------------------------------
    def value(self, name: str, **labels):
        """The current value of a counter/gauge (tests, stats views);
        None when the metric was never recorded."""
        metric = self._metrics.get((name, _label_key(labels)))
        if metric is None:
            return None
        return metric.value if hasattr(metric, "value") else metric

    def __len__(self) -> int:
        return len(self._metrics)

    def __bool__(self) -> bool:
        # an empty registry is still a registry; never let truthiness
        # collapse to "no metrics recorded yet"
        return True

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """JSON-safe dump; the input format of :meth:`merge`."""
        metrics = []
        with self._lock:
            items = sorted(self._metrics.items())
        for (name, label_key), metric in items:
            metrics.append({
                "name": name,
                "kind": metric.kind,
                "help": self._help.get(name, ""),
                "labels": {k: v for k, v in label_key},
                "state": metric.state(),
            })
        return {"metrics": metrics}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def merge(self, other) -> "MetricsRegistry":
        """Fold another registry (or its :meth:`as_dict` dump) in."""
        data = other.as_dict() if isinstance(other, MetricsRegistry) \
            else other
        for entry in data.get("metrics", []):
            state = entry["state"]
            buckets = tuple(state["buckets"]) \
                if entry["kind"] == "histogram" else None
            metric = self._get(entry["name"], entry["kind"],
                               entry.get("labels") or {},
                               help=entry.get("help", ""),
                               buckets=buckets)
            metric.combine(state)
        return self

    # ------------------------------------------------------------------
    def to_prometheus(self) -> str:
        """Prometheus text exposition (version 0.0.4) of every metric."""
        by_name: dict = {}
        with self._lock:
            items = list(self._metrics.items())
        for (name, label_key), metric in items:
            by_name.setdefault(name, []).append((label_key, metric))
        lines = []
        for name in sorted(by_name):
            help_text = self._help.get(name, "")
            if help_text:
                lines.append(f"# HELP {name} {_escape(help_text)}")
            lines.append(f"# TYPE {name} {self._kinds[name]}")
            for label_key, metric in sorted(by_name[name]):
                labels = _format_labels(label_key)
                if metric.kind == "histogram":
                    cumulative = metric.cumulative()
                    bounds = [_format_bound(b) for b in metric.buckets]
                    bounds.append("+Inf")
                    for bound, count in zip(bounds, cumulative):
                        bucket_labels = _format_labels(
                            label_key, extra=(("le", bound),))
                        lines.append(
                            f"{name}_bucket{bucket_labels} {count}")
                    lines.append(
                        f"{name}_sum{labels} {_format_value(metric.sum)}")
                    lines.append(f"{name}_count{labels} {metric.count}")
                else:
                    lines.append(
                        f"{name}{labels} {_format_value(metric.value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def save_prometheus(self, path: str) -> str:
        import os

        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w") as handle:
            handle.write(self.to_prometheus())
        return path
