"""Unified observability layer: tracing and metrics.

The profiler (:mod:`repro.perf`) answers "where did *this run* spend
its time" as a text table; the run store's event log answers "what
happened to *this job*" as JSONL.  ``repro.obs`` is the layer both feed
into for machine-readable, cross-run observability:

- :mod:`repro.obs.trace` — a span tracer (:func:`trace_span`,
  :class:`Tracer`) with monotonic timing and Chrome trace-event JSON
  export (``chrome://tracing`` / Perfetto).  Profiled kernel ops, GP
  iterations, flow stages and runner jobs all open spans.
- :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges and fixed-bucket histograms with Prometheus-text and JSON
  exposition, mergeable across worker processes so a sweep aggregates
  fleet-level series.

CLI surfacing: ``--trace-out``/``--metrics-out`` on ``place``/``batch``/
``sweep``, and ``repro runs --stats`` for run-store aggregates.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    RATIO_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.recorders import IterationRecorder
from repro.obs.trace import Span, Trace, Tracer, trace_span
from repro.obs.trace import active as active_tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "RATIO_BUCKETS",
    "IterationRecorder",
    "Span",
    "Trace",
    "Tracer",
    "trace_span",
    "active_tracer",
]
