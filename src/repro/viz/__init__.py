"""Visualization: SVG placement plots and ASCII density maps."""

from repro.viz.svg import placement_svg, write_placement_svg
from repro.viz.ascii_map import ascii_density_map

__all__ = ["placement_svg", "write_placement_svg", "ascii_density_map"]
