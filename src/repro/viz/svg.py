"""Dependency-free SVG rendering of placements.

Produces the classic placement plots (movable cells, macros, pads, die
outline, optionally a congestion heat overlay) without matplotlib.
"""

from __future__ import annotations

import os

import numpy as np

from repro.netlist.database import PlacementDB

_STYLE = {
    "die": "fill:none;stroke:#222;stroke-width:{sw}",
    "cell": "fill:#4f81bd;fill-opacity:0.55;stroke:none",
    "macro_fixed": "fill:#7f7f7f;fill-opacity:0.8;stroke:#333;stroke-width:{sw}",
    "macro_movable": "fill:#c0504d;fill-opacity:0.7;stroke:#333;stroke-width:{sw}",
    "pad": "fill:#9bbb59;stroke:none",
}


def _heat_color(value: float) -> str:
    """0 -> white, 1 -> red through yellow."""
    v = min(max(value, 0.0), 1.0)
    if v < 0.5:
        t = v / 0.5
        r, g, b = 255, 255, int(255 * (1 - t))
    else:
        t = (v - 0.5) / 0.5
        r, g, b = 255, int(255 * (1 - t)), 0
    return f"rgb({r},{g},{b})"


def placement_svg(db: PlacementDB,
                  x: np.ndarray | None = None,
                  y: np.ndarray | None = None,
                  width: int = 800,
                  heat: np.ndarray | None = None) -> str:
    """Render the placement as an SVG string.

    ``heat`` is an optional (nx, ny) map (e.g. density or congestion)
    drawn under the cells, normalized to its own maximum.
    """
    region = db.region
    cx = db.cell_x if x is None else np.asarray(x)
    cy = db.cell_y if y is None else np.asarray(y)
    scale = width / region.width
    height = int(np.ceil(region.height * scale))
    stroke = max(width / 1000.0, 0.5)

    def sx(v):
        return (v - region.xl) * scale

    def sy(v):
        # SVG y grows downward; flip so yl is at the bottom
        return height - (v - region.yl) * scale

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect x="0" y="0" width="{width}" height="{height}" '
        'style="fill:#fafafa"/>',
    ]

    if heat is not None:
        heat = np.asarray(heat, dtype=np.float64)
        peak = heat.max()
        if peak > 0:
            nx, ny = heat.shape
            bw = region.width / nx * scale
            bh = region.height / ny * scale
            for i in range(nx):
                for j in range(ny):
                    v = heat[i, j] / peak
                    if v < 0.02:
                        continue
                    parts.append(
                        f'<rect x="{i * bw:.2f}" '
                        f'y="{height - (j + 1) * bh:.2f}" '
                        f'width="{bw:.2f}" height="{bh:.2f}" '
                        f'style="fill:{_heat_color(v)};fill-opacity:0.6"/>'
                    )

    row_h = region.row_height
    for i in range(db.num_cells):
        w = db.cell_width[i]
        h = db.cell_height[i]
        if db.terminal[i] or w * h == 0:
            r = 3 * stroke
            parts.append(
                f'<circle cx="{sx(cx[i]):.2f}" cy="{sy(cy[i]):.2f}" '
                f'r="{r:.2f}" style="{_STYLE["pad"]}"/>'
            )
            continue
        if not db.movable[i]:
            style = _STYLE["macro_fixed"].format(sw=stroke)
        elif h > row_h + 1e-9:
            style = _STYLE["macro_movable"].format(sw=stroke)
        else:
            style = _STYLE["cell"]
        parts.append(
            f'<rect x="{sx(cx[i]):.2f}" y="{sy(cy[i] + h):.2f}" '
            f'width="{w * scale:.2f}" height="{h * scale:.2f}" '
            f'style="{style}"/>'
        )

    parts.append(
        f'<rect x="0" y="0" width="{width}" height="{height}" '
        f'style="{_STYLE["die"].format(sw=2 * stroke)}"/>'
    )
    parts.append("</svg>")
    return "\n".join(parts)


def write_placement_svg(db: PlacementDB, path: str,
                        x: np.ndarray | None = None,
                        y: np.ndarray | None = None,
                        width: int = 800,
                        heat: np.ndarray | None = None) -> str:
    """Write :func:`placement_svg` output to ``path``; returns the path."""
    svg = placement_svg(db, x, y, width=width, heat=heat)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as handle:
        handle.write(svg)
    return path
