"""Terminal-friendly density/congestion map rendering."""

from __future__ import annotations

import numpy as np

_RAMP = " .:-=+*#%@"


def ascii_density_map(values: np.ndarray, max_cols: int = 64) -> str:
    """Render a 2-D map as ASCII art (one char per downsampled bin).

    The map is oriented like the layout: row 0 of the output is the top
    (highest y).  Values are normalized to the map's maximum.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise ValueError("expected a 2-D map")
    nx, ny = values.shape
    # downsample by integer block averaging to fit the terminal
    step = max(int(np.ceil(nx / max_cols)), 1)
    tx = nx // step
    ty = ny // step
    if tx == 0 or ty == 0:
        raise ValueError("map too small for the requested width")
    trimmed = values[:tx * step, :ty * step]
    blocks = trimmed.reshape(tx, step, ty, step).mean(axis=(1, 3))
    peak = blocks.max()
    if peak <= 0:
        peak = 1.0
    lines = []
    for j in reversed(range(ty)):  # top row = highest y
        chars = []
        for i in range(tx):
            level = blocks[i, j] / peak
            index = min(int(level * (len(_RAMP) - 1) + 0.5),
                        len(_RAMP) - 1)
            chars.append(_RAMP[index])
        lines.append("".join(chars))
    return "\n".join(lines)
