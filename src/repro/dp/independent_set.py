"""Independent-set matching: optimally re-assign sets of swappable cells.

Picks groups of equal-width cells that share no nets (so their cost
contributions are independent), builds the cell x slot HPWL cost matrix
and solves the assignment exactly with the Hungarian algorithm — the
NTUplace3/ABCDPlace "independent set matching" refinement.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.dp.incremental import IncrementalHpwl
from repro.netlist.database import PlacementDB


def _independent_groups(db: PlacementDB, cells: np.ndarray,
                        group_size: int) -> list[np.ndarray]:
    """Greedily partition ``cells`` into net-disjoint groups."""
    groups: list[np.ndarray] = []
    current: list[int] = []
    used_nets: set[int] = set()
    for cell in cells:
        nets = {int(db.pin_net[p]) for p in db.cell_pins(cell)}
        if nets & used_nets:
            continue
        current.append(int(cell))
        used_nets |= nets
        if len(current) == group_size:
            groups.append(np.asarray(current))
            current = []
            used_nets = set()
    if len(current) >= 2:
        groups.append(np.asarray(current))
    return groups


def independent_set_matching(db: PlacementDB, state: IncrementalHpwl,
                             group_size: int = 12,
                             fence_id: np.ndarray | None = None) -> int:
    """One sweep of independent-set matching; returns #improved groups.

    With ``fence_id`` (per-cell fence membership, ``-1`` = unfenced)
    the swappable classes are keyed by (footprint, membership): slots
    are only exchanged inside one fence group, so a fence-legal
    placement stays fence-legal.
    """
    movable = db.movable_index
    if movable.size == 0:
        return 0
    improved = 0
    widths = db.cell_width[movable]
    heights = db.cell_height[movable]
    groups_by = [widths, heights]
    if fence_id is not None:
        groups_by.append(fence_id[movable].astype(np.float64))
    footprints = np.stack(groups_by, axis=1)
    for key in np.unique(footprints, axis=0):
        width, height = key[0], key[1]
        same_class = (
            (np.abs(widths - width) < 1e-9)
            & (np.abs(heights - height) < 1e-9)
        )
        if fence_id is not None:
            same_class &= fence_id[movable] == int(key[2])
        cells = movable[same_class]
        if cells.size < 2:
            continue
        # spatially coherent order so groups are local
        order = np.argsort(
            state.y[cells] * 8192 + state.x[cells], kind="stable"
        )
        for group in _independent_groups(db, cells[order], group_size):
            k = len(group)
            slots_x = state.x[group].copy()
            slots_y = state.y[group].copy()
            cost = np.empty((k, k))
            for i, cell in enumerate(group):
                for j in range(k):
                    if abs(slots_x[j] - state.x[cell]) < 1e-12 and \
                            abs(slots_y[j] - state.y[cell]) < 1e-12:
                        cost[i, j] = 0.0
                    else:
                        cost[i, j] = state.delta(
                            [cell], [slots_x[j]], [slots_y[j]]
                        )
            rows, cols = linear_sum_assignment(cost)
            total = float(cost[rows, cols].sum())
            if total < -1e-9:
                state.apply(
                    group[rows], slots_x[cols], slots_y[cols]
                )
                improved += 1
    return improved
