"""Global swap: move cells toward their optimal region by swapping.

For each cell the optimal position is the median of its nets' bounding
boxes (computed without the cell itself); the pass then looks for an
equal-width cell near that position and swaps the pair when total HPWL
improves.  Equal widths keep the placement legal without repacking.
"""

from __future__ import annotations

import numpy as np

from repro.dp.incremental import IncrementalHpwl
from repro.netlist.database import PlacementDB


def _optimal_position(db: PlacementDB, state: IncrementalHpwl,
                      cell: int) -> tuple[float, float]:
    """Median of the connected nets' bounding boxes excluding ``cell``."""
    xs: list[float] = []
    ys: list[float] = []
    for pin in db.cell_pins(cell):
        net = int(db.pin_net[pin])
        net_pins = db.net_pins(net)
        others = net_pins[db.pin_cell[net_pins] != cell]
        if others.size == 0:
            continue
        px = state._pin_x[others]
        py = state._pin_y[others]
        xs.extend((float(px.min()), float(px.max())))
        ys.extend((float(py.min()), float(py.max())))
    if not xs:
        return float(state.x[cell]), float(state.y[cell])
    return float(np.median(xs)), float(np.median(ys))


def global_swap(db: PlacementDB, state: IncrementalHpwl,
                max_candidates: int = 8,
                search_radius: float | None = None,
                fence_id: np.ndarray | None = None) -> int:
    """One sweep of global swapping; returns #accepted swaps.

    ``fence_id`` (per-cell fence membership, ``-1`` = unfenced) makes
    the pass fence-aware: swap partners must share the cell's
    membership, so a fence-legal placement stays fence-legal.
    """
    region = db.region
    movable = db.movable_index
    if movable.size == 0:
        return 0
    if search_radius is None:
        search_radius = 4.0 * region.row_height

    accepted = 0
    # order by pin count (well-connected cells first, like NTUplace)
    degree = np.diff(db.cell2pin_start)[movable]
    order = movable[np.argsort(-degree, kind="stable")]
    for cell in order:
        ox, oy = _optimal_position(db, state, cell)
        if abs(ox - state.x[cell]) + abs(oy - state.y[cell]) \
                < region.site_width:
            continue
        width = db.cell_width[cell]
        height = db.cell_height[cell]
        # candidates: same-footprint movable cells near the optimum,
        # in the same fence group (swapping across a fence boundary
        # would eject both cells from their regions)
        candidate_ok = (
            (np.abs(state.x[movable] - ox)
             + np.abs(state.y[movable] - oy) < search_radius)
            & (np.abs(db.cell_width[movable] - width) < 1e-9)
            & (np.abs(db.cell_height[movable] - height) < 1e-9)
            & (movable != cell)
        )
        if fence_id is not None:
            candidate_ok &= fence_id[movable] == fence_id[cell]
        nearby = movable[candidate_ok]
        if nearby.size == 0:
            continue
        nearby = nearby[np.argsort(
            np.abs(state.x[nearby] - ox) + np.abs(state.y[nearby] - oy)
        )][:max_candidates]
        for other in nearby:
            pair = [cell, int(other)]
            new_x = [state.x[other], state.x[cell]]
            new_y = [state.y[other], state.y[cell]]
            if state.delta(pair, new_x, new_y) < -1e-9:
                state.apply(pair, new_x, new_y)
                accepted += 1
                break
    return accepted
