"""Local reordering: permute small windows of adjacent cells in a row."""

from __future__ import annotations

import itertools

import numpy as np

from repro.dp.incremental import IncrementalHpwl
from repro.lg.rows import build_row_segments
from repro.netlist.database import PlacementDB


def local_reorder(db: PlacementDB, state: IncrementalHpwl,
                  window: int = 3,
                  fence_id: np.ndarray | None = None) -> int:
    """One sweep of sliding-window reordering; returns #accepted moves.

    Windows are confined to one free row segment (so packing never
    crosses a fixed blockage) and the cells of a window are left-packed
    in the tried order, which never grows the occupied extent — legality
    is preserved by construction.  With ``fence_id`` (per-cell fence
    membership, ``-1`` = unfenced), windows mixing memberships are
    skipped: a uniform window permutes within its original extent,
    which lies inside that group's allowed area.
    """
    region = db.region
    accepted = 0
    movable = db.movable_index
    # only single-row cells can be repacked within a row
    movable = movable[
        db.cell_height[movable] <= region.row_height + 1e-9
    ]
    if movable.size == 0:
        return 0
    rows = ((state.y[movable] - region.yl) / region.row_height + 0.5).astype(int)
    # movable macros (if any) act as blockages at their current spot
    all_movable = db.movable_index
    tall = all_movable[
        db.cell_height[all_movable] > region.row_height + 1e-9
    ]
    macro_rects = [
        (state.x[i], state.y[i],
         state.x[i] + db.cell_width[i], state.y[i] + db.cell_height[i])
        for i in tall
    ]
    segments = build_row_segments(db, extra_blockers=macro_rects)
    for row in np.unique(rows):
        row_cells = movable[rows == row]
        if row < 0 or row >= len(segments):
            continue
        for seg in segments[row]:
            seg_cells = row_cells[
                (state.x[row_cells] >= seg.start - 1e-9)
                & (state.x[row_cells] < seg.end - 1e-9)
            ]
            for lo in range(0, len(seg_cells) - window + 1,
                            max(window - 1, 1)):
                # re-sort by the *current* x so the window really is a
                # set of adjacent cells even after earlier windows
                # permuted the segment
                cells = seg_cells[
                    np.argsort(state.x[seg_cells], kind="stable")
                ]
                group = cells[lo:lo + window]
                if fence_id is not None and \
                        np.unique(fence_id[group]).size > 1:
                    continue
                start = state.x[group[0]]
                widths = db.cell_width[group]
                base_y = state.y[group]
                best_delta = -1e-9
                best_perm = None
                for perm in itertools.permutations(range(len(group))):
                    xs = start + np.concatenate(
                        ([0.0], np.cumsum(widths[list(perm)])[:-1])
                    )
                    ordered = group[list(perm)]
                    delta = state.delta(ordered, xs, base_y[:len(ordered)])
                    if delta < best_delta:
                        best_delta = delta
                        best_perm = (ordered, xs)
                if best_perm is not None:
                    ordered, xs = best_perm
                    state.apply(ordered, xs, base_y[:len(ordered)])
                    accepted += 1
    return accepted
