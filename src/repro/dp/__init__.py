"""Detailed placement.

The paper delegates DP to NTUplace3 (and later ABCDPlace); this package
implements the classic trio those placers use — global swap, local
reordering, and independent-set matching — operating on a legal
placement and preserving legality.
"""

from repro.dp.detailed_placer import DetailedPlacer, detailed_place
from repro.dp.incremental import IncrementalHpwl, ReferenceIncrementalHpwl

__all__ = [
    "DetailedPlacer",
    "detailed_place",
    "IncrementalHpwl",
    "ReferenceIncrementalHpwl",
]
