"""Incremental HPWL evaluation for detailed placement moves."""

from __future__ import annotations

import numpy as np

from repro.netlist.database import PlacementDB


class IncrementalHpwl:
    """Tracks pin positions and answers "what if these cells moved?".

    Positions are cell lower-left corners; the evaluator maintains its
    own copies, mutated through :meth:`apply`.
    """

    def __init__(self, db: PlacementDB, x: np.ndarray, y: np.ndarray):
        self.db = db
        self.x = np.asarray(x, dtype=np.float64).copy()
        self.y = np.asarray(y, dtype=np.float64).copy()
        self._pin_x = self.x[db.pin_cell] + db.pin_offset_x
        self._pin_y = self.y[db.pin_cell] + db.pin_offset_y

    # ------------------------------------------------------------------
    def net_hpwl(self, net: int) -> float:
        pins = self.db.net_pins(net)
        px = self._pin_x[pins]
        py = self._pin_y[pins]
        return float(px.max() - px.min() + py.max() - py.min())

    def nets_of_cells(self, cells) -> np.ndarray:
        pin_lists = [self.db.cell_pins(c) for c in cells]
        if not pin_lists:
            return np.empty(0, dtype=np.int64)
        pins = np.concatenate(pin_lists)
        return np.unique(self.db.pin_net[pins])

    def total_hpwl(self) -> float:
        from repro.ops.hpwl import hpwl

        return hpwl(self._pin_x, self._pin_y, self.db.pin_net,
                    self.db.num_nets, self.db.net_weight)

    # ------------------------------------------------------------------
    def delta(self, cells, new_x, new_y) -> float:
        """HPWL change if ``cells`` moved to ``new_x/new_y`` (not applied)."""
        nets = self.nets_of_cells(cells)
        before = sum(self.net_hpwl(e) * self.db.net_weight[e] for e in nets)
        moved = {int(c): (float(nx), float(ny))
                 for c, nx, ny in zip(cells, new_x, new_y)}
        after = 0.0
        for e in nets:
            pins = self.db.net_pins(e)
            px = self._pin_x[pins].copy()
            py = self._pin_y[pins].copy()
            for k, pin in enumerate(pins):
                cell = int(self.db.pin_cell[pin])
                if cell in moved:
                    nx, ny = moved[cell]
                    px[k] = nx + self.db.pin_offset_x[pin]
                    py[k] = ny + self.db.pin_offset_y[pin]
            after += (px.max() - px.min() + py.max() - py.min()) \
                * self.db.net_weight[e]
        return after - before

    def apply(self, cells, new_x, new_y) -> None:
        """Commit moves, updating cached pin positions."""
        for c, nx, ny in zip(cells, new_x, new_y):
            c = int(c)
            self.x[c] = float(nx)
            self.y[c] = float(ny)
            pins = self.db.cell_pins(c)
            self._pin_x[pins] = self.x[c] + self.db.pin_offset_x[pins]
            self._pin_y[pins] = self.y[c] + self.db.pin_offset_y[pins]
