"""Incremental HPWL evaluation for detailed placement moves.

:class:`IncrementalHpwl` caches one bounding box per net and patches
only the nets a move touches, with the per-net work done in NumPy
(CSR gathers + segmented min/max) instead of per-pin Python loops.
:class:`ReferenceIncrementalHpwl` is the original loop implementation,
kept as the oracle for the determinism tests and the benchmark
baseline — the two produce bit-identical deltas (min/max carry no
rounding, and per-net contributions are summed in the same order).
"""

from __future__ import annotations

import numpy as np

from repro.netlist.database import PlacementDB


def _dedup_moves(cells, new_x, new_y):
    """Unique moved cells with last-occurrence-wins positions (the
    semantics of the dict the reference implementation builds)."""
    cells = np.asarray(cells, dtype=np.int64)
    new_x = np.asarray(new_x, dtype=np.float64)
    new_y = np.asarray(new_y, dtype=np.float64)
    uc, first_rev = np.unique(cells[::-1], return_index=True)
    return uc, new_x[::-1][first_rev], new_y[::-1][first_rev]


class IncrementalHpwl:
    """Tracks pin positions and answers "what if these cells moved?".

    Positions are cell lower-left corners; the evaluator maintains its
    own copies, mutated through :meth:`apply`.  Per-net bounding boxes
    are cached and kept in sync by :meth:`apply`, so :meth:`net_hpwl`
    is O(1) and :meth:`delta` touches only the moved cells' nets.
    """

    def __init__(self, db: PlacementDB, x: np.ndarray, y: np.ndarray):
        self.db = db
        self.x = np.asarray(x, dtype=np.float64).copy()
        self.y = np.asarray(y, dtype=np.float64).copy()
        self._pin_x = self.x[db.pin_cell] + db.pin_offset_x
        self._pin_y = self.y[db.pin_cell] + db.pin_offset_y
        # per-net bbox cache; pinless nets keep the +-inf fill values
        # and report zero HPWL
        n = db.num_nets
        self._net_xmin = np.full(n, np.inf)
        self._net_xmax = np.full(n, -np.inf)
        self._net_ymin = np.full(n, np.inf)
        self._net_ymax = np.full(n, -np.inf)
        np.minimum.at(self._net_xmin, db.pin_net, self._pin_x)
        np.maximum.at(self._net_xmax, db.pin_net, self._pin_x)
        np.minimum.at(self._net_ymin, db.pin_net, self._pin_y)
        np.maximum.at(self._net_ymax, db.pin_net, self._pin_y)

    # ------------------------------------------------------------------
    def _expand_nets(self, nets: np.ndarray):
        """CSR gather: all pins of ``nets`` plus reduceat segment starts."""
        starts = self.db.net2pin_start
        lens = starts[nets + 1] - starts[nets]
        total = int(lens.sum())
        seg_starts = np.cumsum(lens) - lens
        offsets = np.arange(total) - np.repeat(seg_starts, lens)
        pins = self.db.net2pin[np.repeat(starts[nets], lens) + offsets]
        return pins, seg_starts

    def net_hpwl(self, net: int) -> float:
        if self.db.net2pin_start[net + 1] == self.db.net2pin_start[net]:
            return 0.0  # pinless net: no extent
        return float(
            self._net_xmax[net] - self._net_xmin[net]
            + self._net_ymax[net] - self._net_ymin[net]
        )

    def nets_of_cells(self, cells) -> np.ndarray:
        cells = np.asarray(cells, dtype=np.int64)
        if cells.size == 0:
            return np.empty(0, dtype=np.int64)
        starts = self.db.cell2pin_start
        lens = starts[cells + 1] - starts[cells]
        total = int(lens.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        offsets = np.arange(total) - np.repeat(np.cumsum(lens) - lens, lens)
        pins = self.db.cell2pin[np.repeat(starts[cells], lens) + offsets]
        return np.unique(self.db.pin_net[pins])

    def total_hpwl(self) -> float:
        from repro.ops.hpwl import hpwl

        return hpwl(self._pin_x, self._pin_y, self.db.pin_net,
                    self.db.num_nets, self.db.net_weight)

    # ------------------------------------------------------------------
    def delta(self, cells, new_x, new_y) -> float:
        """HPWL change if ``cells`` moved to ``new_x/new_y`` (not applied)."""
        nets = self.nets_of_cells(cells)
        if nets.size == 0:
            return 0.0
        weights = self.db.net_weight[nets]
        before_terms = (
            self._net_xmax[nets] - self._net_xmin[nets]
            + self._net_ymax[nets] - self._net_ymin[nets]
        ) * weights

        uc, ux, uy = _dedup_moves(cells, new_x, new_y)
        pins, seg_starts = self._expand_nets(nets)
        px = self._pin_x[pins].copy()
        py = self._pin_y[pins].copy()
        pin_cells = self.db.pin_cell[pins]
        slot = np.searchsorted(uc, pin_cells)
        slot = np.minimum(slot, uc.size - 1)
        moved = uc[slot] == pin_cells
        if moved.any():
            mpins = pins[moved]
            px[moved] = ux[slot[moved]] + self.db.pin_offset_x[mpins]
            py[moved] = uy[slot[moved]] + self.db.pin_offset_y[mpins]
        after_terms = (
            np.maximum.reduceat(px, seg_starts)
            - np.minimum.reduceat(px, seg_starts)
            + np.maximum.reduceat(py, seg_starts)
            - np.minimum.reduceat(py, seg_starts)
        ) * weights
        # sequential sums in sorted-net order: bit-identical to the
        # reference implementation's Python accumulation
        before = 0.0
        for term in before_terms:
            before += term
        after = 0.0
        for term in after_terms:
            after += term
        return after - before

    def apply(self, cells, new_x, new_y) -> None:
        """Commit moves, updating cached pin positions and net bboxes."""
        uc, ux, uy = _dedup_moves(cells, new_x, new_y)
        self.x[uc] = ux
        self.y[uc] = uy
        starts = self.db.cell2pin_start
        lens = starts[uc + 1] - starts[uc]
        total = int(lens.sum())
        if total:
            offsets = np.arange(total) \
                - np.repeat(np.cumsum(lens) - lens, lens)
            pins = self.db.cell2pin[np.repeat(starts[uc], lens) + offsets]
            owner = np.repeat(np.arange(uc.size), lens)
            self._pin_x[pins] = ux[owner] + self.db.pin_offset_x[pins]
            self._pin_y[pins] = uy[owner] + self.db.pin_offset_y[pins]
            # refresh the bbox cache of every touched net from scratch
            # (a moved pin may have defined the old extreme)
            nets = np.unique(self.db.pin_net[pins])
            apins, seg_starts = self._expand_nets(nets)
            apx = self._pin_x[apins]
            apy = self._pin_y[apins]
            self._net_xmin[nets] = np.minimum.reduceat(apx, seg_starts)
            self._net_xmax[nets] = np.maximum.reduceat(apx, seg_starts)
            self._net_ymin[nets] = np.minimum.reduceat(apy, seg_starts)
            self._net_ymax[nets] = np.maximum.reduceat(apy, seg_starts)


class ReferenceIncrementalHpwl:
    """The original per-pin loop implementation (oracle / baseline).

    Kept verbatim so the determinism tests can prove the cached engine
    produces bit-identical deltas and accepted-move sequences, and so
    ``benchmarks/bench_legality.py`` has an honest "before".
    """

    def __init__(self, db: PlacementDB, x: np.ndarray, y: np.ndarray):
        self.db = db
        self.x = np.asarray(x, dtype=np.float64).copy()
        self.y = np.asarray(y, dtype=np.float64).copy()
        self._pin_x = self.x[db.pin_cell] + db.pin_offset_x
        self._pin_y = self.y[db.pin_cell] + db.pin_offset_y

    def net_hpwl(self, net: int) -> float:
        pins = self.db.net_pins(net)
        if pins.size == 0:
            return 0.0  # pinless net: no extent
        px = self._pin_x[pins]
        py = self._pin_y[pins]
        return float(px.max() - px.min() + py.max() - py.min())

    def nets_of_cells(self, cells) -> np.ndarray:
        pin_lists = [self.db.cell_pins(c) for c in cells]
        if not pin_lists:
            return np.empty(0, dtype=np.int64)
        pins = np.concatenate(pin_lists)
        return np.unique(self.db.pin_net[pins])

    def total_hpwl(self) -> float:
        from repro.ops.hpwl import hpwl

        return hpwl(self._pin_x, self._pin_y, self.db.pin_net,
                    self.db.num_nets, self.db.net_weight)

    def delta(self, cells, new_x, new_y) -> float:
        nets = self.nets_of_cells(cells)
        before = sum(self.net_hpwl(e) * self.db.net_weight[e] for e in nets)
        moved = {int(c): (float(nx), float(ny))
                 for c, nx, ny in zip(cells, new_x, new_y)}
        after = 0.0
        for e in nets:
            pins = self.db.net_pins(e)
            px = self._pin_x[pins].copy()
            py = self._pin_y[pins].copy()
            for k, pin in enumerate(pins):
                cell = int(self.db.pin_cell[pin])
                if cell in moved:
                    nx, ny = moved[cell]
                    px[k] = nx + self.db.pin_offset_x[pin]
                    py[k] = ny + self.db.pin_offset_y[pin]
            after += (px.max() - px.min() + py.max() - py.min()) \
                * self.db.net_weight[e]
        return after - before

    def apply(self, cells, new_x, new_y) -> None:
        for c, nx, ny in zip(cells, new_x, new_y):
            c = int(c)
            self.x[c] = float(nx)
            self.y[c] = float(ny)
            pins = self.db.cell_pins(c)
            self._pin_x[pins] = self.x[c] + self.db.pin_offset_x[pins]
            self._pin_y[pins] = self.y[c] + self.db.pin_offset_y[pins]
