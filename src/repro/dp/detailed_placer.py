"""Detailed placement orchestrator."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dp.global_swap import global_swap
from repro.dp.incremental import IncrementalHpwl
from repro.dp.independent_set import independent_set_matching
from repro.dp.local_reorder import local_reorder
from repro.netlist.database import PlacementDB


@dataclass
class DetailedPlaceStats:
    """Per-pass acceptance counts and HPWL trajectory."""

    hpwl_before: float = 0.0
    hpwl_after: float = 0.0
    swaps: list[int] = field(default_factory=list)
    reorders: list[int] = field(default_factory=list)
    matchings: list[int] = field(default_factory=list)


class DetailedPlacer:
    """Iterates global-swap -> local-reorder -> independent-set passes."""

    def __init__(self, db: PlacementDB, passes: int = 2,
                 reorder_window: int = 3, group_size: int = 12):
        self.db = db
        self.passes = int(passes)
        self.reorder_window = int(reorder_window)
        self.group_size = int(group_size)

    def run(self, x: np.ndarray, y: np.ndarray
            ) -> tuple[np.ndarray, np.ndarray, DetailedPlaceStats]:
        state = IncrementalHpwl(self.db, x, y)
        stats = DetailedPlaceStats(hpwl_before=state.total_hpwl())
        for _ in range(self.passes):
            stats.swaps.append(global_swap(self.db, state))
            stats.reorders.append(
                local_reorder(self.db, state, self.reorder_window)
            )
            stats.matchings.append(
                independent_set_matching(self.db, state, self.group_size)
            )
            if stats.swaps[-1] + stats.reorders[-1] + stats.matchings[-1] == 0:
                break
        stats.hpwl_after = state.total_hpwl()
        return state.x, state.y, stats


def detailed_place(db: PlacementDB, x: np.ndarray, y: np.ndarray,
                   passes: int = 2):
    """Convenience wrapper; returns ``(x, y, stats)``."""
    return DetailedPlacer(db, passes=passes).run(x, y)
