"""Detailed placement orchestrator."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dp.global_swap import global_swap
from repro.dp.incremental import IncrementalHpwl
from repro.dp.independent_set import independent_set_matching
from repro.dp.local_reorder import local_reorder
from repro.netlist.database import PlacementDB
from repro.perf.profiler import profiled


@dataclass
class DetailedPlaceStats:
    """Per-pass acceptance counts and HPWL trajectory."""

    hpwl_before: float = 0.0
    hpwl_after: float = 0.0
    swaps: list[int] = field(default_factory=list)
    reorders: list[int] = field(default_factory=list)
    matchings: list[int] = field(default_factory=list)


class DetailedPlacer:
    """Iterates global-swap -> local-reorder -> independent-set passes.

    With ``fences`` every pass is fence-constrained: swap partners,
    reorder windows and matching classes never mix cells of different
    fence memberships, so a fence-legal input stays fence-legal.
    """

    def __init__(self, db: PlacementDB, passes: int = 2,
                 reorder_window: int = 3, group_size: int = 12,
                 fences=None):
        self.db = db
        self.passes = int(passes)
        self.reorder_window = int(reorder_window)
        self.group_size = int(group_size)
        self.fences = fences
        self.fence_id: np.ndarray | None = None
        if fences:
            from repro.core.fence import fence_of_cell

            self.fence_id = fence_of_cell(db, fences)

    def run(self, x: np.ndarray, y: np.ndarray
            ) -> tuple[np.ndarray, np.ndarray, DetailedPlaceStats]:
        state = IncrementalHpwl(self.db, x, y)
        stats = DetailedPlaceStats(hpwl_before=state.total_hpwl())
        for _ in range(self.passes):
            with profiled("dp.global_swap"):
                stats.swaps.append(
                    global_swap(self.db, state, fence_id=self.fence_id)
                )
            with profiled("dp.local_reorder"):
                stats.reorders.append(local_reorder(
                    self.db, state, self.reorder_window,
                    fence_id=self.fence_id,
                ))
            with profiled("dp.independent_set"):
                stats.matchings.append(independent_set_matching(
                    self.db, state, self.group_size,
                    fence_id=self.fence_id,
                ))
            if stats.swaps[-1] + stats.reorders[-1] + stats.matchings[-1] == 0:
                break
        stats.hpwl_after = state.total_hpwl()
        return state.x, state.y, stats


def detailed_place(db: PlacementDB, x: np.ndarray, y: np.ndarray,
                   passes: int = 2, fences=None):
    """Convenience wrapper; returns ``(x, y, stats)``."""
    return DetailedPlacer(db, passes=passes, fences=fences).run(x, y)
