"""repro — a reproduction of DREAMPlace (DAC 2019 / TCAD 2021).

Analytical VLSI global placement cast as neural-network training: cell
coordinates are the trainable weights, wirelength is the loss, and the
ePlace electrostatic density penalty is the regularizer, solved with
gradient-descent engines on a deep-learning-toolkit-style substrate.

Public entry points:

- :class:`repro.core.DreamPlacer` — the full GP -> LG -> DP flow.
- :class:`repro.core.PlacementParams` — flow configuration.
- :mod:`repro.benchgen` — synthetic benchmark suites (scaled ISPD2005 /
  DAC2012 / industrial analogs).
- :mod:`repro.nn` — the autograd + optimizer substrate.
- :mod:`repro.ops` — wirelength/density operators with multiple kernel
  strategies.
"""

__version__ = "1.0.0"

from repro.geometry import BinGrid, PlacementRegion
from repro.netlist import CellKind, Netlist, PlacementDB


def __getattr__(name):
    # lazy top-level conveniences (keep `import repro` light)
    if name in ("DreamPlacer", "PlacementParams", "GlobalPlacer"):
        import repro.core as core

        return getattr(core, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


__all__ = [
    "__version__",
    "PlacementRegion",
    "BinGrid",
    "Netlist",
    "CellKind",
    "PlacementDB",
    "DreamPlacer",
    "PlacementParams",
    "GlobalPlacer",
]
