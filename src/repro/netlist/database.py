"""Flat placement database.

All placer kernels operate on this structure-of-arrays form: cells,
nets and pins are integer-indexed, with CSR adjacency in both
directions (net -> pins and cell -> pins).  This mirrors the flat
tensors DREAMPlace feeds its CUDA kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.geometry.region import PlacementRegion


@dataclass
class PlacementDB:
    """Structure-of-arrays circuit database.

    Coordinates ``cell_x``/``cell_y`` are the lower-left corners of
    cells.  Pin offsets are relative to that corner, so pin positions
    are ``cell_x[pin_cell] + pin_offset_x``.
    """

    name: str
    region: PlacementRegion
    cell_names: list[str]
    cell_width: np.ndarray
    cell_height: np.ndarray
    cell_x: np.ndarray
    cell_y: np.ndarray
    movable: np.ndarray  # bool mask
    terminal: np.ndarray  # bool mask (subset of fixed)
    net_names: list[str]
    net_weight: np.ndarray
    net2pin_start: np.ndarray  # CSR offsets, len = num_nets + 1
    pin_cell: np.ndarray  # pin -> cell
    pin_net: np.ndarray  # pin -> net
    pin_offset_x: np.ndarray
    pin_offset_y: np.ndarray

    # derived, built in __post_init__
    net2pin: np.ndarray = field(init=False)
    cell2pin_start: np.ndarray = field(init=False)
    cell2pin: np.ndarray = field(init=False)
    net_degree: np.ndarray = field(init=False)

    def __post_init__(self):
        self.cell_width = np.asarray(self.cell_width, dtype=np.float64)
        self.cell_height = np.asarray(self.cell_height, dtype=np.float64)
        self.cell_x = np.asarray(self.cell_x, dtype=np.float64)
        self.cell_y = np.asarray(self.cell_y, dtype=np.float64)
        self.movable = np.asarray(self.movable, dtype=bool)
        self.terminal = np.asarray(self.terminal, dtype=bool)
        self.net_weight = np.asarray(self.net_weight, dtype=np.float64)
        self.net2pin_start = np.asarray(self.net2pin_start, dtype=np.int64)
        self.pin_cell = np.asarray(self.pin_cell, dtype=np.int64)
        self.pin_net = np.asarray(self.pin_net, dtype=np.int64)
        self.pin_offset_x = np.asarray(self.pin_offset_x, dtype=np.float64)
        self.pin_offset_y = np.asarray(self.pin_offset_y, dtype=np.float64)

        # net -> pin CSR: pins are already grouped by net in pin order
        # (hypergraph.compile guarantees this); keep an explicit index
        # array so callers may also construct DBs with arbitrary order.
        order = np.argsort(self.pin_net, kind="stable")
        self.net2pin = order.astype(np.int64)
        self.net_degree = np.diff(self.net2pin_start).astype(np.int64)

        # cell -> pin CSR
        order = np.argsort(self.pin_cell, kind="stable")
        counts = np.bincount(self.pin_cell, minlength=self.num_cells)
        self.cell2pin_start = np.concatenate(
            ([0], np.cumsum(counts))
        ).astype(np.int64)
        self.cell2pin = order.astype(np.int64)

    # ------------------------------------------------------------------
    # sizes
    # ------------------------------------------------------------------
    @property
    def num_cells(self) -> int:
        return self.cell_width.shape[0]

    @property
    def num_nets(self) -> int:
        return self.net_weight.shape[0]

    @property
    def num_pins(self) -> int:
        return self.pin_cell.shape[0]

    @property
    def num_movable(self) -> int:
        return int(self.movable.sum())

    @property
    def movable_index(self) -> np.ndarray:
        return np.flatnonzero(self.movable)

    @property
    def fixed_index(self) -> np.ndarray:
        return np.flatnonzero(~self.movable)

    @property
    def cell_area(self) -> np.ndarray:
        return self.cell_width * self.cell_height

    @property
    def total_movable_area(self) -> float:
        return float(self.cell_area[self.movable].sum())

    @property
    def total_fixed_area(self) -> float:
        """Area of fixed cells overlapping the placement region."""
        from repro.geometry.boxes import rect_overlap_area

        fixed = ~self.movable & ~self.terminal
        if not fixed.any():
            return 0.0
        r = self.region
        areas = rect_overlap_area(
            self.cell_x[fixed], self.cell_y[fixed],
            self.cell_x[fixed] + self.cell_width[fixed],
            self.cell_y[fixed] + self.cell_height[fixed],
            r.xl, r.yl, r.xh, r.yh,
        )
        return float(areas.sum())

    @property
    def utilization(self) -> float:
        """Movable area over free (non-fixed) region area."""
        free = self.region.area - self.total_fixed_area
        return self.total_movable_area / free if free > 0 else np.inf

    # ------------------------------------------------------------------
    # positions
    # ------------------------------------------------------------------
    def positions(self) -> tuple[np.ndarray, np.ndarray]:
        """Copies of the lower-left coordinates."""
        return self.cell_x.copy(), self.cell_y.copy()

    def set_positions(self, x: np.ndarray, y: np.ndarray) -> None:
        self.cell_x = np.asarray(x, dtype=np.float64).copy()
        self.cell_y = np.asarray(y, dtype=np.float64).copy()

    def centers(self, x: Optional[np.ndarray] = None,
                y: Optional[np.ndarray] = None):
        cx = (self.cell_x if x is None else x) + 0.5 * self.cell_width
        cy = (self.cell_y if y is None else y) + 0.5 * self.cell_height
        return cx, cy

    def pin_positions(self, x: Optional[np.ndarray] = None,
                      y: Optional[np.ndarray] = None):
        """Pin coordinates for cell corners ``(x, y)`` (defaults: stored)."""
        cx = self.cell_x if x is None else x
        cy = self.cell_y if y is None else y
        return (
            cx[self.pin_cell] + self.pin_offset_x,
            cy[self.pin_cell] + self.pin_offset_y,
        )

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def hpwl(self, x: Optional[np.ndarray] = None,
             y: Optional[np.ndarray] = None) -> float:
        """Weighted half-perimeter wirelength at the given placement."""
        from repro.ops.hpwl import hpwl

        px, py = self.pin_positions(x, y)
        return hpwl(px, py, self.pin_net, self.num_nets, self.net_weight)

    def net_pins(self, net: int) -> np.ndarray:
        """Pin indices of one net."""
        return self.net2pin[self.net2pin_start[net]:self.net2pin_start[net + 1]]

    def cell_pins(self, cell: int) -> np.ndarray:
        """Pin indices on one cell."""
        return self.cell2pin[
            self.cell2pin_start[cell]:self.cell2pin_start[cell + 1]
        ]

    def fingerprint(self) -> str:
        """Content hash of the netlist (hex SHA-256).

        Covers everything placement quality depends on: the die region
        and row geometry, cell sizes and movability, fixed-cell
        positions, and the full hypergraph (net weights, connectivity,
        pin offsets).  *Movable* cell positions are excluded — global
        placement re-initializes them from the seed — so two databases
        that differ only in a previous placement fingerprint alike.
        Cell/net *names* are likewise excluded: identity is structure.
        ``repro.runner`` folds this hash into every job's content hash
        for cache keying.
        """
        import hashlib

        h = hashlib.sha256()
        r = self.region
        h.update(np.array([
            r.xl, r.yl, r.xh, r.yh, r.row_height, r.site_width,
        ], dtype=np.float64).tobytes())
        fixed = ~self.movable
        fixed_x = np.where(fixed, self.cell_x, 0.0)
        fixed_y = np.where(fixed, self.cell_y, 0.0)
        for array in (
            self.cell_width, self.cell_height,
            self.movable, self.terminal, fixed_x, fixed_y,
            self.net_weight, self.net2pin_start,
            self.pin_cell, self.pin_net,
            self.pin_offset_x, self.pin_offset_y,
        ):
            h.update(np.ascontiguousarray(array).tobytes())
        return h.hexdigest()

    def clone(self) -> "PlacementDB":
        """Deep copy (positions and arrays independent of the original)."""
        return PlacementDB(
            name=self.name,
            region=self.region,
            cell_names=list(self.cell_names),
            cell_width=self.cell_width.copy(),
            cell_height=self.cell_height.copy(),
            cell_x=self.cell_x.copy(),
            cell_y=self.cell_y.copy(),
            movable=self.movable.copy(),
            terminal=self.terminal.copy(),
            net_names=list(self.net_names),
            net_weight=self.net_weight.copy(),
            net2pin_start=self.net2pin_start.copy(),
            pin_cell=self.pin_cell.copy(),
            pin_net=self.pin_net.copy(),
            pin_offset_x=self.pin_offset_x.copy(),
            pin_offset_y=self.pin_offset_y.copy(),
        )

    def __repr__(self):
        return (
            f"PlacementDB({self.name!r}, cells={self.num_cells} "
            f"(movable={self.num_movable}), nets={self.num_nets}, "
            f"pins={self.num_pins})"
        )
