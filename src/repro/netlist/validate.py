"""Consistency checks for a :class:`PlacementDB`."""

from __future__ import annotations

import numpy as np

from repro.netlist.database import PlacementDB


def validate_db(db: PlacementDB, check_inside: bool = False) -> None:
    """Raise ``ValueError`` on any structural inconsistency.

    Parameters
    ----------
    check_inside:
        Also require every movable cell to lie inside the region
        (useful after legalization, not during global placement).
    """
    problems: list[str] = []

    if db.cell_width.shape != (db.num_cells,):
        problems.append("cell_width shape mismatch")
    for attr in ("cell_height", "cell_x", "cell_y", "movable", "terminal"):
        if getattr(db, attr).shape != (db.num_cells,):
            problems.append(f"{attr} shape mismatch")
    if len(db.cell_names) != db.num_cells:
        problems.append("cell_names length mismatch")
    if len(db.net_names) != db.num_nets:
        problems.append("net_names length mismatch")

    if db.net2pin_start.shape != (db.num_nets + 1,):
        problems.append("net2pin_start must have num_nets + 1 entries")
    elif db.net2pin_start[0] != 0 or db.net2pin_start[-1] != db.num_pins:
        problems.append("net2pin_start must start at 0 and end at num_pins")
    elif (np.diff(db.net2pin_start) < 0).any():
        problems.append("net2pin_start must be non-decreasing")
    else:
        counts = np.bincount(db.pin_net, minlength=db.num_nets)
        if not np.array_equal(counts, np.diff(db.net2pin_start)):
            problems.append("net2pin_start inconsistent with pin_net")

    if db.num_pins:
        if db.pin_cell.min() < 0 or db.pin_cell.max() >= db.num_cells:
            problems.append("pin_cell index out of range")
        if db.pin_net.min() < 0 or db.pin_net.max() >= db.num_nets:
            problems.append("pin_net index out of range")

    if db.num_nets:
        pinless = int((np.diff(db.net2pin_start) == 0).sum())
        if pinless:
            # a pinless net has no extent: harmless to HPWL but almost
            # always an extraction bug, and historically crashed the
            # incremental DP evaluator — flag it here instead
            problems.append(f"{pinless} nets have no pins")

    if (db.cell_width < 0).any() or (db.cell_height < 0).any():
        problems.append("negative cell dimensions")
    if (db.net_weight < 0).any():
        problems.append("negative net weights")
    if (db.movable & db.terminal).any():
        problems.append("a terminal cannot be movable")

    if check_inside:
        inside = db.region.contains(
            db.cell_x[db.movable], db.cell_y[db.movable],
            db.cell_width[db.movable], db.cell_height[db.movable],
        )
        if not inside.all():
            bad = int((~inside).sum())
            problems.append(f"{bad} movable cells outside the region")

    if problems:
        raise ValueError(
            f"invalid PlacementDB {db.name!r}: " + "; ".join(problems)
        )
