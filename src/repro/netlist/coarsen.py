"""Deterministic hypergraph coarsening for multilevel placement.

Heavy-edge matching in the hMetis/DG-RePlAce tradition, specialized
for the placement problem:

- only *movable* cells are ever clustered; fixed cells and terminals
  stay singleton clusters with their exact geometry and position, so
  the coarse problem sees the same blockage/IO landscape;
- a pair is matchable only if both cells have the same height (std
  cells cluster within their row family, macros never absorb a std
  cell) and the same fence membership (a cluster must be legal in
  exactly one region set);
- connectivity rating is the classic ``weight / (degree - 1)`` sum
  over shared nets, with very-high-degree nets skipped (they carry no
  locality signal and would densify the candidate graph);
- cluster geometry conserves area: equal-height members concatenate
  horizontally (``width = sum of widths``), members sit centered in
  the cluster so every fine cell has an exact lower-left offset
  (``member_dx/dy``) inside its cluster.  Pin offsets are rebased by
  that member offset, which makes prolongation *exact*: placing the
  cluster and expanding members reproduces every pin position the
  coarse wirelength model optimized.

Everything is a pure function of the database (ties break on the
lowest cell index), so two processes that coarsen the same netlist
build bit-identical levels — the property the mid-cascade
checkpoint/resume path relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.netlist.database import PlacementDB

#: nets above this degree are ignored while *rating* pairs (the
#: candidate graph stays sparse); they are still carried — exactly,
#: with their weights — into the coarse database
MATCH_DEGREE_CAP = 16


@dataclass
class CoarseLevel:
    """One coarsening step: fine database -> clustered database.

    ``cluster_of[i]`` is the coarse cell holding fine cell ``i`` and
    ``member_dx/dy[i]`` its lower-left offset inside that cluster, so

    ``fine_x = coarse_x[cluster_of] + member_dx``

    is the exact prolongation (fixed cells keep their own stored
    positions; their singleton clusters never move).
    """

    fine: PlacementDB
    db: PlacementDB
    cluster_of: np.ndarray
    member_dx: np.ndarray
    member_dy: np.ndarray
    fences: Optional[list] = None

    @property
    def identity(self) -> bool:
        """True when no cells merged (``db`` *is* the fine database)."""
        return self.db is self.fine

    def prolong(self, x: np.ndarray, y: np.ndarray):
        """Expand coarse cluster positions to fine cell positions."""
        fx = np.asarray(x, dtype=np.float64)[self.cluster_of] + self.member_dx
        fy = np.asarray(y, dtype=np.float64)[self.cluster_of] + self.member_dy
        fixed = ~self.fine.movable
        fx[fixed] = self.fine.cell_x[fixed]
        fy[fixed] = self.fine.cell_y[fixed]
        return fx, fy

    def restrict(self, x: np.ndarray, y: np.ndarray):
        """Project fine positions to clusters (area-weighted centers)."""
        fine = self.fine
        area = fine.cell_area
        cx = np.asarray(x, dtype=np.float64) + 0.5 * fine.cell_width
        cy = np.asarray(y, dtype=np.float64) + 0.5 * fine.cell_height
        num = self.db.num_cells
        mass = np.bincount(self.cluster_of, weights=area, minlength=num)
        mass = np.maximum(mass, 1e-12)
        gx = np.bincount(self.cluster_of, weights=area * cx,
                         minlength=num) / mass
        gy = np.bincount(self.cluster_of, weights=area * cy,
                         minlength=num) / mass
        return (gx - 0.5 * self.db.cell_width,
                gy - 0.5 * self.db.cell_height)


def _fence_ids(db: PlacementDB, fences) -> np.ndarray:
    ids = np.full(db.num_cells, -1, dtype=np.int64)
    if fences:
        for i, fence in enumerate(fences):
            ids[np.asarray(fence.cells, dtype=np.int64)] = i
    return ids


def _identity_level(db: PlacementDB, fences) -> CoarseLevel:
    n = db.num_cells
    return CoarseLevel(
        fine=db, db=db,
        cluster_of=np.arange(n, dtype=np.int64),
        member_dx=np.zeros(n), member_dy=np.zeros(n),
        fences=fences,
    )


def _rate_pairs(db: PlacementDB, fence_id: np.ndarray):
    """All matchable cell pairs with their summed heavy-edge rating.

    Emits, for every net with ``2 <= degree <= MATCH_DEGREE_CAP``, all
    unordered pin-cell pairs rated ``net_weight / (degree - 1)``, then
    aggregates duplicate pairs.  Fully vectorized by grouping nets of
    equal degree (there are only ~CAP distinct degrees).
    """
    deg = db.net_degree
    lo_parts, hi_parts, w_parts = [], [], []
    for d in np.unique(deg):
        d = int(d)
        if d < 2 or d > MATCH_DEGREE_CAP:
            continue
        nets = np.flatnonzero(deg == d)
        # pin cells of these nets as a (num_nets_d, d) matrix
        idx = db.net2pin_start[nets][:, None] + np.arange(d)[None, :]
        cells = db.pin_cell[db.net2pin[idx]]
        iu, ju = np.triu_indices(d, k=1)
        a = cells[:, iu].ravel()
        b = cells[:, ju].ravel()
        rating = np.repeat(db.net_weight[nets] / (d - 1), iu.shape[0])
        lo_parts.append(np.minimum(a, b))
        hi_parts.append(np.maximum(a, b))
        w_parts.append(rating)
    if not lo_parts:
        return (np.empty(0, np.int64), np.empty(0, np.int64),
                np.empty(0, np.float64))
    lo = np.concatenate(lo_parts)
    hi = np.concatenate(hi_parts)
    w = np.concatenate(w_parts)
    ok = (
        (lo != hi)
        & db.movable[lo] & db.movable[hi]
        & (db.cell_height[lo] == db.cell_height[hi])
        & (fence_id[lo] == fence_id[hi])
    )
    lo, hi, w = lo[ok], hi[ok], w[ok]
    # aggregate duplicate pairs (same two cells on several nets)
    key = lo * np.int64(db.num_cells) + hi
    uniq, inverse = np.unique(key, return_inverse=True)
    score = np.bincount(inverse, weights=w, minlength=uniq.shape[0])
    lo = (uniq // db.num_cells).astype(np.int64)
    hi = (uniq % db.num_cells).astype(np.int64)
    return lo, hi, score


def _greedy_match(db: PlacementDB, lo, hi, score,
                  max_area: float, max_merges: int) -> np.ndarray:
    """Greedy maximal matching over pairs sorted by descending rating.

    Ties break on the lowest (lo, hi) index pair, making the matching
    a pure function of the database.  ``match[i]`` is the partner of
    cell ``i`` or ``-1``.
    """
    order = np.lexsort((hi, lo, -score))
    area = db.cell_area
    match = np.full(db.num_cells, -1, dtype=np.int64)
    merges = 0
    for k in order:
        if merges >= max_merges:
            break
        u = int(lo[k])
        v = int(hi[k])
        if match[u] != -1 or match[v] != -1:
            continue
        if area[u] + area[v] > max_area:
            continue
        match[u] = v
        match[v] = u
        merges += 1
    return match


def _contract(db: PlacementDB, match: np.ndarray,
              fences) -> Optional[CoarseLevel]:
    """Build the clustered database for one matching pass.

    Returns ``None`` when the matching is empty (no progress).  Coarse
    cells are numbered by their lowest fine member index, so the
    movable/fixed interleaving of the fine database is preserved and
    the construction is order-deterministic.
    """
    if (match < 0).all():
        return None
    n = db.num_cells
    rep = np.where((match >= 0) & (match < np.arange(n)),
                   match, np.arange(n))
    reps = np.unique(rep)  # sorted ascending -> coarse index order
    cluster_of = np.searchsorted(reps, rep).astype(np.int64)
    num = reps.shape[0]

    paired = reps[match[reps] >= 0]          # reps of two-cell clusters
    partner = match[paired]

    width = db.cell_width[reps].copy()
    height = db.cell_height[reps].copy()
    # equal heights concatenate horizontally: width adds, area is
    # conserved exactly (w_u*h + w_v*h == (w_u+w_v)*h up to rounding)
    width[cluster_of[paired]] += db.cell_width[partner]

    names = [db.cell_names[r] for r in reps]
    for r, p in zip(cluster_of[paired], partner):
        names[r] = f"{names[r]}+{db.cell_names[p]}"

    # members concatenate left-to-right inside their cluster (rep
    # first): the coarse pin geometry is then *exactly* the fine pin
    # geometry of the side-by-side arrangement, and prolongation
    # expands a cluster into an overlap-free row of its members.  A
    # singleton's offset is exactly zero, keeping identity clusters'
    # pin geometry bit-exact.
    member_dx = np.zeros(n)
    member_dx[partner] = db.cell_width[paired]
    member_dy = 0.5 * (height[cluster_of] - db.cell_height)

    # one pin per (net, cluster): internal pins of a merged pair
    # collapse, with the surviving offset the mean of the members'
    p_cluster = cluster_of[db.pin_cell]
    p_off_x = member_dx[db.pin_cell] + db.pin_offset_x
    p_off_y = member_dy[db.pin_cell] + db.pin_offset_y
    key = db.pin_net * np.int64(num) + p_cluster
    uniq, inverse, counts = np.unique(key, return_inverse=True,
                                      return_counts=True)
    pin_net = (uniq // num).astype(np.int64)
    pin_cell = (uniq % num).astype(np.int64)
    pin_off_x = np.bincount(inverse, weights=p_off_x) / counts
    pin_off_y = np.bincount(inverse, weights=p_off_y) / counts
    net2pin_start = np.concatenate(([0], np.cumsum(
        np.bincount(pin_net, minlength=db.num_nets)))).astype(np.int64)

    coarse = PlacementDB(
        name=f"{db.name}@coarse",
        region=db.region,
        cell_names=names,
        cell_width=width,
        cell_height=height,
        cell_x=db.cell_x[reps].copy(),
        cell_y=db.cell_y[reps].copy(),
        movable=db.movable[reps].copy(),
        terminal=db.terminal[reps].copy(),
        net_names=list(db.net_names),
        net_weight=db.net_weight.copy(),
        net2pin_start=net2pin_start,
        pin_cell=pin_cell,
        pin_net=pin_net,
        pin_offset_x=pin_off_x,
        pin_offset_y=pin_off_y,
    )

    coarse_fences = None
    if fences:
        from repro.core.fence import FenceRegion

        coarse_fences = [
            FenceRegion(
                f.name, f.xl, f.yl, f.xh, f.yh,
                cells=sorted(set(
                    int(cluster_of[c]) for c in f.cells
                )),
            )
            for f in fences
        ]
    return CoarseLevel(
        fine=db, db=coarse, cluster_of=cluster_of,
        member_dx=member_dx, member_dy=member_dy, fences=coarse_fences,
    )


def _compose(outer: CoarseLevel, inner: CoarseLevel) -> CoarseLevel:
    """Fuse two stacked coarsening passes into one fine->coarse map."""
    return CoarseLevel(
        fine=outer.fine,
        db=inner.db,
        cluster_of=inner.cluster_of[outer.cluster_of],
        member_dx=outer.member_dx + inner.member_dx[outer.cluster_of],
        member_dy=outer.member_dy + inner.member_dy[outer.cluster_of],
        fences=inner.fences,
    )


def coarsen(db: PlacementDB, ratio: float, fences=None,
            max_passes: int = 8) -> CoarseLevel:
    """Coarsen until ``num_movable <= ratio * db.num_movable``.

    Runs heavy-edge matching passes (each at most halves the movable
    count) until the target is met, matching stalls, or ``max_passes``
    is exhausted.  ``ratio >= 1`` (or a stalled first pass) returns
    the exact identity level: ``level.db is db``, so downstream
    placement is bit-identical to the uncoarsened flow.
    """
    if ratio >= 1.0 or db.num_movable == 0:
        return _identity_level(db, fences)
    target = max(int(np.ceil(ratio * db.num_movable)), 1)
    level = _identity_level(db, fences)
    for _ in range(max_passes):
        cur = level.db
        if cur.num_movable <= target:
            break
        fence_id = _fence_ids(cur, level.fences)
        lo, hi, score = _rate_pairs(cur, fence_id)
        if lo.shape[0] == 0:
            break
        # a cluster may not exceed twice its fair share of the target
        # movable area (keeps density locally representable)
        max_area = 2.0 * cur.total_movable_area / target
        match = _greedy_match(cur, lo, hi, score, max_area,
                              max_merges=cur.num_movable - target)
        step = _contract(cur, match, level.fences)
        if step is None:
            break
        level = step if level.identity else _compose(level, step)
    return level
