"""Circuit netlist: hypergraph builder and flat placement database."""

from repro.netlist.hypergraph import Netlist, CellKind
from repro.netlist.database import PlacementDB
from repro.netlist.coarsen import CoarseLevel, coarsen
from repro.netlist.validate import validate_db

__all__ = ["Netlist", "CellKind", "PlacementDB", "CoarseLevel",
           "coarsen", "validate_db"]
