"""Incremental netlist builder.

The circuit is a hypergraph H = (V, E): vertices are cells (standard
cells, macros, fixed terminals/pads) and hyperedges are nets connecting
pins.  :class:`Netlist` is the convenient mutable builder; call
:meth:`Netlist.compile` to produce the flat, numpy-backed
:class:`~repro.netlist.database.PlacementDB` the placer operates on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.geometry.region import PlacementRegion


class CellKind(enum.Enum):
    """Classification of a cell for placement purposes."""

    MOVABLE = "movable"  # standard cell placed by the optimizer
    FIXED = "fixed"  # pre-placed macro / blockage
    TERMINAL = "terminal"  # I/O pad on the periphery (fixed, zero area ok)


@dataclass
class _Cell:
    name: str
    width: float
    height: float
    kind: CellKind
    x: float = 0.0
    y: float = 0.0


@dataclass
class _Net:
    name: str
    weight: float = 1.0
    # each pin: (cell index, offset x, offset y) with offsets measured
    # from the cell's lower-left corner
    pins: list[tuple[int, float, float]] = field(default_factory=list)


class Netlist:
    """Mutable netlist under construction."""

    def __init__(self, name: str = "design"):
        self.name = name
        self._cells: list[_Cell] = []
        self._nets: list[_Net] = []
        self._cell_index: dict[str, int] = {}
        self._net_index: dict[str, int] = {}

    # ------------------------------------------------------------------
    @property
    def num_cells(self) -> int:
        return len(self._cells)

    @property
    def num_nets(self) -> int:
        return len(self._nets)

    @property
    def num_pins(self) -> int:
        return sum(len(net.pins) for net in self._nets)

    def cell_id(self, name: str) -> int:
        return self._cell_index[name]

    def cell_name(self, index: int) -> str:
        return self._cells[index].name

    # ------------------------------------------------------------------
    def add_cell(self, name: str, width: float, height: float,
                 kind: CellKind = CellKind.MOVABLE,
                 x: float = 0.0, y: float = 0.0) -> int:
        """Add a cell; returns its index."""
        if name in self._cell_index:
            raise ValueError(f"duplicate cell name: {name!r}")
        if width < 0 or height < 0:
            raise ValueError(f"negative size for cell {name!r}")
        index = len(self._cells)
        self._cells.append(_Cell(name, float(width), float(height), kind,
                                 float(x), float(y)))
        self._cell_index[name] = index
        return index

    def add_net(self, name: str,
                pins: Sequence[tuple[str | int, float, float]],
                weight: float = 1.0) -> int:
        """Add a net.

        ``pins`` is a sequence of ``(cell, offset_x, offset_y)`` where
        ``cell`` is a name or index and offsets are measured from the
        cell's lower-left corner.
        """
        if name in self._net_index:
            raise ValueError(f"duplicate net name: {name!r}")
        resolved = []
        for cell, ox, oy in pins:
            index = cell if isinstance(cell, int) else self._cell_index[cell]
            if not 0 <= index < len(self._cells):
                raise IndexError(f"net {name!r}: cell index {index} out of range")
            resolved.append((index, float(ox), float(oy)))
        net_index = len(self._nets)
        self._nets.append(_Net(name, float(weight), resolved))
        self._net_index[name] = net_index
        return net_index

    def set_position(self, cell: str | int, x: float, y: float) -> None:
        index = cell if isinstance(cell, int) else self._cell_index[cell]
        self._cells[index].x = float(x)
        self._cells[index].y = float(y)

    # ------------------------------------------------------------------
    def compile(self, region: PlacementRegion) -> "PlacementDB":
        """Freeze into a flat :class:`PlacementDB`."""
        from repro.netlist.database import PlacementDB

        num_cells = len(self._cells)
        cell_width = np.array([c.width for c in self._cells])
        cell_height = np.array([c.height for c in self._cells])
        cell_x = np.array([c.x for c in self._cells])
        cell_y = np.array([c.y for c in self._cells])
        movable = np.array(
            [c.kind is CellKind.MOVABLE for c in self._cells], dtype=bool
        )
        terminal = np.array(
            [c.kind is CellKind.TERMINAL for c in self._cells], dtype=bool
        )
        cell_names = [c.name for c in self._cells]

        pin_cell = []
        pin_net = []
        pin_ox = []
        pin_oy = []
        net_weight = np.array([n.weight for n in self._nets])
        net_names = [n.name for n in self._nets]
        net2pin_start = np.zeros(len(self._nets) + 1, dtype=np.int64)
        for i, net in enumerate(self._nets):
            net2pin_start[i + 1] = net2pin_start[i] + len(net.pins)
            for cell, ox, oy in net.pins:
                pin_cell.append(cell)
                pin_net.append(i)
                pin_ox.append(ox)
                pin_oy.append(oy)

        return PlacementDB(
            name=self.name,
            region=region,
            cell_names=cell_names,
            cell_width=cell_width,
            cell_height=cell_height,
            cell_x=cell_x,
            cell_y=cell_y,
            movable=movable,
            terminal=terminal,
            net_names=net_names,
            net_weight=net_weight,
            net2pin_start=net2pin_start,
            pin_cell=np.array(pin_cell, dtype=np.int64),
            pin_net=np.array(pin_net, dtype=np.int64),
            pin_offset_x=np.array(pin_ox, dtype=np.float64),
            pin_offset_y=np.array(pin_oy, dtype=np.float64),
        )
