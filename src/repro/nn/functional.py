"""Elementary differentiable operations used to compose objectives."""

from __future__ import annotations

import numpy as np

from repro.nn.function import Function
from repro.nn.tensor import Tensor


class _Add(Function):
    capture_safe = True

    def forward(self, a, b):
        return a + b

    def backward(self, grad_output):
        return grad_output, grad_output


class _Sub(Function):
    capture_safe = True

    def forward(self, a, b):
        return a - b

    def backward(self, grad_output):
        return grad_output, -grad_output


class _Mul(Function):
    capture_safe = True

    def forward(self, a, b):
        self.save_for_backward(a, b)
        return a * b

    def backward(self, grad_output):
        a, b = self.saved_values
        return grad_output * b, grad_output * a


class _Div(Function):
    capture_safe = True

    def forward(self, a, b):
        self.save_for_backward(a, b)
        return a / b

    def backward(self, grad_output):
        a, b = self.saved_values
        return grad_output / b, -grad_output * a / (b * b)


class _Sum(Function):
    capture_safe = True

    def forward(self, a):
        self.save_for_backward(a.shape, a.dtype)
        return np.asarray(a.sum(), dtype=a.dtype)

    def backward(self, grad_output):
        shape, dtype = self.saved_values
        return np.broadcast_to(np.asarray(grad_output, dtype=dtype), shape)


class _Abs(Function):
    capture_safe = True

    def forward(self, a):
        self.save_for_backward(np.sign(a))
        return np.abs(a)

    def backward(self, grad_output):
        (sign,) = self.saved_values
        return grad_output * sign


class _Square(Function):
    capture_safe = True

    def forward(self, a):
        self.save_for_backward(a)
        return a * a

    def backward(self, grad_output):
        (a,) = self.saved_values
        return 2.0 * grad_output * a


def add(a: Tensor, b: Tensor) -> Tensor:
    return _Add.apply(a, b)


def sub(a: Tensor, b: Tensor) -> Tensor:
    return _Sub.apply(a, b)


def mul(a: Tensor, b: Tensor) -> Tensor:
    return _Mul.apply(a, b)


def div(a: Tensor, b: Tensor) -> Tensor:
    return _Div.apply(a, b)


def tensor_sum(a: Tensor) -> Tensor:
    return _Sum.apply(a)


def absolute(a: Tensor) -> Tensor:
    return _Abs.apply(a)


def square(a: Tensor) -> Tensor:
    return _Square.apply(a)
