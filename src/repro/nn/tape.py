"""Captured-tape execution engine (graph capture and replay).

The GP objective is a *static* graph — WA/LSE wirelength plus electric
density, combined by two scalar arithmetic nodes — evaluated 1000+
times per placement with identical structure.  The eager engine pays
for that structure on every iteration: a fresh :class:`Function` node
per op, a :class:`Tensor` wrapper per output, a topological sort and a
grad-accumulation dict per ``backward()``.  This module removes all of
it, in the spirit of CUDA Graphs / ``torch.compile``: the first closure
evaluation runs eagerly while a :class:`TapeRecorder` records the op
sequence into a flat :class:`CapturedTape`; every later iteration calls
:meth:`CapturedTape.replay`, a straight-line loop over precompiled
steps.

Replay contract (what makes it bit-exact against eager):

- leaf tensors (the position parameter, wrapped constants, the
  objective's density-weight scalar) are re-read through ``.data`` on
  every replay, so optimizer rebinds and per-iteration weight updates
  flow into the tape without recapture;
- mutable op state (``gamma``) travels through the recorded kwargs'
  module reference and is read live inside the kernels, exactly as in
  eager mode;
- forward steps run in recorded order and backward steps in reverse —
  for the objective's expression tree this reproduces the eager
  topological order exactly, including the gradient accumulation order
  into the position leaf;
- ops may provide a :meth:`~repro.nn.function.Function.compile_replay`
  specialization (e.g. the both-axis wirelength kernel or the batched
  spectral Poisson solve) whose results are bit-identical to their
  eager forward; otherwise the recorded node's own ``forward`` /
  ``backward`` are reused verbatim.

Only ops whose class sets ``capture_safe = True`` may be taped; a graph
containing any other op (e.g. a user-supplied wirelength factory)
falls back to eager execution — :func:`capture` then returns ``None``
for the tape, never an exception.  Structural changes (a leaf changing
shape or dtype) raise :class:`TapeInvalidated` from ``replay`` so the
caller can recapture.
"""

from __future__ import annotations

import functools
import threading
from typing import Any, Callable, Optional

import numpy as np

from repro.nn import tensor as _tensor
from repro.nn.tensor import Tensor, _as_array, _unbroadcast


class CaptureError(RuntimeError):
    """Raised for misuse of the capture API itself."""


class TapeInvalidated(RuntimeError):
    """A replay precondition broke (leaf shape/dtype changed): recapture."""


class _Step:
    """One precompiled op invocation on the tape."""

    __slots__ = ("forward", "backward", "arg_specs", "out_slot",
                 "requires", "n_inputs", "actions")

    def __init__(self, forward, backward, arg_specs, out_slot,
                 requires, n_inputs, actions):
        self.forward = forward
        self.backward = backward
        self.arg_specs = arg_specs  # ((is_slot, slot_or_value), ...)
        self.out_slot = out_slot
        self.requires = requires
        self.n_inputs = n_inputs
        # per node input: None (no grad flow) or
        # (is_leaf, leaf_tensor_or_slot, dtype, shape)
        self.actions = actions


class CapturedTape:
    """A recorded objective evaluation, replayable without graph churn.

    Built by :func:`capture`; not constructed directly.  ``replay()``
    re-runs the forward kernels and the analytic backward kernels as a
    flat loop, accumulating gradients into the recorded leaf tensors
    (via their persistent grad buffers) and returning a persistent loss
    tensor whose ``data`` is refreshed in place.
    """

    def __init__(self, steps, leaves, root_slot, seed, num_slots, watched):
        self._steps = steps
        self._rev_steps = [s for s in reversed(steps) if s.requires]
        self._leaves = leaves  # ((slot, tensor, shape, dtype), ...)
        self._root_slot = root_slot
        self._seed = seed
        self._values: list = [None] * num_slots
        self._grads: list = [None] * num_slots
        self._watched = watched  # name -> slot
        self._loss = Tensor(seed)  # placeholder; data refreshed per replay
        self.replays = 0

    # ------------------------------------------------------------------
    def replay(self) -> Tensor:
        """One forward+backward evaluation over the precompiled steps."""
        values = self._values
        for slot, leaf, shape, dtype in self._leaves:
            data = leaf.data
            if data.shape != shape or data.dtype != dtype:
                raise TapeInvalidated(
                    f"leaf changed from {shape}/{dtype} to "
                    f"{data.shape}/{data.dtype}"
                )
            values[slot] = data
        for step in self._steps:
            args = tuple(
                values[spec] if is_slot else spec
                for is_slot, spec in step.arg_specs
            )
            values[step.out_slot] = step.forward(*args)

        grads = self._grads
        for i in range(len(grads)):
            grads[i] = None
        grads[self._root_slot] = self._seed
        for step in self._rev_steps:
            upstream = grads[step.out_slot]
            if upstream is None:
                continue
            input_grads = step.backward(upstream)
            if not isinstance(input_grads, tuple):
                input_grads = (input_grads,)
            if len(input_grads) != step.n_inputs:
                raise RuntimeError(
                    f"replay backward returned {len(input_grads)} gradients "
                    f"for {step.n_inputs} inputs"
                )
            for action, g in zip(step.actions, input_grads):
                if action is None or g is None:
                    continue
                is_leaf, target, dtype, shape = action
                g = _as_array(g, dtype)
                if g.shape != shape:
                    g = _unbroadcast(g, shape)
                if is_leaf:
                    target._accumulate(g)
                elif grads[target] is None:
                    grads[target] = g
                else:
                    grads[target] = grads[target] + g

        self.replays += 1
        loss = self._loss
        loss.data = values[self._root_slot]
        return loss

    def watched(self, name: str) -> float:
        """Value of a tensor registered via ``recorder.watch`` (last replay)."""
        return float(self._values[self._watched[name]])


class TapeRecorder:
    """Collects op applications during one eager closure evaluation."""

    def __init__(self):
        self.entries: list = []  # (node, arg_specs, kwargs, out_slot, req)
        self._slot_of: dict[int, int] = {}
        self._tensors: list[Tensor] = []
        self._outputs: set[int] = set()  # slots written by a step
        self._watched: dict[str, int] = {}
        self._root: Optional[Tensor] = None
        self.failure: Optional[str] = None
        #: the capture is confined to the thread that started it: the
        #: placement service runs several GP loops in one process, and
        #: ops from a *concurrent* eager/replay thread must not leak
        #: into this thread's tape
        self.thread_id = threading.get_ident()

    # ------------------------------------------------------------------
    def _slot(self, t: Tensor) -> int:
        slot = self._slot_of.get(id(t))
        if slot is None:
            slot = len(self._tensors)
            self._slot_of[id(t)] = slot
            self._tensors.append(t)
        return slot

    def fail(self, reason: str) -> None:
        if self.failure is None:
            self.failure = reason

    def record_apply(self, node, inputs, kwargs, output, requires) -> None:
        """Called by ``Function.apply`` for every op during capture."""
        if threading.get_ident() != self.thread_id:
            return  # another thread's op; not part of this capture
        if not getattr(type(node), "capture_safe", False):
            self.fail(f"{type(node).__name__} is not capture-safe")
        specs = tuple(
            (True, self._slot(v)) if isinstance(v, Tensor) else (False, v)
            for v in inputs
        )
        out_slot = self._slot(output)
        self._outputs.add(out_slot)
        self.entries.append((node, specs, kwargs, out_slot, requires))

    def record_root(self, t: Tensor, grad) -> None:
        """Called by ``Tensor.backward`` during capture."""
        if threading.get_ident() != self.thread_id:
            return  # another thread's backward; not this capture's root
        if self._root is not None:
            self.fail("multiple backward() calls during capture")
            return
        if grad is not None:
            self.fail("backward() with an explicit gradient during capture")
            return
        self._root = t

    def watch(self, name: str, t: Tensor) -> None:
        """Expose a captured tensor's value by name on the tape."""
        self._watched[name] = self._slot(t)

    # ------------------------------------------------------------------
    def finalize(self) -> Optional[CapturedTape]:
        """Precompile the recording into a tape; None when not tapeable."""
        root = self._root
        if root is None:
            self.fail("no backward() call was recorded")
        elif self._slot_of.get(id(root)) not in self._outputs:
            self.fail("backward() root is not a recorded op output")
        elif root.data.size != 1:
            self.fail("backward() root is not scalar")
        if self.failure is not None:
            return None

        steps = []
        for node, specs, kwargs, out_slot, requires in self.entries:
            compiled = node.compile_replay(kwargs) if requires else None
            if compiled is not None:
                forward, backward = compiled
            else:
                forward = (functools.partial(node.forward, **kwargs)
                           if kwargs else node.forward)
                backward = node.backward
            actions = None
            if requires:
                actions = []
                for parent in node.inputs:
                    if not parent.requires_grad:
                        actions.append(None)
                        continue
                    dtype = parent.data.dtype
                    shape = parent.data.shape
                    if parent._creator is None:
                        actions.append((True, parent, dtype, shape))
                    else:
                        pslot = self._slot_of.get(id(parent))
                        if pslot is None:
                            self.fail("graph input created outside capture")
                            return None
                        actions.append((False, pslot, dtype, shape))
                actions = tuple(actions)
            steps.append(_Step(
                forward, backward, specs, out_slot, requires,
                len(node.inputs), actions,
            ))

        leaves = tuple(
            (slot, t, t.data.shape, t.data.dtype)
            for slot, t in enumerate(self._tensors)
            if slot not in self._outputs
        )
        seed = np.ones_like(root.data)
        return CapturedTape(
            steps, leaves, self._slot_of[id(root)], seed,
            len(self._tensors), dict(self._watched),
        )


#: the recorder consulted by ``Function.apply`` (None outside capture)
_RECORDER: TapeRecorder | None = None
#: serializes captures across threads: the recorder registration is a
#: process-wide single slot (one cheap global read on the eager hot
#: path), so two service threads reaching their first closure at the
#: same time take turns; a capture is one closure evaluation, so the
#: critical section is short.  Recording itself is additionally
#: thread-confined (see :class:`TapeRecorder`), so ops another thread
#: runs *while* a capture is in progress are never mis-taped.
_CAPTURE_LOCK = threading.Lock()


def active_recorder() -> TapeRecorder | None:
    """The recorder of an in-progress capture, or None."""
    return _RECORDER


def capture(fn: Callable[[], Any]) -> tuple[Any, Optional[CapturedTape]]:
    """Run ``fn`` eagerly while recording its autograd activity.

    ``fn`` must evaluate an objective and call ``backward()`` on it
    (the standard closure shape).  Returns ``(result, tape)`` where
    ``tape`` is ``None`` when the recorded graph cannot be replayed
    (an op is not capture-safe, no backward ran, ...) — the eager
    result is valid either way, so capture never changes semantics.

    Thread-safe: concurrent captures from different threads serialize
    on a lock; a nested capture on the *same* thread is a programming
    error and raises :class:`CaptureError` (the lock is not reentrant,
    so the explicit check must come first).
    """
    global _RECORDER
    if (_RECORDER is not None
            and _RECORDER.thread_id == threading.get_ident()):
        raise CaptureError("capture() calls cannot nest")
    with _CAPTURE_LOCK:
        recorder = TapeRecorder()
        _RECORDER = recorder
        _tensor._capture_root_hook = recorder.record_root
        try:
            result = fn()
        finally:
            _RECORDER = None
            _tensor._capture_root_hook = None
    return result, recorder.finalize()
