"""Module containers, mirroring ``torch.nn.Module`` at small scale."""

from __future__ import annotations

from typing import Iterator

from repro.nn.tensor import Parameter, Tensor


class Module:
    """Base class for objective components.

    Subclasses assign :class:`~repro.nn.tensor.Parameter` and ``Module``
    attributes freely; :meth:`parameters` discovers them recursively, so an
    optimizer can be pointed at any composed objective, exactly like a
    network in a deep-learning toolkit.
    """

    def __call__(self, *args, **kwargs) -> Tensor:
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs) -> Tensor:
        raise NotImplementedError

    def parameters(self) -> Iterator[Parameter]:
        seen: set[int] = set()
        yield from self._parameters(seen)

    def _parameters(self, seen: set[int]) -> Iterator[Parameter]:
        for value in self.__dict__.values():
            if isinstance(value, Parameter) and id(value) not in seen:
                seen.add(id(value))
                yield value
            elif isinstance(value, Module):
                yield from value._parameters(seen)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Parameter) and id(item) not in seen:
                        seen.add(id(item))
                        yield item
                    elif isinstance(item, Module):
                        yield from item._parameters(seen)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()
