"""Nesterov's accelerated gradient with Lipschitz-constant line search.

This is the solver of ePlace/RePlAce (Section III-D of the paper): the
step length is the inverse of a local Lipschitz-constant estimate
``|v_k - v_{k-1}| / |grad(v_k) - grad(v_{k-1})|`` refined by backtracking
prediction, combined with Nesterov's momentum sequence
``a_{k+1} = (1 + sqrt(4 a_k^2 + 1)) / 2``.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.nn.optim.optimizer import Closure, Optimizer


class NesterovLineSearch(Optimizer):
    """ePlace-style Nesterov solver.

    Parameters
    ----------
    params:
        Parameters to optimize (the cell coordinates).
    lr:
        Initial step length used before the first Lipschitz estimate
        stabilizes.
    max_backtracks:
        Maximum number of backtracking refinements per iteration.
    accept_ratio:
        Accept the predicted step once the re-estimated step is at least
        this fraction of the prediction (0.95 in RePlAce).
    """

    def __init__(self, params, lr: float = 1.0, max_backtracks: int = 10,
                 accept_ratio: float = 0.95):
        super().__init__(params, lr)
        self.max_backtracks = int(max_backtracks)
        self.accept_ratio = float(accept_ratio)
        self._u = None  # major solution u_k
        self._v = None  # reference solution v_k (== current param values)
        self._g = None  # gradient at v_k
        self._a = 1.0  # momentum coefficient a_k
        self._alpha = float(lr)
        self.backtrack_count = 0  # diagnostic: closure evals beyond 1/iter

    # ------------------------------------------------------------------
    def _flatten(self, arrays) -> np.ndarray:
        return np.concatenate([np.ravel(a) for a in arrays])

    def _read_params(self) -> np.ndarray:
        return self._flatten([p.data for p in self.params])

    def _write_params(self, flat: np.ndarray) -> None:
        offset = 0
        for param in self.params:
            n = param.data.size
            param.data = flat[offset:offset + n].reshape(param.data.shape)
            offset += n

    def _grad_at(self, flat: np.ndarray, closure: Closure):
        """Evaluate objective gradient with parameters set to ``flat``."""
        self._write_params(flat)
        loss = closure()
        grad = self._flatten(
            [p.grad if p.grad is not None else np.zeros_like(p.data)
             for p in self.params]
        )
        return loss, grad

    # ------------------------------------------------------------------
    def step(self, closure: Optional[Closure] = None):
        if closure is None:
            raise ValueError("NesterovLineSearch requires a closure")

        if self._v is None:
            # First call: v_0 = u_0 = current params; bootstrap the
            # Lipschitz estimate with a probe step of length ``lr``.
            self._v = self._read_params()
            self._u = self._v.copy()
            _, self._g = self._grad_at(self._v, closure)
            g_norm = float(np.linalg.norm(self._g))
            if g_norm > 0:
                probe = self._v - self.lr * self._g / g_norm
                _, g_probe = self._grad_at(probe, closure)
                dg = float(np.linalg.norm(g_probe - self._g))
                if dg > 0:
                    self._alpha = float(np.linalg.norm(probe - self._v)) / dg

        # math.sqrt keeps the momentum scalars as python floats: a
        # np.float64 coefficient would upcast float32 position arrays
        a_next = (1.0 + math.sqrt(4.0 * self._a * self._a + 1.0)) / 2.0
        coef = (self._a - 1.0) / a_next

        alpha_hat = self._alpha
        loss = None
        u_next = v_next = g_next = None
        alpha_new = alpha_hat
        # at least one trial runs even with max_backtracks == 0 (a bare
        # range() left u_next/alpha_new unbound and raised NameError)
        for _ in range(max(self.max_backtracks, 1)):
            u_try = self._v - alpha_hat * self._g
            v_try = u_try + coef * (u_try - self._u)
            if not np.all(np.isfinite(v_try)):
                # non-finite trial point (poisoned gradient or step):
                # never write it into the parameters, shrink and retry
                alpha_hat *= 0.5
                self.backtrack_count += 1
                continue
            loss, g_try = self._grad_at(v_try, closure)
            if not np.all(np.isfinite(g_try)):
                # NaN/Inf gradient at the trial point: refuse to commit
                # it (dv/dg would be NaN and every later iterate would
                # inherit the poison), halve the step and retry
                alpha_hat *= 0.5
                self.backtrack_count += 1
                continue
            u_next, v_next, g_next = u_try, v_try, g_try
            dv = float(np.linalg.norm(v_next - self._v))
            dg = float(np.linalg.norm(g_next - self._g))
            alpha_new = dv / dg if dg > 0 and np.isfinite(dg) else alpha_hat
            if alpha_new >= alpha_hat * self.accept_ratio:
                break
            alpha_hat = alpha_new
            self.backtrack_count += 1

        if u_next is None:
            # every trial produced a non-finite gradient: keep the last
            # sane iterate and remember the shrunk step for the retry
            self._alpha = alpha_hat
            self._write_params(self._v)
            return loss

        self._u = u_next
        self._v = v_next
        self._g = g_next
        self._a = a_next
        self._alpha = alpha_new
        self._write_params(self._v)
        return loss

    def project(self, fn) -> None:
        """Project parameters *and* the internal u/v solutions.

        Used to keep cells inside the placement region without
        desynchronizing the momentum sequence.
        """
        super().project(fn)
        if self._v is not None:
            self._u = fn(self._u)
            self._v = fn(self._v)

    def state_dict(self) -> dict:
        state = super().state_dict()
        state.update(
            u=None if self._u is None else self._u.copy(),
            v=None if self._v is None else self._v.copy(),
            g=None if self._g is None else self._g.copy(),
            a=self._a,
            alpha=self._alpha,
            backtrack_count=self.backtrack_count,
        )
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._u = None if state["u"] is None else state["u"].copy()
        self._v = None if state["v"] is None else state["v"].copy()
        self._g = None if state["g"] is None else state["g"].copy()
        self._a = float(state["a"])
        self._alpha = float(state["alpha"])
        self.backtrack_count = int(state["backtrack_count"])
        if self._v is not None:
            self._write_params(self._v)

    def reset_momentum(self) -> None:
        """Restart the momentum sequence (used after cell inflation)."""
        self._a = 1.0
        if self._v is not None:
            self._u = self._v.copy()

    def rebind(self) -> None:
        """Forget cached state after parameters were changed externally
        (e.g. legalization or inflation moved the cells)."""
        self._u = None
        self._v = None
        self._g = None
        self._a = 1.0
