"""Stochastic gradient descent with (Nesterov) momentum."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.optim.optimizer import Closure, Optimizer


class SGD(Optimizer):
    """SGD with classical or Nesterov momentum.

    Matches the PyTorch update rule: ``v = momentum * v + g`` and
    ``p -= lr * (g + momentum * v)`` when ``nesterov`` else ``p -= lr * v``.
    """

    def __init__(self, params, lr: float, momentum: float = 0.0,
                 nesterov: bool = False):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"invalid momentum: {momentum}")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = float(momentum)
        self.nesterov = nesterov
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self, closure: Optional[Closure] = None):
        loss = closure() if closure is not None else None
        for (param, grad), velocity in zip(self._gradients(), self._velocity):
            if self.momentum > 0.0:
                velocity *= self.momentum
                velocity += grad
                update = grad + self.momentum * velocity if self.nesterov \
                    else velocity
            else:
                update = grad
            param.data -= self.lr * update
        return loss

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["velocity"] = [v.copy() for v in self._velocity]
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._velocity = [v.copy() for v in state["velocity"]]

    def reset_momentum(self) -> None:
        for velocity in self._velocity:
            velocity.fill(0.0)
