"""Optimizer base class."""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.nn.tensor import Parameter, Tensor

Closure = Callable[[], Tensor]


class Optimizer:
    """Base class for gradient-descent solvers.

    All solvers expose ``step(closure)`` where ``closure`` zeroes
    gradients, evaluates the objective at the current parameter values,
    runs ``backward`` and returns the loss tensor.  First-order solvers
    (SGD/Adam/RMSProp) also accept ``step()`` with pre-computed gradients;
    line-search solvers (Nesterov, CG) require the closure because they
    evaluate gradients at trial points.
    """

    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params: list[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        if lr <= 0:
            raise ValueError(f"invalid learning rate: {lr}")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self, closure: Optional[Closure] = None) -> Optional[Tensor]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """A deep copy of the solver state, sufficient to resume the
        trajectory exactly via :meth:`load_state_dict` (the snapshot /
        rollback contract of the convergence-recovery subsystem).
        """
        return {"lr": self.lr}

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        self.lr = float(state["lr"])

    def reset_momentum(self) -> None:
        """Restart any momentum/acceleration sequence (used when the
        loop rolls back to a checkpoint or warm-restarts after
        inflation); memoryless solvers are unaffected.
        """

    def rebind(self) -> None:
        """Forget state derived from parameter *values* after the
        parameters were changed externally (legalization, inflation or a
        checkpoint restore moved the cells); stateless solvers ignore it.
        """

    def project(self, fn) -> None:
        """Apply an in-place projection (e.g. clamping into the region)
        to the parameters and any internal solution copies the solver
        keeps.  ``fn(array) -> array`` operates on each parameter's data.
        """
        for param in self.params:
            param.data = fn(param.data)

    def _gradients(self):
        for param in self.params:
            if param.grad is None:
                raise RuntimeError(
                    "parameter has no gradient; call backward() (or pass a "
                    "closure) before step()"
                )
            yield param, param.grad
