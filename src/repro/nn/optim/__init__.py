"""Optimization engines (the third stack of Fig. 2(a)).

Includes the ePlace/RePlAce Nesterov method with Lipschitz-constant line
search (the paper's default solver) plus the stock deep-learning solvers
compared in Table IV: Adam, SGD with momentum, RMSProp, and a nonlinear
conjugate-gradient solver.
"""

from repro.nn.optim.optimizer import Optimizer
from repro.nn.optim.sgd import SGD
from repro.nn.optim.adam import Adam
from repro.nn.optim.rmsprop import RMSProp
from repro.nn.optim.nesterov import NesterovLineSearch
from repro.nn.optim.cg import ConjugateGradient
from repro.nn.optim.lr_scheduler import ExponentialLR

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "RMSProp",
    "NesterovLineSearch",
    "ConjugateGradient",
    "ExponentialLR",
]
