"""Adam optimizer (Kingma & Ba, ICLR 2015) — reference [25] of the paper."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.optim.optimizer import Closure, Optimizer


class Adam(Optimizer):
    """Adam with bias-corrected first/second moment estimates."""

    def __init__(self, params, lr: float = 1e-3, betas=(0.9, 0.999),
                 eps: float = 1e-8):
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"invalid betas: {betas}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self, closure: Optional[Closure] = None):
        loss = closure() if closure is not None else None
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        for (param, grad), m, v in zip(self._gradients(), self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
        return loss

    def state_dict(self) -> dict:
        state = super().state_dict()
        state.update(
            step_count=self._step_count,
            m=[m.copy() for m in self._m],
            v=[v.copy() for v in self._v],
        )
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._step_count = int(state["step_count"])
        self._m = [m.copy() for m in state["m"]]
        self._v = [v.copy() for v in state["v"]]

    def reset_momentum(self) -> None:
        self._step_count = 0
        for m, v in zip(self._m, self._v):
            m.fill(0.0)
            v.fill(0.0)
