"""Learning-rate schedulers.

Table IV of the paper controls Adam and SGD step sizes with a per-design
exponential decay ("LR Decay" columns); :class:`ExponentialLR` provides
exactly that: ``lr_k = lr_0 * gamma^k``.
"""

from __future__ import annotations

from repro.nn.optim.optimizer import Optimizer


class ExponentialLR:
    """Multiply the optimizer learning rate by ``gamma`` every step."""

    def __init__(self, optimizer: Optimizer, gamma: float):
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"invalid decay factor: {gamma}")
        self.optimizer = optimizer
        self.gamma = float(gamma)
        self.base_lr = optimizer.lr
        self.last_epoch = 0

    def step(self) -> None:
        self.last_epoch += 1
        self.optimizer.lr = self.base_lr * self.gamma ** self.last_epoch

    @property
    def current_lr(self) -> float:
        return self.optimizer.lr

    def state_dict(self) -> dict:
        """Snapshot of the schedule position (for loop checkpointing)."""
        return {"base_lr": self.base_lr, "last_epoch": self.last_epoch}

    def load_state_dict(self, state: dict) -> None:
        """Restore the schedule position and re-derive the optimizer lr."""
        self.base_lr = float(state["base_lr"])
        self.last_epoch = int(state["last_epoch"])
        self.optimizer.lr = self.base_lr * self.gamma ** self.last_epoch
