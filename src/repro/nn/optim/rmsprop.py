"""RMSProp optimizer — reference [33] of the paper."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.optim.optimizer import Closure, Optimizer


class RMSProp(Optimizer):
    """RMSProp with optional momentum, matching the PyTorch semantics."""

    def __init__(self, params, lr: float = 1e-2, alpha: float = 0.99,
                 eps: float = 1e-8, momentum: float = 0.0):
        super().__init__(params, lr)
        if not 0.0 <= alpha < 1.0:
            raise ValueError(f"invalid alpha: {alpha}")
        self.alpha = float(alpha)
        self.eps = float(eps)
        self.momentum = float(momentum)
        self._square_avg = [np.zeros_like(p.data) for p in self.params]
        self._buf = [np.zeros_like(p.data) for p in self.params]

    def step(self, closure: Optional[Closure] = None):
        loss = closure() if closure is not None else None
        for (param, grad), avg, buf in zip(
            self._gradients(), self._square_avg, self._buf
        ):
            avg *= self.alpha
            avg += (1.0 - self.alpha) * grad * grad
            denom = np.sqrt(avg) + self.eps
            if self.momentum > 0.0:
                buf *= self.momentum
                buf += grad / denom
                param.data -= self.lr * buf
            else:
                param.data -= self.lr * grad / denom
        return loss

    def state_dict(self) -> dict:
        state = super().state_dict()
        state.update(
            square_avg=[a.copy() for a in self._square_avg],
            buf=[b.copy() for b in self._buf],
        )
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._square_avg = [a.copy() for a in state["square_avg"]]
        self._buf = [b.copy() for b in state["buf"]]

    def reset_momentum(self) -> None:
        for buf in self._buf:
            buf.fill(0.0)
