"""Nonlinear conjugate-gradient solver (Polak-Ribiere with restarts).

ePlace's predecessor family used conjugate gradient as the descent
engine; the paper lists it among the provided solvers.  The line search
is a backtracking Armijo search on the closure.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.optim.optimizer import Closure, Optimizer


class ConjugateGradient(Optimizer):
    """Polak-Ribiere nonlinear CG with Armijo backtracking line search."""

    def __init__(self, params, lr: float = 1.0, armijo_c: float = 1e-4,
                 shrink: float = 0.5, max_backtracks: int = 12):
        super().__init__(params, lr)
        self.armijo_c = float(armijo_c)
        self.shrink = float(shrink)
        self.max_backtracks = int(max_backtracks)
        self._prev_grad = None
        self._direction = None

    def _flatten(self, arrays) -> np.ndarray:
        return np.concatenate([np.ravel(a) for a in arrays])

    def _write_params(self, flat: np.ndarray) -> None:
        offset = 0
        for param in self.params:
            n = param.data.size
            param.data = flat[offset:offset + n].reshape(param.data.shape)
            offset += n

    def step(self, closure: Optional[Closure] = None):
        if closure is None:
            raise ValueError("ConjugateGradient requires a closure")

        x0 = self._flatten([p.data for p in self.params])
        loss0 = closure()
        f0 = loss0.item()
        grad = self._flatten([p.grad for p in self.params])

        if self._prev_grad is None:
            direction = -grad
        else:
            diff = grad - self._prev_grad
            denom = float(self._prev_grad @ self._prev_grad)
            beta = float(grad @ diff) / denom if denom > 0 else 0.0
            beta = max(beta, 0.0)  # PR+ restart
            direction = -grad + beta * self._direction
            if float(direction @ grad) >= 0.0:
                direction = -grad  # not a descent direction -> restart

        slope = float(grad @ direction)
        step = self.lr
        accepted = loss0
        for _ in range(self.max_backtracks):
            trial = x0 + step * direction
            self._write_params(trial)
            loss = closure()
            if loss.item() <= f0 + self.armijo_c * step * slope:
                accepted = loss
                break
            step *= self.shrink
        else:
            trial = x0 + step * direction
            self._write_params(trial)
            accepted = closure()

        self._prev_grad = grad
        self._direction = direction
        return accepted

    def state_dict(self) -> dict:
        state = super().state_dict()
        state.update(
            prev_grad=(None if self._prev_grad is None
                       else self._prev_grad.copy()),
            direction=(None if self._direction is None
                       else self._direction.copy()),
        )
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        grad = state["prev_grad"]
        direction = state["direction"]
        self._prev_grad = None if grad is None else grad.copy()
        self._direction = None if direction is None else direction.copy()

    def reset_momentum(self) -> None:
        # restart conjugacy: the next step is plain steepest descent
        self._prev_grad = None
        self._direction = None

    def rebind(self) -> None:
        self._prev_grad = None
        self._direction = None
