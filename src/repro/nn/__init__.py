"""Minimal deep-learning-toolkit substrate for placement.

This package plays the role PyTorch plays in the paper: it provides the
three stacks of Fig. 2(a) — low-level operators with explicit forward and
backward functions (:class:`Function`), automatic gradient derivation
(:class:`Tensor` with define-by-run taping), and optimization engines
(:mod:`repro.nn.optim`).  Placement is then "trained" like a neural
network: cell coordinates are the weights, wirelength is the data loss and
density is the regularizer.
"""

from repro.nn.tensor import Tensor, Parameter, no_grad
from repro.nn.function import Function
from repro.nn.module import Module
from repro.nn import functional
from repro.nn import optim
from repro.nn import tape
from repro.nn.tape import CapturedTape, CaptureError, TapeInvalidated, capture

__all__ = [
    "Tensor",
    "Parameter",
    "Function",
    "Module",
    "functional",
    "optim",
    "no_grad",
    "tape",
    "CapturedTape",
    "CaptureError",
    "TapeInvalidated",
    "capture",
]
