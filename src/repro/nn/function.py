"""Custom-operator extension API.

This mirrors ``torch.autograd.Function``: an operator defines a
``forward`` working on raw numpy arrays and a ``backward`` mapping the
upstream gradient to per-input gradients.  The placement kernels of the
paper (wirelength, density) are implemented as subclasses, exactly as
Section II-B prescribes: "each custom OP requires well defined forward
and backward functions for cost and gradient computation."
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.nn import tape as _tape
from repro.nn.tensor import Tensor, is_grad_enabled


class Function:
    """Base class for differentiable operators.

    Subclasses implement :meth:`forward` and :meth:`backward`.  Call the
    operator through :meth:`apply`; a fresh instance per call acts as the
    autograd-graph node and as the context object (``save_for_backward``).
    """

    #: opt-in to :mod:`repro.nn.tape` capture: replaying this node's
    #: recorded ``forward``/``backward`` (same instance, refreshed saved
    #: context, live kwargs) must be semantically identical to a fresh
    #: ``apply``.  Ops holding per-call state outside the node, or whose
    #: forward has side effects that must not repeat, stay False.
    capture_safe = False

    def __init__(self):
        self.inputs: tuple[Tensor, ...] = ()
        self.saved: tuple[Any, ...] = ()

    # -- context API ----------------------------------------------------
    def save_for_backward(self, *values: Any) -> None:
        self.saved = values

    @property
    def saved_values(self) -> tuple[Any, ...]:
        return self.saved

    # -- operator contract ----------------------------------------------
    def forward(self, *arrays: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray):
        raise NotImplementedError

    def compile_replay(self, kwargs: dict):
        """Optional tape-replay specialization hook.

        Called once at capture finalization with the recorded kwargs.
        Return ``(forward, backward)`` callables to substitute on the
        tape — both must be *bit-identical* to the eager pair (the fast
        paths batch work across axes/transforms without changing any
        reduction order) — or ``None`` to replay the node's own
        ``forward``/``backward`` verbatim.
        """
        return None

    # -- invocation -------------------------------------------------------
    @classmethod
    def apply(cls, *inputs, **kwargs) -> Tensor:
        """Run the operator and record it on the tape.

        ``inputs`` may mix :class:`Tensor` and plain values; only tensors
        participate in autograd.  ``kwargs`` are forwarded to ``forward``.
        """
        node = cls()
        tensors = tuple(i for i in inputs if isinstance(i, Tensor))
        arrays = tuple(
            i.data if isinstance(i, Tensor) else i for i in inputs
        )
        output_data = node.forward(*arrays, **kwargs)
        requires = is_grad_enabled() and any(t.requires_grad for t in tensors)
        output = Tensor(output_data, requires_grad=requires)
        if requires:
            node.inputs = tensors
            output._creator = node
        recorder = _tape._RECORDER
        if recorder is not None:
            recorder.record_apply(node, inputs, kwargs, output, requires)
        return output
