"""Define-by-run autograd tensor.

A deliberately small engine in the spirit of PyTorch's autograd: every
operation on :class:`Tensor` records the creating :class:`~repro.nn.function.Function`
node so that :meth:`Tensor.backward` can run reverse-mode differentiation.
Placement objectives are scalar, so the engine is optimized for the
"many parameters, scalar loss" case the paper relies on.
"""

from __future__ import annotations

import contextlib
from typing import Iterable, Optional

import numpy as np

_grad_enabled = True

#: set by :func:`repro.nn.tape.capture` for the duration of a capture;
#: called as ``hook(root_tensor, explicit_grad)`` when backward() starts
_capture_root_hook = None


@contextlib.contextmanager
def no_grad():
    """Disable graph recording inside the context (like ``torch.no_grad``)."""
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = previous


def is_grad_enabled() -> bool:
    return _grad_enabled


def _as_array(value, dtype=None) -> np.ndarray:
    array = np.asarray(value)
    if dtype is not None:
        array = array.astype(dtype, copy=False)
    if array.dtype == np.float16:
        array = array.astype(np.float32)
    if not np.issubdtype(array.dtype, np.floating):
        array = array.astype(np.float64)
    return array


class Tensor:
    """A numpy array plus gradient bookkeeping.

    Attributes
    ----------
    data:
        The underlying ``numpy.ndarray``.
    grad:
        Accumulated gradient (same shape as ``data``), or ``None``.
    requires_grad:
        Whether backward should flow into this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_creator", "_grad_buf")

    def __init__(self, data, requires_grad: bool = False, dtype=None):
        self.data = _as_array(data, dtype)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._creator = None  # Function node that produced this tensor
        self._grad_buf: Optional[np.ndarray] = None  # persistent grad store

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self):
        return self.data.shape

    @property
    def ndim(self):
        return self.data.ndim

    @property
    def size(self):
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data, requires_grad=False)

    def clone(self) -> "Tensor":
        out = Tensor(self.data.copy(), requires_grad=self.requires_grad)
        return out

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self):
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{flag})"

    def __len__(self):
        return len(self.data)

    # ------------------------------------------------------------------
    # autograd
    # ------------------------------------------------------------------
    def backward(self, grad=None) -> None:
        """Reverse-mode autodiff from this tensor.

        Parameters
        ----------
        grad:
            Upstream gradient.  Defaults to 1 for scalar tensors, matching
            the usual ``loss.backward()`` idiom.
        """
        if _capture_root_hook is not None:
            _capture_root_hook(self, grad)
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "backward() without an explicit gradient requires a "
                    "scalar tensor"
                )
            grad = np.ones_like(self.data)
        grad = _as_array(grad, self.data.dtype)

        # iterative DFS building the same postorder the old recursive
        # build() produced, without its RecursionError ceiling on deep
        # graphs (a 10k-op chain overflows CPython's default stack)
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            t, expanded = stack.pop()
            if expanded:
                topo.append(t)
                continue
            if id(t) in visited or t._creator is None:
                continue
            visited.add(id(t))
            stack.append((t, True))
            for parent in reversed(t._creator.inputs):
                stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        if self.requires_grad and self._creator is None:
            self._accumulate(grad)

        for tensor in reversed(topo):
            node = tensor._creator
            upstream = grads.pop(id(tensor), None)
            if upstream is None:
                continue
            input_grads = node.backward(upstream)
            if not isinstance(input_grads, tuple):
                input_grads = (input_grads,)
            if len(input_grads) != len(node.inputs):
                raise RuntimeError(
                    f"{type(node).__name__}.backward returned "
                    f"{len(input_grads)} gradients for {len(node.inputs)} "
                    "inputs"
                )
            for parent, g in zip(node.inputs, input_grads):
                if g is None or not parent.requires_grad:
                    continue
                g = _as_array(g, parent.data.dtype)
                if g.shape != parent.data.shape:
                    g = _unbroadcast(g, parent.data.shape)
                if parent._creator is None:
                    parent._accumulate(g)
                else:
                    key = id(parent)
                    if key in grads:
                        grads[key] = grads[key] + g
                    else:
                        grads[key] = g

    def _accumulate(self, grad: np.ndarray) -> None:
        # gradients accumulate into a persistent per-tensor buffer so the
        # training loop performs no per-iteration gradient allocations
        # (zero_grad only clears the reference, keeping the buffer)
        if self.grad is None:
            buf = self._grad_buf
            if (buf is None or buf.shape != grad.shape
                    or buf.dtype != grad.dtype):
                buf = self._grad_buf = np.empty_like(grad)
            np.copyto(buf, grad)
            self.grad = buf
        elif self.grad is self._grad_buf:
            self.grad += grad
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------
    # operators (thin wrappers over repro.nn.functional)
    # ------------------------------------------------------------------
    def sum(self) -> "Tensor":
        from repro.nn import functional as F

        return F.tensor_sum(self)

    def __add__(self, other):
        from repro.nn import functional as F

        return F.add(self, _wrap(other, self.dtype))

    __radd__ = __add__

    def __sub__(self, other):
        from repro.nn import functional as F

        return F.sub(self, _wrap(other, self.dtype))

    def __rsub__(self, other):
        from repro.nn import functional as F

        return F.sub(_wrap(other, self.dtype), self)

    def __mul__(self, other):
        from repro.nn import functional as F

        return F.mul(self, _wrap(other, self.dtype))

    __rmul__ = __mul__

    def __neg__(self):
        from repro.nn import functional as F

        return F.mul(self, _wrap(-1.0, self.dtype))

    def __truediv__(self, other):
        from repro.nn import functional as F

        return F.div(self, _wrap(other, self.dtype))


class Parameter(Tensor):
    """A trainable tensor (``requires_grad=True`` by default)."""

    __slots__ = ()

    def __init__(self, data, dtype=None):
        super().__init__(data, requires_grad=True, dtype=dtype)


def _wrap(value, dtype) -> Tensor:
    if isinstance(value, Tensor):
        return value
    return Tensor(value, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of numpy broadcasting)."""
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, dim in enumerate(shape):
        if dim == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)
