"""Layout geometry: die region, placement rows/sites, and bin grids."""

from repro.geometry.region import PlacementRegion, Row
from repro.geometry.bins import BinGrid
from repro.geometry.boxes import (
    clamp,
    overlap_1d,
    rect_overlap_area,
)

__all__ = [
    "PlacementRegion",
    "Row",
    "BinGrid",
    "clamp",
    "overlap_1d",
    "rect_overlap_area",
]
