"""Die region and standard-cell rows.

A :class:`PlacementRegion` models the core area of the layout: its
bounding box plus the uniform standard-cell rows and sites that
legalization must snap cells onto (the .scl content of a Bookshelf
benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Row:
    """One standard-cell row: y origin, height, x origin, #sites, site width."""

    y: float
    height: float
    x: float
    num_sites: int
    site_width: float

    @property
    def x_end(self) -> float:
        return self.x + self.num_sites * self.site_width


class PlacementRegion:
    """Core placement area with uniform rows.

    Parameters
    ----------
    xl, yl, xh, yh:
        Bounding box of the placeable region.
    row_height:
        Height of every standard-cell row; rows tile [yl, yh).
    site_width:
        Width of a placement site inside each row.
    """

    def __init__(self, xl: float, yl: float, xh: float, yh: float,
                 row_height: float = 1.0, site_width: float = 1.0):
        if xh <= xl or yh <= yl:
            raise ValueError(
                f"degenerate region: ({xl}, {yl}) .. ({xh}, {yh})"
            )
        if row_height <= 0 or site_width <= 0:
            raise ValueError("row_height and site_width must be positive")
        self.xl = float(xl)
        self.yl = float(yl)
        self.xh = float(xh)
        self.yh = float(yh)
        self.row_height = float(row_height)
        self.site_width = float(site_width)

    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        return self.xh - self.xl

    @property
    def height(self) -> float:
        return self.yh - self.yl

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def num_rows(self) -> int:
        return int(np.floor(self.height / self.row_height + 1e-9))

    @property
    def num_sites_per_row(self) -> int:
        return int(np.floor(self.width / self.site_width + 1e-9))

    @property
    def center(self) -> tuple[float, float]:
        return (self.xl + self.xh) / 2.0, (self.yl + self.yh) / 2.0

    def rows(self) -> list[Row]:
        """Enumerate the standard-cell rows covering the region."""
        return [
            Row(
                y=self.yl + i * self.row_height,
                height=self.row_height,
                x=self.xl,
                num_sites=self.num_sites_per_row,
                site_width=self.site_width,
            )
            for i in range(self.num_rows)
        ]

    # ------------------------------------------------------------------
    def row_index(self, y) -> np.ndarray:
        """Row index for coordinate ``y`` (clipped into the region)."""
        idx = np.floor((np.asarray(y) - self.yl) / self.row_height)
        return np.clip(idx, 0, self.num_rows - 1).astype(np.int64)

    def row_y(self, index) -> np.ndarray:
        """y origin of row ``index``."""
        return self.yl + np.asarray(index, dtype=np.float64) * self.row_height

    def snap_x(self, x) -> np.ndarray:
        """Snap x coordinates to the nearest site boundary."""
        sites = np.round((np.asarray(x) - self.xl) / self.site_width)
        sites = np.clip(sites, 0, self.num_sites_per_row)
        return self.xl + sites * self.site_width

    def clamp_cells(self, x, y, widths, heights):
        """Clamp lower-left cell corners so cells stay inside the region."""
        cx = np.minimum(np.maximum(x, self.xl), self.xh - widths)
        cy = np.minimum(np.maximum(y, self.yl), self.yh - heights)
        return cx, cy

    def contains(self, x, y, widths=0.0, heights=0.0) -> np.ndarray:
        eps = 1e-6
        return (
            (np.asarray(x) >= self.xl - eps)
            & (np.asarray(y) >= self.yl - eps)
            & (np.asarray(x) + widths <= self.xh + eps)
            & (np.asarray(y) + heights <= self.yh + eps)
        )

    def __repr__(self):
        return (
            f"PlacementRegion(({self.xl}, {self.yl}) .. ({self.xh}, "
            f"{self.yh}), rows={self.num_rows})"
        )
