"""Vectorized rectangle utilities."""

from __future__ import annotations

import numpy as np


def clamp(values: np.ndarray, lo, hi) -> np.ndarray:
    """Elementwise clamp of ``values`` into ``[lo, hi]``."""
    return np.minimum(np.maximum(values, lo), hi)


def overlap_1d(al, ah, bl, bh) -> np.ndarray:
    """Length of the 1-D overlap of intervals [al, ah] and [bl, bh].

    All arguments broadcast; the result is clipped at zero.
    """
    return np.maximum(
        np.minimum(ah, bh) - np.maximum(al, bl),
        0.0,
    )


def rect_overlap_area(axl, ayl, axh, ayh, bxl, byl, bxh, byh) -> np.ndarray:
    """Overlap area of rectangles a and b (broadcasting, >= 0)."""
    return overlap_1d(axl, axh, bxl, bxh) * overlap_1d(ayl, ayh, byl, byh)
