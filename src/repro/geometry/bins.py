"""Uniform bin grid for density and congestion maps.

The electrostatic density system of ePlace discretizes the region into an
``M x M`` grid of bins (Section II-C); routing congestion uses the same
structure with per-layer capacities.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.region import PlacementRegion


class BinGrid:
    """An ``nx x ny`` uniform grid over a placement region.

    Bin (i, j) covers ``[xl + i*bw, xl + (i+1)*bw] x [yl + j*bh, ...]``;
    maps are indexed ``map[i, j]`` with i along x.
    """

    def __init__(self, region: PlacementRegion, nx: int, ny: int):
        if nx <= 0 or ny <= 0:
            raise ValueError(f"invalid grid {nx} x {ny}")
        self.region = region
        self.nx = int(nx)
        self.ny = int(ny)
        self.bin_w = region.width / nx
        self.bin_h = region.height / ny

    @property
    def shape(self) -> tuple[int, int]:
        return (self.nx, self.ny)

    @property
    def bin_area(self) -> float:
        return self.bin_w * self.bin_h

    def x_edges(self) -> np.ndarray:
        return self.region.xl + np.arange(self.nx + 1) * self.bin_w

    def y_edges(self) -> np.ndarray:
        return self.region.yl + np.arange(self.ny + 1) * self.bin_h

    def x_centers(self) -> np.ndarray:
        return self.region.xl + (np.arange(self.nx) + 0.5) * self.bin_w

    def y_centers(self) -> np.ndarray:
        return self.region.yl + (np.arange(self.ny) + 0.5) * self.bin_h

    def bin_index_x(self, x) -> np.ndarray:
        """Bin column index containing coordinate x (clipped)."""
        idx = np.floor((np.asarray(x) - self.region.xl) / self.bin_w)
        return np.clip(idx, 0, self.nx - 1).astype(np.int64)

    def bin_index_y(self, y) -> np.ndarray:
        idx = np.floor((np.asarray(y) - self.region.yl) / self.bin_h)
        return np.clip(idx, 0, self.ny - 1).astype(np.int64)

    def span_x(self, xl, xh):
        """First and one-past-last bin columns overlapped by [xl, xh]."""
        lo = self.bin_index_x(xl)
        hi = np.floor(
            (np.asarray(xh) - self.region.xl) / self.bin_w - 1e-9
        )
        hi = np.clip(hi, 0, self.nx - 1).astype(np.int64) + 1
        return lo, np.maximum(hi, lo + 1)

    def span_y(self, yl, yh):
        lo = self.bin_index_y(yl)
        hi = np.floor(
            (np.asarray(yh) - self.region.yl) / self.bin_h - 1e-9
        )
        hi = np.clip(hi, 0, self.ny - 1).astype(np.int64) + 1
        return lo, np.maximum(hi, lo + 1)

    def zeros(self, dtype=np.float64) -> np.ndarray:
        return np.zeros((self.nx, self.ny), dtype=dtype)

    def __repr__(self):
        return f"BinGrid({self.nx} x {self.ny}, bin={self.bin_w:.3g} x {self.bin_h:.3g})"
