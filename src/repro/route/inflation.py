"""Cell inflation for routability (Section III-F, eq. 19)."""

from __future__ import annotations

import numpy as np

from repro.geometry.bins import BinGrid
from repro.netlist.database import PlacementDB


def inflation_ratio_map(tile_ratio: np.ndarray, exponent: float = 2.5,
                        max_ratio: float = 2.5) -> np.ndarray:
    """eq. (19): ratio = min((max_l demand/capacity)^exponent, max_ratio)."""
    return np.minimum(
        np.power(np.maximum(tile_ratio, 0.0), exponent), max_ratio
    )


def apply_inflation(db: PlacementDB, tiles: BinGrid,
                    ratio_map: np.ndarray,
                    x: np.ndarray | None = None,
                    y: np.ndarray | None = None,
                    whitespace_cap: float = 0.10) -> float:
    """Inflate movable cell widths per the tile inflation ratios.

    Each cell's area grows by the area-weighted mean inflation ratio of
    the tiles it overlaps (growth only; ratios below 1 are clamped).
    The total increment is capped at ``whitespace_cap`` of the current
    whitespace (uniform scale-down of the increments, per the paper).

    Mutates ``db.cell_width`` and returns the area actually added.
    """
    from repro.ops.density_map import gather_field, scatter_density

    movable = db.movable_index
    if movable.size == 0:
        return 0.0
    cx = db.cell_x if x is None else np.asarray(x)
    cy = db.cell_y if y is None else np.asarray(y)
    w = db.cell_width[movable]
    h = db.cell_height[movable]
    area = w * h

    # area-weighted mean ratio over overlapped tiles
    weighted = gather_field(
        tiles, np.maximum(ratio_map, 1.0),
        cx[movable], cy[movable], w, h, np.ones(movable.shape[0]),
        strategy="stamp",
    )
    with np.errstate(invalid="ignore", divide="ignore"):
        mean_ratio = np.where(area > 0, weighted / np.maximum(area, 1e-12), 1.0)
    mean_ratio = np.clip(mean_ratio, 1.0, None)

    increment = area * (mean_ratio - 1.0)
    total_increment = float(increment.sum())
    if total_increment <= 0.0:
        return 0.0

    whitespace = (
        db.region.area - db.total_fixed_area - db.total_movable_area
    )
    cap = max(whitespace_cap * max(whitespace, 0.0), 0.0)
    if total_increment > cap and total_increment > 0:
        increment *= cap / total_increment
        total_increment = cap

    new_area = area + increment
    with np.errstate(invalid="ignore", divide="ignore"):
        new_w = np.where(h > 0, new_area / h, w)
    # keep widths on the site grid (round up so the increment survives)
    site = db.region.site_width
    new_w = np.maximum(np.ceil(new_w / site - 1e-9) * site, w)
    added = float(((new_w - w) * h).sum())
    db.cell_width[movable] = new_w
    return added
