"""Routing grid: tiles with directional edge capacities per layer pool.

Metal layers alternate preferred directions; we pool the horizontal
layers and the vertical layers into two capacity planes (per-layer
splitting does not change any congestion metric that aggregates with a
max over layers, which is all eq. (19) needs).
"""

from __future__ import annotations

import numpy as np

from repro.geometry.bins import BinGrid
from repro.netlist.database import PlacementDB


class RoutingGrid:
    """Tile grid with horizontal/vertical edge capacities and demands.

    Horizontal edges connect tile (i, j) to (i+1, j): array shape
    ``(nx-1, ny)``.  Vertical edges connect (i, j) to (i, j+1): shape
    ``(nx, ny-1)``.
    """

    def __init__(self, db: PlacementDB, num_tiles: int = 32,
                 num_layers: int = 4, tile_capacity: float = 12.0,
                 macro_blockage: float = 0.5):
        self.db = db
        self.tiles = BinGrid(db.region, num_tiles, num_tiles)
        self.num_layers = int(num_layers)
        h_layers = (num_layers + 1) // 2
        v_layers = num_layers // 2
        nx, ny = self.tiles.shape
        self.capacity_h = np.full((nx - 1, ny),
                                  float(tile_capacity) * h_layers)
        self.capacity_v = np.full((nx, ny - 1),
                                  float(tile_capacity) * v_layers)
        self._block_macros(macro_blockage)
        self.demand_h = np.zeros_like(self.capacity_h)
        self.demand_v = np.zeros_like(self.capacity_v)

    def _block_macros(self, blockage: float) -> None:
        """Reduce capacity under fixed macros by their coverage fraction."""
        if blockage <= 0:
            return
        db = self.db
        grid = self.tiles
        coverage = grid.zeros()
        fixed = db.fixed_index
        from repro.ops.density_map import scatter_density

        scatter_density(
            grid, db.cell_x[fixed], db.cell_y[fixed],
            db.cell_width[fixed], db.cell_height[fixed],
            np.ones(fixed.shape[0]), strategy="naive", out=coverage,
        )
        frac = np.clip(coverage / grid.bin_area, 0.0, 1.0)
        keep_h = 1.0 - blockage * 0.5 * (frac[:-1, :] + frac[1:, :])
        keep_v = 1.0 - blockage * 0.5 * (frac[:, :-1] + frac[:, 1:])
        self.capacity_h *= keep_h
        self.capacity_v *= keep_v

    # ------------------------------------------------------------------
    def reset_demand(self) -> None:
        self.demand_h[:] = 0.0
        self.demand_v[:] = 0.0

    def tile_of(self, x, y) -> tuple[np.ndarray, np.ndarray]:
        return self.tiles.bin_index_x(x), self.tiles.bin_index_y(y)

    def utilization_h(self) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            u = np.where(self.capacity_h > 1e-9,
                         self.demand_h / np.maximum(self.capacity_h, 1e-9),
                         np.where(self.demand_h > 0, 10.0, 0.0))
        return u

    def utilization_v(self) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            u = np.where(self.capacity_v > 1e-9,
                         self.demand_v / np.maximum(self.capacity_v, 1e-9),
                         np.where(self.demand_v > 0, 10.0, 0.0))
        return u

    def tile_ratio_map(self) -> np.ndarray:
        """Per-tile max demand/capacity ratio over directions (eq. 19 input).

        Edge utilizations are averaged onto the adjacent tiles.
        """
        nx, ny = self.tiles.shape
        uh = self.utilization_h()
        uv = self.utilization_v()
        tile_h = np.zeros((nx, ny))
        count_h = np.zeros((nx, ny))
        tile_h[:-1, :] += uh
        tile_h[1:, :] += uh
        count_h[:-1, :] += 1
        count_h[1:, :] += 1
        tile_h /= np.maximum(count_h, 1)
        tile_v = np.zeros((nx, ny))
        count_v = np.zeros((nx, ny))
        tile_v[:, :-1] += uv
        tile_v[:, 1:] += uv
        count_v[:, :-1] += 1
        count_v[:, 1:] += 1
        tile_v /= np.maximum(count_v, 1)
        return np.maximum(tile_h, tile_v)

    def total_overflow(self) -> float:
        over_h = np.maximum(self.demand_h - self.capacity_h, 0.0).sum()
        over_v = np.maximum(self.demand_v - self.capacity_v, 0.0).sum()
        return float(over_h + over_v)
