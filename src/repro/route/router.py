"""Global router driver (the NCTUgr stand-in of Section III-F)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.netlist.database import PlacementDB
from repro.route.congestion import ace_metrics, routing_congestion
from repro.route.grid import RoutingGrid
from repro.route.net_decompose import decompose_net
from repro.route.pattern_route import rip_up, route_segment


@dataclass
class RoutingResult:
    """Outcome of one global-routing invocation."""

    rc: float
    ace: dict[float, float]
    total_overflow: float
    tile_ratio_map: np.ndarray  # per-tile max demand/capacity (eq. 19 input)
    wirelength_tiles: int  # routed length in tile pitches
    runtime: float
    grid: RoutingGrid = field(repr=False, default=None)


def calibrate_capacity(db: PlacementDB, num_tiles: int = 32,
                       num_layers: int = 4,
                       x: np.ndarray | None = None,
                       y: np.ndarray | None = None,
                       headroom: float = 0.85,
                       percentile: float = 97.0) -> float:
    """Per-layer tile capacity making the design mildly congested.

    Routes once with unlimited capacity, reads the demand distribution
    and sets the pooled capacity to ``headroom`` times the given
    percentile — i.e. the top (100-percentile)% of edges overflow
    slightly, emulating how the DAC 2012 benchmarks are provisioned.
    """
    probe = GlobalRouter(db, num_tiles=num_tiles, num_layers=num_layers,
                         tile_capacity=1e9, macro_blockage=0.0,
                         rrr_rounds=0)
    result = probe.route(x, y)
    grid = result.grid
    demand = np.concatenate([
        grid.demand_h.ravel(), grid.demand_v.ravel()
    ])
    pool = float(np.percentile(demand, percentile)) * headroom
    per_layer = pool / max((num_layers + 1) // 2, 1)
    return max(per_layer, 1.0)


class GlobalRouter:
    """Two-pass congestion-aware pattern router.

    Pass 1 routes every segment with the cheaper L shape; pass 2 rips up
    segments through overflowed edges and reroutes them in a congestion-
    aware order (one rip-up-and-reroute round, like fast NCTUgr modes).
    """

    def __init__(self, db: PlacementDB, num_tiles: int = 32,
                 num_layers: int = 4, tile_capacity: float = 12.0,
                 macro_blockage: float = 0.5, rrr_rounds: int = 1,
                 use_maze: bool = True):
        self.db = db
        self.num_tiles = num_tiles
        self.num_layers = num_layers
        self.tile_capacity = tile_capacity
        self.macro_blockage = macro_blockage
        self.rrr_rounds = int(rrr_rounds)
        #: escalate ripped-up segments to bounded maze routing
        self.use_maze = bool(use_maze)

    def route(self, x: np.ndarray | None = None,
              y: np.ndarray | None = None) -> RoutingResult:
        start = time.perf_counter()
        db = self.db
        grid = RoutingGrid(
            db, self.num_tiles, self.num_layers,
            self.tile_capacity, self.macro_blockage,
        )
        pin_x, pin_y = db.pin_positions(x, y)
        tile_x, tile_y = grid.tile_of(pin_x, pin_y)

        # initial routing
        routes: dict[int, list] = {}
        segments: dict[int, list] = {}
        for net in range(db.num_nets):
            pins = db.net_pins(net)
            segs = decompose_net(tile_x[pins], tile_y[pins])
            if not segs:
                continue
            segments[net] = segs
            used = []
            for x1, y1, x2, y2 in segs:
                used.extend(route_segment(grid, x1, y1, x2, y2))
            routes[net] = used

        # rip-up and reroute nets crossing overflowed edges
        for _ in range(self.rrr_rounds):
            over_h = grid.demand_h > grid.capacity_h
            over_v = grid.demand_v > grid.capacity_v
            if not over_h.any() and not over_v.any():
                break
            victims = [
                net for net, used in routes.items()
                if any(
                    (kind == "h" and over_h[i, j])
                    or (kind == "v" and over_v[i, j])
                    for kind, i, j in used
                )
            ]
            for net in victims:
                rip_up(grid, routes[net])
                used = []
                for x1, y1, x2, y2 in segments[net]:
                    routed = None
                    if self.use_maze:
                        from repro.route.maze import maze_route_segment

                        routed = maze_route_segment(grid, x1, y1, x2, y2)
                    if routed is None:
                        routed = route_segment(grid, x1, y1, x2, y2)
                    used.extend(routed)
                routes[net] = used

        wl_tiles = sum(len(u) for u in routes.values())
        return RoutingResult(
            rc=routing_congestion(grid),
            ace=ace_metrics(grid),
            total_overflow=grid.total_overflow(),
            tile_ratio_map=grid.tile_ratio_map(),
            wirelength_tiles=wl_tiles,
            runtime=time.perf_counter() - start,
            grid=grid,
        )
