"""Maze routing fallback (bounded-box Dijkstra).

NCTUgr escalates from pattern routing to bounded-length maze routing
for nets the L/Z patterns cannot route cleanly; this module provides
the same escalation for the router substrate: a Dijkstra search over
the tile graph inside an expanded bounding box, with the same
congestion-aware edge costs as the pattern router.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.route.grid import RoutingGrid
from repro.route.pattern_route import OVERFLOW_PENALTY


def _edge_cost(demand: float, capacity: float) -> float:
    if capacity <= 1e-9:
        return 1.0 + OVERFLOW_PENALTY * 10.0
    utilization = (demand + 1.0) / capacity
    return 1.0 + OVERFLOW_PENALTY * max(0.0, utilization - 1.0)


def maze_route_segment(grid: RoutingGrid, x1: int, y1: int,
                       x2: int, y2: int, margin: int = 3):
    """Dijkstra shortest congestion-cost path; commits demand.

    The search is restricted to the segment's bounding box expanded by
    ``margin`` tiles (bounded maze routing).  Returns the list of used
    edges like :func:`repro.route.pattern_route.route_segment`, or
    ``None`` if source equals target.
    """
    if (x1, y1) == (x2, y2):
        return []
    nx, ny = grid.tiles.shape
    lo_x = max(min(x1, x2) - margin, 0)
    hi_x = min(max(x1, x2) + margin, nx - 1)
    lo_y = max(min(y1, y2) - margin, 0)
    hi_y = min(max(y1, y2) + margin, ny - 1)

    start = (x1, y1)
    target = (x2, y2)
    dist: dict[tuple[int, int], float] = {start: 0.0}
    parent: dict[tuple[int, int], tuple] = {}
    heap = [(0.0, start)]
    visited: set[tuple[int, int]] = set()
    while heap:
        cost, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        if node == target:
            break
        cx, cy = node
        # horizontal edge (cx, cy) <-> (cx + 1, cy) is demand_h[cx, cy]
        neighbors = []
        if cx + 1 <= hi_x:
            neighbors.append(((cx + 1, cy), "h", cx, cy))
        if cx - 1 >= lo_x:
            neighbors.append(((cx - 1, cy), "h", cx - 1, cy))
        if cy + 1 <= hi_y:
            neighbors.append(((cx, cy + 1), "v", cx, cy))
        if cy - 1 >= lo_y:
            neighbors.append(((cx, cy - 1), "v", cx, cy - 1))
        for nxt, kind, ei, ej in neighbors:
            if nxt in visited:
                continue
            if kind == "h":
                step = _edge_cost(grid.demand_h[ei, ej],
                                  grid.capacity_h[ei, ej])
            else:
                step = _edge_cost(grid.demand_v[ei, ej],
                                  grid.capacity_v[ei, ej])
            new_cost = cost + step
            if new_cost < dist.get(nxt, np.inf):
                dist[nxt] = new_cost
                parent[nxt] = (node, kind, ei, ej)
                heapq.heappush(heap, (new_cost, nxt))

    if target not in parent and target != start:
        return None  # unreachable inside the bounded box

    used = []
    node = target
    while node != start:
        prev, kind, ei, ej = parent[node]
        if kind == "h":
            grid.demand_h[ei, ej] += 1.0
        else:
            grid.demand_v[ei, ej] += 1.0
        used.append((kind, ei, ej))
        node = prev
    used.reverse()
    return used
