"""Congestion-aware L-shape pattern routing for 2-pin segments."""

from __future__ import annotations

import numpy as np

from repro.route.grid import RoutingGrid

# overflow cost: cost(e) = 1 + OVERFLOW_PENALTY * max(0, u - 1)
OVERFLOW_PENALTY = 16.0


def _h_edges(x1: int, x2: int, y: int):
    lo, hi = (x1, x2) if x1 <= x2 else (x2, x1)
    return [(i, y) for i in range(lo, hi)]


def _v_edges(x: int, y1: int, y2: int):
    lo, hi = (y1, y2) if y1 <= y2 else (y2, y1)
    return [(x, j) for j in range(lo, hi)]


def _edge_cost(demand: np.ndarray, capacity: np.ndarray, edges) -> float:
    total = 0.0
    for i, j in edges:
        cap = capacity[i, j]
        u = demand[i, j] / cap if cap > 1e-9 else 10.0
        total += 1.0 + OVERFLOW_PENALTY * max(0.0, u + 1.0 / max(cap, 1e-9) - 1.0)
    return total


def route_segment(grid: RoutingGrid, x1: int, y1: int, x2: int, y2: int):
    """Route one 2-pin segment with the cheaper of the two L shapes.

    Commits demand and returns the list of used edges as
    ``("h"|"v", i, j)`` tuples so the caller can rip up later.
    """
    if x1 == x2 and y1 == y2:
        return []
    # option A: horizontal at y1 then vertical at x2
    edges_a = (_h_edges(x1, x2, y1), _v_edges(x2, y1, y2))
    # option B: vertical at x1 then horizontal at y2
    edges_b = (_h_edges(x1, x2, y2), _v_edges(x1, y1, y2))
    cost_a = (
        _edge_cost(grid.demand_h, grid.capacity_h, edges_a[0])
        + _edge_cost(grid.demand_v, grid.capacity_v, edges_a[1])
    )
    cost_b = (
        _edge_cost(grid.demand_h, grid.capacity_h, edges_b[0])
        + _edge_cost(grid.demand_v, grid.capacity_v, edges_b[1])
    )
    h_edges, v_edges = edges_a if cost_a <= cost_b else edges_b
    used = []
    for i, j in h_edges:
        grid.demand_h[i, j] += 1.0
        used.append(("h", i, j))
    for i, j in v_edges:
        grid.demand_v[i, j] += 1.0
        used.append(("v", i, j))
    return used


def rip_up(grid: RoutingGrid, edges) -> None:
    """Remove a previously committed route's demand."""
    for kind, i, j in edges:
        if kind == "h":
            grid.demand_h[i, j] -= 1.0
        else:
            grid.demand_v[i, j] -= 1.0
