"""DAC 2012 congestion metrics: ACE and the RC score."""

from __future__ import annotations

import numpy as np

from repro.route.grid import RoutingGrid

#: percentiles of most-congested edges averaged by the contest metric
ACE_PERCENTAGES = (0.5, 1.0, 2.0, 5.0)


def ace_metrics(grid: RoutingGrid,
                percentages=ACE_PERCENTAGES) -> dict[float, float]:
    """Average Congestion of Edges: mean utilization (in %) of the top
    x% congested edges, for each x."""
    utilization = np.concatenate([
        grid.utilization_h().ravel(), grid.utilization_v().ravel()
    ])
    utilization = np.sort(utilization)[::-1]
    n = utilization.shape[0]
    out = {}
    for pct in percentages:
        k = max(int(np.ceil(n * pct / 100.0)), 1)
        out[pct] = float(utilization[:k].mean() * 100.0)
    return out


def routing_congestion(grid: RoutingGrid) -> float:
    """The contest RC score: mean of the ACE values, floored at 100
    (100 means no overflow anywhere in the measured tail)."""
    ace = ace_metrics(grid)
    rc = float(np.mean(list(ace.values())))
    return max(rc, 100.0)
