"""Net decomposition into 2-pin segments via rectilinear MST (Prim)."""

from __future__ import annotations

import numpy as np


def mst_segments(tx: np.ndarray, ty: np.ndarray) -> list[tuple[int, int]]:
    """Prim MST over tile coordinates with Manhattan distance.

    Returns index pairs into the (deduplicated) input arrays.  O(d^2),
    fine for net degrees up to a few dozen.
    """
    n = tx.shape[0]
    if n < 2:
        return []
    in_tree = np.zeros(n, dtype=bool)
    dist = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)
    in_tree[0] = True
    dist[:] = np.abs(tx - tx[0]) + np.abs(ty - ty[0])
    dist[0] = 0
    parent[:] = 0
    edges: list[tuple[int, int]] = []
    for _ in range(n - 1):
        candidates = np.where(~in_tree, dist, np.iinfo(np.int64).max)
        nxt = int(np.argmin(candidates))
        edges.append((int(parent[nxt]), nxt))
        in_tree[nxt] = True
        newdist = np.abs(tx - tx[nxt]) + np.abs(ty - ty[nxt])
        closer = ~in_tree & (newdist < dist)
        dist[closer] = newdist[closer]
        parent[closer] = nxt
    return edges


def decompose_net(tile_x: np.ndarray, tile_y: np.ndarray
                  ) -> list[tuple[int, int, int, int]]:
    """Unique-tile MST segments as (x1, y1, x2, y2) tile coordinates."""
    coords = np.unique(
        np.stack([tile_x, tile_y], axis=1), axis=0
    )
    if coords.shape[0] < 2:
        return []
    tx = coords[:, 0]
    ty = coords[:, 1]
    return [
        (int(tx[a]), int(ty[a]), int(tx[b]), int(ty[b]))
        for a, b in mst_segments(tx, ty)
    ]
