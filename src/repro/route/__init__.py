"""Global routing substrate (substitute for NCTUgr, Section III-F).

A grid router over routing tiles with directional layer capacities:
nets are decomposed into 2-pin segments by a rectilinear MST,
pattern-routed with congestion-aware L shapes, and ripped-up/rerouted
once through overflowed edges.  Congestion is reported with the DAC 2012
ACE/RC metrics, and :mod:`repro.route.inflation` implements the cell
inflation of eq. (19).
"""

from repro.route.grid import RoutingGrid
from repro.route.router import GlobalRouter, RoutingResult
from repro.route.congestion import ace_metrics, routing_congestion
from repro.route.inflation import apply_inflation, inflation_ratio_map

__all__ = [
    "RoutingGrid",
    "GlobalRouter",
    "RoutingResult",
    "ace_metrics",
    "routing_congestion",
    "inflation_ratio_map",
    "apply_inflation",
]
