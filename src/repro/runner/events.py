"""Structured event telemetry for batch placement runs.

Every run in a :class:`~repro.runner.store.RunStore` carries an
append-only JSONL event stream (``events.jsonl``): one JSON object per
line with at least ``type`` and ``t`` (wall-clock seconds).  The stream
is the run's flight recorder — per-iteration GP telemetry, stage
transitions, divergence recoveries, checkpoints, cache hits, retries —
and the substrate the acceptance checks read (e.g. "a cache hit
executed zero placement iterations" is verified by counting
``iteration`` events).

Writes are line-buffered and each event is flushed immediately so a
SIGKILL loses at most the event being written; JSONL readers skip a
torn final line.
"""

from __future__ import annotations

import json
import os
import time
from collections import Counter
from typing import Callable, Iterator, Optional


class EventType:
    """Event-type vocabulary (plain strings on the wire)."""

    RUN_START = "run_start"
    RUN_COMPLETE = "run_complete"
    RUN_FAILED = "run_failed"
    STAGE_START = "stage_start"
    STAGE_END = "stage_end"
    ITERATION = "iteration"
    RECOVERY = "recovery"
    CHECKPOINT = "checkpoint"
    RESUME = "resume"
    CACHE_HIT = "cache_hit"
    RETRY = "retry"
    TIMEOUT = "timeout"
    PROFILE = "profile"
    #: post-stage legality verdict (the LG/DP gate): carries the
    #: ``LegalityReport.as_dict()`` payload plus the stage name
    LEGALITY = "legality"
    #: the run completed but a best-effort artifact write failed
    ARTIFACT_ERROR = "artifact_error"
    #: a stale-leased ``running`` run was recovered after a worker death
    ORPHANED = "orphaned"


class EventLog:
    """Append-only JSONL event writer for one run.

    Every record carries two timestamps: wall-clock ``t`` (``clock``,
    for humans and cross-host correlation) and monotonic ``dt``
    (``monotonic_clock``, seconds since this log handle opened) — event
    *deltas* computed over ``dt`` survive NTP steps that make ``t`` go
    backwards.  Both clocks are injectable for deterministic tests.

    The log may be reopened across process restarts (resume appends to
    the same file), and :meth:`emit` transparently reopens a closed
    handle: the file contract is append-only, so a late event from a
    teardown race (an ``atexit``/``finally`` hook firing after
    ``close()``) is appended rather than raising ``ValueError``.
    """

    def __init__(self, path: str, clock: Callable[[], float] = time.time,
                 monotonic_clock: Callable[[], float] = time.monotonic):
        self.path = str(path)
        self._clock = clock
        self._monotonic = monotonic_clock
        self._mono0 = monotonic_clock()
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._handle = open(self.path, "a")

    def emit(self, type: str, **fields) -> dict:
        """Append one event; returns the record written."""
        record = {
            "type": type,
            "t": self._clock(),
            "dt": round(self._monotonic() - self._mono0, 6),
        }
        record.update(fields)
        if self._handle.closed:
            # teardown/late-hook race: a closed handle must not turn an
            # append-only telemetry write into a ValueError
            self._handle = open(self.path, "a")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        return record

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullEventLog:
    """Event sink that drops everything (library use without a store)."""

    def emit(self, type: str, **fields) -> dict:
        return {"type": type}

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullEventLog":
        return self

    def __exit__(self, *exc) -> None:
        pass


def tail_events(path: str, offset: int = 0,
                offsets: bool = False) -> tuple:
    """Incremental event-log cursor: ``(events, new_offset)``.

    Reads every *complete* line written at or after byte ``offset`` and
    returns the parsed events together with the byte offset just past
    the last newline consumed — feed ``new_offset`` back in to read
    only what was appended since.  This is what the SSE streamer and
    ``repro watch`` poll with, so tailing a live run costs one seek +
    one short read per poll instead of re-parsing the whole file.

    With ``offsets=True`` the events come back as ``(record,
    offset_after_record)`` pairs — each pair's offset is a valid resume
    cursor pointing just past *that* record, which is what the SSE
    stream publishes as per-event ids (resuming from a mid-batch id
    must not skip the rest of its batch).

    Torn tails are tolerated two ways: a final line with no newline yet
    (a writer mid-``emit``) is left unconsumed — the cursor does not
    advance past it, so the completed line is read whole on the next
    poll — and a newline-terminated line that does not parse (a killed
    writer whose partial line was later appended over) is skipped but
    consumed.  A missing file reads as ``([], offset)``.
    """
    offset = max(int(offset), 0)
    try:
        with open(path, "rb") as handle:
            handle.seek(offset)
            chunk = handle.read()
    except OSError:
        return [], offset
    events = []
    consumed = 0
    while True:
        newline = chunk.find(b"\n", consumed)
        if newline < 0:
            break  # incomplete tail: leave it for the next poll
        line = chunk[consumed:newline].strip()
        consumed = newline + 1
        if not line:
            continue
        try:
            record = json.loads(line.decode())
        except (UnicodeDecodeError, json.JSONDecodeError):
            continue  # torn line from a killed writer
        events.append((record, offset + consumed) if offsets
                      else record)
    return events, offset + consumed


def read_events(path: str,
                type: Optional[str] = None) -> Iterator[dict]:
    """Yield events from a JSONL file, optionally filtered by type.

    Tolerates a torn final line (the process died mid-write).  One-shot
    full read over the :func:`tail_events` cursor; pollers tailing a
    live log should use the cursor directly.
    """
    events, _ = tail_events(path, 0)
    for record in events:
        if type is None or record.get("type") == type:
            yield record


def count_events(path: str) -> Counter:
    """Event counts by type (the cache-hit acceptance check)."""
    return Counter(record.get("type") for record in read_events(path))
