"""Structured event telemetry for batch placement runs.

Every run in a :class:`~repro.runner.store.RunStore` carries an
append-only JSONL event stream (``events.jsonl``): one JSON object per
line with at least ``type`` and ``t`` (wall-clock seconds).  The stream
is the run's flight recorder — per-iteration GP telemetry, stage
transitions, divergence recoveries, checkpoints, cache hits, retries —
and the substrate the acceptance checks read (e.g. "a cache hit
executed zero placement iterations" is verified by counting
``iteration`` events).

Writes are line-buffered and each event is flushed immediately so a
SIGKILL loses at most the event being written; JSONL readers skip a
torn final line.
"""

from __future__ import annotations

import json
import os
import time
from collections import Counter
from typing import Callable, Iterator, Optional


class EventType:
    """Event-type vocabulary (plain strings on the wire)."""

    RUN_START = "run_start"
    RUN_COMPLETE = "run_complete"
    RUN_FAILED = "run_failed"
    STAGE_START = "stage_start"
    STAGE_END = "stage_end"
    ITERATION = "iteration"
    RECOVERY = "recovery"
    CHECKPOINT = "checkpoint"
    RESUME = "resume"
    CACHE_HIT = "cache_hit"
    RETRY = "retry"
    TIMEOUT = "timeout"
    PROFILE = "profile"
    #: the run completed but a best-effort artifact write failed
    ARTIFACT_ERROR = "artifact_error"
    #: a stale-leased ``running`` run was recovered after a worker death
    ORPHANED = "orphaned"


class EventLog:
    """Append-only JSONL event writer for one run.

    Every record carries two timestamps: wall-clock ``t`` (``clock``,
    for humans and cross-host correlation) and monotonic ``dt``
    (``monotonic_clock``, seconds since this log handle opened) — event
    *deltas* computed over ``dt`` survive NTP steps that make ``t`` go
    backwards.  Both clocks are injectable for deterministic tests.

    The log may be reopened across process restarts (resume appends to
    the same file), and :meth:`emit` transparently reopens a closed
    handle: the file contract is append-only, so a late event from a
    teardown race (an ``atexit``/``finally`` hook firing after
    ``close()``) is appended rather than raising ``ValueError``.
    """

    def __init__(self, path: str, clock: Callable[[], float] = time.time,
                 monotonic_clock: Callable[[], float] = time.monotonic):
        self.path = str(path)
        self._clock = clock
        self._monotonic = monotonic_clock
        self._mono0 = monotonic_clock()
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._handle = open(self.path, "a")

    def emit(self, type: str, **fields) -> dict:
        """Append one event; returns the record written."""
        record = {
            "type": type,
            "t": self._clock(),
            "dt": round(self._monotonic() - self._mono0, 6),
        }
        record.update(fields)
        if self._handle.closed:
            # teardown/late-hook race: a closed handle must not turn an
            # append-only telemetry write into a ValueError
            self._handle = open(self.path, "a")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        return record

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullEventLog:
    """Event sink that drops everything (library use without a store)."""

    def emit(self, type: str, **fields) -> dict:
        return {"type": type}

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullEventLog":
        return self

    def __exit__(self, *exc) -> None:
        pass


def read_events(path: str,
                type: Optional[str] = None) -> Iterator[dict]:
    """Yield events from a JSONL file, optionally filtered by type.

    Tolerates a torn final line (the process died mid-write).
    """
    if not os.path.exists(path):
        return
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail from a killed writer
            if type is None or record.get("type") == type:
                yield record


def count_events(path: str) -> Counter:
    """Event counts by type (the cache-hit acceptance check)."""
    return Counter(record.get("type") for record in read_events(path))
