"""Serial-but-queue-shaped job scheduler and parameter-sweep expander.

The :class:`Scheduler` drains a FIFO of :class:`JobSpec`s through
``execute_job`` with the operational policy a batch service needs:

- **failure isolation** — one crashing job never takes down the queue;
  its outcome records the error and the next job runs.
- **retry with backoff** — failed jobs are retried up to
  ``max_retries`` times with exponential backoff (``backoff *
  2**attempt`` seconds; the sleep function is injectable so tests run
  instantly).  Timeouts are *not* retried — the budget is deterministic
  and a retry would spend the same wall clock to die the same way —
  but the run keeps its checkpoint, so an explicit ``resume`` (or a
  resubmission with a larger timeout) continues it.
- **warm design reuse** — jobs sharing a design reference share one
  loaded :class:`PlacementDB`: the netlist/hypergraph construction and
  synthetic generation run once per design per scheduler, not once per
  job.  (Sharing is safe because global placement re-initializes all
  movable positions from the seed and the routability loop restores
  inflated cell widths on exit.)

The scheduler is deliberately single-worker: jobs are CPU-bound and
the queue discipline (ordering, retries, events, caching) is exactly
what a future multi-worker/sharded executor slots into.

``expand_sweep`` turns one base spec plus a parameter grid into the
cross-product of jobs — the hundreds-of-rollouts workhorse of
RL-guided placement and framework evaluations.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import fields
from typing import Callable, Optional, Sequence

from repro.core.params import PlacementParams
from repro.runner.cache import ResultCache
from repro.runner.events import EventLog, EventType
from repro.runner.execute import JobOutcome, execute_job
from repro.runner.job import JobSpec
from repro.runner.store import STATUS_FAILED, RunStore


def expand_sweep(base: JobSpec, grid: dict) -> list:
    """Cross-product expansion of ``base`` over a parameter grid.

    ``grid`` maps :class:`PlacementParams` field names to value lists;
    keys are expanded in sorted order so the job sequence (and thus the
    run store contents) is deterministic.  ``{"seed": [0, 1, 2],
    "target_density": [0.8, 1.0]}`` yields 6 jobs.
    """
    if not grid:
        return [base]
    known = {f.name for f in fields(PlacementParams)}
    unknown = set(grid) - known
    if unknown:
        raise ValueError(
            f"unknown sweep parameter(s) {sorted(unknown)}; "
            f"valid names are PlacementParams fields"
        )
    keys = sorted(grid)
    specs = []
    for combo in itertools.product(*(grid[key] for key in keys)):
        specs.append(base.with_param_overrides(**dict(zip(keys, combo))))
    return specs


class Scheduler:
    """Serial queue of placement jobs over one run store."""

    def __init__(self, store: RunStore,
                 cache: Optional[ResultCache] = None,
                 max_retries: int = 1,
                 backoff: float = 0.5,
                 timeout: Optional[float] = None,
                 checkpoint_every: int = 25,
                 profile: bool = False,
                 sleep: Callable[[float], None] = time.sleep):
        self.store = store
        self.cache = cache
        self.max_retries = int(max_retries)
        self.backoff = float(backoff)
        self.timeout = timeout
        self.checkpoint_every = int(checkpoint_every)
        self.profile = profile
        self._sleep = sleep
        self._queue: list = []
        #: design-ref key -> loaded PlacementDB (warm netlist reuse)
        self._designs: dict = {}

    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> None:
        self._queue.append(spec)

    def submit_sweep(self, base: JobSpec, grid: dict) -> int:
        """Queue the expanded sweep; returns the number of jobs added."""
        specs = expand_sweep(base, grid)
        self._queue.extend(specs)
        return len(specs)

    @property
    def pending(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    def _load_design(self, spec: JobSpec):
        ref = spec.design
        key = (ref.source, ref.name, ref.scale)
        if key not in self._designs:
            self._designs[key] = ref.load()
        return self._designs[key]

    def run(self) -> list:
        """Drain the queue serially; returns one outcome per job."""
        outcomes = []
        while self._queue:
            spec = self._queue.pop(0)
            outcomes.append(self._run_one(spec))
        return outcomes

    # ------------------------------------------------------------------
    def _run_one(self, spec: JobSpec) -> JobOutcome:
        try:
            db = self._load_design(spec)
        except Exception as exc:  # noqa: BLE001 — isolate bad designs
            return JobOutcome(
                job_hash="", directory="", status=STATUS_FAILED,
                design=spec.design.name,
                error=f"design load failed: {type(exc).__name__}: {exc}",
            )

        attempt = 0
        while True:
            attempt += 1
            outcome = execute_job(
                spec, self.store, cache=self.cache, db=db,
                checkpoint_every=self.checkpoint_every,
                timeout=self.timeout,
                resume=attempt > 1,  # retries continue the checkpoint
                profile=self.profile,
                attempt=attempt,
            )
            if outcome.status != STATUS_FAILED:
                # complete, cached — or timeout, which is never retried
                # (a retry would spend the same budget to die the same
                # way); the checkpoint stays for an explicit resume
                return outcome
            if attempt > self.max_retries:
                return outcome
            delay = self.backoff * (2.0 ** (attempt - 1))
            if outcome.directory:
                with EventLog(f"{outcome.directory}/events.jsonl") as log:
                    log.emit(EventType.RETRY, attempt=attempt,
                             delay=delay, error=outcome.error)
            self._sleep(delay)
