"""Job scheduler and parameter-sweep expander (serial or multi-process).

The :class:`Scheduler` drains a FIFO of :class:`JobSpec`s through
``execute_job`` with the operational policy a batch service needs:

- **failure isolation** — one crashing job never takes down the queue;
  its outcome records the error and the next job runs.  With
  ``workers > 1`` this extends to *worker death*: a SIGKILLed child
  process is reaped, its orphaned run directory recovered through the
  store's lease machinery, and the job retried on a fresh worker.
- **retry with backoff** — failed jobs are retried up to
  ``max_retries`` times with exponential backoff (``backoff *
  2**attempt`` seconds; the sleep function is injectable so tests run
  instantly).  Timeouts are *not* retried — the budget is deterministic
  and a retry would spend the same wall clock to die the same way —
  but the run keeps its checkpoint, so an explicit ``resume`` (or a
  resubmission with a larger timeout) continues it.
- **warm design reuse** (serial mode) — jobs sharing a design reference
  share one loaded :class:`PlacementDB`: the netlist/hypergraph
  construction and synthetic generation run once per design per
  scheduler, not once per job.  (Sharing is safe because global
  placement re-initializes all movable positions from the seed and the
  routability loop restores inflated cell widths on exit.)

``workers=N`` (default 1) turns the same queue into a **multi-process
pool**: each job attempt runs in a fresh ``spawn`` child
(:mod:`repro.runner.worker`) that loads its design in-process, the
per-run store leases guarantee no two workers share a run directory,
and the dispatcher merges per-job outcomes back **in submission
order**, so :meth:`run`'s return contract is identical in both modes.
``workers=1`` preserves today's serial semantics exactly, including
warm design reuse and in-process ``result`` objects on the outcomes.

``expand_sweep`` turns one base spec plus a parameter grid into the
cross-product of jobs — the hundreds-of-rollouts workhorse of
RL-guided placement and framework evaluations.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import fields
from typing import Callable, Optional

from repro.core.params import PlacementParams
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorders import RETRIES, WORKER_DEATHS
from repro.obs.trace import Tracer
from repro.obs.trace import active as active_tracer
from repro.runner.cache import ResultCache
from repro.runner.events import EventLog, EventType
from repro.runner.execute import JobOutcome, execute_job
from repro.runner.job import JobSpec
from repro.runner.store import LEASE_TIMEOUT, STATUS_FAILED, RunStore


def expand_sweep(base: JobSpec, grid: dict) -> list:
    """Cross-product expansion of ``base`` over a parameter grid.

    ``grid`` maps :class:`PlacementParams` field names to value lists;
    keys are expanded in sorted order so the job sequence (and thus the
    run store contents) is deterministic.  ``{"seed": [0, 1, 2],
    "target_density": [0.8, 1.0]}`` yields 6 jobs.
    """
    if not grid:
        return [base]
    known = {f.name for f in fields(PlacementParams)}
    unknown = set(grid) - known
    if unknown:
        raise ValueError(
            f"unknown sweep parameter(s) {sorted(unknown)}; "
            f"valid names are PlacementParams fields"
        )
    keys = sorted(grid)
    specs = []
    for combo in itertools.product(*(grid[key] for key in keys)):
        specs.append(base.with_param_overrides(**dict(zip(keys, combo))))
    return specs


class Scheduler:
    """FIFO queue of placement jobs over one run store.

    ``workers=1`` (default) drains the queue serially in-process;
    ``workers=N`` dispatches jobs to N concurrent spawn children.
    """

    def __init__(self, store: RunStore,
                 cache: Optional[ResultCache] = None,
                 max_retries: int = 1,
                 backoff: float = 0.5,
                 timeout: Optional[float] = None,
                 checkpoint_every: int = 25,
                 profile: bool = False,
                 workers: int = 1,
                 lease_timeout: float = LEASE_TIMEOUT,
                 sleep: Callable[[float], None] = time.sleep,
                 registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None):
        self.store = store
        self.cache = cache
        #: fleet metrics aggregate — serial jobs record into it
        #: directly, pool workers ship their job-local registries back
        #: over the outcome pipe and they are merged here, so the
        #: counters are bit-for-bit identical either way
        self.registry = registry
        #: fleet trace — installed for the duration of :meth:`run`;
        #: pool workers ship their spans back and they merge into one
        #: timeline (one lane per worker pid)
        self.tracer = tracer
        self.max_retries = int(max_retries)
        self.backoff = float(backoff)
        self.timeout = timeout
        self.checkpoint_every = int(checkpoint_every)
        self.profile = profile
        self.workers = max(1, int(workers))
        self.lease_timeout = float(lease_timeout)
        self._sleep = sleep
        # deque: run() drains from the left, and a sweep of thousands
        # of jobs must not pay list.pop(0)'s O(n) shift per job
        self._queue: deque = deque()
        #: design-ref key -> loaded PlacementDB (warm netlist reuse);
        #: guarded by a lock because the async service calls
        #: :meth:`run_one` from several dispatch threads at once
        self._designs: dict = {}
        self._design_lock = threading.Lock()
        self._spawned = 0  # worker labels across the scheduler lifetime

    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> None:
        self._queue.append(spec)

    def submit_sweep(self, base: JobSpec, grid: dict) -> int:
        """Queue the expanded sweep; returns the number of jobs added."""
        specs = expand_sweep(base, grid)
        self._queue.extend(specs)
        return len(specs)

    @property
    def pending(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    def _load_design(self, spec: JobSpec):
        ref = spec.design
        key = (ref.source, ref.name, ref.scale)
        with self._design_lock:
            if key not in self._designs:
                self._designs[key] = ref.load()
            return self._designs[key]

    def run(self) -> list:
        """Drain the queue; one outcome per job, in submission order."""
        if self.tracer is not None and active_tracer() is not self.tracer:
            with self.tracer:
                return self._drain()
        return self._drain()

    def _drain(self) -> list:
        if self.workers <= 1:
            outcomes = []
            while self._queue:
                spec = self._queue.popleft()
                outcomes.append(self.run_one(spec))
            return outcomes
        return self._run_pool()

    # -- serial / incremental path -------------------------------------
    _WARM = object()  # sentinel: load via the warm design cache

    def run_one(self, spec: JobSpec,
                db=_WARM,
                iteration_hook: Optional[Callable] = None,
                should_retry: Optional[Callable] = None,
                resume: bool = False,
                worker: Optional[str] = None) -> JobOutcome:
        """Execute one job in-process with this scheduler's policy.

        The incremental sibling of :meth:`run`: no queue involved, so a
        long-lived service (``repro.serve``) can feed jobs one at a
        time from dispatch threads while keeping the retry/backoff/
        timeout behaviour identical to a batch drain.

        ``db`` defaults to the warm design cache (serial semantics —
        safe because queued jobs run one at a time); callers running
        jobs *concurrently* must pass their own database (or ``None``
        to load fresh), because concurrent placements may not share a
        mutable :class:`PlacementDB`.  ``iteration_hook`` is forwarded
        to ``execute_job`` (cooperative cancellation hangs off it);
        ``should_retry(outcome)`` can veto a retry that policy alone
        would allow — a cancelled job must not come back from the dead.
        ``resume=True`` continues an on-disk checkpoint on the *first*
        attempt (retries always resume, as in :meth:`run`).
        """
        if db is Scheduler._WARM:
            try:
                db = self._load_design(spec)
            except Exception:  # noqa: BLE001 — isolate bad designs
                # let execute_job re-attempt the load and persist the
                # failure in a (fallback-keyed) run directory, so the
                # bad design is visible to `runs` instead of vanishing
                db = None

        attempt = 0
        while True:
            attempt += 1
            outcome = execute_job(
                spec, self.store, cache=self.cache, db=db,
                checkpoint_every=self.checkpoint_every,
                timeout=self.timeout,
                resume=resume or attempt > 1,  # retries continue the
                profile=self.profile,          # checkpoint
                attempt=attempt,
                worker=worker,
                iteration_hook=iteration_hook,
                lease_timeout=self.lease_timeout,
                registry=self.registry,
            )
            if outcome.status != STATUS_FAILED:
                # complete, cached — or timeout, which is never retried
                # (a retry would spend the same budget to die the same
                # way); the checkpoint stays for an explicit resume
                return outcome
            if attempt > self.max_retries:
                return outcome
            if should_retry is not None and not should_retry(outcome):
                return outcome
            self._retry_backoff(outcome, attempt)

    def _retry_backoff(self, outcome: JobOutcome, attempt: int) -> None:
        delay = self.backoff * (2.0 ** (attempt - 1))
        if self.registry is not None:
            self.registry.counter(RETRIES,
                                  help="job attempts retried").inc()
        if outcome.directory:
            with EventLog(f"{outcome.directory}/events.jsonl") as log:
                log.emit(EventType.RETRY, attempt=attempt,
                         delay=delay, error=outcome.error)
        self._sleep(delay)

    # -- multi-process path --------------------------------------------
    def _next_worker_label(self) -> str:
        label = f"w{self._spawned}"
        self._spawned += 1
        return label

    def _spawn(self, index: int, spec: JobSpec, attempt: int,
               resume: bool):
        from repro.runner.worker import WorkerHandle, WorkerTask

        task = WorkerTask(
            index=index, attempt=attempt, spec=spec.to_dict(),
            store_root=self.store.root,
            worker=self._next_worker_label(),
            use_cache=self.cache is not None,
            checkpoint_every=self.checkpoint_every,
            timeout=self.timeout, resume=resume, profile=self.profile,
            lease_timeout=self.lease_timeout,
            collect_trace=self.tracer is not None,
        )
        return WorkerHandle(task)

    def _collect_outcome(self, handle, spec: JobSpec) -> JobOutcome:
        """Reap one worker; a JobOutcome even if the worker died."""
        payload = handle.collect()
        # the observability side-channel rides the outcome payload; it
        # must be stripped before JobOutcome(**payload) sees the dict
        obs = payload.pop("obs", None) if payload is not None else None
        self._merge_obs(obs)
        if payload is not None and "worker_error" not in payload:
            outcome = JobOutcome(**payload)
        else:
            # the worker died without reporting (SIGKILL, OOM, infra
            # bug): recover any run directory it left locked mid-run so
            # the retry can resume its checkpoint
            error = (payload or {}).get("worker_error") or (
                f"worker died (pid {handle.pid}, "
                f"exitcode {handle.exitcode})"
            )
            if self.registry is not None:
                self.registry.counter(
                    WORKER_DEATHS,
                    help="pool workers that died without reporting",
                ).inc()
            recovered = self.store.recover_orphans(
                lease_timeout=self.lease_timeout, pids={handle.pid})
            if recovered:
                rec = recovered[0]
                outcome = JobOutcome(
                    job_hash=rec.job_hash, directory=rec.directory,
                    status=STATUS_FAILED, design=spec.design.name,
                    error=error)
            else:
                outcome = JobOutcome(
                    job_hash=spec.fallback_hash(), directory="",
                    status=STATUS_FAILED, design=spec.design.name,
                    error=error)
        if self.cache is not None:
            # child-side cache stats die with the child; fold the
            # observable part into the dispatcher's counters
            if outcome.cached:
                self.cache.stats.record_hit(
                    degraded=bool(outcome.artifact_error))
            else:
                self.cache.stats.record_miss()
        return outcome

    def _merge_obs(self, obs: Optional[dict]) -> None:
        """Fold a worker's shipped metrics/trace into the fleet views."""
        if not obs:
            return
        if self.registry is not None and obs.get("metrics"):
            self.registry.merge(obs["metrics"])
        trace = obs.get("trace")
        if self.tracer is not None and trace:
            self.tracer.trace.extend_dicts(
                trace.get("spans") or [],
                trace.get("process_labels"))

    def _run_pool(self) -> list:
        from multiprocessing.connection import wait as wait_channels

        jobs = []
        while self._queue:
            jobs.append(self._queue.popleft())
        outcomes: list = [None] * len(jobs)
        # (index, spec, attempt, resume) — retries re-enter this queue
        ready: deque = deque(
            (i, spec, 1, False) for i, spec in enumerate(jobs))
        active: dict = {}  # pipe channel -> (handle, index, spec, attempt)

        while ready or active:
            while ready and len(active) < self.workers:
                index, spec, attempt, resume = ready.popleft()
                handle = self._spawn(index, spec, attempt, resume)
                active[handle.channel] = (handle, index, spec, attempt)
            # wait on the outcome pipes, not the process sentinels: a
            # payload bigger than the pipe buffer (a shipped trace)
            # keeps the child alive in send() until the parent drains
            # it, so waiting for process exit would deadlock; the pipe
            # also signals EOF when a child dies without reporting
            for channel in wait_channels(list(active)):
                handle, index, spec, attempt = active.pop(channel)
                outcome = self._collect_outcome(handle, spec)
                if outcome.status == STATUS_FAILED \
                        and attempt <= self.max_retries:
                    self._retry_backoff(outcome, attempt)
                    ready.append((index, spec, attempt + 1, True))
                else:
                    outcomes[index] = outcome
        return outcomes
