"""Batch placement service: jobs, run store, caching, checkpoint/resume.

The production layer over the one-shot ``DreamPlacer(db, params).run()``
API.  A placement request becomes a declarative :class:`JobSpec` with a
content hash over netlist + parameters + code version; every run
persists its spec, metrics, Bookshelf output, JSONL event telemetry and
periodic GP-loop checkpoints in a :class:`RunStore` directory keyed by
that hash; the :class:`ResultCache` turns resubmission of an identical
job into an instant hit; a killed run resumes bit-exactly from its last
checkpoint; and the :class:`Scheduler` drives fleets of jobs (parameter
sweeps, seed fans) with retry, backoff, timeout and warm design reuse.

With ``Scheduler(workers=N)`` (CLI ``--workers``) jobs execute in a
multi-process pool of spawn-safe children (``repro.runner.worker``);
per-run advisory leases in the store keep concurrent workers off each
other's run directories, and orphaned runs left by killed workers are
recovered into resumable failures.

CLI frontends: ``python -m repro batch | sweep | resume | runs``.
"""

from repro.runner.cache import CacheStats, ResultCache
from repro.runner.checkpoint import CHECKPOINT_VERSION, PlacerCheckpoint
from repro.runner.events import (
    EventLog,
    EventType,
    NullEventLog,
    count_events,
    read_events,
    tail_events,
)
from repro.runner.execute import JobOutcome, JobTimeout, execute_job
from repro.runner.job import (
    SPEC_SCHEMA_VERSION,
    STAGES,
    DesignRef,
    JobSpec,
    canonical_json,
    job_from_dict,
)
from repro.runner.scheduler import Scheduler, expand_sweep
from repro.runner.store import (
    LEASE_TIMEOUT,
    STATUS_COMPLETE,
    STATUS_FAILED,
    STATUS_RUNNING,
    STATUS_TIMEOUT,
    RunHandle,
    RunLease,
    RunLocked,
    RunRecord,
    RunStore,
)
from repro.runner.worker import WorkerHandle, WorkerTask, worker_main

__all__ = [
    "CacheStats",
    "ResultCache",
    "CHECKPOINT_VERSION",
    "PlacerCheckpoint",
    "EventLog",
    "EventType",
    "NullEventLog",
    "count_events",
    "read_events",
    "tail_events",
    "JobOutcome",
    "JobTimeout",
    "execute_job",
    "SPEC_SCHEMA_VERSION",
    "STAGES",
    "DesignRef",
    "JobSpec",
    "canonical_json",
    "job_from_dict",
    "Scheduler",
    "expand_sweep",
    "LEASE_TIMEOUT",
    "STATUS_COMPLETE",
    "STATUS_FAILED",
    "STATUS_RUNNING",
    "STATUS_TIMEOUT",
    "RunHandle",
    "RunLease",
    "RunLocked",
    "RunRecord",
    "RunStore",
    "WorkerHandle",
    "WorkerTask",
    "worker_main",
]
