"""Declarative placement job specifications.

A :class:`JobSpec` is everything needed to reproduce one placement run:
a design reference (a named synthetic suite design or a Bookshelf
``.aux`` file), the full :class:`~repro.core.PlacementParams`, and a
stage selection (``gp``/``lg``/``dp``/``route``).  Specs serialize
canonically (sorted-key JSON, stable field order) and carry a *content
hash* combining:

- the canonical spec JSON (minus result-neutral knobs like ``verbose``),
- the netlist fingerprint of the loaded design
  (:meth:`repro.netlist.PlacementDB.fingerprint` — structure, not file
  paths or names), and
- the toolkit code version (``repro.__version__`` + a spec schema
  version).

Two jobs with equal hashes produce bit-identical placements, which is
what makes the hash a safe key for the content-addressed result cache.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace

import repro
from repro.core.params import PlacementParams
from repro.netlist.database import PlacementDB

#: bump when the spec layout or hash recipe changes (invalidates caches)
SPEC_SCHEMA_VERSION = 1

#: the flow stages a job may select, in flow order
STAGES = ("gp", "lg", "dp", "route")

#: parameters excluded from the content hash: they cannot change the
#: placement result, only logging/diagnostics
HASH_NEUTRAL_PARAMS = ("verbose",)


def canonical_json(data) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace drift)."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


@dataclass(frozen=True)
class DesignRef:
    """Reference to a placement database.

    ``source`` is ``"suite"`` (``name`` is a synthetic suite design,
    materialized at ``scale``) or ``"bookshelf"`` (``name`` is an
    ``.aux`` path).  The reference identifies *where to load from*;
    cache identity always comes from the loaded netlist's content
    fingerprint, so e.g. moving a Bookshelf directory does not fork the
    cache.
    """

    name: str
    source: str = "suite"
    scale: int = 100

    def __post_init__(self):
        if self.source not in ("suite", "bookshelf"):
            raise ValueError(f"unknown design source {self.source!r}")

    @staticmethod
    def parse(text: str, scale: int = 100) -> "DesignRef":
        """`.aux` paths are Bookshelf designs, anything else a suite name."""
        if text.endswith(".aux"):
            return DesignRef(name=text, source="bookshelf", scale=scale)
        return DesignRef(name=text, source="suite", scale=scale)

    def load(self) -> PlacementDB:
        """Materialize the database."""
        if self.source == "bookshelf":
            from repro.bookshelf import read_bookshelf

            return read_bookshelf(self.name)
        from repro.benchgen import load_design

        return load_design(self.name, scale=self.scale)

    def to_dict(self) -> dict:
        return {"name": self.name, "source": self.source,
                "scale": self.scale}

    @classmethod
    def from_dict(cls, data: dict) -> "DesignRef":
        return cls(name=data["name"], source=data["source"],
                   scale=int(data.get("scale", 100)))


@dataclass
class JobSpec:
    """One placement job: design + parameters + stage selection."""

    design: DesignRef
    params: PlacementParams = field(default_factory=PlacementParams)
    stages: tuple = ("gp", "lg", "dp")

    def __post_init__(self):
        if isinstance(self.design, str):
            self.design = DesignRef.parse(self.design)
        self.stages = tuple(self.stages)
        unknown = [s for s in self.stages if s not in STAGES]
        if unknown:
            raise ValueError(
                f"unknown stage(s) {unknown}; valid: {list(STAGES)}"
            )
        if "gp" not in self.stages:
            raise ValueError("every job runs global placement ('gp')")
        if "dp" in self.stages and "lg" not in self.stages:
            raise ValueError("'dp' requires 'lg' (detailed placement "
                             "operates on a legal placement)")

    # ------------------------------------------------------------------
    def effective_params(self) -> PlacementParams:
        """Parameters with the stage selection folded in."""
        return self.params.with_overrides(
            legalize="lg" in self.stages,
            detailed="dp" in self.stages,
            routability="route" in self.stages,
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": SPEC_SCHEMA_VERSION,
            "design": self.design.to_dict(),
            "params": self.params.to_dict(),
            "stages": list(self.stages),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        schema = int(data.get("schema", SPEC_SCHEMA_VERSION))
        if schema > SPEC_SCHEMA_VERSION:
            raise ValueError(
                f"job spec schema {schema} is newer than this toolkit "
                f"understands ({SPEC_SCHEMA_VERSION})"
            )
        params = data.get("params", {})
        if not isinstance(params, PlacementParams):
            params = PlacementParams.from_dict(dict(params))
        return cls(
            design=DesignRef.from_dict(data["design"]),
            params=params,
            stages=tuple(data.get("stages", ("gp", "lg", "dp"))),
        )

    def canonical_json(self) -> str:
        return canonical_json(self.to_dict())

    # ------------------------------------------------------------------
    def job_hash(self, db: PlacementDB) -> str:
        """Content hash (hex SHA-256) of this job against ``db``.

        Folds in the *effective* parameters (stage selection applied,
        hash-neutral knobs stripped), the netlist fingerprint, and the
        code version, so the hash changes exactly when the produced
        placement could.
        """
        params = self.effective_params().to_dict()
        for name in HASH_NEUTRAL_PARAMS:
            params.pop(name, None)
        payload = canonical_json({
            "schema": SPEC_SCHEMA_VERSION,
            "code_version": repro.__version__,
            "params": params,
            "stages": list(self.stages),
            "netlist": db.fingerprint(),
        })
        return hashlib.sha256(payload.encode()).hexdigest()

    def fallback_hash(self) -> str:
        """Deterministic run key for a job whose design cannot load.

        The content hash folds in the netlist fingerprint, which needs
        a loaded database — but a job that fails at design load still
        deserves a run directory recording the failure.  This key
        substitutes the design *reference* for the netlist content and
        marks the payload (``"netlist": None``) so it can never collide
        with a real job hash.  It is stable across processes, so every
        retry of the same broken job lands in the same directory.
        """
        params = self.effective_params().to_dict()
        for name in HASH_NEUTRAL_PARAMS:
            params.pop(name, None)
        payload = canonical_json({
            "schema": SPEC_SCHEMA_VERSION,
            "code_version": repro.__version__,
            "params": params,
            "stages": list(self.stages),
            "netlist": None,
            "design_ref": self.design.to_dict(),
        })
        return hashlib.sha256(payload.encode()).hexdigest()

    def with_param_overrides(self, **kwargs) -> "JobSpec":
        """A copy with some placement parameters replaced."""
        return replace(self, params=self.params.with_overrides(**kwargs))


def job_from_dict(data, default_scale: int = 400) -> JobSpec:
    """Lenient job parsing for ``batch`` spec files and API bodies.

    Accepts a bare design string, or a dict with ``design`` (string or
    :class:`DesignRef` dict), optional ``scale``, partial ``params``
    and ``stages``.  The strict round-trip format
    (:meth:`JobSpec.from_dict`) stays reserved for artifacts the
    toolkit wrote itself.
    """
    if isinstance(data, str):
        data = {"design": data}
    if not isinstance(data, dict):
        raise ValueError(f"job entry must be a string or object: {data!r}")
    design = data.get("design")
    if design is None:
        raise ValueError(f"job entry missing 'design': {data!r}")
    if isinstance(design, str):
        design = DesignRef.parse(
            design, scale=int(data.get("scale", default_scale))
        )
    else:
        design = DesignRef.from_dict(design)
    params = data.get("params", {})
    if not isinstance(params, PlacementParams):
        params = PlacementParams.from_dict(dict(params))
    return JobSpec(design=design, params=params,
                   stages=tuple(data.get("stages", ("gp", "lg", "dp"))))
