"""Multi-process job execution for the batch scheduler.

The pool model is **one spawned child process per job attempt**: the
parent ships a :class:`WorkerTask` (a pure-data payload — spec dict,
store root, execution policy) to a fresh ``spawn`` child, which
rehydrates the :class:`JobSpec`, loads the design *in-process*, runs
``execute_job`` against its own :class:`RunStore`/:class:`ResultCache`
instances and sends the outcome back over a pipe.

Why process-per-job instead of a persistent worker pool:

- **spawn safety** — nothing is inherited but the picklable task, so
  the child never sees half-initialized numpy/scipy state from a fork,
  and the entrypoint works identically on every platform.
- **death isolation** — a SIGKILLed/OOM-killed child takes down exactly
  one attempt.  The dispatcher reaps it, recovers the orphaned run
  directory through the store's lease machinery, and retries on a
  *fresh* worker; the queue survives (this is why
  ``concurrent.futures.ProcessPoolExecutor``, which breaks the whole
  pool on a worker death, is not used).
- **cheap relative to the work** — a placement job runs seconds to
  hours; interpreter startup is noise, and jobs sharing a design pay
  the load once per *attempt*, which the content-addressed cache keeps
  honest across reruns.

Store safety comes from the per-run advisory leases
(:class:`repro.runner.store.RunLease`): two workers can never open the
same ``runs/<hash16>/`` directory, and a worker that dies mid-run
leaves a stale lease that :meth:`RunStore.recover_orphans` turns into a
resumable ``failed`` run.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
from dataclasses import dataclass
from typing import Optional

#: environment knob for crash-safety tests:
#: ``REPRO_WORKER_KILL_AT=<iteration>:<sentinel-path>`` makes the first
#: worker to reach <iteration> create the sentinel file and SIGKILL
#: itself; every later worker (including the retry of the killed job)
#: sees the sentinel and runs normally.  This simulates an OOM kill at
#: a deterministic point without patching any production code path.
KILL_SWITCH_ENV = "REPRO_WORKER_KILL_AT"

_spawn_ctx = None


def spawn_context():
    """The shared ``spawn`` multiprocessing context (lazily created)."""
    global _spawn_ctx
    if _spawn_ctx is None:
        _spawn_ctx = multiprocessing.get_context("spawn")
    return _spawn_ctx


@dataclass
class WorkerTask:
    """Everything a child process needs to run one job attempt.

    Pure data (dicts, strings, numbers) so the payload pickles across
    the spawn boundary without dragging any live state along.
    """

    index: int                     # submission-order slot of the job
    attempt: int
    spec: dict                     # JobSpec.to_dict()
    store_root: str
    worker: str                    # display label, e.g. "w3"
    use_cache: bool = True
    checkpoint_every: int = 25
    timeout: Optional[float] = None
    resume: bool = False
    profile: bool = False
    lease_timeout: Optional[float] = None
    #: when True the child installs a Tracer and ships its spans back
    #: in the outcome payload's ``obs`` key (metrics always ship)
    collect_trace: bool = False


def _fault_hook():
    """Iteration hook implementing the :data:`KILL_SWITCH_ENV` knob."""
    raw = os.environ.get(KILL_SWITCH_ENV)
    if not raw:
        return None
    text, _, sentinel = raw.partition(":")
    target = int(text)

    def hook(placer, info):
        if info["iteration"] < target or not sentinel:
            return
        try:
            fd = os.open(sentinel,
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return  # someone already died here; run normally
        os.close(fd)
        os.kill(os.getpid(), signal.SIGKILL)

    return hook


def outcome_payload(outcome) -> dict:
    """A :class:`JobOutcome` as a small picklable dict.

    Drops the in-process-only ``result`` object (live ``PlacementResult``
    with full position arrays); everything the dispatcher's return
    contract needs is already persisted or in the metrics dict.
    """
    return {
        "job_hash": outcome.job_hash,
        "directory": outcome.directory,
        "status": outcome.status,
        "design": outcome.design,
        "cached": outcome.cached,
        "resumed_from": outcome.resumed_from,
        "metrics": outcome.metrics,
        "error": outcome.error,
        "artifact_error": outcome.artifact_error,
    }


def worker_main(conn, task: WorkerTask) -> None:
    """Spawn entrypoint: rehydrate the spec, run the job, ship the outcome.

    Runs in a child process with nothing shared but ``task``: the
    design is loaded in-process, the store/cache are reopened from
    their on-disk roots, and ``execute_job`` provides the same failure
    isolation it gives the serial scheduler.  Anything escaping it is
    an infrastructure bug, reported as a ``worker_error`` payload.
    """
    # imports happen in the child so a spawn never ships module state
    import contextlib

    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import Tracer
    from repro.runner.cache import ResultCache
    from repro.runner.execute import execute_job
    from repro.runner.job import JobSpec
    from repro.runner.store import LEASE_TIMEOUT, RunStore

    try:
        spec = JobSpec.from_dict(task.spec)
        store = RunStore(task.store_root)
        cache = ResultCache(store) if task.use_cache else None
        registry = MetricsRegistry()
        tracer = (Tracer(process_label=f"repro worker {task.worker}")
                  if task.collect_trace else None)
        with (tracer if tracer is not None
              else contextlib.nullcontext()):
            outcome = execute_job(
                spec, store, cache=cache,
                checkpoint_every=task.checkpoint_every,
                timeout=task.timeout, resume=task.resume,
                profile=task.profile, attempt=task.attempt,
                worker=task.worker, iteration_hook=_fault_hook(),
                lease_timeout=(LEASE_TIMEOUT if task.lease_timeout is None
                               else task.lease_timeout),
                registry=registry,
            )
        payload = outcome_payload(outcome)
        obs: dict = {"metrics": registry.as_dict()}
        if tracer is not None:
            obs["trace"] = {
                "spans": tracer.trace.as_dicts(),
                "process_labels": tracer.trace.process_labels,
            }
        payload["obs"] = obs
        conn.send(payload)
    except BaseException as exc:  # pragma: no cover — infra failures
        try:
            conn.send({"worker_error": f"{type(exc).__name__}: {exc}"})
        except (OSError, ValueError):
            pass
        raise
    finally:
        conn.close()


class WorkerHandle:
    """Parent-side handle on one in-flight job attempt.

    Owns the child process and the read end of its outcome pipe.  The
    dispatcher waits on :attr:`channel` (the pipe's read end, usable
    with :func:`multiprocessing.connection.wait`) and then calls
    :meth:`collect`.  Waiting on the *pipe* rather than the process
    sentinel matters: an outcome payload can exceed the OS pipe buffer
    (a shipped trace easily does), in which case the child blocks in
    ``send`` until the parent drains the pipe — a parent waiting for
    process *exit* first would deadlock.  The pipe read end also
    signals on EOF when the child dies without reporting, so worker
    deaths wake the dispatcher the same way outcomes do.
    """

    def __init__(self, task: WorkerTask):
        self.task = task
        ctx = spawn_context()
        self._recv, child_end = ctx.Pipe(duplex=False)
        self.process = ctx.Process(
            target=worker_main, args=(child_end, task),
            name=f"repro-{task.worker}",
        )
        self.process.start()
        child_end.close()  # the parent keeps only the read end

    @property
    def sentinel(self) -> int:
        """The process's OS-level done signal (exit only)."""
        return self.process.sentinel

    @property
    def channel(self):
        """The outcome pipe's read end: ready on payload data or on
        EOF after a child death — the dispatcher's wait object."""
        return self._recv

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    @property
    def exitcode(self) -> Optional[int]:
        return self.process.exitcode

    def collect(self) -> Optional[dict]:
        """Reap the child; its outcome payload, or None if it died.

        A child that was SIGKILLed (or crashed before reporting) never
        wrote to the pipe — the dispatcher treats ``None`` as a worker
        death and runs orphan recovery on the store.

        The payload is drained *before* joining the process: a payload
        larger than the pipe buffer keeps the child alive inside
        ``send`` until this read completes.
        """
        payload = None
        try:
            if self._recv.poll(0):
                payload = self._recv.recv()
        except (EOFError, OSError):
            payload = None
        self.process.join()
        self._recv.close()
        return payload
