"""Persistent run store: one directory per job hash.

Layout (all artifacts of one placement job live under its content
hash, so identical jobs share a slot and re-runs are idempotent)::

    <root>/
      store.json                 # store-level schema version
      runs/
        <hash16>/                # first 16 hex chars of the job hash
          spec.json              # {"job_hash", "spec": JobSpec dict}
          status.json            # {"status", "attempts", "error", ...}
          metrics.json           # placement_result_metrics schema
          events.jsonl           # telemetry (repro.runner.events)
          checkpoint.pkl         # periodic GP loop checkpoint (resume)
          result/<design>.aux..  # Bookshelf output of the final stage

JSON files are written atomically (temp file + ``os.replace``) so a
killed process never leaves a torn ``status.json``; the checkpoint
writer does the same.  Statuses: ``running`` -> ``complete`` |
``failed`` | ``timeout``; a ``running`` directory found on disk with a
checkpoint is a resumable crash victim.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Optional

from repro.runner.events import EventLog
from repro.runner.job import JobSpec

STORE_SCHEMA_VERSION = 1

#: directory-name length: 64 hex chars is unwieldy and 16 (64 bits)
#: makes accidental collision odds negligible at any realistic fleet
SHORT_HASH_LEN = 16

STATUS_RUNNING = "running"
STATUS_COMPLETE = "complete"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"


def _atomic_write_json(path: str, data: dict) -> None:
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


def _read_json(path: str) -> Optional[dict]:
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None


@dataclass
class RunRecord:
    """On-disk state of one run, as loaded by listing/inspection."""

    job_hash: str
    directory: str
    spec: Optional[dict]
    status: Optional[dict]
    metrics: Optional[dict]

    @property
    def short_hash(self) -> str:
        return self.job_hash[:SHORT_HASH_LEN]

    @property
    def state(self) -> str:
        return (self.status or {}).get("status", "unknown")

    @property
    def complete(self) -> bool:
        return self.state == STATUS_COMPLETE and self.metrics is not None

    @property
    def events_path(self) -> str:
        return os.path.join(self.directory, "events.jsonl")

    @property
    def checkpoint_path(self) -> str:
        return os.path.join(self.directory, "checkpoint.pkl")

    @property
    def result_dir(self) -> str:
        return os.path.join(self.directory, "result")

    def load_spec(self) -> JobSpec:
        if not self.spec:
            raise ValueError(f"run {self.short_hash} has no readable spec")
        return JobSpec.from_dict(self.spec["spec"])


class RunHandle:
    """Live interface to one run directory while a job executes."""

    def __init__(self, store: "RunStore", job_hash: str, directory: str):
        self.store = store
        self.job_hash = job_hash
        self.directory = directory
        self.events = EventLog(os.path.join(directory, "events.jsonl"))

    # -- paths ---------------------------------------------------------
    @property
    def checkpoint_path(self) -> str:
        return os.path.join(self.directory, "checkpoint.pkl")

    @property
    def result_dir(self) -> str:
        return os.path.join(self.directory, "result")

    # -- state ---------------------------------------------------------
    def write_spec(self, spec: JobSpec) -> None:
        _atomic_write_json(
            os.path.join(self.directory, "spec.json"),
            {"job_hash": self.job_hash, "spec": spec.to_dict()},
        )

    def set_status(self, status: str, error: Optional[str] = None,
                   attempts: Optional[int] = None) -> None:
        path = os.path.join(self.directory, "status.json")
        current = _read_json(path) or {
            "created": time.time(), "attempts": 0,
        }
        current.update(
            job_hash=self.job_hash,
            status=status,
            error=error,
            updated=time.time(),
        )
        if attempts is not None:
            current["attempts"] = int(attempts)
        _atomic_write_json(path, current)

    def write_metrics(self, metrics: dict) -> None:
        _atomic_write_json(
            os.path.join(self.directory, "metrics.json"), metrics
        )

    def close(self) -> None:
        self.events.close()


class RunStore:
    """Directory-backed store of placement runs, keyed by job hash."""

    def __init__(self, root: str):
        self.root = str(root)
        self.runs_root = os.path.join(self.root, "runs")
        os.makedirs(self.runs_root, exist_ok=True)
        marker = os.path.join(self.root, "store.json")
        if not os.path.exists(marker):
            _atomic_write_json(marker, {"schema": STORE_SCHEMA_VERSION})

    # ------------------------------------------------------------------
    def run_dir(self, job_hash: str) -> str:
        return os.path.join(self.runs_root, job_hash[:SHORT_HASH_LEN])

    def open_run(self, spec: JobSpec, job_hash: str) -> RunHandle:
        """Create (or reopen, for resume/overwrite) the run directory."""
        directory = self.run_dir(job_hash)
        os.makedirs(directory, exist_ok=True)
        handle = RunHandle(self, job_hash, directory)
        handle.write_spec(spec)
        return handle

    # ------------------------------------------------------------------
    def load(self, ref: str) -> RunRecord:
        """Load one run by full hash, short hash, or unique prefix."""
        matches = [r for r in self.list_runs()
                   if r.job_hash.startswith(ref) or r.short_hash == ref]
        if not matches:
            raise KeyError(f"no run matching {ref!r} in {self.runs_root}")
        if len(matches) > 1:
            raise KeyError(
                f"ambiguous run reference {ref!r}: "
                f"{[m.short_hash for m in matches]}"
            )
        return matches[0]

    def list_runs(self) -> list:
        """All runs, oldest first (by status creation time)."""
        records = []
        try:
            entries = sorted(os.listdir(self.runs_root))
        except OSError:
            return records
        for entry in entries:
            directory = os.path.join(self.runs_root, entry)
            if not os.path.isdir(directory):
                continue
            spec = _read_json(os.path.join(directory, "spec.json"))
            status = _read_json(os.path.join(directory, "status.json"))
            metrics = _read_json(os.path.join(directory, "metrics.json"))
            job_hash = (spec or {}).get("job_hash") \
                or (status or {}).get("job_hash") or entry
            records.append(RunRecord(
                job_hash=job_hash, directory=directory,
                spec=spec, status=status, metrics=metrics,
            ))
        records.sort(key=lambda r: (r.status or {}).get("created", 0.0))
        return records
