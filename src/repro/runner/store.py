"""Persistent run store: one directory per job hash.

Layout (all artifacts of one placement job live under its content
hash, so identical jobs share a slot and re-runs are idempotent)::

    <root>/
      store.json                 # store-level schema version
      runs/
        <hash16>/                # first 16 hex chars of the job hash
          spec.json              # {"job_hash", "spec": JobSpec dict}
          status.json            # {"status", "attempts", "error", ...}
          metrics.json           # placement_result_metrics schema
          events.jsonl           # telemetry (repro.runner.events)
          checkpoint.pkl         # periodic GP loop checkpoint (resume)
          result/<design>.aux..  # Bookshelf output of the final stage

JSON files are written atomically (temp file + ``os.replace``) so a
killed process never leaves a torn ``status.json``; the checkpoint
writer does the same.  Statuses: ``running`` -> ``complete`` |
``failed`` | ``timeout``; a ``running`` directory found on disk with a
checkpoint is a resumable crash victim.

With multiple workers (``repro.runner.worker``) each live run holds an
advisory **lease**: a ``lock.json`` in the run directory recording the
owner pid/host/worker plus acquisition and heartbeat timestamps.  The
lease is acquired with an atomic ``O_CREAT | O_EXCL`` create, refreshed
from the GP iteration hook, and released on close; a second opener of
the same run raises :class:`RunLocked`.  Staleness is decided by
pid-liveness first (same host: a live owner is never stale, a dead one
always is) and by heartbeat age — negative ages clamped to 0 so clock
steps never fake expiry — only for cross-host or unreadable locks;
such stale leases may be stolen, and :meth:`RunStore.recover_orphans` turns
``running`` directories into ``failed``-with-checkpoint runs that
``resume`` (or a retry) continues, instead of leaving them stuck
``running`` forever after a SIGKILLed worker.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.runner.events import EventLog, EventType
from repro.runner.job import JobSpec

STORE_SCHEMA_VERSION = 1

#: directory-name length: 64 hex chars is unwieldy and 16 (64 bits)
#: makes accidental collision odds negligible at any realistic fleet
SHORT_HASH_LEN = 16

STATUS_RUNNING = "running"
STATUS_COMPLETE = "complete"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"

#: a lease whose heartbeat is older than this is considered abandoned
LEASE_TIMEOUT = 30.0
#: minimum seconds between heartbeat rewrites (refreshes are rate-limited
#: so per-iteration touches cost nothing on fast loops)
LEASE_REFRESH = 5.0

_HOSTNAME = socket.gethostname()


class RunLocked(RuntimeError):
    """Another live worker holds this run directory's lease."""


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for a pid on this host."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # alive, just not ours to signal
    return True


def _atomic_write_json(path: str, data: dict) -> None:
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


def _read_json(path: str) -> Optional[dict]:
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None


class RunLease:
    """Advisory per-run lock file with owner identity and heartbeat.

    Creation is atomic (``O_CREAT | O_EXCL``), so exactly one process
    acquires a free lease.  Stealing a stale lease goes through an
    atomic rename, so when several contenders detect the same dead
    owner, exactly one wins and the rest re-examine the fresh lock.

    **Staleness clocking.**  Heartbeats are wall-clock timestamps (they
    must compare across hosts), which makes raw age arithmetic unsafe
    under NTP steps: a backwards jump turns a fresh heartbeat into a
    "future" one and a forwards jump ages a live worker into theft
    range.  :meth:`is_stale` therefore prefers **pid-liveness** for
    same-host locks (a live owner pid is never stale, a dead one is
    stale immediately) and only falls back to heartbeat age — with
    negative ages clamped to 0, so a backwards-stepped clock reads
    "fresh", never "expired" — for cross-host or unreadable locks.  The
    local refresh rate-limit runs on the monotonic clock, immune to
    steps in either direction.  ``clock``/``monotonic_clock`` are
    injectable so skew scenarios are deterministic in tests.
    """

    def __init__(self, path: str, worker: Optional[str] = None,
                 lease_timeout: float = LEASE_TIMEOUT,
                 refresh_every: float = LEASE_REFRESH,
                 clock: Callable[[], float] = time.time,
                 monotonic_clock: Callable[[], float] = time.monotonic,
                 pid_alive: Optional[Callable[[int], bool]] = None):
        self.path = str(path)
        self.worker = worker
        self.lease_timeout = float(lease_timeout)
        self.refresh_every = float(refresh_every)
        self._clock = clock
        self._monotonic = monotonic_clock
        self._pid_alive = pid_alive or _pid_alive
        self._held = False
        self._acquired_at = 0.0
        # monotonic: a wall-clock step must not suppress (or force)
        # heartbeat rewrites through the rate limiter
        self._last_refresh = 0.0

    # ------------------------------------------------------------------
    def _payload(self) -> dict:
        return {
            "pid": os.getpid(),
            "host": _HOSTNAME,
            "worker": self.worker,
            "acquired": self._acquired_at,
            "heartbeat": self._clock(),
        }

    def _heartbeat_age(self, stamp: float) -> float:
        # clamp: a heartbeat "in the future" means our clock stepped
        # back (or the writer's is ahead) — that is a *fresh* lease
        return max(self._clock() - stamp, 0.0)

    def is_stale(self, info: Optional[dict]) -> bool:
        """Is a lock with this payload abandoned by a dead owner?

        Same-host locks are decided by pid-liveness alone; heartbeat
        age (negative ages clamped to 0) only decides cross-host and
        unreadable locks, where no liveness probe is possible.
        """
        if info is None:
            # unreadable lock (torn write): fall back to file age
            try:
                age = self._heartbeat_age(os.path.getmtime(self.path))
            except OSError:
                return True  # vanished underneath us: free
            return age > self.lease_timeout
        pid = info.get("pid")
        if pid and info.get("host") == _HOSTNAME:
            try:
                # pid-liveness outranks the heartbeat: a live owner is
                # never stolen because a clock skewed its timestamps,
                # and a dead owner is recovered without waiting out a
                # (possibly backwards-jumped) heartbeat age
                return not self._pid_alive(int(pid))
            except (TypeError, ValueError):
                pass  # garbage pid: fall through to the heartbeat
        heartbeat = float(info.get("heartbeat")
                          or info.get("acquired") or 0.0)
        return self._heartbeat_age(heartbeat) > self.lease_timeout

    # ------------------------------------------------------------------
    def acquire(self) -> "RunLease":
        while True:
            try:
                fd = os.open(self.path,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                info = _read_json(self.path)
                if not self.is_stale(info):
                    owner = (info or {}).get("pid", "?")
                    raise RunLocked(
                        f"run directory {os.path.dirname(self.path)} is "
                        f"locked by pid {owner} "
                        f"(worker {(info or {}).get('worker')})"
                    )
                # steal via rename: only one contender gets the file
                stale = f"{self.path}.stale.{os.getpid()}"
                try:
                    os.rename(self.path, stale)
                except FileNotFoundError:
                    continue  # someone else stole or released it first
                os.unlink(stale)
                continue
            self._acquired_at = self._clock()
            with os.fdopen(fd, "w") as handle:
                json.dump(self._payload(), handle)
            self._held = True
            self._last_refresh = self._monotonic()
            return self

    def refresh(self, force: bool = False) -> None:
        """Re-stamp the heartbeat (rate-limited unless ``force``).

        The rate limit runs on the monotonic clock: a backwards wall
        step used to freeze refreshes for the length of the jump
        (heartbeat goes stale everywhere else), and a forwards step
        forced a rewrite every iteration.
        """
        if not self._held:
            return
        now = self._monotonic()
        if not force and now - self._last_refresh < self.refresh_every:
            return
        _atomic_write_json(self.path, self._payload())
        self._last_refresh = now

    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass  # a contender (wrongly) stole it; nothing to release


@dataclass
class RunRecord:
    """On-disk state of one run, as loaded by listing/inspection."""

    job_hash: str
    directory: str
    spec: Optional[dict]
    status: Optional[dict]
    metrics: Optional[dict]

    @property
    def short_hash(self) -> str:
        return self.job_hash[:SHORT_HASH_LEN]

    @property
    def state(self) -> str:
        return (self.status or {}).get("status", "unknown")

    @property
    def complete(self) -> bool:
        return self.state == STATUS_COMPLETE and self.metrics is not None

    @property
    def artifact_error(self) -> Optional[str]:
        """Set when the run completed but its Bookshelf write failed."""
        return (self.status or {}).get("artifact_error")

    @property
    def created(self) -> float:
        """Run creation time: status stamp, else directory mtime.

        The fallback keeps runs whose ``status.json`` was never written
        (a worker died between mkdir and the first status write) in
        roughly the right place in a time-ordered listing instead of
        pinning them to the epoch.
        """
        stamp = (self.status or {}).get("created")
        if stamp is not None:
            try:
                return float(stamp)
            except (TypeError, ValueError):
                pass
        try:
            return os.path.getmtime(self.directory)
        except OSError:
            return 0.0

    @property
    def events_path(self) -> str:
        return os.path.join(self.directory, "events.jsonl")

    @property
    def lock_path(self) -> str:
        return os.path.join(self.directory, "lock.json")

    @property
    def checkpoint_path(self) -> str:
        return os.path.join(self.directory, "checkpoint.pkl")

    @property
    def result_dir(self) -> str:
        return os.path.join(self.directory, "result")

    def load_spec(self) -> JobSpec:
        if not self.spec:
            raise ValueError(f"run {self.short_hash} has no readable spec")
        return JobSpec.from_dict(self.spec["spec"])

    def summary(self) -> dict:
        """Machine-readable one-run summary.

        The single source of the listing schema: ``GET /v1/jobs``
        entries and ``repro runs --json`` both serialize through this,
        so a script written against one reads the other unchanged.
        """
        status = self.status or {}
        spec = (self.spec or {}).get("spec", {})
        design = spec.get("design", {})
        hpwl = iterations = None
        if self.metrics:
            hpwl = (self.metrics.get("hpwl") or {}).get("final")
            iterations = self.metrics.get("iterations")
        return {
            "job_hash": self.job_hash,
            "short_hash": self.short_hash,
            "state": self.state,
            "design": design.get("name"),
            "stages": spec.get("stages"),
            "created": status.get("created"),
            "updated": status.get("updated"),
            "attempts": status.get("attempts"),
            "error": status.get("error"),
            "artifact_error": status.get("artifact_error"),
            "orphaned": bool(status.get("orphaned", False)),
            "hpwl": hpwl,
            "iterations": iterations,
            "directory": self.directory,
        }


class RunHandle:
    """Live interface to one run directory while a job executes."""

    def __init__(self, store: "RunStore", job_hash: str, directory: str,
                 lease: Optional[RunLease] = None):
        self.store = store
        self.job_hash = job_hash
        self.directory = directory
        self.lease = lease
        self.events = EventLog(os.path.join(directory, "events.jsonl"))

    # -- paths ---------------------------------------------------------
    @property
    def checkpoint_path(self) -> str:
        return os.path.join(self.directory, "checkpoint.pkl")

    @property
    def result_dir(self) -> str:
        return os.path.join(self.directory, "result")

    # -- state ---------------------------------------------------------
    def write_spec(self, spec: JobSpec) -> None:
        _atomic_write_json(
            os.path.join(self.directory, "spec.json"),
            {"job_hash": self.job_hash, "spec": spec.to_dict()},
        )

    def set_status(self, status: str, error: Optional[str] = None,
                   attempts: Optional[int] = None,
                   artifact_error: Optional[str] = None) -> None:
        path = os.path.join(self.directory, "status.json")
        current = _read_json(path) or {
            "created": time.time(), "attempts": 0,
        }
        current.update(
            job_hash=self.job_hash,
            status=status,
            error=error,
            artifact_error=artifact_error,
            updated=time.time(),
        )
        if attempts is not None:
            current["attempts"] = int(attempts)
        _atomic_write_json(path, current)

    def write_metrics(self, metrics: dict) -> None:
        _atomic_write_json(
            os.path.join(self.directory, "metrics.json"), metrics
        )

    def touch_lease(self) -> None:
        """Heartbeat the advisory lease (rate-limited; cheap to call
        every GP iteration)."""
        if self.lease is not None:
            self.lease.refresh()

    def close(self) -> None:
        self.events.close()
        if self.lease is not None:
            self.lease.release()


class RunStore:
    """Directory-backed store of placement runs, keyed by job hash."""

    def __init__(self, root: str):
        self.root = str(root)
        self.runs_root = os.path.join(self.root, "runs")
        # serializes directory scans and orphan recovery: the HTTP
        # service lists the store from handler threads while the
        # dispatch thread creates run directories, and recovery must
        # not race a concurrent recovery over the same orphans
        self._scan_lock = threading.RLock()
        os.makedirs(self.runs_root, exist_ok=True)
        marker = os.path.join(self.root, "store.json")
        if not os.path.exists(marker):
            _atomic_write_json(marker, {"schema": STORE_SCHEMA_VERSION})

    # ------------------------------------------------------------------
    def run_dir(self, job_hash: str) -> str:
        return os.path.join(self.runs_root, job_hash[:SHORT_HASH_LEN])

    def open_run(self, spec: JobSpec, job_hash: str,
                 worker: Optional[str] = None,
                 lock: bool = True,
                 lease_timeout: float = LEASE_TIMEOUT) -> RunHandle:
        """Create (or reopen, for resume/overwrite) the run directory.

        Acquires the run's advisory lease first (unless ``lock=False``):
        a second concurrent opener raises :class:`RunLocked`, so two
        workers can never execute into the same ``runs/<hash16>/``.  A
        stale lease (dead owner pid or expired heartbeat) is stolen.
        """
        directory = self.run_dir(job_hash)
        os.makedirs(directory, exist_ok=True)
        lease = None
        if lock:
            lease = RunLease(
                os.path.join(directory, "lock.json"), worker=worker,
                lease_timeout=lease_timeout,
            ).acquire()
        handle = RunHandle(self, job_hash, directory, lease=lease)
        handle.write_spec(spec)
        return handle

    def recover_orphans(self, lease_timeout: float = LEASE_TIMEOUT,
                        pids: Optional[set] = None) -> list:
        """Turn abandoned ``running`` directories into resumable runs.

        A run is an orphan when its status is ``running`` but its lease
        is stale (owner pid dead on this host, or heartbeat older than
        ``lease_timeout``) — the worker was SIGKILLed between status
        writes.  Each orphan is marked ``failed`` (with an ``orphaned``
        flag and an event), its lock removed and its checkpoint left in
        place, so a retry or an explicit ``resume`` continues it instead
        of the directory sitting ``running`` forever.

        ``pids`` restricts recovery to leases owned by those pids (the
        pool dispatcher passes the pid of a worker it just reaped).
        Returns the recovered :class:`RunRecord` list.
        """
        with self._scan_lock:
            return self._recover_orphans(lease_timeout, pids)

    def _recover_orphans(self, lease_timeout: float,
                         pids: Optional[set]) -> list:
        recovered = []
        for record in self.list_runs():
            if record.state != STATUS_RUNNING:
                continue
            info = _read_json(record.lock_path)
            has_lock = os.path.exists(record.lock_path)
            if pids is not None:
                if info is None or info.get("pid") not in pids:
                    continue
            elif has_lock:
                lease = RunLease(record.lock_path,
                                 lease_timeout=lease_timeout)
                if not lease.is_stale(info):
                    continue  # live owner: not an orphan
            # mark failed-with-checkpoint, eligible for resume
            owner = (info or {}).get("pid", "?")
            error = (f"orphaned: worker (pid {owner}) died without "
                     f"updating the run status")
            status_path = os.path.join(record.directory, "status.json")
            current = _read_json(status_path) or {}
            current.update(status=STATUS_FAILED, error=error,
                           orphaned=True, updated=time.time())
            _atomic_write_json(status_path, current)
            with EventLog(record.events_path) as log:
                log.emit(EventType.ORPHANED, error=error, pid=owner,
                         checkpoint=os.path.exists(record.checkpoint_path))
            try:
                os.unlink(record.lock_path)
            except FileNotFoundError:
                pass
            record.status = current
            recovered.append(record)
        return recovered

    # ------------------------------------------------------------------
    def load(self, ref: str) -> RunRecord:
        """Load one run by full hash, short hash, or unique prefix."""
        matches = [r for r in self.list_runs()
                   if r.job_hash.startswith(ref) or r.short_hash == ref]
        if not matches:
            raise KeyError(f"no run matching {ref!r} in {self.runs_root}")
        if len(matches) > 1:
            raise KeyError(
                f"ambiguous run reference {ref!r}: "
                f"{[m.short_hash for m in matches]}"
            )
        return matches[0]

    def list_runs(self) -> list:
        """All runs, oldest first (by run creation time).

        Ordering is by the status creation stamp — falling back to the
        directory mtime for status-less crash victims — with the short
        hash as tiebreak, so the listing is deterministic and
        time-ordered rather than following ``listdir``'s hash order.
        """
        with self._scan_lock:
            records = []
            try:
                entries = sorted(os.listdir(self.runs_root))
            except OSError:
                return records
            for entry in entries:
                directory = os.path.join(self.runs_root, entry)
                if not os.path.isdir(directory):
                    continue
                spec = _read_json(os.path.join(directory, "spec.json"))
                status = _read_json(
                    os.path.join(directory, "status.json"))
                metrics = _read_json(
                    os.path.join(directory, "metrics.json"))
                job_hash = (spec or {}).get("job_hash") \
                    or (status or {}).get("job_hash") or entry
                records.append(RunRecord(
                    job_hash=job_hash, directory=directory,
                    spec=spec, status=status, metrics=metrics,
                ))
            records.sort(key=lambda r: (r.created, r.short_hash))
            return records
