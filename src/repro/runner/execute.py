"""Single-job execution: cache check, telemetry, checkpoints, resume.

``execute_job`` is the one path every placement request takes:

1. start the cooperative timeout clock (the budget covers *everything*,
   including a cold design load), then load (or receive, warm from the
   scheduler) the design database,
2. compute the job's content hash and consult the result cache —
   a hit returns the persisted metrics without running a single
   placement iteration (a ``cache_hit`` event is appended to the run's
   log as the audit trail),
3. otherwise open the run directory — acquiring its advisory lease, so
   no two workers ever execute into the same run — optionally restore
   the latest on-disk checkpoint (``resume``), and drive the full flow
   with an ``on_iteration`` hook that streams per-iteration events,
   persists a :class:`PlacerCheckpoint` every ``checkpoint_every``
   iterations, heartbeats the lease and enforces the per-job timeout,
4. persist metrics + Bookshelf output and mark the run complete —
   or record the failure/timeout with the checkpoint left in place so
   a later ``resume`` continues where the run died.  A failed Bookshelf
   write does *not* fail the run if the metrics persisted; the status
   records an ``artifact_error`` so cache hits surface the degraded
   state instead of silently serving artifact-less runs.

Failures are isolated: ``execute_job`` never lets a job exception
escape; it returns a :class:`JobOutcome` describing what happened.
Even a design that fails to *load* gets a run directory (keyed by
:meth:`JobSpec.fallback_hash`) with a persisted status and event trail,
so the failure is visible to ``runs`` and ``resume``.
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core import DreamPlacer, placement_result_metrics
from repro.netlist.database import PlacementDB
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorders import (
    CACHE_DEGRADED,
    CACHE_HITS,
    CACHE_MISSES,
    CHECKPOINTS,
    FENCE_VIOLATIONS,
    LEGALITY_VIOLATIONS,
    RUNS_TOTAL,
    IterationRecorder,
)
from repro.obs.trace import Trace, trace_span
from repro.obs.trace import active as active_tracer
from repro.runner.cache import ResultCache
from repro.runner.checkpoint import PlacerCheckpoint
from repro.runner.events import EventLog, EventType
from repro.runner.job import JobSpec
from repro.runner.store import (
    LEASE_TIMEOUT,
    STATUS_COMPLETE,
    STATUS_FAILED,
    STATUS_RUNNING,
    STATUS_TIMEOUT,
    RunLocked,
    RunStore,
)


class JobTimeout(Exception):
    """Cooperative per-job timeout raised from the iteration hook."""


@dataclass
class JobOutcome:
    """What happened to one submitted job."""

    job_hash: str
    directory: str
    status: str
    design: str = ""
    cached: bool = False
    resumed_from: Optional[int] = None
    metrics: Optional[dict] = None
    error: Optional[str] = None
    #: set when the run completed but its Bookshelf write failed
    artifact_error: Optional[str] = None
    result: object = None  # PlacementResult when run in-process

    @property
    def ok(self) -> bool:
        return self.status == STATUS_COMPLETE


def _record_design_failure(spec: JobSpec, store: RunStore, exc: Exception,
                           attempt: int, worker: Optional[str],
                           lease_timeout: float) -> JobOutcome:
    """Persist a design-load failure so it is visible to ``runs``.

    The content hash needs the loaded netlist, so the run directory is
    keyed by the spec's deterministic :meth:`JobSpec.fallback_hash`.
    """
    error = f"design load failed: {type(exc).__name__}: {exc}"
    job_hash = spec.fallback_hash()
    try:
        handle = store.open_run(spec, job_hash, worker=worker,
                                lease_timeout=lease_timeout)
    except RunLocked:
        # another worker is recording the same broken job right now
        return JobOutcome(job_hash=job_hash,
                          directory=store.run_dir(job_hash),
                          status=STATUS_FAILED, design=spec.design.name,
                          error=error)
    try:
        handle.events.emit(EventType.RUN_FAILED, error=error,
                           trace=traceback.format_exc(limit=5),
                           worker=worker, pid=os.getpid())
        handle.set_status(STATUS_FAILED, error=error, attempts=attempt)
    finally:
        handle.close()
    return JobOutcome(job_hash=job_hash, directory=handle.directory,
                      status=STATUS_FAILED, design=spec.design.name,
                      error=error)


def execute_job(spec: JobSpec, store: RunStore,
                cache: Optional[ResultCache] = None,
                db: Optional[PlacementDB] = None,
                checkpoint_every: int = 25,
                timeout: Optional[float] = None,
                resume: bool = False,
                profile: bool = False,
                attempt: int = 1,
                worker: Optional[str] = None,
                iteration_hook: Optional[Callable] = None,
                lease_timeout: float = LEASE_TIMEOUT,
                registry: Optional[MetricsRegistry] = None) -> JobOutcome:
    """Run one job against the store; see module docstring for the flow.

    The timeout is *cooperative*: it is checked on every GP iteration,
    so legalization/detailed placement (short, bounded stages) are not
    interruptible mid-stage.  The deadline starts at entry, so a cold
    design load spends the same budget as iterations do.  A timed-out
    run keeps its checkpoint and is not considered cached, so
    resubmission resumes it.

    ``worker`` labels this execution in events and the run lease (the
    pool dispatcher passes it); ``iteration_hook(placer, info)`` runs
    after the built-in per-iteration bookkeeping (telemetry, progress
    relays, test fault injection).

    Observability: the whole job runs inside a ``job`` span of the
    active tracer (``repro.obs``), every GP iteration feeds a job-local
    :class:`MetricsRegistry`, and — when a tracer or a fleet
    ``registry`` is present — the per-job trace/Prometheus dumps are
    persisted as ``trace.json``/``metrics.prom`` next to the run's
    other artifacts.  The job-local registry is merged into
    ``registry`` (the scheduler's fleet aggregate) on every exit path.
    """
    job_reg = MetricsRegistry()
    tracer = active_tracer()
    span_start = len(tracer.trace.spans) if tracer is not None else 0
    with trace_span("job", design=spec.design.name,
                    attempt=attempt, worker=worker) as span:
        outcome = _execute_job(
            spec, store, cache=cache, db=db,
            checkpoint_every=checkpoint_every, timeout=timeout,
            resume=resume, profile=profile, attempt=attempt,
            worker=worker, iteration_hook=iteration_hook,
            lease_timeout=lease_timeout, job_reg=job_reg,
        )
        if span is not None:
            span["job_hash"] = outcome.job_hash[:16]
            span["status"] = outcome.status
            span["cached"] = outcome.cached
        job_reg.counter(RUNS_TOTAL, help="job outcomes by final status",
                        status=outcome.status).inc()
        if (outcome.directory and not outcome.cached
                and (registry is not None or tracer is not None)):
            # best-effort artifacts: observability must never turn a
            # finished placement into a failure
            try:
                job_reg.save_prometheus(
                    os.path.join(outcome.directory, "metrics.prom"))
                # the JSON twin round-trips through registry.merge(),
                # which `repro runs --stats` uses to aggregate a store
                with open(os.path.join(outcome.directory,
                                       "obs_metrics.json"), "w") as fh:
                    fh.write(job_reg.to_json())
                    fh.write("\n")
                if tracer is not None:
                    job_trace = Trace()
                    job_trace.spans = list(
                        tracer.trace.spans[span_start:])
                    job_trace.save(
                        os.path.join(outcome.directory, "trace.json"))
            except OSError:
                pass
    if registry is not None:
        registry.merge(job_reg)
    return outcome


def _execute_job(spec: JobSpec, store: RunStore,
                 cache: Optional[ResultCache],
                 db: Optional[PlacementDB],
                 checkpoint_every: int,
                 timeout: Optional[float],
                 resume: bool,
                 profile: bool,
                 attempt: int,
                 worker: Optional[str],
                 iteration_hook: Optional[Callable],
                 lease_timeout: float,
                 job_reg: MetricsRegistry) -> JobOutcome:
    # the budget covers design load too (a cold load once escaped it)
    deadline = None if timeout is None else time.monotonic() + timeout
    pid = os.getpid()

    if db is None:
        try:
            with trace_span("design.load", design=spec.design.name):
                db = spec.design.load()
        except Exception as exc:  # noqa: BLE001 — isolate bad designs
            return _record_design_failure(spec, store, exc, attempt,
                                          worker, lease_timeout)
    job_hash = spec.job_hash(db)

    if cache is not None:
        record = cache.lookup(job_hash)
        if record is not None:
            job_reg.counter(CACHE_HITS,
                            help="result-cache hits").inc()
            if record.artifact_error:
                job_reg.counter(CACHE_DEGRADED,
                                help="cache hits served without a "
                                     "Bookshelf artifact").inc()
            with EventLog(record.events_path) as events:
                events.emit(EventType.CACHE_HIT, job_hash=job_hash,
                            attempt=attempt, worker=worker, pid=pid)
            return JobOutcome(
                job_hash=job_hash, directory=record.directory,
                status=STATUS_COMPLETE, design=spec.design.name,
                cached=True, metrics=record.metrics,
                artifact_error=record.artifact_error,
            )
        job_reg.counter(CACHE_MISSES, help="result-cache misses").inc()

    try:
        handle = store.open_run(spec, job_hash, worker=worker,
                                lease_timeout=lease_timeout)
    except RunLocked as exc:
        # contention is a retryable failure: the scheduler backs off
        # and the other worker's result becomes our cache hit
        return JobOutcome(job_hash=job_hash,
                          directory=store.run_dir(job_hash),
                          status=STATUS_FAILED, design=spec.design.name,
                          error=str(exc))
    params = spec.effective_params()

    resumed_from = None
    try:  # the lease is released on every exit path (handle.close)
        resume_state = None
        if resume and os.path.exists(handle.checkpoint_path):
            try:
                ckpt = PlacerCheckpoint.load(handle.checkpoint_path,
                                             expect_job_hash=job_hash)
            except Exception as exc:  # noqa: BLE001 — failure isolation
                error = (f"checkpoint unusable: "
                         f"{type(exc).__name__}: {exc}")
                handle.events.emit(EventType.RUN_FAILED, error=error,
                                   worker=worker, pid=pid)
                handle.set_status(STATUS_FAILED, error=error,
                                  attempts=attempt)
                return JobOutcome(job_hash=job_hash,
                                  directory=handle.directory,
                                  status=STATUS_FAILED,
                                  design=spec.design.name, error=error)
            resume_state = ckpt.loop_state
            resumed_from = ckpt.iteration

        seen_recoveries = 0
        record_iteration = IterationRecorder(job_reg)

        def on_iteration(placer, info):
            nonlocal seen_recoveries
            record_iteration(placer, info)
            handle.touch_lease()
            extra = ({"level": info["level"]} if "level" in info else {})
            handle.events.emit(
                EventType.ITERATION,
                iteration=info["iteration"], hpwl=info["hpwl"],
                overflow=info["overflow"], status=info["status"],
                **extra,
            )
            if info["recoveries"] > seen_recoveries:
                seen_recoveries = info["recoveries"]
                handle.events.emit(EventType.RECOVERY,
                                   iteration=info["iteration"],
                                   recoveries=info["recoveries"])
            if checkpoint_every \
                    and info["iteration"] % checkpoint_every == 0:
                state = placer.capture_loop_state()
                PlacerCheckpoint(
                    job_hash=job_hash, iteration=info["iteration"],
                    loop_state=state,
                ).save(handle.checkpoint_path)
                job_reg.counter(CHECKPOINTS,
                                help="GP checkpoints persisted").inc()
                handle.events.emit(EventType.CHECKPOINT,
                                   iteration=info["iteration"])
            if iteration_hook is not None:
                iteration_hook(placer, info)
            if deadline is not None and time.monotonic() > deadline:
                handle.events.emit(EventType.TIMEOUT,
                                   iteration=info["iteration"],
                                   timeout=timeout)
                raise JobTimeout(
                    f"job {job_hash[:16]} exceeded {timeout}s at GP "
                    f"iteration {info['iteration']}"
                )

        handle.set_status(STATUS_RUNNING, attempts=attempt)
        handle.events.emit(
            EventType.RUN_START, job_hash=job_hash,
            design=spec.design.name, attempt=attempt,
            worker=worker, pid=pid,
        )
        if resumed_from is not None:
            handle.events.emit(EventType.RESUME, iteration=resumed_from)

        try:
            handle.events.emit(EventType.STAGE_START, stage="gp")
            if profile:
                from repro.perf import Profiler

                with Profiler() as prof:
                    result = DreamPlacer(db, params).run(
                        on_iteration=on_iteration,
                        resume_state=resume_state,
                    )
                handle.events.emit(EventType.PROFILE, ops=prof.as_dict())
            else:
                result = DreamPlacer(db, params).run(
                    on_iteration=on_iteration, resume_state=resume_state,
                )
        except JobTimeout as exc:
            handle.set_status(STATUS_TIMEOUT, error=str(exc),
                              attempts=attempt)
            return JobOutcome(job_hash=job_hash,
                              directory=handle.directory,
                              status=STATUS_TIMEOUT,
                              design=spec.design.name,
                              resumed_from=resumed_from, error=str(exc))
        except Exception as exc:  # noqa: BLE001 — failure isolation
            error = f"{type(exc).__name__}: {exc}"
            handle.events.emit(EventType.RUN_FAILED, error=error,
                               trace=traceback.format_exc(limit=5),
                               worker=worker, pid=pid)
            handle.set_status(STATUS_FAILED, error=error,
                              attempts=attempt)
            return JobOutcome(job_hash=job_hash,
                              directory=handle.directory,
                              status=STATUS_FAILED,
                              design=spec.design.name,
                              resumed_from=resumed_from, error=error)

        # stage telemetry for the non-iterative stages is emitted
        # post-hoc with the measured durations (DreamPlacer times them
        # internally)
        times = result.times
        handle.events.emit(EventType.STAGE_END, stage="gp",
                           seconds=times.global_place,
                           iterations=result.iterations)
        for stage, seconds in (("route", times.global_route),
                               ("lg", times.legalize),
                               ("dp", times.detailed)):
            if stage in spec.stages:
                handle.events.emit(EventType.STAGE_START, stage=stage)
                handle.events.emit(EventType.STAGE_END, stage=stage,
                                   seconds=seconds)
        if result.legality is not None:
            report = result.legality.as_dict()
            handle.events.emit(EventType.LEGALITY, stage="final",
                               **report)
            violations = (report["outside"] + report["off_row"]
                          + report["off_site"] + report["overlaps"])
            job_reg.gauge(LEGALITY_VIOLATIONS,
                          help="legality violations in the final "
                               "placement").set(violations)
            job_reg.gauge(FENCE_VIOLATIONS,
                          help="cells outside their fence region in "
                               "the final placement").set(
                report["fence_violations"])

        metrics = placement_result_metrics(result)
        try:
            handle.write_metrics(metrics)
        except Exception as exc:  # noqa: BLE001
            # without persisted metrics the run must not claim
            # completion: a "complete" directory with no metrics would
            # be an eternally-invalidated cache entry
            error = f"metrics write failed: {type(exc).__name__}: {exc}"
            handle.events.emit(EventType.RUN_FAILED, error=error,
                               worker=worker, pid=pid)
            handle.set_status(STATUS_FAILED, error=error,
                              attempts=attempt)
            return JobOutcome(job_hash=job_hash,
                              directory=handle.directory,
                              status=STATUS_FAILED,
                              design=spec.design.name,
                              resumed_from=resumed_from, error=error)

        artifact_error = None
        try:
            from repro.bookshelf import write_bookshelf

            write_bookshelf(db, handle.result_dir)
        except Exception as exc:  # noqa: BLE001 — best-effort artifact
            artifact_error = \
                f"result write failed: {type(exc).__name__}: {exc}"
            handle.events.emit(EventType.ARTIFACT_ERROR,
                               error=artifact_error,
                               worker=worker, pid=pid)
        handle.set_status(STATUS_COMPLETE, attempts=attempt,
                          artifact_error=artifact_error)
        handle.events.emit(EventType.RUN_COMPLETE,
                           hpwl=metrics["hpwl"]["final"],
                           iterations=metrics["iterations"],
                           recoveries=metrics["recoveries"],
                           worker=worker, pid=pid)
        return JobOutcome(job_hash=job_hash, directory=handle.directory,
                          status=STATUS_COMPLETE,
                          design=spec.design.name,
                          resumed_from=resumed_from, metrics=metrics,
                          artifact_error=artifact_error, result=result)
    finally:
        handle.close()
