"""On-disk GP-loop checkpoints: kill -9 a run, resume it bit-exactly.

PR 2 built exact in-memory ``state_dict()`` round-trips for every
optimizer, the LR scheduler, the density-weight controller and (now)
the convergence monitor; :class:`PlacerCheckpoint` serializes the whole
bundle — :meth:`repro.core.GlobalPlacer.capture_loop_state` — to disk.
Restoring into a freshly constructed placer for the *same* database,
parameters and code version replays the remaining iterations
bit-exactly, because every source of loop state is either in the
checkpoint (positions, optimizer internals, lambda/gamma, monitor
statistics, best-iterate snapshots, traces, recovery budget) or
deterministically derivable from the job spec (bin grid, operators,
clamp bounds).

The format is a versioned pickle: checkpoints are private artifacts of
a run directory, consumed only by the same toolkit version that wrote
them (the embedded job hash enforces this — the code version is part
of the hash).  Writes are atomic (temp + ``os.replace``) so a SIGKILL
mid-write leaves the previous checkpoint intact.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass, field
from typing import Optional

CHECKPOINT_VERSION = 1


@dataclass
class PlacerCheckpoint:
    """One serialized GP loop state, tagged with its job identity."""

    job_hash: str
    iteration: int
    loop_state: dict
    version: int = CHECKPOINT_VERSION
    created: float = field(default_factory=time.time)

    # ------------------------------------------------------------------
    def save(self, path: str) -> str:
        """Atomically write the checkpoint; returns ``path``."""
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as handle:
            pickle.dump(self, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        return path

    @staticmethod
    def load(path: str,
             expect_job_hash: Optional[str] = None) -> "PlacerCheckpoint":
        """Read and validate a checkpoint.

        ``expect_job_hash`` guards resume: a checkpoint written for a
        different job (or by a different code version — the hash covers
        it) is rejected rather than silently producing a wrong run.
        """
        with open(path, "rb") as handle:
            ckpt = pickle.load(handle)
        if not isinstance(ckpt, PlacerCheckpoint):
            raise ValueError(f"{path} is not a placer checkpoint")
        if ckpt.version != CHECKPOINT_VERSION:
            raise ValueError(
                f"checkpoint version {ckpt.version} unsupported "
                f"(expected {CHECKPOINT_VERSION})"
            )
        if expect_job_hash is not None and ckpt.job_hash != expect_job_hash:
            raise ValueError(
                "checkpoint belongs to a different job "
                f"({ckpt.job_hash[:16]} != {expect_job_hash[:16]}); "
                "the design, parameters or code version changed"
            )
        return ckpt
