"""Content-addressed result cache over a :class:`RunStore`.

The cache *is* the run store — a completed run directory whose job hash
matches the incoming job is a hit, so caching costs nothing beyond the
artifacts every run persists anyway.  The cache layer adds the policy:

- **hit**: run directory exists, status ``complete``, metrics readable
  — the stored metrics/artifacts are returned and no placement work
  runs (verified in tests by the absence of new ``iteration`` events).
- **miss**: no directory, or an interrupted (``running``/``failed``/
  ``timeout``) run — the job executes (possibly resuming a checkpoint).
- **invalidation**: a directory that claims completion but is corrupt
  (unreadable metrics, spec hash mismatch) is evicted and re-run.

Because the key is a *content* hash (netlist fingerprint + effective
params + code version), upgrading the toolkit or editing the design
naturally forks new cache entries instead of returning stale results.

The counters are mutated under a lock: the cache was written for one
serial driver, but the HTTP service reads and writes it from handler
threads concurrently with the dispatch thread, and ``hits += 1`` is a
read-modify-write that loses increments under that interleaving.
Reads of the plain integer attributes stay lock-free (they are single
attribute loads and only feed reporting).
"""

from __future__ import annotations

import os
import shutil
import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.runner.store import (
    STATUS_COMPLETE,
    RunRecord,
    RunStore,
    _read_json,
)


@dataclass
class CacheStats:
    """Hit/miss/invalidation counters for one cache lifetime."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    #: hits on runs whose metrics persisted but whose Bookshelf artifact
    #: write failed (``artifact_error`` in status) — served, but flagged
    degraded_hits: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def record_hit(self, degraded: bool = False) -> None:
        with self._lock:
            self.hits += 1
            if degraded:
                self.degraded_hits += 1

    def record_miss(self) -> None:
        with self._lock:
            self.misses += 1

    def record_invalidation(self, miss: bool = False) -> None:
        with self._lock:
            self.invalidations += 1
            if miss:
                self.misses += 1

    def as_dict(self) -> dict:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "invalidations": self.invalidations,
                    "degraded_hits": self.degraded_hits}


class ResultCache:
    """Content-addressed lookup of completed placement runs."""

    def __init__(self, store: RunStore):
        self.store = store
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def peek(self, job_hash: str) -> Optional[RunRecord]:
        """A completed, intact run for ``job_hash`` — without touching
        the hit/miss counters.

        The service's submit path uses this to answer "is this job
        already done?" before deciding whether to queue it; counting
        that probe as a miss would double-count against the miss the
        executor records when the queued job actually runs.
        """
        directory = self.store.run_dir(job_hash)
        if not os.path.isdir(directory):
            return None
        spec = _read_json(os.path.join(directory, "spec.json"))
        status = _read_json(os.path.join(directory, "status.json"))
        metrics = _read_json(os.path.join(directory, "metrics.json"))
        if (status or {}).get("status") != STATUS_COMPLETE:
            return None
        if metrics is None or (spec or {}).get("job_hash") != job_hash:
            return None
        return RunRecord(job_hash=job_hash, directory=directory,
                         spec=spec, status=status, metrics=metrics)

    def lookup(self, job_hash: str) -> Optional[RunRecord]:
        """A completed, intact run for ``job_hash`` — or None (miss)."""
        directory = self.store.run_dir(job_hash)
        if not os.path.isdir(directory):
            self.stats.record_miss()
            return None
        spec = _read_json(os.path.join(directory, "spec.json"))
        status = _read_json(os.path.join(directory, "status.json"))
        metrics = _read_json(os.path.join(directory, "metrics.json"))
        state = (status or {}).get("status")
        if state != STATUS_COMPLETE:
            # interrupted or failed run: not a hit, but not corrupt
            # either — the executor may resume its checkpoint
            self.stats.record_miss()
            return None
        stored_hash = (spec or {}).get("job_hash")
        if metrics is None or stored_hash != job_hash:
            # claims completion but is unreadable or belongs to a
            # different job (hash-prefix collision / manual tampering)
            self.stats.record_invalidation(miss=True)
            return None
        self.stats.record_hit(
            degraded=bool((status or {}).get("artifact_error")))
        return RunRecord(job_hash=job_hash, directory=directory,
                         spec=spec, status=status, metrics=metrics)

    def invalidate(self, job_hash: str) -> bool:
        """Explicitly evict one entry (delete the run directory)."""
        directory = self.store.run_dir(job_hash)
        if not os.path.isdir(directory):
            return False
        shutil.rmtree(directory)
        self.stats.record_invalidation()
        return True
