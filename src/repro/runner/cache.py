"""Content-addressed result cache over a :class:`RunStore`.

The cache *is* the run store — a completed run directory whose job hash
matches the incoming job is a hit, so caching costs nothing beyond the
artifacts every run persists anyway.  The cache layer adds the policy:

- **hit**: run directory exists, status ``complete``, metrics readable
  — the stored metrics/artifacts are returned and no placement work
  runs (verified in tests by the absence of new ``iteration`` events).
- **miss**: no directory, or an interrupted (``running``/``failed``/
  ``timeout``) run — the job executes (possibly resuming a checkpoint).
- **invalidation**: a directory that claims completion but is corrupt
  (unreadable metrics, spec hash mismatch) is evicted and re-run.

Because the key is a *content* hash (netlist fingerprint + effective
params + code version), upgrading the toolkit or editing the design
naturally forks new cache entries instead of returning stale results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.runner.store import STATUS_COMPLETE, RunRecord, RunStore


@dataclass
class CacheStats:
    """Hit/miss/invalidation counters for one cache lifetime."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    #: hits on runs whose metrics persisted but whose Bookshelf artifact
    #: write failed (``artifact_error`` in status) — served, but flagged
    degraded_hits: int = 0

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "invalidations": self.invalidations,
                "degraded_hits": self.degraded_hits}


class ResultCache:
    """Content-addressed lookup of completed placement runs."""

    def __init__(self, store: RunStore):
        self.store = store
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def lookup(self, job_hash: str) -> Optional[RunRecord]:
        """A completed, intact run for ``job_hash`` — or None (miss)."""
        import os

        directory = self.store.run_dir(job_hash)
        if not os.path.isdir(directory):
            self.stats.misses += 1
            return None
        from repro.runner.store import _read_json

        spec = _read_json(os.path.join(directory, "spec.json"))
        status = _read_json(os.path.join(directory, "status.json"))
        metrics = _read_json(os.path.join(directory, "metrics.json"))
        state = (status or {}).get("status")
        if state != STATUS_COMPLETE:
            # interrupted or failed run: not a hit, but not corrupt
            # either — the executor may resume its checkpoint
            self.stats.misses += 1
            return None
        stored_hash = (spec or {}).get("job_hash")
        if metrics is None or stored_hash != job_hash:
            # claims completion but is unreadable or belongs to a
            # different job (hash-prefix collision / manual tampering)
            self.stats.invalidations += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        if (status or {}).get("artifact_error"):
            # metrics are intact so the hit is served, but the caller
            # can see the run has no Bookshelf artifact
            self.stats.degraded_hits += 1
        return RunRecord(job_hash=job_hash, directory=directory,
                         spec=spec, status=status, metrics=metrics)

    def invalidate(self, job_hash: str) -> bool:
        """Explicitly evict one entry (delete the run directory)."""
        import os
        import shutil

        directory = self.store.run_dir(job_hash)
        if not os.path.isdir(directory):
            return False
        shutil.rmtree(directory)
        self.stats.invalidations += 1
        return True
