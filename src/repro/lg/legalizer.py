"""Legalization orchestrator: Tetris pass then Abacus refinement."""

from __future__ import annotations

import numpy as np

from repro.lg.abacus import abacus_legalize
from repro.lg.macro_legalize import legalize_macros, movable_macro_index
from repro.lg.tetris import tetris_legalize
from repro.netlist.database import PlacementDB


def legalize(db: PlacementDB, x: np.ndarray | None = None,
             y: np.ndarray | None = None,
             refine: bool = True) -> tuple[np.ndarray, np.ndarray]:
    """Legalize movable cells, following Section III-E.

    Movable macros (multi-row cells) are legalized greedily first and
    then treated as fixed obstacles.  The Tetris-like greedy pass
    assigns standard cells to rows and removes overlaps, then (if
    ``refine``) Abacus minimizes displacement within rows using the
    pre-legalization positions as targets.  Returns legal ``(x, y)``.
    """
    desired_x = db.cell_x.copy() if x is None else np.asarray(x).copy()
    desired_y = db.cell_y.copy() if y is None else np.asarray(y).copy()

    macros = movable_macro_index(db)
    if macros.size:
        mx, my, _ = legalize_macros(db, desired_x, desired_y)
        desired_x[macros] = mx[macros]
        desired_y[macros] = my[macros]
        # std-cell legalizers see the macros as fixed obstacles
        work = db.clone()
        work.movable = work.movable.copy()
        work.movable[macros] = False
        work.cell_x[macros] = mx[macros]
        work.cell_y[macros] = my[macros]
    else:
        work = db

    lx, ly, row_of_cell = tetris_legalize(work, desired_x, desired_y)
    if refine:
        lx, ly = abacus_legalize(
            work, lx, ly, row_of_cell, desired_x=desired_x,
        )
    if macros.size:
        lx[macros] = desired_x[macros]
        ly[macros] = desired_y[macros]
    return lx, ly
