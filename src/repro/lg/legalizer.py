"""Legalization orchestrator: Tetris pass then Abacus refinement.

With fences, legalization runs once per cell group: every fence group
over the row segments clipped to its fence rectangle, and the default
group over the core rows with the fence rectangles subtracted as
blockers — fences are exclusive, so a fence-legal GP result stays
fence-legal through legalization.
"""

from __future__ import annotations

import numpy as np

from repro.lg.abacus import abacus_legalize
from repro.lg.macro_legalize import legalize_macros, movable_macro_index
from repro.lg.rows import build_row_segments, clip_segments_to_fence
from repro.lg.tetris import tetris_legalize
from repro.netlist.database import PlacementDB
from repro.perf.profiler import profiled


def _fence_blocker_rects(db: PlacementDB, fences) -> list[tuple]:
    """Fence rectangles snapped *outward* to the site grid, so the
    default group's free segments end on-grid at every fence edge."""
    region = db.region
    site = region.site_width
    rects = []
    for fence in fences:
        xl = region.xl + np.floor((fence.xl - region.xl) / site + 1e-9) * site
        xh = region.xl + np.ceil((fence.xh - region.xl) / site - 1e-9) * site
        rects.append((float(xl), fence.yl, float(xh), fence.yh))
    return rects


def legalize(db: PlacementDB, x: np.ndarray | None = None,
             y: np.ndarray | None = None,
             refine: bool = True,
             fences=None) -> tuple[np.ndarray, np.ndarray]:
    """Legalize movable cells, following Section III-E.

    Movable macros (multi-row cells) are legalized greedily first and
    then treated as fixed obstacles.  The Tetris-like greedy pass
    assigns standard cells to rows and removes overlaps, then (if
    ``refine``) Abacus minimizes displacement within rows using the
    pre-legalization positions as targets.  With ``fences`` (a list of
    :class:`~repro.core.fence.FenceRegion`), each fence group is
    legalized inside its fence and the default group outside all of
    them.  Returns legal ``(x, y)``.
    """
    desired_x = db.cell_x.copy() if x is None else np.asarray(x).copy()
    desired_y = db.cell_y.copy() if y is None else np.asarray(y).copy()

    macros = movable_macro_index(db)
    if macros.size:
        if fences:
            from repro.core.fence import fence_of_cell
            if (fence_of_cell(db, fences)[macros] >= 0).any():
                raise NotImplementedError(
                    "movable macros inside fence regions are not supported"
                )
        with profiled("lg.macros"):
            mx, my, _ = legalize_macros(db, desired_x, desired_y)
        desired_x[macros] = mx[macros]
        desired_y[macros] = my[macros]
        # std-cell legalizers see the macros as fixed obstacles
        work = db.clone()
        work.movable = work.movable.copy()
        work.movable[macros] = False
        work.cell_x[macros] = mx[macros]
        work.cell_y[macros] = my[macros]
    else:
        work = db

    if not fences:
        with profiled("lg.tetris"):
            lx, ly, row_of_cell = tetris_legalize(work, desired_x, desired_y)
        if refine:
            with profiled("lg.abacus"):
                lx, ly = abacus_legalize(
                    work, lx, ly, row_of_cell, desired_x=desired_x,
                )
    else:
        from repro.core.fence import fence_of_cell

        membership = fence_of_cell(work, fences)
        movable = np.flatnonzero(work.movable)
        base = build_row_segments(work)
        default_segments = build_row_segments(
            work, extra_blockers=_fence_blocker_rects(work, fences)
        )
        # (cells, segments) per group: one per fence, then the default
        groups = [
            (movable[membership[movable] == f],
             clip_segments_to_fence(work, base, fence))
            for f, fence in enumerate(fences)
        ]
        groups.append((movable[membership[movable] < 0], default_segments))

        lx = desired_x.copy()
        ly = desired_y.copy()
        row_of_cell = np.full(work.num_cells, -1, dtype=np.int64)
        with profiled("lg.tetris"):
            for cells, segments in groups:
                if cells.size == 0:
                    continue
                lx, ly, rows = tetris_legalize(
                    work, lx, ly, cells=cells, segments=segments,
                )
                row_of_cell[cells] = rows[cells]
        if refine:
            with profiled("lg.abacus"):
                for cells, segments in groups:
                    if cells.size == 0:
                        continue
                    lx, ly = abacus_legalize(
                        work, lx, ly, row_of_cell, desired_x=desired_x,
                        cells=cells, segments=segments,
                    )

    if macros.size:
        lx[macros] = desired_x[macros]
        ly[macros] = desired_y[macros]
    return lx, ly
