"""Tetris-like greedy legalization (first step of Section III-E).

Cells are processed in left-to-right order of their global-placement x;
each is assigned the minimum-displacement legal slot among nearby rows,
packing rows greedily like falling Tetris pieces (NTUplace3's scheme).
"""

from __future__ import annotations

import numpy as np

from repro.lg.rows import build_row_segments
from repro.netlist.database import PlacementDB


class _RowState:
    """Per-row free segments with monotone fill cursors."""

    __slots__ = ("y", "segments")

    def __init__(self, y: float, segments):
        self.y = y
        # [start, end, cursor] per free segment
        self.segments = [[s.start, s.end, s.start] for s in segments]

    def best_slot(self, desired_x: float, width: float, site: float,
                  region_xl: float, packed: bool = False):
        """Cheapest feasible x in this row, or None.

        ``packed`` ignores the desired x and fills from the cursor —
        the fallback mode that always succeeds when capacity suffices
        (greedy placement at the desired x can strand the space left of
        each row's cursor on heavily clustered inputs).
        """
        best = None
        for seg in self.segments:
            start, end, cursor = seg
            pos = cursor if packed else max(cursor, desired_x)
            # snap up to the site grid (never below the cursor)
            snapped = region_xl + np.ceil((pos - region_xl) / site - 1e-9) * site
            pos = max(snapped, cursor)
            if pos + width > end + 1e-9:
                # tail of the segment is full: fall back to the leftmost
                # still-free position (floor-snapped), if the cell fits
                fallback = end - width
                fallback = region_xl + np.floor(
                    (fallback - region_xl) / site + 1e-9
                ) * site
                if fallback < cursor - 1e-9:
                    continue
                pos = fallback
            cost = abs(pos - desired_x)
            if best is None or cost < best[0]:
                best = (cost, pos, seg)
        return best

    def commit(self, seg, pos: float, width: float) -> None:
        seg[2] = pos + width


def tetris_legalize(db: PlacementDB,
                    x: np.ndarray | None = None,
                    y: np.ndarray | None = None,
                    row_window: int = 8,
                    packed: bool = False,
                    cells: np.ndarray | None = None,
                    segments=None):
    """Legalize movable single-row cells.

    Returns ``(x, y, row_of_cell)`` where ``row_of_cell[i] = -1`` for
    non-movable cells.  If the greedy pass strands too much space (it
    never places a cell left of a row's fill cursor), the whole pass is
    retried in ``packed`` mode, which fills rows from the left and
    succeeds whenever the total capacity suffices.  Raises
    ``RuntimeError`` only if even packed mode cannot fit the cells.

    ``cells`` restricts the pass to a subset of the movable cells and
    ``segments`` overrides the row free space (both together are how
    the fence-aware legalizer runs one pass per fence group over that
    group's clipped segments).
    """
    region = db.region
    x = db.cell_x.copy() if x is None else np.asarray(x, dtype=np.float64).copy()
    y = db.cell_y.copy() if y is None else np.asarray(y, dtype=np.float64).copy()

    movable = db.movable_index if cells is None \
        else np.asarray(cells, dtype=np.int64)
    tall = db.cell_height[movable] > region.row_height + 1e-9
    if tall.any():
        raise NotImplementedError(
            "tetris_legalize only handles single-row movable cells; "
            f"{int(tall.sum())} movable cells are taller than a row"
        )

    rows = [
        _RowState(region.yl + r * region.row_height, segs)
        for r, segs in enumerate(
            build_row_segments(db) if segments is None else segments
        )
    ]
    num_rows = len(rows)
    site = region.site_width
    row_of_cell = np.full(db.num_cells, -1, dtype=np.int64)

    order = movable[np.argsort(x[movable], kind="stable")]
    for cell in order:
        desired_x = x[cell]
        desired_y = y[cell]
        width = db.cell_width[cell]
        center_row = int(np.clip(
            np.round((desired_y - region.yl) / region.row_height),
            0, num_rows - 1,
        ))
        window = row_window
        placed = False
        while not placed:
            lo = max(center_row - window, 0)
            hi = min(center_row + window + 1, num_rows)
            best = None
            for r in range(lo, hi):
                slot = rows[r].best_slot(desired_x, width, site,
                                         region.xl, packed=packed)
                if slot is None:
                    continue
                x_cost, pos, seg = slot
                cost = x_cost + abs(rows[r].y - desired_y)
                if best is None or cost < best[0]:
                    best = (cost, r, pos, seg)
            if best is not None:
                _, r, pos, seg = best
                rows[r].commit(seg, pos, width)
                x[cell] = pos
                y[cell] = rows[r].y
                row_of_cell[cell] = r
                placed = True
            elif lo == 0 and hi == num_rows:
                if not packed:
                    # greedy stranded too much space; pack from the left
                    return tetris_legalize(db, x, y, row_window,
                                           packed=True, cells=cells,
                                           segments=segments)
                raise RuntimeError(
                    f"tetris legalization failed for cell "
                    f"{db.cell_names[cell]!r} (width {width}); "
                    "design may be over-utilized"
                )
            else:
                window *= 2
    return x, y, row_of_cell
