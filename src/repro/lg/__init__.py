"""Legalization (Section III-E).

A Tetris-like greedy pass (as in NTUplace3) assigns every movable cell
to a row and a legal, non-overlapping interval; an Abacus row-based pass
(Spindler et al.) then minimizes displacement within each row by
clustering.  A checker validates the invariants the detailed placer
relies on.
"""

from repro.lg.tetris import tetris_legalize
from repro.lg.abacus import abacus_legalize
from repro.lg.checker import (
    LegalityError,
    LegalityReport,
    check_legal,
    check_legal_reference,
)
from repro.lg.legalizer import legalize

__all__ = [
    "tetris_legalize",
    "abacus_legalize",
    "check_legal",
    "check_legal_reference",
    "LegalityError",
    "LegalityReport",
    "legalize",
]
