"""Abacus row-based legalization (second step of Section III-E).

Spindler et al.'s dynamic clustering: cells assigned to a row are placed
at their desired x and merged into clusters whenever they overlap; each
cluster sits at the weighted mean of its members' desired positions,
clamped into the free segment — yielding minimal total squared
displacement within the row.
"""

from __future__ import annotations

import numpy as np

from repro.lg.rows import build_row_segments
from repro.netlist.database import PlacementDB


class _Cluster:
    __slots__ = ("e", "q", "w", "x", "cells")

    def __init__(self):
        self.e = 0.0  # total weight
        self.q = 0.0  # weighted sum of (desired - offset in cluster)
        self.w = 0.0  # total width
        self.x = 0.0
        self.cells: list[int] = []

    def add_cell(self, cell: int, desired: float, width: float,
                 weight: float) -> None:
        self.e += weight
        self.q += weight * (desired - self.w)
        self.w += width
        self.cells.append(cell)

    def add_cluster(self, other: "_Cluster") -> None:
        self.q += other.q - other.e * self.w
        self.e += other.e
        self.w += other.w
        self.cells.extend(other.cells)

    def place(self, lo: float, hi: float) -> None:
        self.x = self.q / self.e if self.e > 0 else lo
        self.x = min(max(self.x, lo), max(hi - self.w, lo))


def _legalize_segment(cells, desired_x, widths, weights, lo, hi):
    """Abacus within one free segment; returns x per cell (packed)."""
    clusters: list[_Cluster] = []
    for cell in cells:
        cluster = _Cluster()
        cluster.add_cell(cell, desired_x[cell], widths[cell], weights[cell])
        cluster.place(lo, hi)
        clusters.append(cluster)
        while len(clusters) >= 2 and \
                clusters[-2].x + clusters[-2].w > clusters[-1].x + 1e-9:
            prev = clusters[-2]
            prev.add_cluster(clusters[-1])
            clusters.pop()
            prev.place(lo, hi)
    out = {}
    for cluster in clusters:
        cursor = cluster.x
        for cell in cluster.cells:
            out[cell] = cursor
            cursor += widths[cell]
    return out


def abacus_legalize(db: PlacementDB, x: np.ndarray, y: np.ndarray,
                    row_of_cell: np.ndarray,
                    desired_x: np.ndarray | None = None,
                    desired_y: np.ndarray | None = None,
                    cells: np.ndarray | None = None,
                    segments=None):
    """Refine a row-assigned placement with Abacus clustering.

    ``x/y/row_of_cell`` come from :func:`tetris_legalize` (they define
    which segment each cell occupies); ``desired_*`` are the positions
    to approach (default: the current global-placement result in the
    database).  ``cells``/``segments`` restrict the refinement to one
    cell group over its own free space (the fence-aware path).
    Returns new ``(x, y)``.
    """
    region = db.region
    x = np.asarray(x, dtype=np.float64).copy()
    y = np.asarray(y, dtype=np.float64).copy()
    desired_x = db.cell_x if desired_x is None else np.asarray(desired_x)
    weights = np.maximum(
        np.diff(db.cell2pin_start).astype(np.float64), 1.0
    )  # pin count as cluster weight
    widths = db.cell_width
    site = region.site_width

    in_group = None
    if cells is not None:
        in_group = np.zeros(db.num_cells, dtype=bool)
        in_group[np.asarray(cells, dtype=np.int64)] = True

    if segments is None:
        segments = build_row_segments(db)
    for row, row_segments in enumerate(segments):
        row_mask = row_of_cell == row
        if in_group is not None:
            row_mask &= in_group
        members = np.flatnonzero(row_mask)
        if members.size == 0:
            continue
        members = members[np.argsort(x[members], kind="stable")]
        for seg in row_segments:
            inside = members[
                (x[members] >= seg.start - 1e-9)
                & (x[members] < seg.end - 1e-9)
            ]
            if inside.size == 0:
                continue
            placed = _legalize_segment(
                list(inside), desired_x, widths, weights,
                seg.start, seg.end,
            )
            # snap each packed run onto the site grid without overlap
            prev_end = seg.start
            for cell in inside:
                pos = placed[cell]
                snapped = region.xl + np.floor(
                    (pos - region.xl) / site + 1e-9
                ) * site
                pos = max(snapped, prev_end)
                pos = min(pos, seg.end - widths[cell])
                x[cell] = pos
                prev_end = pos + widths[cell]
    return x, y
