"""Row free-space bookkeeping shared by the legalizers.

Rows are split into free segments by fixed cells/macros; legalizers
allocate cell intervals from these segments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netlist.database import PlacementDB


@dataclass
class Segment:
    """A free interval [start, end) in one row."""

    row: int
    start: float
    end: float

    @property
    def width(self) -> float:
        return self.end - self.start


def build_row_segments(db: PlacementDB,
                       extra_blockers=()) -> list[list[Segment]]:
    """Free segments per row after subtracting fixed cells.

    Terminals with zero area are ignored; any fixed cell overlapping a
    row blocks the overlapped x interval.  ``extra_blockers`` adds
    rectangles ``(xl, yl, xh, yh)`` treated like fixed cells (e.g.
    already-legalized movable macros).
    """
    region = db.region
    num_rows = region.num_rows
    blockers: list[list[tuple[float, float]]] = [[] for _ in range(num_rows)]
    rects = [
        (db.cell_x[i], db.cell_y[i],
         db.cell_x[i] + db.cell_width[i],
         db.cell_y[i] + db.cell_height[i])
        for i in db.fixed_index
        if db.cell_width[i] > 0 and db.cell_height[i] > 0
    ]
    rects.extend(extra_blockers)
    for rect_xl, rect_yl, rect_xh, rect_yh in rects:
        xl = max(rect_xl, region.xl)
        xh = min(rect_xh, region.xh)
        if xh <= xl:
            continue
        row_lo = int(np.floor((rect_yl - region.yl) / region.row_height))
        row_hi = int(np.ceil((rect_yh - region.yl) / region.row_height))
        for row in range(max(row_lo, 0), min(row_hi, num_rows)):
            blockers[row].append((xl, xh))

    segments: list[list[Segment]] = []
    for row in range(num_rows):
        free: list[Segment] = []
        cursor = region.xl
        for xl, xh in sorted(blockers[row]):
            if xl > cursor:
                free.append(Segment(row, cursor, xl))
            cursor = max(cursor, xh)
        if cursor < region.xh:
            free.append(Segment(row, cursor, region.xh))
        segments.append(free)
    return segments


def clip_segments_to_fence(db: PlacementDB,
                           segments: list[list[Segment]],
                           fence) -> list[list[Segment]]:
    """Restrict row segments to a fence rectangle.

    Only rows lying fully inside the fence's y-range survive, and the
    x-bounds are snapped *inward* to the site grid so every position a
    legalizer derives from a clipped segment stays on-grid and inside
    the fence.
    """
    region = db.region
    site = region.site_width
    fence_xl = region.xl + np.ceil(
        (fence.xl - region.xl) / site - 1e-9
    ) * site
    fence_xh = region.xl + np.floor(
        (fence.xh - region.xl) / site + 1e-9
    ) * site
    clipped: list[list[Segment]] = [[] for _ in segments]
    for row, row_segments in enumerate(segments):
        row_yl = region.yl + row * region.row_height
        if row_yl < fence.yl - 1e-9 or \
                row_yl + region.row_height > fence.yh + 1e-9:
            continue
        for seg in row_segments:
            start = max(seg.start, fence_xl)
            end = min(seg.end, fence_xh)
            if end > start + 1e-9:
                clipped[row].append(Segment(row, start, end))
    return clipped
