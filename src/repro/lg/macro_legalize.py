"""Greedy legalization of movable macros (multi-row cells).

Macros are legalized before standard cells: each macro, in decreasing
area order, is snapped to the row/site grid and placed at the nearest
non-overlapping position found by an expanding ring search.  Legalized
macros then act as fixed obstacles for the row-based standard-cell
legalizers.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.boxes import rect_overlap_area
from repro.netlist.database import PlacementDB


def movable_macro_index(db: PlacementDB) -> np.ndarray:
    """Indices of movable cells taller than one row."""
    eps = 1e-9
    return np.flatnonzero(
        db.movable & (db.cell_height > db.region.row_height + eps)
    )


def _overlaps_any(x, y, w, h, obstacles) -> bool:
    for ox, oy, ow, oh in obstacles:
        if rect_overlap_area(x, y, x + w, y + h,
                             ox, oy, ox + ow, oy + oh) > 1e-9:
            return True
    return False


def legalize_macros(db: PlacementDB,
                    x: np.ndarray | None = None,
                    y: np.ndarray | None = None,
                    max_radius: int | None = None):
    """Legalize multi-row movable cells; returns ``(x, y, macro_ids)``.

    Raises ``RuntimeError`` if a macro cannot be placed within the
    search radius (default: the whole region).
    """
    region = db.region
    x = db.cell_x.copy() if x is None else np.asarray(x, dtype=np.float64).copy()
    y = db.cell_y.copy() if y is None else np.asarray(y, dtype=np.float64).copy()
    macros = movable_macro_index(db)
    if macros.size == 0:
        return x, y, macros

    site = region.site_width
    row = region.row_height
    if max_radius is None:
        max_radius = max(region.num_sites_per_row, region.num_rows)

    obstacles = [
        (db.cell_x[i], db.cell_y[i], db.cell_width[i], db.cell_height[i])
        for i in db.fixed_index
        if db.cell_width[i] > 0 and db.cell_height[i] > 0
    ]

    order = macros[np.argsort(-db.cell_area[macros], kind="stable")]
    for macro in order:
        w = db.cell_width[macro]
        h = db.cell_height[macro]
        # snap the desired position onto the site/row grid, inside
        base_x, base_y = region.clamp_cells(
            np.array([x[macro]]), np.array([y[macro]]),
            np.array([w]), np.array([h]),
        )
        col0 = int(round((base_x[0] - region.xl) / site))
        row0 = int(round((base_y[0] - region.yl) / row))
        placed = False
        for radius in range(max_radius + 1):
            ring = []
            if radius == 0:
                ring.append((col0, row0))
            else:
                for d in range(-radius, radius + 1):
                    ring.append((col0 + d, row0 - radius))
                    ring.append((col0 + d, row0 + radius))
                    ring.append((col0 - radius, row0 + d))
                    ring.append((col0 + radius, row0 + d))
            for col, band in ring:
                cx = region.xl + col * site
                cy = region.yl + band * row
                if cx < region.xl - 1e-9 or cy < region.yl - 1e-9:
                    continue
                if cx + w > region.xh + 1e-9 or cy + h > region.yh + 1e-9:
                    continue
                if _overlaps_any(cx, cy, w, h, obstacles):
                    continue
                x[macro] = cx
                y[macro] = cy
                obstacles.append((cx, cy, w, h))
                placed = True
                break
            if placed:
                break
        if not placed:
            raise RuntimeError(
                f"macro legalization failed for "
                f"{db.cell_names[macro]!r} ({w} x {h})"
            )
    return x, y, macros
