"""Placement legality checking."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.netlist.database import PlacementDB


@dataclass
class LegalityReport:
    """Outcome of a legality check."""

    legal: bool
    outside: int = 0
    off_row: int = 0
    off_site: int = 0
    overlaps: int = 0
    messages: list[str] = field(default_factory=list)


def check_legal(db: PlacementDB, x: np.ndarray | None = None,
                y: np.ndarray | None = None,
                check_sites: bool = True) -> LegalityReport:
    """Verify the movable cells are inside, row/site aligned, overlap-free.

    Overlaps are checked movable-vs-movable and movable-vs-fixed via a
    sweep over row occupancy.
    """
    region = db.region
    x = db.cell_x if x is None else np.asarray(x)
    y = db.cell_y if y is None else np.asarray(y)
    report = LegalityReport(legal=True)
    movable = db.movable_index
    w = db.cell_width
    h = db.cell_height

    inside = region.contains(x[movable], y[movable], w[movable], h[movable])
    report.outside = int((~inside).sum())
    if report.outside:
        report.messages.append(f"{report.outside} cells outside region")

    rel_y = (y[movable] - region.yl) / region.row_height
    off_row = np.abs(rel_y - np.round(rel_y)) > 1e-6
    report.off_row = int(off_row.sum())
    if report.off_row:
        report.messages.append(f"{report.off_row} cells off row grid")

    if check_sites:
        rel_x = (x[movable] - region.xl) / region.site_width
        off_site = np.abs(rel_x - np.round(rel_x)) > 1e-6
        report.off_site = int(off_site.sum())
        if report.off_site:
            report.messages.append(f"{report.off_site} cells off site grid")

    # overlap sweep per row band
    overlaps = 0
    boxes = []
    for i in movable:
        if w[i] > 0 and h[i] > 0:
            boxes.append((x[i], y[i], x[i] + w[i], y[i] + h[i], i, True))
    for i in db.fixed_index:
        if w[i] > 0 and h[i] > 0:
            boxes.append((x[i], y[i], x[i] + w[i], y[i] + h[i], i, False))
    # bucket boxes by row band to keep the pairwise check local
    bands: dict[int, list] = {}
    for box in boxes:
        lo = int(np.floor((box[1] - region.yl) / region.row_height))
        hi = int(np.ceil((box[3] - region.yl) / region.row_height))
        for band in range(lo, max(hi, lo + 1)):
            bands.setdefault(band, []).append(box)
    eps = 1e-6
    seen: set[tuple[int, int]] = set()
    for band_boxes in bands.values():
        band_boxes.sort(key=lambda b: b[0])
        for i, a in enumerate(band_boxes):
            for b in band_boxes[i + 1:]:
                if b[0] >= a[2] - eps:
                    break
                if not (a[5] or b[5]):
                    continue  # fixed-fixed overlaps are benign
                if min(a[3], b[3]) - max(a[1], b[1]) > eps:
                    key = (min(a[4], b[4]), max(a[4], b[4]))
                    if key not in seen:
                        seen.add(key)
                        overlaps += 1
    report.overlaps = overlaps
    if overlaps:
        report.messages.append(f"{overlaps} overlapping cell pairs")

    report.legal = (
        report.outside == 0 and report.off_row == 0
        and report.off_site == 0 and report.overlaps == 0
    )
    return report
