"""Placement legality checking.

Two implementations of the same contract live here:

- :func:`check_legal` — the production checker: a vectorized
  sweep-line over row bands (NumPy sort/diff; no per-cell Python
  loop on the clean path) that also understands fence regions.
- :func:`check_legal_reference` — the original per-cell Python
  sweep, kept as the oracle for the determinism tests and as the
  baseline of ``benchmarks/bench_legality.py``.

Both produce bit-identical :class:`LegalityReport` values on any
placement (the vectorized overlap sweep falls back to the exact
pairwise count only inside row bands it has already proven dirty, so
the counts agree even on heavily overlapping inputs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.netlist.database import PlacementDB

_EPS = 1e-6


class LegalityError(RuntimeError):
    """A flow stage produced an illegal placement (the legality gate).

    Carries the failing :class:`LegalityReport` as ``report`` and the
    stage name as ``stage``.
    """

    def __init__(self, stage: str, report: "LegalityReport"):
        super().__init__(
            f"illegal placement after {stage}: "
            + "; ".join(report.messages)
        )
        self.stage = stage
        self.report = report


@dataclass
class LegalityReport:
    """Outcome of a legality check."""

    legal: bool
    outside: int = 0
    off_row: int = 0
    off_site: int = 0
    overlaps: int = 0
    fence_violations: int = 0
    messages: list[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        """JSON-safe view (run metrics / event payloads)."""
        return {
            "legal": bool(self.legal),
            "outside": int(self.outside),
            "off_row": int(self.off_row),
            "off_site": int(self.off_site),
            "overlaps": int(self.overlaps),
            "fence_violations": int(self.fence_violations),
            "messages": list(self.messages),
        }


def count_fence_violations(db: PlacementDB, fences, x: np.ndarray,
                           y: np.ndarray) -> int:
    """Cells placed outside the fence region they are assigned to."""
    violations = 0
    for fence in fences:
        cells = np.asarray(list(fence.cells), dtype=np.int64)
        if cells.size == 0:
            continue
        ok = (
            (x[cells] >= fence.xl - _EPS)
            & (x[cells] + db.cell_width[cells] <= fence.xh + _EPS)
            & (y[cells] >= fence.yl - _EPS)
            & (y[cells] + db.cell_height[cells] <= fence.yh + _EPS)
        )
        violations += int((~ok).sum())
    return violations


def _alignment_checks(db: PlacementDB, x, y, check_sites, report) -> None:
    """Inside/row/site checks (shared: already vectorized)."""
    region = db.region
    movable = db.movable_index
    w = db.cell_width
    h = db.cell_height

    inside = region.contains(x[movable], y[movable], w[movable], h[movable])
    report.outside = int((~inside).sum())
    if report.outside:
        report.messages.append(f"{report.outside} cells outside region")

    rel_y = (y[movable] - region.yl) / region.row_height
    off_row = np.abs(rel_y - np.round(rel_y)) > _EPS
    report.off_row = int(off_row.sum())
    if report.off_row:
        report.messages.append(f"{report.off_row} cells off row grid")

    if check_sites:
        rel_x = (x[movable] - region.xl) / region.site_width
        off_site = np.abs(rel_x - np.round(rel_x)) > _EPS
        report.off_site = int(off_site.sum())
        if report.off_site:
            report.messages.append(f"{report.off_site} cells off site grid")


def _finalize(report: LegalityReport) -> LegalityReport:
    if report.overlaps:
        report.messages.append(f"{report.overlaps} overlapping cell pairs")
    if report.fence_violations:
        report.messages.append(
            f"{report.fence_violations} cells outside their fence region"
        )
    report.legal = (
        report.outside == 0 and report.off_row == 0
        and report.off_site == 0 and report.overlaps == 0
        and report.fence_violations == 0
    )
    return report


def _count_band_pairs(band_boxes, seen: set, eps: float) -> int:
    """Exact overlapping-pair count within one row band (the oracle).

    ``band_boxes`` are ``(xl, yl, xh, yh, index, movable)`` tuples
    sorted by ``xl``; pairs already in ``seen`` (found via another
    band) are not recounted.
    """
    overlaps = 0
    for i, a in enumerate(band_boxes):
        for b in band_boxes[i + 1:]:
            if b[0] >= a[2] - eps:
                break
            if not (a[5] or b[5]):
                continue  # fixed-fixed overlaps are benign
            if min(a[3], b[3]) - max(a[1], b[1]) > eps:
                key = (min(a[4], b[4]), max(a[4], b[4]))
                if key not in seen:
                    seen.add(key)
                    overlaps += 1
    return overlaps


def check_legal(db: PlacementDB, x: np.ndarray | None = None,
                y: np.ndarray | None = None,
                check_sites: bool = True,
                fences=None) -> LegalityReport:
    """Verify the movable cells are inside, aligned, overlap-free —
    and, when ``fences`` (a list of
    :class:`~repro.core.fence.FenceRegion`) is given, that every
    fenced cell sits inside its assigned fence.

    The overlap check is a vectorized sweep-line: every box is
    expanded into the row bands it spans with ``np.repeat``, the band
    entries are ``lexsort``-ed by ``(band, xl)``, and a per-band
    running maximum of the right edges (a shifted
    ``np.maximum.accumulate`` reset at band boundaries via
    ``np.diff``) flags bands that contain *any* x-adjacent pair.
    Clean bands — all of them, on a legal placement — are never
    touched again; only proven-dirty bands run the exact pairwise
    count, so the report is bit-identical to
    :func:`check_legal_reference` at a fraction of its cost.
    """
    region = db.region
    x = db.cell_x if x is None else np.asarray(x)
    y = db.cell_y if y is None else np.asarray(y)
    report = LegalityReport(legal=True)
    _alignment_checks(db, x, y, check_sites, report)

    # -- overlap sweep over row bands (vectorized) ---------------------
    movable_mask = db.movable
    w = db.cell_width
    h = db.cell_height
    real = (w > 0) & (h > 0)
    idx = np.flatnonzero(real)
    if idx.size:
        bxl = x[idx]
        byl = y[idx]
        bxh = bxl + w[idx]
        byh = byl + h[idx]
        lo = np.floor((byl - region.yl) / region.row_height).astype(np.int64)
        hi = np.ceil((byh - region.yl) / region.row_height).astype(np.int64)
        hi = np.maximum(hi, lo + 1)
        counts = hi - lo
        # expand each box into one entry per band it spans
        owner = np.repeat(np.arange(idx.size), counts)
        # band id = lo[owner] + offset within the run
        offsets = np.arange(owner.size) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        band = np.repeat(lo, counts) + offsets
        order = np.lexsort((bxl[owner], band))
        owner = owner[order]
        band = band[order]
        exl = bxl[owner]
        exh = bxh[owner]
        # Running max of right edges, reset at band boundaries — a
        # segmented cummax.  Done on integer *ranks* of exh keyed by
        # segment id so the accumulate is exact: a later band's key
        # range sits strictly above everything before it, so no value
        # can carry across a boundary and no float rounding occurs.
        new_band = np.empty(band.size, dtype=bool)
        new_band[0] = True
        new_band[1:] = band[1:] != band[:-1]
        seg_id = np.cumsum(new_band) - 1
        rank_order = np.argsort(exh, kind="stable")
        rank = np.empty(exh.size, dtype=np.int64)
        rank[rank_order] = np.arange(exh.size)
        value_of_rank = exh[rank_order]
        prev_rank = np.empty(exh.size, dtype=np.int64)
        prev_rank[0] = -1
        prev_rank[1:] = rank[:-1]
        prev_rank[new_band] = -1
        span = np.int64(exh.size + 1)
        run = np.maximum.accumulate(prev_rank + seg_id * span) \
            - seg_id * span
        run_max = np.where(
            run >= 0, value_of_rank[np.maximum(run, 0)], -np.inf
        )
        candidate = exl < run_max - _EPS
        if candidate.any():
            # exact pairwise count, but only inside dirty bands
            dirty = np.unique(band[candidate])
            dirty_set = set(dirty.tolist())
            bands: dict[int, list] = {b: [] for b in dirty_set}
            entry_in_dirty = np.isin(band, dirty)
            for pos in np.flatnonzero(entry_in_dirty):
                i = idx[owner[pos]]
                bands[int(band[pos])].append(
                    (x[i], y[i], x[i] + w[i], y[i] + h[i], int(i),
                     bool(movable_mask[i]))
                )
            seen: set[tuple[int, int]] = set()
            for band_boxes in bands.values():
                report.overlaps += _count_band_pairs(band_boxes, seen, _EPS)

    if fences:
        report.fence_violations = count_fence_violations(db, fences, x, y)

    return _finalize(report)


def check_legal_reference(db: PlacementDB, x: np.ndarray | None = None,
                          y: np.ndarray | None = None,
                          check_sites: bool = True,
                          fences=None) -> LegalityReport:
    """The original per-cell Python sweep (oracle / benchmark baseline).

    Semantically identical to :func:`check_legal`; kept so the
    determinism tests have a fixed reference and the legality
    benchmark has an honest "before".
    """
    region = db.region
    x = db.cell_x if x is None else np.asarray(x)
    y = db.cell_y if y is None else np.asarray(y)
    report = LegalityReport(legal=True)
    movable = db.movable_index
    w = db.cell_width
    h = db.cell_height
    _alignment_checks(db, x, y, check_sites, report)

    # overlap sweep per row band
    overlaps = 0
    boxes = []
    for i in movable:
        if w[i] > 0 and h[i] > 0:
            boxes.append((x[i], y[i], x[i] + w[i], y[i] + h[i], i, True))
    for i in db.fixed_index:
        if w[i] > 0 and h[i] > 0:
            boxes.append((x[i], y[i], x[i] + w[i], y[i] + h[i], i, False))
    # bucket boxes by row band to keep the pairwise check local
    bands: dict[int, list] = {}
    for box in boxes:
        lo = int(np.floor((box[1] - region.yl) / region.row_height))
        hi = int(np.ceil((box[3] - region.yl) / region.row_height))
        for band in range(lo, max(hi, lo + 1)):
            bands.setdefault(band, []).append(box)
    seen: set[tuple[int, int]] = set()
    for band_boxes in bands.values():
        band_boxes.sort(key=lambda b: b[0])
        overlaps += _count_band_pairs(band_boxes, seen, _EPS)
    report.overlaps = overlaps

    if fences:
        report.fence_violations = count_fence_violations(db, fences, x, y)

    return _finalize(report)
