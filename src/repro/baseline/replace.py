"""RePlAce-style reference placer.

Same electrostatic global placement as :class:`repro.core.DreamPlacer`
but organized the conventional way: a bound-to-bound quadratic initial
placement ("GP-IP" in Fig. 3) followed by nonlinear optimization with
reference (loop-based) kernels, then a non-windowed legalizer.  Serves
as the baseline for every speedup table.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.baseline.b2b import bound2bound_place
from repro.core.global_place import GlobalPlacer
from repro.core.params import PlacementParams
from repro.core.placer import StageTimes
from repro.dp.detailed_placer import DetailedPlacer
from repro.lg.abacus import abacus_legalize
from repro.lg.checker import LegalityReport, check_legal
from repro.lg.tetris import tetris_legalize
from repro.netlist.database import PlacementDB


@dataclass
class ReplaceResult:
    """Baseline flow outcome (same fields the paper reports)."""

    x: np.ndarray
    y: np.ndarray
    hpwl_global: float
    hpwl_final: float
    overflow: float
    iterations: int
    init_place_time: float  # GP-IP
    nonlinear_time: float  # GP-Nonlinear
    times: StageTimes
    legality: LegalityReport | None = None

    @property
    def gp_time(self) -> float:
        return self.init_place_time + self.nonlinear_time


def _reference_params(params: PlacementParams | None) -> PlacementParams:
    base = params or PlacementParams()
    return base.with_overrides(
        wirelength_strategy="net_by_net",
        density_strategy="naive",
        dct_impl="2n",
        optimizer="nesterov",
        dtype="float64",
    )


class ReplacePlacer:
    """Baseline: B2B init + reference-kernel nonlinear GP + LG + DP.

    ``timing_mode`` controls how the nonlinear GP time is obtained:

    ``"full"``
        Run the whole GP with the reference kernels (exact, slow).
    ``"extrapolate"``
        Run the GP with the fast kernels (identical math, so quality is
        unchanged), measure the reference-kernel iteration cost on a
        sample, and report ``avg_cost * iterations`` — the same
        estimation the paper applies to RePlAce on the 10M-cell design
        ("3396 + 1000 x 7.5 s", Section IV-A).
    """

    def __init__(self, db: PlacementDB, params: PlacementParams | None = None,
                 b2b_iterations: int = 3, timing_mode: str = "full",
                 sample_iterations: int = 5):
        if timing_mode not in ("full", "extrapolate"):
            raise ValueError(f"unknown timing_mode {timing_mode!r}")
        self.db = db
        self.params = _reference_params(params)
        self.b2b_iterations = int(b2b_iterations)
        self.timing_mode = timing_mode
        self.sample_iterations = int(sample_iterations)

    def _sample_reference_iteration_cost(self, x0, y0) -> float:
        """Average wall-clock of one reference-kernel GP iteration."""
        placer = GlobalPlacer(self.db, self.params)
        placer.set_positions(x0, y0)
        start = time.perf_counter()
        placer.place(max_iters=self.sample_iterations)
        return (time.perf_counter() - start) / self.sample_iterations

    def run(self, detailed: bool | None = None) -> ReplaceResult:
        params = self.params
        db = self.db
        times = StageTimes()

        # GP-IP: bound-to-bound quadratic initial placement
        start = time.perf_counter()
        x0, y0 = bound2bound_place(
            db, iterations=self.b2b_iterations,
            rng=np.random.default_rng(params.seed),
        )
        init_time = time.perf_counter() - start

        # GP-Nonlinear with the reference kernels, warm-started from B2B
        if self.timing_mode == "extrapolate":
            per_iter = self._sample_reference_iteration_cost(x0, y0)
            fast = params.with_overrides(
                wirelength_strategy="merged",
                density_strategy="stamp",
                dct_impl="2d",
            )
            placer = GlobalPlacer(db, fast)
            placer.set_positions(x0, y0)
            gp = placer.place()
            nonlinear_time = per_iter * gp.iterations
        else:
            start = time.perf_counter()
            placer = GlobalPlacer(db, params)
            placer.set_positions(x0, y0)
            gp = placer.place()
            nonlinear_time = time.perf_counter() - start
        times.global_place = init_time + nonlinear_time
        x, y = gp.x.copy(), gp.y.copy()
        hpwl_global = db.hpwl(x, y)

        legality = None
        if params.legalize:
            start = time.perf_counter()
            # NTUplace3-style legalizer: no row windowing (full scan)
            desired_x, desired_y = x.copy(), y.copy()
            lx, ly, row_of_cell = tetris_legalize(
                db, x, y, row_window=db.region.num_rows,
            )
            x, y = abacus_legalize(db, lx, ly, row_of_cell,
                                   desired_x=desired_x)
            times.legalize = time.perf_counter() - start
            legality = check_legal(db, x, y)

        run_dp = params.detailed if detailed is None else detailed
        if params.legalize and run_dp:
            start = time.perf_counter()
            dp = DetailedPlacer(db, passes=params.detailed_passes)
            x, y, _ = dp.run(x, y)
            times.detailed = time.perf_counter() - start
            legality = check_legal(db, x, y)

        db.set_positions(x, y)
        return ReplaceResult(
            x=x, y=y,
            hpwl_global=hpwl_global,
            hpwl_final=db.hpwl(x, y),
            overflow=gp.overflow,
            iterations=gp.iterations,
            init_place_time=init_time,
            nonlinear_time=nonlinear_time,
            times=times,
            legality=legality,
        )
