"""RePlAce-style baseline placer.

The paper's speedups are measured against RePlAce (Cheng et al., TCAD
2019), whose binary is not available offline.  This package implements
the same ePlace electrostatic algorithm the "conventional" way, so the
comparison keeps the structure of the paper's:

- bound-to-bound quadratic *initial placement* (the paper measures it at
  25-30% of RePlAce's GP runtime; DREAMPlace replaces it with random
  center initialization),
- reference kernels: per-net wirelength loops, per-cell density loops,
  row-column 2N-point DCT,
- a non-windowed legalizer (NTUplace3-style full-row scanning).
"""

from repro.baseline.b2b import bound2bound_place
from repro.baseline.replace import ReplacePlacer, ReplaceResult

__all__ = ["bound2bound_place", "ReplacePlacer", "ReplaceResult"]
