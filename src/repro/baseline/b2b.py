"""Bound-to-bound quadratic initial placement (Spindler's B2B net model).

The classic quadratic placement step RePlAce starts from: every net is
modeled with edges from each pin to the net's current boundary pins,
weighted ``2 / ((p-1) * |distance|)`` so the quadratic sum reproduces
HPWL at the linearization point; the resulting sparse linear system is
solved per axis, and the model is rebuilt a few times.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.netlist.database import PlacementDB

_MIN_DIST = 1e-3


def _solve_axis(db: PlacementDB, coords: np.ndarray, offsets: np.ndarray,
                movable_id: np.ndarray, lo: float, hi: float) -> np.ndarray:
    """One B2B solve along an axis; returns updated cell coordinates."""
    num_movable = movable_id.shape[0]
    mov_slot = np.full(db.num_cells, -1, dtype=np.int64)
    mov_slot[movable_id] = np.arange(num_movable)

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    rhs = np.zeros(num_movable)

    pin_pos = coords[db.pin_cell] + offsets

    def add_edge(pin_i: int, pin_j: int, weight: float) -> None:
        ci = int(db.pin_cell[pin_i])
        cj = int(db.pin_cell[pin_j])
        si = mov_slot[ci]
        sj = mov_slot[cj]
        if si < 0 and sj < 0:
            return
        delta = float(offsets[pin_i] - offsets[pin_j])
        if si >= 0 and sj >= 0:
            rows.extend((si, sj, si, sj))
            cols.extend((si, sj, sj, si))
            vals.extend((weight, weight, -weight, -weight))
            rhs[si] -= weight * delta
            rhs[sj] += weight * delta
        elif si >= 0:
            anchor = float(coords[cj] + offsets[pin_j])
            rows.append(si)
            cols.append(si)
            vals.append(weight)
            rhs[si] += weight * (anchor - offsets[pin_i])
        else:
            anchor = float(coords[ci] + offsets[pin_i])
            rows.append(sj)
            cols.append(sj)
            vals.append(weight)
            rhs[sj] += weight * (anchor - offsets[pin_j])

    for net in range(db.num_nets):
        pins = db.net_pins(net)
        k = pins.shape[0]
        if k < 2:
            continue
        w_net = db.net_weight[net]
        pos = pin_pos[pins]
        b = int(pins[np.argmin(pos)])
        t = int(pins[np.argmax(pos)])
        if b == t:
            t = int(pins[1]) if int(pins[0]) == b else int(pins[0])
        base = 2.0 * w_net / (k - 1)
        dist = max(abs(float(pin_pos[t] - pin_pos[b])), _MIN_DIST)
        add_edge(b, t, base / dist)
        for pin in pins:
            p = int(pin)
            if p in (b, t):
                continue
            for bound in (b, t):
                dist = max(abs(float(pin_pos[p] - pin_pos[bound])), _MIN_DIST)
                add_edge(p, bound, base / dist)

    matrix = sp.csr_matrix(
        (vals, (rows, cols)), shape=(num_movable, num_movable)
    )
    # tiny diagonal regularization keeps disconnected cells solvable
    matrix = matrix + sp.eye(num_movable, format="csr") * 1e-6
    center = 0.5 * (lo + hi)
    rhs = rhs + 1e-6 * center
    solution, info = spla.cg(matrix, rhs, x0=coords[movable_id],
                             rtol=1e-6, maxiter=500)
    if info != 0:
        solution = spla.spsolve(matrix.tocsc(), rhs)
    out = coords.copy()
    out[movable_id] = np.clip(solution, lo, hi)
    return out


def bound2bound_place(db: PlacementDB, iterations: int = 3,
                      rng: np.random.Generator | None = None
                      ) -> tuple[np.ndarray, np.ndarray]:
    """B2B quadratic placement of movable cells; returns (x, y) corners.

    This is wirelength-only (no spreading), producing the heavily
    overlapped but wirelength-good starting point quadratic placers use.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    region = db.region
    movable_id = db.movable_index
    x = db.cell_x.copy()
    y = db.cell_y.copy()
    # linearization point: random uniform spread
    x[movable_id] = rng.uniform(region.xl, region.xh, movable_id.shape[0])
    y[movable_id] = rng.uniform(region.yl, region.yh, movable_id.shape[0])
    for _ in range(max(iterations, 1)):
        x = _solve_axis(db, x, db.pin_offset_x, movable_id,
                        region.xl, region.xh)
        y = _solve_axis(db, y, db.pin_offset_y, movable_id,
                        region.yl, region.yh)
    # convert from "cell coordinate" to lower-left corner staying inside
    x[movable_id], y[movable_id] = region.clamp_cells(
        x[movable_id], y[movable_id],
        db.cell_width[movable_id], db.cell_height[movable_id],
    )
    return x, y
