"""Lightweight static timing analysis over a placed netlist.

A real flow runs full STA with library delays; here we build the
closest synthetic equivalent that exercises the same code path:

- each net's first pin is its driver (the generator and most Bookshelf
  netlists follow this convention); the remaining pins are sinks;
- cell delay is a constant per traversed cell; wire delay per edge is
  proportional to the Manhattan distance from the driver pin to the
  sink pin (a linear per-sink model);
- combinational cycles (possible in synthetic graphs) are broken by
  ignoring back edges in a DFS order, as timers do for loops.

Arrival times propagate from primary inputs (terminals and undriven
cells), required times back from primary outputs; slack = required -
arrival.  Net criticality is the worst sink slack on the net, mapped
to [0, 1].
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netlist.database import PlacementDB


@dataclass
class TimingReport:
    """Arrival/slack summary for one analysis run."""

    arrival: np.ndarray  # per cell
    slack: np.ndarray  # per cell
    net_slack: np.ndarray  # per net (worst sink)
    critical_path: list[int]  # cell indices, input -> output
    wns: float  # worst negative slack (or worst slack if all positive)
    tns: float  # total negative slack

    @property
    def max_arrival(self) -> float:
        return float(self.arrival.max()) if self.arrival.size else 0.0


class StaticTimingAnalysis:
    """HPWL-based STA on the placement database.

    Parameters
    ----------
    db:
        The design.  Net direction: first pin in each net drives the rest.
    cell_delay:
        Constant propagation delay through a cell.
    wire_delay_per_unit:
        Wire delay per unit of net HPWL.
    clock_period:
        Required time at every endpoint; ``None`` uses the longest path
        (zero worst slack).
    """

    def __init__(self, db: PlacementDB, cell_delay: float = 1.0,
                 wire_delay_per_unit: float = 0.1,
                 clock_period: float | None = None):
        self.db = db
        self.cell_delay = float(cell_delay)
        self.wire_delay_per_unit = float(wire_delay_per_unit)
        self.clock_period = clock_period
        self._build_graph()

    def _build_graph(self) -> None:
        """Edges driver-cell -> sink-cell with (net, driver pin, sink pin)."""
        db = self.db
        edges_out: list[list[tuple[int, int, int, int]]] = [
            [] for _ in range(db.num_cells)
        ]
        in_degree = np.zeros(db.num_cells, dtype=np.int64)
        self.net_driver = np.full(db.num_nets, -1, dtype=np.int64)
        for net in range(db.num_nets):
            pins = db.net_pins(net)
            if pins.shape[0] < 2:
                continue
            driver_pin = int(pins[0])
            driver = int(db.pin_cell[driver_pin])
            self.net_driver[net] = driver
            for pin in pins[1:]:
                sink = int(db.pin_cell[pin])
                if sink == driver:
                    continue
                edges_out[driver].append((sink, net, driver_pin, int(pin)))
                in_degree[sink] += 1
        self.edges_out = edges_out
        self._topo_order = self._topological_order(in_degree)

    def _topological_order(self, in_degree: np.ndarray) -> list[int]:
        """Kahn's algorithm; remaining (cyclic) cells appended — their
        incoming back edges are ignored during propagation."""
        db = self.db
        degree = in_degree.copy()
        order: list[int] = []
        stack = [c for c in range(db.num_cells) if degree[c] == 0]
        seen = np.zeros(db.num_cells, dtype=bool)
        while stack:
            cell = stack.pop()
            seen[cell] = True
            order.append(cell)
            for sink, *_ in self.edges_out[cell]:
                degree[sink] -= 1
                if degree[sink] == 0 and not seen[sink]:
                    stack.append(sink)
        if len(order) < db.num_cells:
            order.extend(
                c for c in range(db.num_cells) if not seen[c]
            )
        return order

    # ------------------------------------------------------------------
    def run(self, x: np.ndarray | None = None,
            y: np.ndarray | None = None) -> TimingReport:
        """Analyze the placement (stored positions by default)."""
        db = self.db
        px, py = db.pin_positions(x, y)

        def edge_delay(driver_pin: int, sink_pin: int) -> float:
            return self.wire_delay_per_unit * (
                abs(px[sink_pin] - px[driver_pin])
                + abs(py[sink_pin] - py[driver_pin])
            )

        position = {cell: i for i, cell in enumerate(self._topo_order)}
        arrival = np.zeros(db.num_cells)
        parent = np.full(db.num_cells, -1, dtype=np.int64)
        for cell in self._topo_order:
            base = arrival[cell] + self.cell_delay
            for sink, net, dpin, spin in self.edges_out[cell]:
                if position[sink] <= position[cell]:
                    continue  # back edge of a loop
                candidate = base + edge_delay(dpin, spin)
                if candidate > arrival[sink]:
                    arrival[sink] = candidate
                    parent[sink] = cell

        period = self.clock_period
        if period is None:
            period = float(arrival.max()) if arrival.size else 0.0
        required = np.full(db.num_cells, period)
        for cell in reversed(self._topo_order):
            for sink, net, dpin, spin in self.edges_out[cell]:
                if position[sink] <= position[cell]:
                    continue
                candidate = (
                    required[sink] - edge_delay(dpin, spin)
                    - self.cell_delay
                )
                if candidate < required[cell]:
                    required[cell] = candidate
        slack = required - arrival

        net_slack = np.full(db.num_nets, np.inf)
        for net in range(db.num_nets):
            driver = self.net_driver[net]
            if driver < 0:
                continue
            sinks = [
                edge[0] for edge in self.edges_out[driver]
                if edge[1] == net
            ]
            if sinks:
                net_slack[net] = min(slack[s] for s in sinks)

        endpoint = int(np.argmax(arrival))
        path = [endpoint]
        while parent[path[-1]] >= 0:
            path.append(int(parent[path[-1]]))
        path.reverse()

        negative = slack[slack < 0]
        return TimingReport(
            arrival=arrival,
            slack=slack,
            net_slack=net_slack,
            critical_path=path,
            wns=float(slack.min()) if slack.size else 0.0,
            tns=float(negative.sum()) if negative.size else 0.0,
        )
