"""Timing-driven placement extension (Section III-G).

The paper: "timing can be considered by net weighting or additional
differentiable timing costs in the objective."  This package provides
the substrate — a lightweight static timing analyzer over the netlist
(drivers inferred from pin order, wire delay from net HPWL) — and the
classic criticality-based net-weighting loop on top of it.
"""

from repro.timing.sta import StaticTimingAnalysis, TimingReport
from repro.timing.weighting import (
    criticality_weights,
    timing_driven_place,
)

__all__ = [
    "StaticTimingAnalysis",
    "TimingReport",
    "criticality_weights",
    "timing_driven_place",
]
