"""Criticality-based net weighting (the classic timing-driven loop)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.params import PlacementParams
from repro.netlist.database import PlacementDB
from repro.timing.sta import StaticTimingAnalysis, TimingReport


def criticality_weights(report: TimingReport, base: np.ndarray,
                        max_weight: float = 8.0,
                        exponent: float = 2.0) -> np.ndarray:
    """New net weights from slack: critical nets get heavier.

    criticality = 1 - slack/period (clamped to [0, 1]); the multiplier
    is ``1 + (max_weight - 1) * criticality^exponent``, applied
    multiplicatively to the current weights and renormalized so the
    mean weight stays 1 (pure HPWL pressure is preserved).
    """
    finite = np.isfinite(report.net_slack)
    period = max(report.max_arrival, 1e-12)
    criticality = np.zeros_like(base)
    criticality[finite] = np.clip(
        1.0 - report.net_slack[finite] / period, 0.0, 1.0
    )
    multiplier = 1.0 + (max_weight - 1.0) * criticality ** exponent
    weights = base * multiplier
    return weights * (base.mean() / max(weights.mean(), 1e-12))


@dataclass
class TimingDrivenResult:
    """Outcome of the net-weighting iteration."""

    hpwl: float
    max_arrival: float
    initial_max_arrival: float
    rounds: int
    reports: list[TimingReport] = field(default_factory=list)


def timing_driven_place(db: PlacementDB,
                        params: PlacementParams | None = None,
                        rounds: int = 3, max_weight: float = 8.0,
                        cell_delay: float = 1.0,
                        wire_delay_per_unit: float = 0.1
                        ) -> TimingDrivenResult:
    """Iterate place -> STA -> net reweighting (Section III-G's first
    option for timing).  Mutates ``db.net_weight`` and positions.
    """
    from repro.core.placer import DreamPlacer

    params = params or PlacementParams()
    sta = StaticTimingAnalysis(db, cell_delay, wire_delay_per_unit)
    original_weight = db.net_weight.copy()

    DreamPlacer(db, params).run()
    report = sta.run()
    initial_arrival = report.max_arrival
    reports = [report]

    executed = 0
    for _ in range(rounds):
        db.net_weight = criticality_weights(
            report, db.net_weight, max_weight=max_weight
        )
        DreamPlacer(db, params).run()
        report = sta.run()
        reports.append(report)
        executed += 1

    db.net_weight = original_weight
    return TimingDrivenResult(
        hpwl=db.hpwl(),
        max_arrival=report.max_arrival,
        initial_max_arrival=initial_arrival,
        rounds=executed,
        reports=reports,
    )
