"""Deterministic synthetic circuit generator.

Produces placement databases with the structural features placers care
about: a heavy-tailed net degree distribution (most nets 2-4 pins, a few
large fan-outs), Rent's-rule-style locality (nets connect cells that are
close in a hierarchical cluster ordering), fixed macro blockages, and
peripheral I/O pads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.params import DEFAULT_SEED
from repro.geometry.region import PlacementRegion
from repro.netlist.database import PlacementDB
from repro.netlist.hypergraph import CellKind, Netlist


@dataclass
class CircuitSpec:
    """Parameters of a synthetic design."""

    name: str
    num_cells: int
    #: nets per movable cell (ISPD2005 designs are close to 1.0)
    nets_per_cell: float = 1.03
    #: target placement utilization (movable area / free area)
    utilization: float = 0.7
    #: fraction of the region area occupied by fixed macros
    macro_area_fraction: float = 0.0
    num_macros: int = 0
    #: macros placeable by the optimizer (bigblue-style mixed-size mode)
    movable_macros: bool = False
    num_ios: int = 64
    #: fraction of net pins drawn locally (cluster locality strength)
    locality: float = 0.9
    #: mean extra pins beyond 2 (geometric tail; ISPD avg degree ~3.5-4)
    degree_tail_mean: float = 1.7
    max_degree: int = 24
    #: cell width choices in sites and their probabilities
    width_choices: tuple[int, ...] = (1, 2, 3, 4, 6)
    width_probs: tuple[float, ...] = (0.35, 0.3, 0.2, 0.1, 0.05)
    seed: int = DEFAULT_SEED

    def __post_init__(self):
        if self.num_cells < 2:
            raise ValueError("need at least two cells")
        if not 0 < self.utilization < 1:
            raise ValueError("utilization must be in (0, 1)")
        if abs(sum(self.width_probs) - 1.0) > 1e-9:
            raise ValueError("width_probs must sum to 1")


def _sample_degrees(rng: np.random.Generator, num_nets: int,
                    spec: CircuitSpec) -> np.ndarray:
    """Net degrees: 2 + geometric tail, clipped (heavy 2-3 pin mass)."""
    tail = rng.geometric(1.0 / (1.0 + spec.degree_tail_mean), size=num_nets) - 1
    return np.clip(2 + tail, 2, spec.max_degree)


def _cluster_order(rng: np.random.Generator, n: int) -> np.ndarray:
    """A hierarchical shuffle: recursive halves get contiguous ranges.

    Cells close in this order behave like members of the same logical
    cluster, so sampling net members near each other in the order gives
    Rent's-rule-style locality.
    """
    order = np.arange(n)
    rng.shuffle(order)
    return order


def generate(spec: CircuitSpec) -> PlacementDB:
    """Build the synthetic design described by ``spec``."""
    rng = np.random.default_rng(spec.seed)
    netlist = Netlist(spec.name)

    # -- geometry sizing ------------------------------------------------
    widths = rng.choice(
        np.asarray(spec.width_choices, dtype=np.float64),
        size=spec.num_cells, p=np.asarray(spec.width_probs),
    )
    movable_area = float(widths.sum())  # height = 1
    free_area = movable_area / spec.utilization
    total_area = free_area / max(1.0 - spec.macro_area_fraction, 1e-6)
    side = int(np.ceil(np.sqrt(total_area)))
    region = PlacementRegion(0.0, 0.0, float(side), float(side),
                             row_height=1.0, site_width=1.0)

    # -- movable standard cells -----------------------------------------
    for i in range(spec.num_cells):
        netlist.add_cell(f"o{i}", float(widths[i]), 1.0, CellKind.MOVABLE)

    # -- fixed macros on a coarse grid ------------------------------------
    macro_cells: list[int] = []
    if spec.num_macros > 0 and spec.macro_area_fraction > 0:
        per_macro_area = spec.macro_area_fraction * total_area / spec.num_macros
        macro_w = max(2.0, np.floor(np.sqrt(per_macro_area)))
        macro_h = max(2.0, np.floor(per_macro_area / macro_w))
        grid = int(np.ceil(np.sqrt(spec.num_macros)))
        pitch_x = side / grid
        pitch_y = side / grid
        placed = 0
        for gy in range(grid):
            for gx in range(grid):
                if placed >= spec.num_macros:
                    break
                mx = np.floor(gx * pitch_x + 0.5 * (pitch_x - macro_w))
                my = np.floor(gy * pitch_y + 0.5 * (pitch_y - macro_h))
                mx = float(np.clip(mx, 0, side - macro_w))
                my = float(np.clip(my, 0, side - macro_h))
                kind = CellKind.MOVABLE if spec.movable_macros \
                    else CellKind.FIXED
                macro_cells.append(netlist.add_cell(
                    f"macro{placed}", macro_w, macro_h, kind, x=mx, y=my,
                ))
                placed += 1

    # -- peripheral I/O pads ------------------------------------------------
    io_cells: list[int] = []
    for i in range(spec.num_ios):
        edge = i % 4
        t = (i // 4 + 0.5) / max(spec.num_ios // 4, 1)
        coord = t * side
        if edge == 0:
            px, py = coord, 0.0
        elif edge == 1:
            px, py = coord, float(side)
        elif edge == 2:
            px, py = 0.0, coord
        else:
            px, py = float(side), coord
        io_cells.append(netlist.add_cell(
            f"p{i}", 0.0, 0.0, CellKind.TERMINAL, x=px, y=py,
        ))

    # -- nets with cluster locality --------------------------------------
    order = _cluster_order(rng, spec.num_cells)
    rank = np.empty(spec.num_cells, dtype=np.int64)
    rank[order] = np.arange(spec.num_cells)
    num_nets = max(int(spec.num_cells * spec.nets_per_cell), 1)
    degrees = _sample_degrees(rng, num_nets, spec)
    io_prob = min(2.0 * spec.num_ios / max(num_nets, 1), 0.2)

    for e in range(num_nets):
        degree = int(degrees[e])
        center = int(rng.integers(spec.num_cells))
        members = {center}
        while len(members) < degree:
            if rng.random() < spec.locality:
                # a neighbor in the cluster order (two-sided geometric)
                step = int(rng.geometric(0.08))
                sign = 1 if rng.random() < 0.5 else -1
                candidate_rank = (rank[center] + sign * step) % spec.num_cells
                members.add(int(order[candidate_rank]))
            else:
                members.add(int(rng.integers(spec.num_cells)))
        pins = []
        for cell in members:
            ox = float(rng.uniform(0.1, 0.9) * widths[cell])
            oy = float(rng.uniform(0.1, 0.9))
            pins.append((cell, ox, oy))
        if io_cells and rng.random() < io_prob:
            pins.append((int(rng.choice(io_cells)), 0.0, 0.0))
        elif macro_cells and rng.random() < 0.05:
            macro = int(rng.choice(macro_cells))
            pins.append((
                macro,
                float(rng.uniform(0.2, 0.8)) * netlist._cells[macro].width,
                float(rng.uniform(0.2, 0.8)) * netlist._cells[macro].height,
            ))
        netlist.add_net(f"n{e}", pins)

    db = netlist.compile(region)
    # scatter movable cells uniformly as a starting point (the placer
    # re-initializes anyway; this gives IO and HPWL baselines meaning)
    movable = db.movable_index
    db.cell_x[movable] = rng.uniform(
        0, side - db.cell_width[movable], size=movable.shape[0]
    )
    db.cell_y[movable] = rng.integers(
        0, side, size=movable.shape[0]
    ).astype(np.float64)
    return db
