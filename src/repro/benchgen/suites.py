"""Benchmark suite definitions mirroring the paper's tables.

Each suite reproduces the *relative* sizes of the paper's benchmarks at
a reduced cell count (``scale`` = reduction factor vs the paper, default
100x) so the full evaluation runs on one CPU core.  Table II (ISPD
2005), Table III (industrial, including the 10M-cell scalability
design), and Table V (DAC 2012 routability) all have analogs here.
"""

from __future__ import annotations

from repro.benchgen.generator import CircuitSpec, generate
from repro.netlist.database import PlacementDB

DEFAULT_SCALE = 100  # cell-count reduction factor vs the paper

# name -> (paper kilo-cells, macro area fraction, #macros, utilization)
_ISPD2005 = {
    "adaptec1": (211, 0.04, 4, 0.70),
    "adaptec2": (255, 0.06, 6, 0.70),
    "adaptec3": (452, 0.08, 8, 0.65),
    "adaptec4": (496, 0.08, 8, 0.60),
    "bigblue1": (278, 0.04, 4, 0.70),
    "bigblue2": (558, 0.10, 12, 0.55),
    "bigblue3": (1097, 0.08, 10, 0.65),
    "bigblue4": (2177, 0.10, 16, 0.60),
}

_INDUSTRIAL = {
    "design1": (1345, 0.05, 8, 0.68),
    "design2": (1306, 0.05, 8, 0.68),
    "design3": (2265, 0.06, 10, 0.65),
    "design4": (1525, 0.05, 8, 0.66),
    "design5": (1316, 0.05, 8, 0.68),
    "design6": (10504, 0.06, 16, 0.62),
}

_DAC2012 = {
    "superblue2": (1014, 0.10, 12, 0.55),
    "superblue3": (920, 0.10, 10, 0.55),
    "superblue6": (1014, 0.08, 10, 0.58),
    "superblue7": (1365, 0.08, 12, 0.58),
    "superblue9": (847, 0.08, 8, 0.58),
    "superblue11": (955, 0.10, 10, 0.55),
    "superblue12": (1293, 0.10, 12, 0.55),
    "superblue14": (635, 0.08, 8, 0.58),
    "superblue16": (699, 0.08, 8, 0.58),
    "superblue19": (523, 0.08, 6, 0.58),
}

_TINY = {
    "tiny1": 300,
    "tiny2": 600,
}


def _spec(name: str, kcells: int, macro_frac: float, macros: int,
          utilization: float, seed: int, scale: int) -> CircuitSpec:
    return CircuitSpec(
        name=name,
        num_cells=max(kcells * 1000 // scale, 200),
        macro_area_fraction=macro_frac,
        num_macros=macros,
        utilization=utilization,
        num_ios=64,
        seed=seed,
    )


def ispd2005_suite(scale: int = DEFAULT_SCALE) -> list[CircuitSpec]:
    """Scaled analogs of the ISPD 2005 contest designs (Table II)."""
    return [
        _spec(name, *info, seed=100 + i, scale=scale)
        for i, (name, info) in enumerate(_ISPD2005.items())
    ]


def industrial_suite(scale: int = DEFAULT_SCALE) -> list[CircuitSpec]:
    """Scaled analogs of the industrial designs (Table III)."""
    return [
        _spec(name, *info, seed=200 + i, scale=scale)
        for i, (name, info) in enumerate(_INDUSTRIAL.items())
    ]


def dac2012_suite(scale: int = DEFAULT_SCALE) -> list[CircuitSpec]:
    """Scaled analogs of the DAC 2012 routability designs (Table V)."""
    return [
        _spec(name, *info, seed=300 + i, scale=scale)
        for i, (name, info) in enumerate(_DAC2012.items())
    ]


def tiny_suite() -> list[CircuitSpec]:
    """Small designs for tests and quick demos."""
    return [
        CircuitSpec(name=name, num_cells=n, num_ios=16,
                    utilization=0.65, seed=400 + i)
        for i, (name, n) in enumerate(_TINY.items())
    ]


def load_design(name: str, scale: int = DEFAULT_SCALE) -> PlacementDB:
    """Generate a design by suite name."""
    specs: dict[str, CircuitSpec] = {}
    for suite in (ispd2005_suite(scale), industrial_suite(scale),
                  dac2012_suite(scale), tiny_suite()):
        for spec in suite:
            specs[spec.name] = spec
    if name not in specs:
        raise KeyError(
            f"unknown design {name!r}; available: {sorted(specs)}"
        )
    return generate(specs[name])
