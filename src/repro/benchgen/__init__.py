"""Synthetic benchmark circuits.

The paper evaluates on ISPD 2005, DAC 2012 and proprietary industrial
benchmarks (211k .. 10.5M cells).  Those inputs are not available
offline, so this package generates deterministic synthetic circuits with
matching structure — clustered hypergraphs with realistic net-degree
distributions, fixed macros, peripheral I/O pads and (for the DAC2012
analogs) routing capacities — at ~100x reduced cell counts, plus suite
definitions mirroring each table of the paper.
"""

from repro.benchgen.generator import CircuitSpec, generate
from repro.benchgen.suites import (
    dac2012_suite,
    industrial_suite,
    ispd2005_suite,
    load_design,
    tiny_suite,
)

__all__ = [
    "CircuitSpec",
    "generate",
    "ispd2005_suite",
    "industrial_suite",
    "dac2012_suite",
    "tiny_suite",
    "load_design",
]
