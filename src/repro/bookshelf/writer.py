"""Bookshelf writer."""

from __future__ import annotations

import os

from repro.netlist.database import PlacementDB


def write_bookshelf(db: PlacementDB, directory: str,
                    name: str | None = None) -> str:
    """Write the design as Bookshelf files; returns the .aux path."""
    name = name or db.name
    os.makedirs(directory, exist_ok=True)

    def path(ext: str) -> str:
        return os.path.join(directory, f"{name}.{ext}")

    fixed_mask = ~db.movable
    with open(path("nodes"), "w") as out:
        out.write("UCLA nodes 1.0\n\n")
        out.write(f"NumNodes : {db.num_cells}\n")
        out.write(f"NumTerminals : {int(fixed_mask.sum())}\n")
        for i in range(db.num_cells):
            suffix = " terminal" if fixed_mask[i] else ""
            out.write(
                f"  {db.cell_names[i]} {db.cell_width[i]:g} "
                f"{db.cell_height[i]:g}{suffix}\n"
            )

    with open(path("nets"), "w") as out:
        out.write("UCLA nets 1.0\n\n")
        out.write(f"NumNets : {db.num_nets}\n")
        out.write(f"NumPins : {db.num_pins}\n")
        for net in range(db.num_nets):
            pins = db.net_pins(net)
            out.write(f"NetDegree : {pins.shape[0]}  {db.net_names[net]}\n")
            for pin in pins:
                cell = int(db.pin_cell[pin])
                # bookshelf offsets are from the node center
                ox = db.pin_offset_x[pin] - db.cell_width[cell] / 2.0
                oy = db.pin_offset_y[pin] - db.cell_height[cell] / 2.0
                out.write(
                    f"  {db.cell_names[cell]} B : {ox:.6g} {oy:.6g}\n"
                )

    with open(path("wts"), "w") as out:
        out.write("UCLA wts 1.0\n\n")
        for net in range(db.num_nets):
            out.write(f"  {db.net_names[net]} {db.net_weight[net]:g}\n")

    with open(path("pl"), "w") as out:
        out.write("UCLA pl 1.0\n\n")
        for i in range(db.num_cells):
            suffix = " /FIXED" if fixed_mask[i] else ""
            out.write(
                f"  {db.cell_names[i]} {db.cell_x[i]:.6f} "
                f"{db.cell_y[i]:.6f} : N{suffix}\n"
            )

    region = db.region
    with open(path("scl"), "w") as out:
        out.write("UCLA scl 1.0\n\n")
        out.write(f"NumRows : {region.num_rows}\n\n")
        for row in region.rows():
            out.write("CoreRow Horizontal\n")
            out.write(f"  Coordinate   : {row.y:g}\n")
            out.write(f"  Height       : {row.height:g}\n")
            out.write(f"  Sitewidth    : {row.site_width:g}\n")
            out.write(f"  Sitespacing  : {row.site_width:g}\n")
            out.write("  Siteorient   : 1\n")
            out.write("  Sitesymmetry : 1\n")
            out.write(f"  SubrowOrigin : {row.x:g}  NumSites : {row.num_sites}\n")
            out.write("End\n")

    aux = path("aux")
    with open(aux, "w") as out:
        out.write(
            f"RowBasedPlacement : {name}.nodes {name}.nets {name}.wts "
            f"{name}.pl {name}.scl\n"
        )
    return aux
