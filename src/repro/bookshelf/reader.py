"""Bookshelf reader."""

from __future__ import annotations

import os

from repro.geometry.region import PlacementRegion
from repro.netlist.database import PlacementDB
from repro.netlist.hypergraph import CellKind, Netlist


def _content_lines(path: str):
    """Yield non-comment, non-empty lines (header dropped)."""
    with open(path) as handle:
        first = True
        for raw in handle:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if first and line.startswith("UCLA"):
                first = False
                continue
            first = False
            yield line


def read_aux(path: str) -> dict[str, str]:
    """Parse the .aux file into a mapping from extension to path."""
    base = os.path.dirname(path)
    with open(path) as handle:
        text = handle.read()
    if ":" not in text:
        raise ValueError(f"malformed aux file {path!r}")
    files = text.split(":", 1)[1].split()
    out = {}
    for name in files:
        ext = name.rsplit(".", 1)[-1].lower()
        out[ext] = os.path.join(base, name)
    return out


def _read_nodes(path: str):
    nodes = []
    for line in _content_lines(path):
        if line.startswith(("NumNodes", "NumTerminals")):
            continue
        parts = line.split()
        name = parts[0]
        width = float(parts[1])
        height = float(parts[2])
        terminal = len(parts) > 3 and parts[3].lower().startswith("terminal")
        nodes.append((name, width, height, terminal))
    return nodes


def _read_pl(path: str):
    positions = {}
    for line in _content_lines(path):
        parts = line.split()
        if len(parts) < 3:
            continue
        name = parts[0]
        x = float(parts[1])
        y = float(parts[2])
        fixed = "/FIXED" in line
        positions[name] = (x, y, fixed)
    return positions


def _read_wts(path: str):
    weights = {}
    for line in _content_lines(path):
        parts = line.split()
        if len(parts) >= 2:
            try:
                weights[parts[0]] = float(parts[1])
            except ValueError:
                continue
    return weights


def _read_scl(path: str) -> PlacementRegion:
    rows = []
    current: dict[str, float] = {}
    for line in _content_lines(path):
        token = line.split()[0].lower()
        if token == "corerow":
            current = {}
        elif token == "end":
            if current:
                rows.append(current)
                current = {}
        elif ":" in line:
            # a line may carry several "Key : value" pairs
            # (e.g. "SubrowOrigin : 0  NumSites : 26")
            tokens = line.replace(":", " : ").split()
            for pos, token in enumerate(tokens):
                if token == ":" and pos > 0 and pos + 1 < len(tokens):
                    key = tokens[pos - 1].lower()
                    try:
                        current[key] = float(tokens[pos + 1])
                    except ValueError:
                        pass
    if not rows:
        raise ValueError(f"no CoreRow found in {path!r}")
    height = rows[0].get("height", 1.0)
    site = rows[0].get("sitewidth", 1.0)
    yl = min(r.get("coordinate", 0.0) for r in rows)
    yh = max(r.get("coordinate", 0.0) + r.get("height", height) for r in rows)
    xl = min(r.get("subroworigin", 0.0) for r in rows)
    xh = max(
        r.get("subroworigin", 0.0) + r.get("numsites", 0.0) * site
        for r in rows
    )
    return PlacementRegion(xl, yl, xh, yh, row_height=height, site_width=site)


def _read_nets(path: str, netlist: Netlist, weights: dict[str, float],
               half_sizes: dict[str, tuple[float, float]]) -> None:
    pins: list[tuple[str, float, float]] = []
    net_name = None
    counter = 0

    def flush():
        nonlocal pins, net_name
        if net_name is not None and pins:
            netlist.add_net(net_name, pins, weights.get(net_name, 1.0))
        pins = []

    for line in _content_lines(path):
        if line.startswith(("NumNets", "NumPins")):
            continue
        if line.startswith("NetDegree"):
            flush()
            parts = line.replace(":", " ").split()
            net_name = parts[-1] if len(parts) > 2 else f"net{counter}"
            counter += 1
            continue
        parts = line.replace(":", " ").split()
        if not parts or net_name is None:
            continue
        cell = parts[0]
        ox = oy = 0.0
        numeric = [p for p in parts[1:] if _is_number(p)]
        if len(numeric) >= 2:
            ox, oy = float(numeric[0]), float(numeric[1])
        hw, hh = half_sizes[cell]
        # bookshelf offsets are from the node center
        pins.append((cell, ox + hw, oy + hh))
    flush()


def _is_number(token: str) -> bool:
    try:
        float(token)
        return True
    except ValueError:
        return False


def read_bookshelf(aux_path: str, name: str | None = None) -> PlacementDB:
    """Load a Bookshelf benchmark given its .aux file."""
    files = read_aux(aux_path)
    for required in ("nodes", "nets", "pl", "scl"):
        if required not in files:
            raise ValueError(f"aux file missing .{required} entry")
    nodes = _read_nodes(files["nodes"])
    positions = _read_pl(files["pl"])
    weights = _read_wts(files["wts"]) if "wts" in files else {}
    region = _read_scl(files["scl"])

    design = name or os.path.splitext(os.path.basename(aux_path))[0]
    netlist = Netlist(design)
    half_sizes: dict[str, tuple[float, float]] = {}
    for node_name, width, height, terminal in nodes:
        x, y, fixed = positions.get(node_name, (0.0, 0.0, False))
        if terminal or fixed:
            kind = CellKind.TERMINAL if width * height == 0 else CellKind.FIXED
        else:
            kind = CellKind.MOVABLE
        netlist.add_cell(node_name, width, height, kind, x=x, y=y)
        half_sizes[node_name] = (width / 2.0, height / 2.0)
    _read_nets(files["nets"], netlist, weights, half_sizes)
    return netlist.compile(region)
