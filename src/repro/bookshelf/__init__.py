"""Bookshelf benchmark format (.aux/.nodes/.nets/.pl/.scl/.wts).

The ISPD 2005 and DAC 2012 contests distribute benchmarks in the GSRC
Bookshelf format; this package reads and writes it so real benchmarks
drop into the flow when available, and so the synthetic suites can be
exported for other tools.  The "IO" columns of Tables II/III time these
routines.
"""

from repro.bookshelf.reader import read_aux, read_bookshelf
from repro.bookshelf.writer import write_bookshelf

__all__ = ["read_aux", "read_bookshelf", "write_bookshelf"]
