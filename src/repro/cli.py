"""Command-line interface.

``python -m repro <command>`` drives the flow without writing Python:

- ``place``     run the full GP -> LG -> DP flow on a Bookshelf design
                or a named synthetic suite design
- ``generate``  synthesize a benchmark and write it as Bookshelf
- ``route``     global-route a placed design and report RC/ACE
- ``report``    print placement metrics for a design
- ``batch``     run a file of job specs through the run store
- ``sweep``     expand a parameter grid into jobs and run them
- ``resume``    continue an interrupted run from its checkpoint
- ``runs``      list or inspect the run store
- ``serve``     run the placement service (HTTP job API)
- ``submit``    submit a job to a running service
- ``watch``     stream a job's events from a running service
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import numpy as np


def _load(design: str, scale: int):
    """Load a .aux path or a named synthetic design."""
    if design.endswith(".aux"):
        from repro.bookshelf import read_bookshelf

        return read_bookshelf(design)
    from repro.benchgen import load_design

    return load_design(design, scale=scale)


def _write_json(path: str, data: dict) -> str:
    """Write machine-readable output, creating parent directories."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def _emit_json(dest: str, data: dict, label: str = "wrote") -> None:
    """Emit JSON to stdout (dest is "-") or to a file."""
    if dest == "-":
        print(json.dumps(data, indent=2, sort_keys=True))
    else:
        print(f"{label}: {_write_json(dest, data)}")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("design", help=".aux file or suite design name")
    parser.add_argument("--scale", type=int, default=400,
                        help="cell-count reduction for suite designs")


def _cmd_place(args) -> int:
    from repro.bookshelf import write_bookshelf
    from repro.core import DreamPlacer, PlacementParams

    db = _load(args.design, args.scale)
    params = PlacementParams(
        dtype=args.dtype,
        optimizer=args.optimizer,
        target_density=args.target_density,
        routability=args.routability,
        seed=args.seed,
        detailed=not args.no_dp,
        legalize=not args.no_lg,
        verbose=args.verbose,
        enable_recovery=not args.no_recovery,
        max_recoveries=args.max_recoveries,
        graph_capture=not args.no_capture,
        legality_gate=not args.no_legality_gate,
        multilevel_levels=args.multilevel,
        coarsen_ratio=args.coarsen_ratio,
        ignore_net_degree=args.ignore_net_degree,
    )
    import contextlib

    from repro.obs import IterationRecorder, MetricsRegistry, Tracer

    registry = None
    on_iteration = None
    if args.metrics_out:
        registry = MetricsRegistry()
        on_iteration = IterationRecorder(registry)
    tracer = (Tracer(process_label="repro place")
              if args.trace_out else None)

    print(f"placing {db} ...")
    with (tracer if tracer is not None else contextlib.nullcontext()):
        if args.profile or args.profile_alloc:
            from repro.perf import Profiler

            with Profiler(trace_alloc=args.profile_alloc) as prof:
                result = DreamPlacer(db, params).run(
                    on_iteration=on_iteration)
            print(prof.table(title="per-op breakdown (Fig. 9 style)"))
            split = prof.closure_split_line()
            if split is not None:
                print(split)
        else:
            result = DreamPlacer(db, params).run(
                on_iteration=on_iteration)
    print(f"HPWL     : {result.hpwl_final:,.0f} "
          f"(GP {result.hpwl_global:,.0f}, LG {result.hpwl_legal:,.0f})")
    print(f"overflow : {result.overflow:.4f} after {result.iterations} iters")
    print(f"recovery : {result.recoveries} rollbacks, "
          f"diverged={result.diverged}, "
          f"best GP HPWL {result.best_hpwl:,.0f}")
    if result.legality is not None:
        print(f"legal    : {result.legality.legal} "
              f"{result.legality.messages or ''}")
    if result.rc is not None:
        print(f"RC       : {result.rc:.2f}  sHPWL {result.shpwl:,.0f}")
    times = result.times
    print(f"runtime  : GP {times.global_place:.2f}s  "
          f"GR {times.global_route:.2f}s  LG {times.legalize:.2f}s  "
          f"DP {times.detailed:.2f}s")
    if args.json:
        from repro.core import placement_result_metrics

        print(f"wrote    : {_write_json(args.json, placement_result_metrics(result))}")
    if args.output:
        aux = write_bookshelf(db, args.output)
        print(f"wrote    : {aux}")
    if args.svg:
        from repro.viz import write_placement_svg

        print(f"wrote    : {write_placement_svg(db, args.svg)}")
    if registry is not None:
        print(f"wrote    : {registry.save_prometheus(args.metrics_out)}")
    if tracer is not None:
        print(f"wrote    : {tracer.trace.save(args.trace_out)}")
    return 0


def _cmd_generate(args) -> int:
    from repro.benchgen import CircuitSpec, generate
    from repro.bookshelf import write_bookshelf

    spec = CircuitSpec(
        name=args.name,
        num_cells=args.cells,
        utilization=args.utilization,
        macro_area_fraction=args.macro_fraction,
        num_macros=args.macros,
        num_ios=args.ios,
        movable_macros=args.movable_macros,
        seed=args.seed,
    )
    db = generate(spec)
    aux = write_bookshelf(db, args.output)
    print(f"generated {db}")
    print(f"wrote {aux}")
    return 0


def _cmd_route(args) -> int:
    from repro.route import GlobalRouter
    from repro.route.router import calibrate_capacity

    db = _load(args.design, args.scale)
    capacity = args.capacity
    if capacity <= 0:
        capacity = calibrate_capacity(db, args.tiles, args.layers)
        print(f"calibrated capacity: {capacity:.2f} tracks/layer")
    router = GlobalRouter(db, num_tiles=args.tiles, num_layers=args.layers,
                          tile_capacity=capacity)
    result = router.route()
    print(f"RC        : {result.rc:.2f}")
    for pct, value in result.ace.items():
        print(f"ACE {pct:>4}% : {value:.2f}")
    print(f"overflow  : {result.total_overflow:.0f}")
    print(f"wirelength: {result.wirelength_tiles} tile pitches")
    if args.heat_svg:
        from repro.viz import write_placement_svg

        path = write_placement_svg(
            db, args.heat_svg, heat=result.tile_ratio_map,
        )
        print(f"wrote     : {path}")
    return 0


def _cmd_report(args) -> int:
    from repro.core import placement_summary
    from repro.lg import check_legal
    from repro.viz import ascii_density_map

    db = _load(args.design, args.scale)
    summary = placement_summary(db)
    print(f"design     : {db}")
    print(f"HPWL       : {summary.hpwl:,.0f}")
    print(f"overflow   : {summary.overflow:.4f}")
    print(f"utilization: {summary.utilization:.3f}")
    report = check_legal(db)
    print(f"legal      : {report.legal} {report.messages or ''}")
    if args.json:
        from repro.core import placement_summary_metrics

        path = _write_json(
            args.json, placement_summary_metrics(summary, legal=report.legal)
        )
        print(f"wrote      : {path}")
    if args.density_map:
        from repro.geometry import BinGrid
        from repro.ops.density_map import scatter_density

        grid = BinGrid(db.region, 32, 32)
        movable = db.movable_index
        rho = scatter_density(
            grid, db.cell_x[movable], db.cell_y[movable],
            db.cell_width[movable], db.cell_height[movable],
            np.ones(movable.shape[0]),
        )
        print(ascii_density_map(rho))
    return 0


# ----------------------------------------------------------------------
# runner verbs (batch / sweep / resume / runs)

def _coerce_param(key: str, text: str):
    """Parse a sweep value using the PlacementParams field type."""
    from dataclasses import MISSING, fields

    from repro.core import PlacementParams

    defaults = {f.name: f.default for f in fields(PlacementParams)}
    default = defaults.get(key, MISSING)
    if isinstance(default, bool):
        return text.lower() in ("1", "true", "yes", "on")
    if isinstance(default, int):
        return int(text)
    if isinstance(default, float):
        return float(text)
    if isinstance(default, str):
        return text
    # Optional/factory fields: infer numeric, fall back to string
    if text.lower() in ("none", "null"):
        return None
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            pass
    return text


def _make_scheduler(args):
    """Build (scheduler, store, cache) from common runner options."""
    from repro.obs import MetricsRegistry, Tracer
    from repro.runner import ResultCache, RunStore, Scheduler

    store = RunStore(args.store)
    cache = None if args.no_cache else ResultCache(store)
    # the fleet registry is always on (merging counters is noise-level
    # work and gives every sweep per-run metrics artifacts); tracing is
    # opt-in because span collection grows with iteration count
    tracer = (Tracer(process_label="repro dispatcher")
              if getattr(args, "trace_out", None) else None)
    scheduler = Scheduler(
        store, cache=cache,
        max_retries=args.retries,
        timeout=args.timeout,
        checkpoint_every=args.checkpoint_every,
        profile=getattr(args, "profile", False),
        workers=getattr(args, "workers", 1),
        registry=MetricsRegistry(),
        tracer=tracer,
    )
    return scheduler, store, cache


def _write_obs(args, scheduler) -> None:
    """Persist the fleet trace/metrics where the flags asked for them."""
    if getattr(args, "metrics_out", None):
        path = scheduler.registry.save_prometheus(args.metrics_out)
        print(f"wrote: {path}")
    if getattr(args, "trace_out", None) and scheduler.tracer is not None:
        path = scheduler.tracer.trace.save(args.trace_out)
        print(f"wrote: {path}")


def _outcome_dict(outcome) -> dict:
    return {
        "job_hash": outcome.job_hash,
        "design": outcome.design,
        "status": outcome.status,
        "cached": outcome.cached,
        "resumed_from": outcome.resumed_from,
        "directory": outcome.directory,
        "error": outcome.error,
        "artifact_error": outcome.artifact_error,
        "metrics": outcome.metrics,
    }


def _print_outcomes(outcomes, cache=None) -> int:
    header = (f"{'run':<16} {'design':<20} {'status':<18} "
              f"{'hpwl':>14} {'iters':>6}")
    print(header)
    print("-" * len(header))
    for outcome in outcomes:
        hpwl = iters = ""
        if outcome.metrics:
            final = (outcome.metrics.get("hpwl") or {}).get("final")
            if final is not None:
                hpwl = f"{final:,.0f}"
            iters = str(outcome.metrics.get("iterations", ""))
        status = outcome.status + (" (cached)" if outcome.cached else "")
        print(f"{(outcome.job_hash[:16] or '-'):<16} "
              f"{outcome.design:<20} {status:<18} {hpwl:>14} {iters:>6}")
        if outcome.error:
            print(f"  error: {outcome.error}")
        if outcome.artifact_error:
            print(f"  degraded: {outcome.artifact_error}")
    if cache is not None:
        stats = cache.stats
        line = (f"cache: {stats.hits} hit(s), {stats.misses} miss(es), "
                f"{stats.invalidations} invalidation(s)")
        if stats.degraded_hits:
            line += f", {stats.degraded_hits} degraded hit(s)"
        print(line)
    return 0 if all(o.ok for o in outcomes) else 1


def _cmd_batch(args) -> int:
    from repro.runner import job_from_dict

    with open(args.specs) as handle:
        data = json.load(handle)
    if isinstance(data, dict):
        data = data.get("jobs", [data])
    specs = [job_from_dict(entry) for entry in data]
    scheduler, store, cache = _make_scheduler(args)
    for spec in specs:
        scheduler.submit(spec)
    print(f"batch: {len(specs)} job(s) -> {store.root}")
    outcomes = scheduler.run()
    _write_obs(args, scheduler)
    code = _print_outcomes(outcomes, cache)
    if args.json:
        payload = {"outcomes": [_outcome_dict(o) for o in outcomes]}
        if cache is not None:
            payload["cache"] = cache.stats.as_dict()
        print(f"wrote: {_write_json(args.json, payload)}")
    return code


def _cmd_sweep(args) -> int:
    from repro.runner import DesignRef, JobSpec

    base = JobSpec(
        design=DesignRef.parse(args.design, scale=args.scale),
        stages=tuple(s for s in args.stages.split(",") if s),
    )
    grid = {}
    for item in args.param:
        key, sep, values = item.partition("=")
        if not sep or not values:
            print(f"--param expects KEY=V1,V2,... (got {item!r})",
                  file=sys.stderr)
            return 2
        grid[key] = [_coerce_param(key, v) for v in values.split(",")]
    scheduler, store, cache = _make_scheduler(args)
    count = scheduler.submit_sweep(base, grid)
    print(f"sweep: {count} job(s) -> {store.root}")
    outcomes = scheduler.run()
    _write_obs(args, scheduler)
    code = _print_outcomes(outcomes, cache)
    if args.json:
        payload = {"outcomes": [_outcome_dict(o) for o in outcomes]}
        if cache is not None:
            payload["cache"] = cache.stats.as_dict()
        print(f"wrote: {_write_json(args.json, payload)}")
    return code


def _cmd_resume(args) -> int:
    from repro.runner import RunStore, execute_job

    store = RunStore(args.store)
    record = store.load(args.run)
    spec = record.load_spec()
    print(f"resuming {record.short_hash} ({spec.design.name}) ...")
    outcome = execute_job(
        spec, store, resume=True,
        checkpoint_every=args.checkpoint_every,
        timeout=args.timeout,
    )
    if outcome.resumed_from is not None:
        print(f"resumed from checkpoint at iteration "
              f"{outcome.resumed_from}")
    else:
        print("no checkpoint on disk; restarted from scratch")
    return _print_outcomes([outcome])


def _record_dict(record) -> dict:
    """One run's JSON view: the shared listing summary plus detail.

    The base keys are :meth:`RunRecord.summary` — the same schema
    ``GET /v1/jobs`` serves — extended with the full spec/status dicts,
    metrics and event counts for inspection.
    """
    from repro.runner import count_events

    payload = record.summary()
    payload.update(
        status=record.status,
        spec=record.spec,
        metrics=record.metrics,
        events=dict(count_events(record.events_path)),
    )
    return payload


def _runs_stats(args, store) -> int:
    """Aggregate per-run observability metrics across the store.

    Every non-cached run persists ``obs_metrics.json`` (the mergeable
    twin of its ``metrics.prom``); folding them through
    ``MetricsRegistry.merge`` recovers fleet totals — the same numbers
    a live ``--metrics-out`` would have reported.
    """
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    records = store.list_runs()
    merged = 0
    for record in records:
        path = os.path.join(record.directory, "obs_metrics.json")
        if not os.path.exists(path):
            continue
        try:
            with open(path) as handle:
                registry.merge(json.load(handle))
        except (OSError, ValueError, KeyError):
            continue  # a torn/legacy dump must not sink the report
        merged += 1
    print(f"stats: {merged} of {len(records)} run(s) carry "
          f"observability metrics")
    if merged:
        print(registry.to_prometheus(), end="")
    if args.json:
        _emit_json(args.json, registry.as_dict())
    return 0


def _cmd_runs(args) -> int:
    from repro.runner import RunStore, count_events

    store = RunStore(args.store)
    if args.stats:
        return _runs_stats(args, store)
    if args.run:
        record = store.load(args.run)
        if args.json == "-":
            _emit_json(args.json, _record_dict(record))
            return 0
        status = record.status or {}
        print(f"run      : {record.job_hash}")
        print(f"directory: {record.directory}")
        print(f"status   : {record.state} "
              f"(attempts {status.get('attempts', 0)})")
        if status.get("error"):
            print(f"error    : {status['error']}")
        spec = (record.spec or {}).get("spec", {})
        design = spec.get("design", {})
        print(f"design   : {design.get('name', '?')} "
              f"[{design.get('source', '?')}, "
              f"scale {design.get('scale', '?')}]")
        print(f"stages   : {','.join(spec.get('stages', []))}")
        if record.metrics:
            hpwl = (record.metrics.get("hpwl") or {}).get("final")
            if hpwl is not None:
                print(f"HPWL     : {hpwl:,.0f}")
            print(f"iters    : {record.metrics.get('iterations')}")
        events = count_events(record.events_path)
        if events:
            print("events   : " + ", ".join(
                f"{name}={count}"
                for name, count in sorted(events.items())))
        if args.json:
            _emit_json(args.json, _record_dict(record), label="wrote    ")
        return 0

    records = store.list_runs()
    if args.json == "-":
        # the same entry schema GET /v1/jobs serves, so scripts read
        # the offline store and the live service interchangeably
        _emit_json(args.json, {"runs": [r.summary() for r in records],
                               "count": len(records)})
        return 0
    if not records:
        print(f"no runs in {store.runs_root}")
        return 0
    header = (f"{'run':<16} {'design':<20} {'status':<9} "
              f"{'hpwl':>14} {'iters':>6}")
    print(header)
    print("-" * len(header))
    for record in records:
        design = ((record.spec or {}).get("spec", {})
                  .get("design", {}).get("name", "?"))
        hpwl = iters = ""
        if record.metrics:
            final = (record.metrics.get("hpwl") or {}).get("final")
            if final is not None:
                hpwl = f"{final:,.0f}"
            iters = str(record.metrics.get("iterations", ""))
        print(f"{record.short_hash:<16} {design:<20} "
              f"{record.state:<9} {hpwl:>14} {iters:>6}")
    if args.json:
        payload = {"runs": [r.summary() for r in records],
                   "count": len(records)}
        _emit_json(args.json, payload)
    return 0


# ----------------------------------------------------------------------
# service verbs (serve / submit / watch)

def _cmd_serve(args) -> int:
    import signal
    import threading

    from repro.runner import ResultCache, RunStore
    from repro.serve import AsyncScheduler, PlacementServer

    store = RunStore(args.store)
    cache = None if args.no_cache else ResultCache(store)
    scheduler = AsyncScheduler(
        store, cache=cache,
        workers=args.workers,
        queue_limit=args.queue_limit,
        max_retries=args.retries,
        timeout=args.timeout,
        checkpoint_every=args.checkpoint_every,
        retry_after=args.retry_after,
    )
    server = PlacementServer(store, scheduler, host=args.host,
                             port=args.port, verbose=args.verbose)
    if server.recovered_orphans:
        print(f"recovered {server.recovered_orphans} orphaned run(s)")

    # serve_forever runs in a background thread (PlacementServer.start)
    # while the main thread waits on a signal-set event: calling
    # httpd.shutdown() from the serve_forever thread deadlocks, so the
    # signal handler must only flip the event
    stop = threading.Event()

    def _handle(signum, frame):
        print(f"\nsignal {signal.Signals(signum).name}: draining ...")
        stop.set()

    signal.signal(signal.SIGTERM, _handle)
    signal.signal(signal.SIGINT, _handle)
    server.start()
    print(f"serving placements on {server.url} "
          f"(store {store.root}, {scheduler.workers} worker(s), "
          f"queue limit {scheduler.queue_limit})")
    stop.wait()
    server.stop(interrupt=True)
    print("drained: every in-flight run checkpointed and released")
    return 0


def _cmd_submit(args) -> int:
    from repro.serve import PlacementClient, ServiceError

    spec = {"design": args.design, "scale": args.scale,
            "stages": [s for s in args.stages.split(",") if s]}
    params = {}
    for item in args.param:
        key, sep, value = item.partition("=")
        if not sep:
            print(f"--param expects KEY=VALUE (got {item!r})",
                  file=sys.stderr)
            return 2
        params[key] = _coerce_param(key, value)
    if params:
        spec["params"] = params
    client = PlacementClient(args.url)
    try:
        job = client.submit(spec)
    except ServiceError as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 1
    state = job.get("state", "?")
    if job.get("cached"):
        state += " (cached)"
    print(f"job   : {job['job_hash']}")
    print(f"state : {state}")
    if args.watch:
        return _watch_job(client, job["job_hash"])
    hpwl = ((job.get("metrics") or {}).get("hpwl") or {}).get("final")
    if hpwl is not None:
        print(f"HPWL  : {hpwl:,.0f}")
    return 0


def _watch_job(client, job_hash: str, offset: int = 0) -> int:
    from repro.serve import ServiceError

    try:
        for event in client.iter_events(job_hash, offset=offset):
            kind = event.get("_event", event.get("type", "event"))
            if kind == "iteration":
                print(f"  iter {event.get('iteration'):>5}  "
                      f"hpwl {event.get('hpwl'):,.0f}  "
                      f"overflow {event.get('overflow'):.4f}")
            elif kind == "end":
                state = event.get("state", "?")
                print(f"end: {state}")
                return 0 if state == "complete" else 1
            else:
                detail = {k: v for k, v in event.items()
                          if k not in ("type", "t", "dt", "_event",
                                       "_offset")}
                print(f"{kind}: "
                      f"{json.dumps(detail, sort_keys=True, default=str)}")
    except ServiceError as exc:
        print(f"watch failed: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_watch(args) -> int:
    from repro.serve import PlacementClient

    return _watch_job(PlacementClient(args.url), args.run,
                      offset=args.offset)


def build_parser() -> argparse.ArgumentParser:
    from repro.core.params import DEFAULT_SEED

    parser = argparse.ArgumentParser(
        prog="repro",
        description="DREAMPlace-reproduction placement flow",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    place = sub.add_parser("place", help="run the full placement flow")
    _add_common(place)
    place.add_argument("--dtype", choices=["float32", "float64"],
                       default="float64")
    place.add_argument("--optimizer", default="nesterov",
                       choices=["nesterov", "adam", "sgd", "rmsprop", "cg"])
    place.add_argument("--target-density", type=float, default=1.0)
    place.add_argument("--routability", action="store_true")
    place.add_argument("--seed", type=int, default=DEFAULT_SEED)
    place.add_argument("--no-dp", action="store_true",
                       help="skip detailed placement")
    place.add_argument("--no-lg", action="store_true",
                       help="skip legalization (GP only)")
    place.add_argument("--verbose", action="store_true")
    place.add_argument("--no-recovery", action="store_true",
                       help="disable divergence rollback (return the best "
                            "checkpoint but never retry)")
    place.add_argument("--max-recoveries", type=int, default=3,
                       help="rollback budget per GP run before giving up")
    place.add_argument("--multilevel", type=int, default=1,
                       metavar="LEVELS",
                       help="coarse-to-fine GP cascade levels "
                            "(1 = flat placement, the default)")
    place.add_argument("--coarsen-ratio", type=float, default=0.35,
                       help="per-level movable-cell shrink target "
                            "for the multilevel coarsener")
    place.add_argument("--ignore-net-degree", type=int, default=0,
                       help="mask nets with more pins than this out "
                            "of the wirelength gradient (0 = off)")
    place.add_argument("--no-capture", action="store_true",
                       help="disable the captured-tape replay engine "
                            "(evaluate the objective eagerly every "
                            "iteration)")
    place.add_argument("--no-legality-gate", action="store_true",
                       help="report post-LG/post-DP legality violations "
                            "instead of failing the run on them")
    place.add_argument("--profile", action="store_true",
                       help="print a per-op runtime breakdown after the run")
    place.add_argument("--profile-alloc", action="store_true",
                       help="with --profile, also trace per-op allocations "
                            "(tracemalloc; much slower)")
    place.add_argument("--output", help="write result as Bookshelf here")
    place.add_argument("--svg", help="write a placement plot here")
    place.add_argument("--json",
                       help="write machine-readable metrics here (same "
                            "schema the run store persists)")
    place.add_argument("--trace-out",
                       help="write a Chrome trace-event JSON here "
                            "(load in chrome://tracing or Perfetto)")
    place.add_argument("--metrics-out",
                       help="write Prometheus text metrics here")
    place.set_defaults(func=_cmd_place)

    gen = sub.add_parser("generate", help="synthesize a benchmark")
    gen.add_argument("name")
    gen.add_argument("--cells", type=int, default=1000)
    gen.add_argument("--utilization", type=float, default=0.65)
    gen.add_argument("--macro-fraction", type=float, default=0.0)
    gen.add_argument("--macros", type=int, default=0)
    gen.add_argument("--movable-macros", action="store_true")
    gen.add_argument("--ios", type=int, default=32)
    gen.add_argument("--seed", type=int, default=DEFAULT_SEED)
    gen.add_argument("--output", required=True)
    gen.set_defaults(func=_cmd_generate)

    route = sub.add_parser("route", help="global-route a placed design")
    _add_common(route)
    route.add_argument("--tiles", type=int, default=32)
    route.add_argument("--layers", type=int, default=4)
    route.add_argument("--capacity", type=float, default=0.0,
                       help="tracks per tile per layer (0 = calibrate)")
    route.add_argument("--heat-svg",
                       help="write a congestion heatmap SVG here")
    route.set_defaults(func=_cmd_route)

    report = sub.add_parser("report", help="print placement metrics")
    _add_common(report)
    report.add_argument("--density-map", action="store_true",
                        help="print an ASCII density map")
    report.add_argument("--json",
                        help="write machine-readable metrics here")
    report.set_defaults(func=_cmd_report)

    def _add_store_opts(p, profile=True):
        p.add_argument("--store", default="runs",
                       help="run store root directory")
        p.add_argument("--no-cache", action="store_true",
                       help="bypass the content-addressed result cache")
        p.add_argument("--timeout", type=float, default=None,
                       help="per-job wall-clock budget in seconds "
                            "(checked each GP iteration)")
        p.add_argument("--retries", type=int, default=1,
                       help="retry count for failed jobs")
        p.add_argument("--checkpoint-every", type=int, default=25,
                       help="GP iterations between on-disk checkpoints")
        p.add_argument("--workers", type=int, default=1,
                       help="concurrent worker processes (1 = serial, "
                            "in-process, with warm design reuse)")
        p.add_argument("--json",
                       help="write outcome summaries here")
        p.add_argument("--trace-out",
                       help="write the fleet Chrome trace-event JSON "
                            "here (one lane per worker; load in "
                            "chrome://tracing or Perfetto)")
        p.add_argument("--metrics-out",
                       help="write aggregated Prometheus text metrics "
                            "here (counters merge across workers)")
        if profile:
            p.add_argument("--profile", action="store_true",
                           help="record per-op profile events")

    batch = sub.add_parser(
        "batch", help="run a JSON file of job specs through the store")
    batch.add_argument("specs",
                       help='JSON spec file: a list of jobs or '
                            '{"jobs": [...]}; each job is a design '
                            'string or {design, scale, params, stages}')
    _add_store_opts(batch)
    batch.set_defaults(func=_cmd_batch)

    sweep = sub.add_parser(
        "sweep", help="expand a parameter grid into jobs and run them")
    sweep.add_argument("design", help=".aux file or suite design name")
    sweep.add_argument("--scale", type=int, default=400,
                       help="cell-count reduction for suite designs")
    sweep.add_argument("--param", action="append", default=[],
                       metavar="KEY=V1,V2,...",
                       help="sweep axis over a PlacementParams field "
                            "(repeatable; jobs = cross product)")
    sweep.add_argument("--stages", default="gp,lg,dp",
                       help="comma-separated stage selection")
    _add_store_opts(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    resume = sub.add_parser(
        "resume", help="continue an interrupted run from its checkpoint")
    resume.add_argument("run", help="run hash (or unique prefix)")
    resume.add_argument("--store", default="runs",
                        help="run store root directory")
    resume.add_argument("--timeout", type=float, default=None,
                        help="per-job wall-clock budget in seconds")
    resume.add_argument("--checkpoint-every", type=int, default=25,
                        help="GP iterations between on-disk checkpoints")
    resume.set_defaults(func=_cmd_resume)

    runs = sub.add_parser(
        "runs", help="list the run store, or inspect one run")
    runs.add_argument("run", nargs="?",
                      help="run hash to inspect (omit to list all)")
    runs.add_argument("--store", default="runs",
                      help="run store root directory")
    runs.add_argument("--json", nargs="?", const="-", metavar="FILE",
                      help="emit the listing/record as JSON "
                           "(to FILE, or stdout when bare)")
    runs.add_argument("--stats", action="store_true",
                      help="aggregate observability metrics across the "
                           "store and print Prometheus text")
    runs.set_defaults(func=_cmd_runs)

    serve = sub.add_parser(
        "serve", help="run the placement service (HTTP job API)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8734,
                       help="TCP port (0 picks an ephemeral port)")
    serve.add_argument("--store", default="runs",
                       help="run store root directory")
    serve.add_argument("--no-cache", action="store_true",
                       help="bypass the content-addressed result cache")
    serve.add_argument("--workers", type=int, default=1,
                       help="concurrent in-process placements")
    serve.add_argument("--queue-limit", type=int, default=16,
                       help="max queued (not yet running) jobs before "
                            "submissions get 429")
    serve.add_argument("--retry-after", type=float, default=2.0,
                       help="Retry-After hint (seconds) on 429")
    serve.add_argument("--retries", type=int, default=1,
                       help="retry count for failed jobs")
    serve.add_argument("--timeout", type=float, default=None,
                       help="per-job wall-clock budget in seconds")
    serve.add_argument("--checkpoint-every", type=int, default=25,
                       help="GP iterations between on-disk checkpoints")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request to stderr")
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit a job to a running placement service")
    submit.add_argument("design", help=".aux file or suite design name")
    submit.add_argument("--url", default="http://127.0.0.1:8734",
                        help="service base URL")
    submit.add_argument("--scale", type=int, default=400,
                        help="cell-count reduction for suite designs")
    submit.add_argument("--param", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="PlacementParams override (repeatable)")
    submit.add_argument("--stages", default="gp,lg,dp",
                        help="comma-separated stage selection")
    submit.add_argument("--watch", action="store_true",
                        help="stream the job's events until it finishes")
    submit.set_defaults(func=_cmd_submit)

    watch = sub.add_parser(
        "watch", help="stream a job's events from a running service")
    watch.add_argument("run", help="job hash (or unique prefix)")
    watch.add_argument("--url", default="http://127.0.0.1:8734",
                       help="service base URL")
    watch.add_argument("--offset", type=int, default=0,
                       help="event-log byte offset to start from")
    watch.set_defaults(func=_cmd_watch)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
