"""Command-line interface.

``python -m repro <command>`` drives the flow without writing Python:

- ``place``     run the full GP -> LG -> DP flow on a Bookshelf design
                or a named synthetic suite design
- ``generate``  synthesize a benchmark and write it as Bookshelf
- ``route``     global-route a placed design and report RC/ACE
- ``report``    print placement metrics for a design
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _load(design: str, scale: int):
    """Load a .aux path or a named synthetic design."""
    if design.endswith(".aux"):
        from repro.bookshelf import read_bookshelf

        return read_bookshelf(design)
    from repro.benchgen import load_design

    return load_design(design, scale=scale)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("design", help=".aux file or suite design name")
    parser.add_argument("--scale", type=int, default=400,
                        help="cell-count reduction for suite designs")


def _cmd_place(args) -> int:
    from repro.bookshelf import write_bookshelf
    from repro.core import DreamPlacer, PlacementParams

    db = _load(args.design, args.scale)
    params = PlacementParams(
        dtype=args.dtype,
        optimizer=args.optimizer,
        target_density=args.target_density,
        routability=args.routability,
        seed=args.seed,
        detailed=not args.no_dp,
        legalize=not args.no_lg,
        verbose=args.verbose,
        enable_recovery=not args.no_recovery,
        max_recoveries=args.max_recoveries,
    )
    print(f"placing {db} ...")
    if args.profile or args.profile_alloc:
        from repro.perf import Profiler

        with Profiler(trace_alloc=args.profile_alloc) as prof:
            result = DreamPlacer(db, params).run()
        print(prof.table(title="per-op breakdown (Fig. 9 style)"))
    else:
        result = DreamPlacer(db, params).run()
    print(f"HPWL     : {result.hpwl_final:,.0f} "
          f"(GP {result.hpwl_global:,.0f}, LG {result.hpwl_legal:,.0f})")
    print(f"overflow : {result.overflow:.4f} after {result.iterations} iters")
    print(f"recovery : {result.recoveries} rollbacks, "
          f"diverged={result.diverged}, "
          f"best GP HPWL {result.best_hpwl:,.0f}")
    if result.legality is not None:
        print(f"legal    : {result.legality.legal} "
              f"{result.legality.messages or ''}")
    if result.rc is not None:
        print(f"RC       : {result.rc:.2f}  sHPWL {result.shpwl:,.0f}")
    times = result.times
    print(f"runtime  : GP {times.global_place:.2f}s  "
          f"GR {times.global_route:.2f}s  LG {times.legalize:.2f}s  "
          f"DP {times.detailed:.2f}s")
    if args.output:
        aux = write_bookshelf(db, args.output)
        print(f"wrote    : {aux}")
    if args.svg:
        from repro.viz import write_placement_svg

        print(f"wrote    : {write_placement_svg(db, args.svg)}")
    return 0


def _cmd_generate(args) -> int:
    from repro.benchgen import CircuitSpec, generate
    from repro.bookshelf import write_bookshelf

    spec = CircuitSpec(
        name=args.name,
        num_cells=args.cells,
        utilization=args.utilization,
        macro_area_fraction=args.macro_fraction,
        num_macros=args.macros,
        num_ios=args.ios,
        movable_macros=args.movable_macros,
        seed=args.seed,
    )
    db = generate(spec)
    aux = write_bookshelf(db, args.output)
    print(f"generated {db}")
    print(f"wrote {aux}")
    return 0


def _cmd_route(args) -> int:
    from repro.route import GlobalRouter
    from repro.route.router import calibrate_capacity

    db = _load(args.design, args.scale)
    capacity = args.capacity
    if capacity <= 0:
        capacity = calibrate_capacity(db, args.tiles, args.layers)
        print(f"calibrated capacity: {capacity:.2f} tracks/layer")
    router = GlobalRouter(db, num_tiles=args.tiles, num_layers=args.layers,
                          tile_capacity=capacity)
    result = router.route()
    print(f"RC        : {result.rc:.2f}")
    for pct, value in result.ace.items():
        print(f"ACE {pct:>4}% : {value:.2f}")
    print(f"overflow  : {result.total_overflow:.0f}")
    print(f"wirelength: {result.wirelength_tiles} tile pitches")
    if args.heat_svg:
        from repro.viz import write_placement_svg

        path = write_placement_svg(
            db, args.heat_svg, heat=result.tile_ratio_map,
        )
        print(f"wrote     : {path}")
    return 0


def _cmd_report(args) -> int:
    from repro.core import placement_summary
    from repro.lg import check_legal
    from repro.viz import ascii_density_map

    db = _load(args.design, args.scale)
    summary = placement_summary(db)
    print(f"design     : {db}")
    print(f"HPWL       : {summary.hpwl:,.0f}")
    print(f"overflow   : {summary.overflow:.4f}")
    print(f"utilization: {summary.utilization:.3f}")
    report = check_legal(db)
    print(f"legal      : {report.legal} {report.messages or ''}")
    if args.density_map:
        from repro.geometry import BinGrid
        from repro.ops.density_map import scatter_density

        grid = BinGrid(db.region, 32, 32)
        movable = db.movable_index
        rho = scatter_density(
            grid, db.cell_x[movable], db.cell_y[movable],
            db.cell_width[movable], db.cell_height[movable],
            np.ones(movable.shape[0]),
        )
        print(ascii_density_map(rho))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DREAMPlace-reproduction placement flow",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    place = sub.add_parser("place", help="run the full placement flow")
    _add_common(place)
    place.add_argument("--dtype", choices=["float32", "float64"],
                       default="float64")
    place.add_argument("--optimizer", default="nesterov",
                       choices=["nesterov", "adam", "sgd", "rmsprop", "cg"])
    place.add_argument("--target-density", type=float, default=1.0)
    place.add_argument("--routability", action="store_true")
    place.add_argument("--seed", type=int, default=0)
    place.add_argument("--no-dp", action="store_true",
                       help="skip detailed placement")
    place.add_argument("--no-lg", action="store_true",
                       help="skip legalization (GP only)")
    place.add_argument("--verbose", action="store_true")
    place.add_argument("--no-recovery", action="store_true",
                       help="disable divergence rollback (return the best "
                            "checkpoint but never retry)")
    place.add_argument("--max-recoveries", type=int, default=3,
                       help="rollback budget per GP run before giving up")
    place.add_argument("--profile", action="store_true",
                       help="print a per-op runtime breakdown after the run")
    place.add_argument("--profile-alloc", action="store_true",
                       help="with --profile, also trace per-op allocations "
                            "(tracemalloc; much slower)")
    place.add_argument("--output", help="write result as Bookshelf here")
    place.add_argument("--svg", help="write a placement plot here")
    place.set_defaults(func=_cmd_place)

    gen = sub.add_parser("generate", help="synthesize a benchmark")
    gen.add_argument("name")
    gen.add_argument("--cells", type=int, default=1000)
    gen.add_argument("--utilization", type=float, default=0.65)
    gen.add_argument("--macro-fraction", type=float, default=0.0)
    gen.add_argument("--macros", type=int, default=0)
    gen.add_argument("--movable-macros", action="store_true")
    gen.add_argument("--ios", type=int, default=32)
    gen.add_argument("--seed", type=int, default=42)
    gen.add_argument("--output", required=True)
    gen.set_defaults(func=_cmd_generate)

    route = sub.add_parser("route", help="global-route a placed design")
    _add_common(route)
    route.add_argument("--tiles", type=int, default=32)
    route.add_argument("--layers", type=int, default=4)
    route.add_argument("--capacity", type=float, default=0.0,
                       help="tracks per tile per layer (0 = calibrate)")
    route.add_argument("--heat-svg",
                       help="write a congestion heatmap SVG here")
    route.set_defaults(func=_cmd_route)

    report = sub.add_parser("report", help="print placement metrics")
    _add_common(report)
    report.add_argument("--density-map", action="store_true",
                        help="print an ASCII density map")
    report.set_defaults(func=_cmd_report)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
