"""Asynchronous job scheduling for the placement service.

The batch :class:`~repro.runner.scheduler.Scheduler` is
drain-everything-and-block: fill a queue, call ``run()``, get every
outcome back at once.  A long-lived daemon needs the opposite shape —
jobs arrive one at a time over HTTP, must be admitted or rejected
*immediately*, and execute in the background while the submitter polls
or streams events.  :class:`AsyncScheduler` provides that shape by
wrapping a ``Scheduler`` (whose retry/backoff/timeout policy and
:func:`~repro.runner.execute.execute_job` path are reused unchanged)
in a set of dispatch threads fed from an admission queue:

- **incremental submit** — :meth:`submit` hashes the spec (design
  loads are memoized), answers duplicates from the in-memory job table
  or the result cache without queueing anything, and otherwise enqueues
  a :class:`JobState` the dispatch threads drain FIFO.
- **backpressure** — the admission queue is bounded; a submit over the
  bound raises :class:`QueueFull`, which the HTTP layer turns into
  ``429 Too Many Requests`` with a ``Retry-After`` hint.  Bounding
  *queued* (not running) jobs makes the bound a latency promise: work
  already running is work the client is polling on.
- **cooperative cancellation** — :meth:`cancel` flips a per-job event;
  the GP iteration hook checkpoints the loop at the current iteration
  and raises, so the run lands on disk as a resumable failure with its
  lease released.
- **graceful shutdown** — :meth:`shutdown` stops admission, interrupts
  in-flight jobs at the next iteration through the same
  checkpoint-then-raise path, and joins the dispatch threads.  After
  shutdown every run directory is either terminal or a
  failed-with-checkpoint resume candidate; nothing is left ``running``
  or leased.

Concurrency model: jobs execute *in-process* on the dispatch threads
(numpy releases the GIL in the kernels that dominate a GP iteration).
Each concurrently-running job gets its own :class:`PlacementDB` copy —
the warm-design sharing of the serial scheduler is unsafe across
threads because placement mutates cell positions in place.
"""

from __future__ import annotations

import copy
import os
import queue as _queue
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.recorders import (
    CACHE_DEGRADED,
    CACHE_HITS,
    SERVE_CANCELLED,
    SERVE_INFLIGHT,
    SERVE_QUEUE_DEPTH,
    SERVE_REJECTED,
)
from repro.runner.cache import ResultCache
from repro.runner.checkpoint import PlacerCheckpoint
from repro.runner.events import EventLog, EventType
from repro.runner.execute import JobOutcome
from repro.runner.job import JobSpec
from repro.runner.scheduler import Scheduler
from repro.runner.store import (
    LEASE_TIMEOUT,
    STATUS_COMPLETE,
    STATUS_FAILED,
    RunStore,
)

#: job lifecycle states; terminal runs additionally exist in the store
STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATE_COMPLETE = "complete"
STATE_FAILED = "failed"
STATE_TIMEOUT = "timeout"
STATE_CANCELLED = "cancelled"

TERMINAL_STATES = frozenset(
    (STATE_COMPLETE, STATE_FAILED, STATE_TIMEOUT, STATE_CANCELLED))


class QueueFull(RuntimeError):
    """Admission queue at capacity; retry after ``retry_after`` seconds."""

    def __init__(self, limit: int, retry_after: float):
        super().__init__(
            f"admission queue full ({limit} queued job(s)); "
            f"retry in {retry_after:g}s"
        )
        self.limit = limit
        self.retry_after = retry_after


class JobCancelled(Exception):
    """Raised from the iteration hook to stop a job cooperatively."""


@dataclass
class JobState:
    """In-memory lifecycle record of one submitted job."""

    job_hash: str
    spec: JobSpec
    state: str = STATE_QUEUED
    submitted: float = field(default_factory=time.time)
    started: Optional[float] = None
    finished: Optional[float] = None
    cached: bool = False
    outcome: Optional[JobOutcome] = None
    error: Optional[str] = None
    cancel_event: threading.Event = field(default_factory=threading.Event,
                                          repr=False)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def summary(self) -> dict:
        """The in-memory half of a job's API representation."""
        return {
            "job_hash": self.job_hash,
            "short_hash": self.job_hash[:16],
            "state": self.state,
            "design": self.spec.design.name,
            "stages": list(self.spec.stages),
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "cached": self.cached,
            "error": self.error,
        }


class AsyncScheduler:
    """Background dispatcher feeding jobs through a :class:`Scheduler`.

    ``workers`` is the number of dispatch threads (concurrent
    in-process placements); ``queue_limit`` bounds *queued* jobs and is
    the backpressure knob; ``retry_after`` is the hint returned with a
    :class:`QueueFull` rejection.
    """

    def __init__(self, store: RunStore,
                 cache: Optional[ResultCache] = None,
                 workers: int = 1,
                 queue_limit: int = 16,
                 max_retries: int = 1,
                 backoff: float = 0.5,
                 timeout: Optional[float] = None,
                 checkpoint_every: int = 25,
                 lease_timeout: float = LEASE_TIMEOUT,
                 retry_after: float = 2.0,
                 registry: Optional[MetricsRegistry] = None):
        self.store = store
        self.cache = cache
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.workers = max(1, int(workers))
        self.queue_limit = max(0, int(queue_limit))
        self.retry_after = float(retry_after)
        self.checkpoint_every = int(checkpoint_every)
        self.scheduler = Scheduler(
            store, cache=cache, max_retries=max_retries, backoff=backoff,
            timeout=timeout, checkpoint_every=checkpoint_every,
            lease_timeout=lease_timeout, registry=self.registry,
        )
        #: job hash -> JobState, every job this daemon has seen
        self._jobs: dict = {}
        self._lock = threading.RLock()
        self._queue: _queue.Queue = _queue.Queue()
        #: set when shutdown begins: admission closes, dispatch threads
        #: exit once the queue is empty
        self._closing = threading.Event()
        #: set when in-flight jobs should stop at the next iteration
        self._interrupt = threading.Event()
        self._threads = [
            threading.Thread(target=self._dispatch_loop,
                             name=f"repro-dispatch-{i}", daemon=True)
            for i in range(self.workers)
        ]
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> "AsyncScheduler":
        if not self._started:
            self._started = True
            for thread in self._threads:
                thread.start()
        return self

    # -- introspection -------------------------------------------------
    def job(self, job_hash: str) -> Optional[JobState]:
        """The job table entry for a full hash, or a unique prefix."""
        with self._lock:
            state = self._jobs.get(job_hash)
            if state is not None:
                return state
            matches = [s for h, s in self._jobs.items()
                       if h.startswith(job_hash)]
            return matches[0] if len(matches) == 1 else None

    def jobs(self) -> list:
        with self._lock:
            return list(self._jobs.values())

    @property
    def queued(self) -> int:
        with self._lock:
            return sum(1 for j in self._jobs.values()
                       if j.state == STATE_QUEUED)

    @property
    def running(self) -> int:
        with self._lock:
            return sum(1 for j in self._jobs.values()
                       if j.state == STATE_RUNNING)

    def update_gauges(self) -> None:
        """Refresh the queue-depth/inflight gauges (scrape time)."""
        self.registry.gauge(
            SERVE_QUEUE_DEPTH,
            help="jobs admitted but not yet dispatched").set(self.queued)
        self.registry.gauge(
            SERVE_INFLIGHT,
            help="jobs currently executing").set(self.running)

    # -- submission ----------------------------------------------------
    def _hash_spec(self, spec: JobSpec) -> str:
        """Content-hash ``spec`` via the scheduler's memoized designs.

        Hashing only *reads* the database (fingerprints are computed
        over structure), so sharing the cached instance across threads
        is safe — unlike execution, which gets a private copy.
        """
        return spec.job_hash(self.scheduler._load_design(spec))

    def submit(self, spec: JobSpec) -> JobState:
        """Admit one job; returns its (possibly pre-existing) state.

        Idempotent on the content hash: a hash already queued or
        running is returned as-is (two racing submitters get the same
        ticket), and a hash already completed in the store is answered
        from the cache without touching the queue.  Raises
        :class:`QueueFull` over the admission bound and
        :exc:`RuntimeError` after :meth:`shutdown` began.
        """
        if self._closing.is_set():
            raise RuntimeError("scheduler is shutting down")
        job_hash = self._hash_spec(spec)
        with self._lock:
            existing = self._jobs.get(job_hash)
            if existing is not None and not existing.terminal:
                return existing
            if self.cache is not None:
                record = self.cache.peek(job_hash)
                if record is not None:
                    return self._admit_cached(spec, job_hash, record)
            if self.queued >= self.queue_limit:
                self.registry.counter(
                    SERVE_REJECTED,
                    help="submissions rejected by backpressure").inc()
                raise QueueFull(self.queue_limit, self.retry_after)
            job = JobState(job_hash=job_hash, spec=spec)
            # resubmission of a terminal (failed/cancelled) job: the
            # fresh state replaces the old one and the run resumes its
            # checkpoint on dispatch
            self._jobs[job_hash] = job
            self._queue.put(job)
            return job

    def _admit_cached(self, spec: JobSpec, job_hash: str,
                      record) -> JobState:
        """Answer a submit from the result cache (audit trail included).

        Mirrors what ``execute_job`` does on its cache-hit path —
        counters and a ``cache_hit`` event — so a placement served by
        the daemon is indistinguishable in the store from one served by
        a batch drain.
        """
        degraded = bool(record.artifact_error)
        self.cache.stats.record_hit(degraded=degraded)
        self.registry.counter(CACHE_HITS,
                              help="result-cache hits").inc()
        if degraded:
            self.registry.counter(
                CACHE_DEGRADED,
                help="cache hits served without a Bookshelf "
                     "artifact").inc()
        with EventLog(record.events_path) as events:
            events.emit(EventType.CACHE_HIT, job_hash=job_hash,
                        worker="serve", pid=os.getpid())
        job = JobState(
            job_hash=job_hash, spec=spec, state=STATE_COMPLETE,
            cached=True, finished=time.time(),
            outcome=JobOutcome(
                job_hash=job_hash, directory=record.directory,
                status=STATUS_COMPLETE, design=spec.design.name,
                cached=True, metrics=record.metrics,
                artifact_error=record.artifact_error,
            ),
        )
        self._jobs[job_hash] = job
        return job

    # -- cancellation --------------------------------------------------
    def cancel(self, job_hash: str) -> Optional[JobState]:
        """Cooperatively cancel a queued or running job.

        Queued jobs flip straight to ``cancelled`` (the dispatch loop
        skips them); running jobs get their cancel event set and stop
        at the next GP iteration, checkpoint persisted.  Terminal jobs
        are returned unchanged.  Returns None for an unknown hash.
        """
        with self._lock:
            job = self.job(job_hash)
            if job is None:
                return None
            if job.terminal:
                return job
            job.cancel_event.set()
            if job.state == STATE_QUEUED:
                job.state = STATE_CANCELLED
                job.error = "cancelled before dispatch"
                job.finished = time.time()
            self.registry.counter(
                SERVE_CANCELLED,
                help="jobs cancelled by request").inc()
            return job

    # -- dispatch ------------------------------------------------------
    def _make_hook(self, job: JobState):
        """Iteration hook: cooperative cancel/shutdown for one job.

        On interruption the loop state is checkpointed *at the current
        iteration* before raising, so a resume continues bit-exactly
        from the interruption point rather than the last periodic
        checkpoint.
        """
        def hook(placer, info):
            cancelled = job.cancel_event.is_set()
            if not cancelled and not self._interrupt.is_set():
                return
            reason = ("cancelled by request" if cancelled
                      else "interrupted by shutdown")
            try:
                PlacerCheckpoint(
                    job_hash=job.job_hash,
                    iteration=info["iteration"],
                    loop_state=placer.capture_loop_state(),
                ).save(os.path.join(self.store.run_dir(job.job_hash),
                                    "checkpoint.pkl"))
            except Exception:  # noqa: BLE001 — best-effort checkpoint
                pass  # the last periodic checkpoint still resumes
            raise JobCancelled(
                f"job {job.job_hash[:16]} {reason} at GP iteration "
                f"{info['iteration']}"
            )
        return hook

    def _dispatch_loop(self) -> None:
        while True:
            try:
                job = self._queue.get(timeout=0.1)
            except _queue.Empty:
                if self._closing.is_set():
                    return
                continue
            with self._lock:
                if job.state != STATE_QUEUED:
                    continue  # cancelled while queued
                if self._interrupt.is_set():
                    # shutting down: never start new work; the job
                    # stays queued in memory (it has no run directory,
                    # so there is nothing on disk to recover)
                    continue
                job.state = STATE_RUNNING
                job.started = time.time()
            self._run_job(job)

    def _run_job(self, job: JobState) -> None:
        spec = job.spec
        try:
            # concurrent placements must not share a mutable database:
            # copy the memoized design per execution (workers=1 pays
            # one copy per job; correctness over thrift)
            try:
                db = copy.deepcopy(self.scheduler._load_design(spec))
            except Exception:  # noqa: BLE001 — bad design
                db = None  # execute_job re-attempts and records it
            resume = os.path.exists(os.path.join(
                self.store.run_dir(job.job_hash), "checkpoint.pkl"))
            outcome = self.scheduler.run_one(
                spec, db=db,
                iteration_hook=self._make_hook(job),
                should_retry=lambda _o: not (
                    job.cancel_event.is_set()
                    or self._interrupt.is_set()),
                resume=resume,
                worker="serve",
            )
        except Exception as exc:  # noqa: BLE001 — dispatch must survive
            outcome = JobOutcome(
                job_hash=job.job_hash, directory="",
                status=STATUS_FAILED, design=spec.design.name,
                error=f"dispatch error: {type(exc).__name__}: {exc}")
        with self._lock:
            job.outcome = outcome
            job.error = outcome.error
            job.cached = outcome.cached
            job.finished = time.time()
            if (job.cancel_event.is_set()
                    and outcome.status != STATUS_COMPLETE):
                job.state = STATE_CANCELLED
            else:
                job.state = outcome.status

    # -- shutdown ------------------------------------------------------
    def shutdown(self, interrupt: bool = True,
                 timeout: Optional[float] = None) -> None:
        """Stop the dispatcher, leaving every run resumable.

        ``interrupt=True`` (the default, and what SIGTERM wants) stops
        in-flight jobs at their next GP iteration via the cooperative
        hook — checkpoint written, lease released, status ``failed`` —
        so a restarted daemon (or ``repro resume``) continues them
        bit-exactly.  ``interrupt=False`` lets in-flight jobs run to
        completion and only stops admission/dispatch.  Queued jobs that
        never started simply evaporate: they have no on-disk state, and
        idempotent submits make re-submission safe.
        """
        self._closing.set()
        if interrupt:
            self._interrupt.set()
        for thread in self._threads:
            if thread.is_alive():
                thread.join(timeout)
