"""Placement-as-a-service: HTTP job API over the batch runner.

``repro serve`` exposes the :mod:`repro.runner` machinery — content-
hashed job specs, the run store, the result cache, checkpoint/resume —
as a long-lived daemon: jobs arrive over HTTP, run on background
dispatch threads with bounded-queue backpressure, and stream their
telemetry live over Server-Sent Events.  A placement served over HTTP
lands in the same ``runs/<hash16>/`` layout, with the same metrics,
as the same spec drained through ``repro batch``.
"""

from repro.serve.api import PlacementServer
from repro.serve.client import (
    PlacementClient,
    ServiceError,
    ServiceUnavailable,
)
from repro.serve.queue import (
    TERMINAL_STATES,
    AsyncScheduler,
    JobCancelled,
    JobState,
    QueueFull,
)

__all__ = [
    "AsyncScheduler",
    "JobCancelled",
    "JobState",
    "PlacementClient",
    "PlacementServer",
    "QueueFull",
    "ServiceError",
    "ServiceUnavailable",
    "TERMINAL_STATES",
]
