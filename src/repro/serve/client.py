"""Client for the placement service (urllib-only, no dependencies).

:class:`PlacementClient` speaks the ``repro serve`` HTTP API:
``submit`` posts a job spec and returns the service's job view,
``job``/``jobs`` poll state, ``cancel`` requests cooperative
cancellation, and :meth:`iter_events` consumes the Server-Sent Events
stream — reconnecting from the last received byte offset (the SSE
``id``), so a dropped connection never replays or loses events.

Transient failures (connection refused while the daemon restarts,
``429`` backpressure, ``5xx``) are retried with exponential backoff;
``429`` honours the server's ``Retry-After`` hint.  Client-side errors
(``4xx`` other than 429) raise :class:`ServiceError` immediately — a
bad spec does not get better by retrying.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Iterator, Optional

#: transient statuses worth retrying (alongside connection errors)
_RETRY_STATUSES = frozenset({429, 502, 503, 504})


class ServiceError(RuntimeError):
    """A definitive (non-retryable) error response from the service."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceUnavailable(ServiceError):
    """The service stayed unreachable/overloaded through every retry."""


class PlacementClient:
    """Thin, retrying HTTP client for one ``repro serve`` endpoint."""

    def __init__(self, base_url: str, retries: int = 4,
                 backoff: float = 0.25, timeout: float = 30.0,
                 sleep=time.sleep):
        self.base_url = base_url.rstrip("/")
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.timeout = float(timeout)
        self._sleep = sleep

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: Optional[dict] = None) -> dict:
        """One JSON round-trip with retry/backoff on transient failures."""
        url = f"{self.base_url}{path}"
        data = json.dumps(body).encode() if body is not None else None
        last_error: Optional[str] = None
        for attempt in range(self.retries + 1):
            request = urllib.request.Request(
                url, data=data, method=method,
                headers={"Content-Type": "application/json"}
                if data else {})
            try:
                with urllib.request.urlopen(
                        request, timeout=self.timeout) as response:
                    return json.loads(response.read().decode())
            except urllib.error.HTTPError as exc:
                detail = self._error_detail(exc)
                if exc.code not in _RETRY_STATUSES:
                    raise ServiceError(exc.code, detail)
                last_error = f"HTTP {exc.code}: {detail}"
                delay = self._retry_delay(exc, attempt)
            except (urllib.error.URLError, ConnectionError,
                    TimeoutError) as exc:
                last_error = str(exc)
                delay = self.backoff * (2 ** attempt)
            if attempt < self.retries:
                self._sleep(delay)
        raise ServiceUnavailable(
            503, f"{method} {path} failed after "
                 f"{self.retries + 1} attempts: {last_error}")

    @staticmethod
    def _error_detail(exc: urllib.error.HTTPError) -> str:
        try:
            payload = json.loads(exc.read().decode())
            return str(payload.get("error", payload))
        except Exception:  # noqa: BLE001 — non-JSON error body
            return exc.reason or "error"

    def _retry_delay(self, exc: urllib.error.HTTPError,
                     attempt: int) -> float:
        retry_after = exc.headers.get("Retry-After")
        if retry_after:
            try:
                return max(float(retry_after), 0.0)
            except ValueError:
                pass
        return self.backoff * (2 ** attempt)

    # -- API verbs -----------------------------------------------------
    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics_text(self) -> str:
        """Raw Prometheus exposition from ``/metrics``."""
        url = f"{self.base_url}/metrics"
        with urllib.request.urlopen(url, timeout=self.timeout) as resp:
            return resp.read().decode()

    def submit(self, spec: dict) -> dict:
        """Submit a job spec (lenient batch-file entry format)."""
        return self._request("POST", "/v1/jobs", body=spec)

    def job(self, job_hash: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_hash}")

    def jobs(self, states: Optional[list] = None) -> list:
        path = "/v1/jobs"
        if states:
            path += "?state=" + ",".join(states)
        return self._request("GET", path)["runs"]

    def cancel(self, job_hash: str) -> dict:
        return self._request("DELETE", f"/v1/jobs/{job_hash}")

    # -- event streaming -----------------------------------------------
    def iter_events(self, job_hash: str, offset: int = 0,
                    follow: bool = True,
                    reconnects: int = 4) -> Iterator[dict]:
        """Yield the job's events as dicts, tailing until terminal.

        Each yielded record carries the original event fields plus
        ``_event`` (the SSE event name) and ``_offset`` (the log byte
        offset after it — the resume cursor).  The final ``end`` frame
        is yielded too, so callers know why the stream closed.  On a
        dropped connection the stream reconnects from the last offset;
        events are therefore delivered exactly once, in order.
        """
        attempts = 0
        while True:
            url = (f"{self.base_url}/v1/jobs/{job_hash}/events"
                   f"?offset={offset}&follow={'1' if follow else '0'}")
            try:
                with urllib.request.urlopen(
                        url, timeout=self.timeout) as response:
                    for record in self._parse_sse(response):
                        offset = int(record.get("_offset", offset))
                        attempts = 0  # progress resets the budget
                        yield record
                        if record.get("_event") == "end":
                            return
                # server closed without an end frame: reconnect
            except urllib.error.HTTPError as exc:
                raise ServiceError(exc.code, self._error_detail(exc))
            except (urllib.error.URLError, ConnectionError,
                    TimeoutError) as exc:
                if attempts >= reconnects:
                    raise ServiceUnavailable(
                        503, f"event stream for {job_hash} lost: {exc}")
            attempts += 1
            if attempts > reconnects:
                raise ServiceUnavailable(
                    503, f"event stream for {job_hash} kept closing "
                         f"without an end frame")
            self._sleep(self.backoff * (2 ** (attempts - 1)))

    @staticmethod
    def _parse_sse(response) -> Iterator[dict]:
        """Parse ``event:``/``id:``/``data:`` frames off a live socket."""
        event_name = "event"
        event_id = None
        data_lines: list = []
        for raw in response:
            line = raw.decode().rstrip("\n").rstrip("\r")
            if not line:  # blank line terminates one frame
                if data_lines:
                    try:
                        record = json.loads("\n".join(data_lines))
                    except json.JSONDecodeError:
                        record = {"raw": "\n".join(data_lines)}
                    if not isinstance(record, dict):
                        record = {"value": record}
                    record["_event"] = event_name
                    if event_id is not None:
                        record["_offset"] = event_id
                    yield record
                event_name = "event"
                event_id = None
                data_lines = []
                continue
            if line.startswith(":"):
                continue  # keepalive comment
            field, _, value = line.partition(":")
            value = value[1:] if value.startswith(" ") else value
            if field == "event":
                event_name = value
            elif field == "id":
                try:
                    event_id = int(value)
                except ValueError:
                    event_id = None
            elif field == "data":
                data_lines.append(value)
