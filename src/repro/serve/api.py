"""HTTP API of the placement daemon (stdlib-only).

``repro serve`` turns the batch runner into an always-on placement
engine: a :class:`PlacementServer` wraps a ``ThreadingHTTPServer``
(one thread per connection, daemonic) over an
:class:`~repro.serve.queue.AsyncScheduler` and a shared
:class:`~repro.runner.store.RunStore`.  Endpoints:

==========================  ==========================================
``POST /v1/jobs``           submit a job spec (lenient ``batch`` file
                            format); idempotent on the content hash —
                            202 queued, 200 deduplicated/cache hit,
                            429 + ``Retry-After`` over the admission
                            bound, 400 bad spec
``GET /v1/jobs``            store listing (+ in-memory queued jobs),
                            ``?state=`` comma filter
``GET /v1/jobs/{hash}``     one job: lifecycle state, status.json,
                            metrics, event counts
``GET /v1/jobs/{hash}/events``  Server-Sent Events tail of the run's
                            JSONL event log (``?offset=`` resumes,
                            ``?follow=0`` dumps-and-closes)
``DELETE /v1/jobs/{hash}``  cooperative cancel
``GET /healthz``            liveness + startup orphan recovery count
``GET /metrics``            Prometheus text from the fleet registry
==========================  ==========================================

Every request lands in the fleet metrics (`repro_http_requests_total`
by method/route/code, `repro_http_request_seconds` by route — route
*patterns*, not raw paths, so label cardinality stays bounded).

The SSE stream rides the :func:`repro.runner.events.tail_events`
cursor: each poll reads only bytes appended since the previous poll,
events are framed as ``event:``/``data:`` with the byte offset as the
SSE ``id`` (a reconnecting client resumes with ``?offset=<last-id>``),
and the stream closes with ``event: end`` once the job is terminal and
the log is drained.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlsplit

from repro.obs.metrics import MetricsRegistry
from repro.obs.recorders import HTTP_REQUESTS, HTTP_REQUEST_SECONDS
from repro.runner.events import count_events, tail_events
from repro.runner.job import job_from_dict
from repro.runner.store import RunStore
from repro.serve.queue import (
    TERMINAL_STATES,
    AsyncScheduler,
    JobState,
    QueueFull,
)

#: SSE poll cadence while tailing a live event log
STREAM_POLL_SECONDS = 0.05
#: SSE keepalive comment cadence while a job is queued/idle
STREAM_KEEPALIVE_SECONDS = 5.0

_SERVER_NAME = "repro-serve"


class _HTTPError(Exception):
    """Terminate request handling with a JSON error response."""

    def __init__(self, code: int, message: str,
                 headers: Optional[dict] = None):
        super().__init__(message)
        self.code = code
        self.message = message
        self.headers = headers or {}


class _Handler(BaseHTTPRequestHandler):
    """Routes requests against the owning :class:`PlacementServer`."""

    server_version = _SERVER_NAME
    protocol_version = "HTTP/1.1"

    # the default handler logs every request to stderr; the daemon
    # exposes /metrics instead
    def log_message(self, format, *args):  # noqa: A002 — stdlib name
        if self.ctx.verbose:
            super().log_message(format, *args)

    @property
    def ctx(self) -> "PlacementServer":
        return self.server.ctx  # type: ignore[attr-defined]

    # -- plumbing ------------------------------------------------------
    def _send_json(self, code: int, payload: dict,
                   headers: Optional[dict] = None) -> None:
        body = (json.dumps(payload, indent=2, sort_keys=True)
                + "\n").encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, str(value))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, code: int, text: str,
                   content_type: str = "text/plain; version=0.0.4") \
            -> None:
        body = text.encode()
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise _HTTPError(400, "request body required")
        raw = self.rfile.read(length)
        try:
            data = json.loads(raw.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HTTPError(400, f"invalid JSON body: {exc}")
        return data

    def _query(self) -> dict:
        return parse_qs(urlsplit(self.path).query)

    def _route(self, method: str) -> None:
        """Dispatch one request, recording the HTTP metrics."""
        started = time.monotonic()
        route = "(unknown)"
        code = 500
        try:
            route, code = self._dispatch(method)
        except _HTTPError as exc:
            code = exc.code
            self._send_json(exc.code, {"error": exc.message},
                            headers=exc.headers)
        except (BrokenPipeError, ConnectionResetError):
            code = 499  # client went away mid-stream (nginx idiom)
        except Exception as exc:  # noqa: BLE001 — daemon must survive
            try:
                self._send_json(
                    500, {"error": f"{type(exc).__name__}: {exc}"})
            except OSError:
                pass
        finally:
            registry = self.ctx.registry
            registry.counter(
                HTTP_REQUESTS, help="HTTP requests served",
                method=method, route=route, code=str(code)).inc()
            registry.histogram(
                HTTP_REQUEST_SECONDS,
                help="HTTP request latency", route=route).observe(
                max(time.monotonic() - started, 0.0))

    def _dispatch(self, method: str) -> tuple:
        path = urlsplit(self.path).path.rstrip("/") or "/"
        parts = [p for p in path.split("/") if p]

        if method == "GET" and path == "/healthz":
            return "/healthz", self._get_healthz()
        if method == "GET" and path == "/metrics":
            return "/metrics", self._get_metrics()
        if parts[:2] == ["v1", "jobs"]:
            if len(parts) == 2:
                if method == "POST":
                    return "/v1/jobs", self._post_job()
                if method == "GET":
                    return "/v1/jobs", self._list_jobs()
            elif len(parts) == 3:
                ref = parts[2]
                if method == "GET":
                    return "/v1/jobs/{hash}", self._get_job(ref)
                if method == "DELETE":
                    return "/v1/jobs/{hash}", self._delete_job(ref)
            elif len(parts) == 4 and parts[3] == "events" \
                    and method == "GET":
                return ("/v1/jobs/{hash}/events",
                        self._stream_events(parts[2]))
        raise _HTTPError(404, f"no route for {method} {path}")

    # -- verbs ---------------------------------------------------------
    def do_GET(self):  # noqa: N802 — stdlib contract
        self._route("GET")

    def do_POST(self):  # noqa: N802
        self._route("POST")

    def do_DELETE(self):  # noqa: N802
        self._route("DELETE")

    # -- endpoints -----------------------------------------------------
    def _get_healthz(self) -> int:
        ctx = self.ctx
        self._send_json(200, {
            "status": "ok",
            "uptime_seconds": round(time.time() - ctx.started_at, 3),
            "recovered_orphans": ctx.recovered_orphans,
            "queue": {
                "queued": ctx.scheduler.queued,
                "running": ctx.scheduler.running,
                "limit": ctx.scheduler.queue_limit,
                "workers": ctx.scheduler.workers,
            },
        })
        return 200

    def _get_metrics(self) -> int:
        self.ctx.scheduler.update_gauges()
        self._send_text(200, self.ctx.registry.to_prometheus())
        return 200

    def _post_job(self) -> int:
        data = self._read_body()
        try:
            spec = job_from_dict(data)
        except (ValueError, TypeError, KeyError) as exc:
            raise _HTTPError(400, f"invalid job spec: {exc}")
        try:
            job = self.ctx.scheduler.submit(spec)
        except QueueFull as exc:
            raise _HTTPError(
                429, str(exc),
                headers={"Retry-After": f"{exc.retry_after:g}"})
        except RuntimeError as exc:
            raise _HTTPError(503, str(exc))
        except Exception as exc:  # noqa: BLE001 — bad design refs
            raise _HTTPError(
                400, f"design load failed: {type(exc).__name__}: {exc}")
        payload = self.ctx.describe_job(job.job_hash) or job.summary()
        # 202 while the work is still pending (first submit and racing
        # duplicates alike — same ticket, same status); anything the
        # daemon can already answer (cache hit, terminal, running with
        # a run directory to poll) is a plain 200
        code = 202 if job.state == "queued" and not job.cached else 200
        self._send_json(code, payload)
        return code

    def _list_jobs(self) -> int:
        states = None
        raw = self._query().get("state")
        if raw:
            states = {s.strip() for chunk in raw
                      for s in chunk.split(",") if s.strip()}
        runs = self.ctx.list_jobs(states)
        self._send_json(200, {"runs": runs, "count": len(runs)})
        return 200

    def _get_job(self, ref: str) -> int:
        payload = self.ctx.describe_job(ref)
        if payload is None:
            raise _HTTPError(404, f"no job matching {ref!r}")
        self._send_json(200, payload)
        return 200

    def _delete_job(self, ref: str) -> int:
        job = self.ctx.scheduler.job(ref)
        if job is None:
            raise _HTTPError(404, f"no active job matching {ref!r}")
        self.ctx.scheduler.cancel(job.job_hash)
        payload = self.ctx.describe_job(job.job_hash) or job.summary()
        self._send_json(200, payload)
        return 200

    # -- SSE -----------------------------------------------------------
    def _sse_headers(self) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        # streams have no Content-Length; close delimits the body
        self.send_header("Connection", "close")
        self.end_headers()

    def _sse_event(self, name: str, data: dict, offset: int) -> None:
        frame = (f"event: {name}\n"
                 f"id: {offset}\n"
                 f"data: {json.dumps(data, sort_keys=True)}\n\n")
        self.wfile.write(frame.encode())
        self.wfile.flush()

    def _stream_events(self, ref: str) -> int:
        ctx = self.ctx
        job_hash = ctx.resolve_hash(ref)
        if job_hash is None:
            raise _HTTPError(404, f"no job matching {ref!r}")
        query = self._query()
        offset = int((query.get("offset") or ["0"])[0])
        follow = (query.get("follow") or ["1"])[0] not in ("0", "false")
        events_path = ctx.events_path(job_hash)

        self._sse_headers()
        last_beat = time.monotonic()
        while True:
            events, offset = tail_events(events_path, offset,
                                         offsets=True)
            for record, cursor in events:
                self._sse_event(record.get("type", "event"), record,
                                cursor)
                last_beat = time.monotonic()
            terminal = ctx.job_terminal(job_hash)
            if terminal or not follow:
                # drain once more: the terminal status write races the
                # final event appends
                events, offset = tail_events(events_path, offset,
                                             offsets=True)
                for record, cursor in events:
                    self._sse_event(record.get("type", "event"),
                                    record, cursor)
                self._sse_event(
                    "end",
                    {"state": ctx.job_state(job_hash),
                     "terminal": terminal}, offset)
                return 200
            if ctx.stopping.is_set():
                self._sse_event("end", {"state": "server-shutdown",
                                        "terminal": False}, offset)
                return 200
            if time.monotonic() - last_beat > STREAM_KEEPALIVE_SECONDS:
                self.wfile.write(b": keepalive\n\n")
                self.wfile.flush()
                last_beat = time.monotonic()
            time.sleep(STREAM_POLL_SECONDS)


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True


class PlacementServer:
    """The placement daemon: HTTP front end over an async scheduler.

    Construction binds the socket and recovers orphans; :meth:`start`
    launches the dispatch threads and the HTTP accept loop (in a
    background thread, so tests and ``repro serve`` both drive it);
    :meth:`stop` performs the graceful shutdown sequence.
    """

    def __init__(self, store: RunStore, scheduler: AsyncScheduler,
                 host: str = "127.0.0.1", port: int = 8734,
                 registry: Optional[MetricsRegistry] = None,
                 verbose: bool = False):
        self.store = store
        self.scheduler = scheduler
        self.registry = registry if registry is not None \
            else scheduler.registry
        self.verbose = verbose
        self.started_at = time.time()
        self.stopping = threading.Event()
        #: orphaned `running` runs recovered at startup — a crashed
        #: daemon's unfinished work, flipped to resumable failures
        #: before the first request can observe a stuck state
        self.recovered_orphans = len(store.recover_orphans())
        from repro.obs.recorders import ORPHANS_RECOVERED

        if self.recovered_orphans:
            self.registry.counter(
                ORPHANS_RECOVERED,
                help="orphaned runs recovered at startup").inc(
                self.recovered_orphans)
        self.httpd = _Server((host, port), _Handler)
        self.httpd.ctx = self  # type: ignore[attr-defined]
        self._serve_thread: Optional[threading.Thread] = None

    # -- addresses -----------------------------------------------------
    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "PlacementServer":
        self.scheduler.start()
        self._serve_thread = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-serve-http", daemon=True)
        self._serve_thread.start()
        return self

    def stop(self, interrupt: bool = True,
             timeout: Optional[float] = 30.0) -> None:
        """Graceful shutdown: close the socket, drain the scheduler.

        The order matters: admission stops first (new submits 503),
        in-flight jobs are interrupted at their next iteration (see
        :meth:`AsyncScheduler.shutdown`), and only then does the HTTP
        loop stop — so clients streaming events see the final
        ``run_failed``/``end`` frames instead of a reset connection.
        """
        self.stopping.set()
        self.scheduler.shutdown(interrupt=interrupt, timeout=timeout)
        self.httpd.shutdown()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout)
        self.httpd.server_close()

    # -- job views (store ∪ in-memory) ---------------------------------
    def resolve_hash(self, ref: str) -> Optional[str]:
        """A full job hash for ``ref`` (full, short, or unique prefix)."""
        job = self.scheduler.job(ref)
        if job is not None:
            return job.job_hash
        try:
            return self.store.load(ref).job_hash
        except KeyError:
            return None

    def events_path(self, job_hash: str) -> str:
        import os

        return os.path.join(self.store.run_dir(job_hash),
                            "events.jsonl")

    def job_state(self, job_hash: str) -> str:
        job = self.scheduler.job(job_hash)
        if job is not None:
            return job.state
        try:
            return self.store.load(job_hash).state
        except KeyError:
            return "unknown"

    def job_terminal(self, job_hash: str) -> bool:
        return self.job_state(job_hash) in TERMINAL_STATES

    def describe_job(self, ref: str) -> Optional[dict]:
        """Full job view: in-memory lifecycle merged with disk state."""
        job_hash = self.resolve_hash(ref)
        if job_hash is None:
            return None
        payload: dict = {}
        try:
            record = self.store.load(job_hash)
        except KeyError:
            record = None
        if record is not None:
            payload.update(record.summary())
            payload["events"] = dict(count_events(record.events_path))
            payload["metrics"] = record.metrics
        job = self.scheduler.job(job_hash)
        if job is not None:
            memory = job.summary()
            # the in-memory lifecycle state is fresher than the disk
            # status (a queued job has no directory at all; a
            # cancelled one reads `failed` on disk)
            payload.update(
                {k: v for k, v in memory.items() if v is not None})
            if (payload.get("metrics") is None
                    and job.state in TERMINAL_STATES
                    and job.outcome is not None):
                payload["metrics"] = job.outcome.metrics
        return payload

    def list_jobs(self, states: Optional[set] = None) -> list:
        """Listing entries for the store plus queued in-memory jobs."""
        entries = []
        seen = set()
        for record in self.store.list_runs():
            seen.add(record.job_hash)
            entry = record.summary()
            job = self.scheduler.job(record.job_hash)
            if job is not None:
                entry["state"] = job.state
                entry["cached"] = job.cached
            entries.append(entry)
        for job in self.scheduler.jobs():
            if job.job_hash in seen:
                continue
            entries.append(job.summary())  # queued: no run dir yet
        if states is not None:
            entries = [e for e in entries if e.get("state") in states]
        return entries
