"""Weighted-average (WA) wirelength operator (Section III-A).

Implements eq. (3) with the max/min-stabilized exponents and the exact
gradient eq. (6).  Three implementation strategies reproduce the paper's
kernel study (Fig. 10):

``net_by_net``
    One unit of work per net, looping in Python — the analog of net-level
    parallelization where |E| threads each walk their own net.
``atomic``
    Algorithm 1: pin-level multi-pass computation with scatter
    ("atomic") updates into per-net intermediate arrays x±, a±, b±, c±
    held in "global memory", followed by a separate backward kernel.
``merged``
    Algorithm 2: forward and backward merged into a single pass over
    net-sorted pins with segment reductions and no stored per-pass
    intermediates beyond the final cost and gradient.

Each strategy has two dataflows selected by the module's ``pooled``
flag.  The pooled dataflow (default) is allocation-free in steady
state: every temporary lives in a persistent
:class:`~repro.perf.workspace.Workspace` buffer written via ``out=``
arguments and in-place ufuncs, iteration-invariant quantities (the
multi-pin-net mask, the effective per-net and per-pin weights, the
cell-grouped pin ordering that replaces ``bincount``) are hoisted into
module precompute, and the backward pass reuses the gradient computed
in the forward.  ``pooled=False`` keeps the original
allocate-per-call kernels as the reference dataflow (and as the
"before" configuration of the pooling benchmarks).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.netlist.database import PlacementDB
from repro.nn.function import Function
from repro.nn.module import Module
from repro.nn.tensor import Tensor
from repro.perf.profiler import profiled
from repro.perf.workspace import NullWorkspace, Workspace

STRATEGIES = ("net_by_net", "atomic", "merged")


# ---------------------------------------------------------------------------
# reference kernels (allocate per call): all take net-sorted pin
# coordinates and return (total wl over this axis, per-sorted-pin gradient)
# ---------------------------------------------------------------------------
def _wa_1d_net_by_net(p: np.ndarray, starts: np.ndarray,
                      weight: np.ndarray, gamma: float):
    """Reference per-net loop (the slow 'one thread per net' scheme)."""
    total = p.dtype.type(0.0)
    grad = np.zeros_like(p)
    for e in range(starts.shape[0] - 1):
        lo, hi = starts[e], starts[e + 1]
        if hi - lo < 2:
            continue
        xs = p[lo:hi]
        x_max = xs.max()
        x_min = xs.min()
        a_pos = np.exp((xs - x_max) / gamma)
        a_neg = np.exp(-(xs - x_min) / gamma)
        b_pos = a_pos.sum()
        b_neg = a_neg.sum()
        c_pos = (xs * a_pos).sum()
        c_neg = (xs * a_neg).sum()
        w = weight[e]
        total += w * (c_pos / b_pos - c_neg / b_neg)
        g_pos = ((1.0 + xs / gamma) * b_pos - c_pos / gamma) / (b_pos * b_pos)
        g_neg = ((1.0 - xs / gamma) * b_neg + c_neg / gamma) / (b_neg * b_neg)
        grad[lo:hi] = w * (g_pos * a_pos - g_neg * a_neg)
    return total, grad


def _wa_1d_atomic(p: np.ndarray, starts: np.ndarray,
                  weight: np.ndarray, gamma: float,
                  net_of_pin: np.ndarray):
    """Algorithm 1: multi-pass pin-level scatters into net arrays."""
    num_nets = starts.shape[0] - 1
    dtype = p.dtype
    # x± kernel (atomic max / atomic min)
    x_max = np.full(num_nets, -np.inf, dtype=dtype)
    x_min = np.full(num_nets, np.inf, dtype=dtype)
    np.maximum.at(x_max, net_of_pin, p)
    np.minimum.at(x_min, net_of_pin, p)
    # a± kernel
    a_pos = np.exp((p - x_max[net_of_pin]) / gamma)
    a_neg = np.exp(-(p - x_min[net_of_pin]) / gamma)
    # b± kernel (atomic add)
    b_pos = np.zeros(num_nets, dtype=dtype)
    b_neg = np.zeros(num_nets, dtype=dtype)
    np.add.at(b_pos, net_of_pin, a_pos)
    np.add.at(b_neg, net_of_pin, a_neg)
    # c± kernel (atomic add)
    c_pos = np.zeros(num_nets, dtype=dtype)
    c_neg = np.zeros(num_nets, dtype=dtype)
    np.add.at(c_pos, net_of_pin, p * a_pos)
    np.add.at(c_neg, net_of_pin, p * a_neg)
    # WL kernel + reduction
    multi = np.diff(starts) >= 2
    wl = np.where(multi, c_pos / b_pos - c_neg / b_neg, 0.0)
    total = dtype.type((weight * wl).sum())
    # backward kernel (eq. 6), reading intermediates from "global memory"
    bp = b_pos[net_of_pin]
    bn = b_neg[net_of_pin]
    cp = c_pos[net_of_pin]
    cn = c_neg[net_of_pin]
    g_pos = ((1.0 + p / gamma) * bp - cp / gamma) / (bp * bp)
    g_neg = ((1.0 - p / gamma) * bn + cn / gamma) / (bn * bn)
    grad = (weight * multi)[net_of_pin] * (g_pos * a_pos - g_neg * a_neg)
    return total, grad


def _wa_1d_merged(p: np.ndarray, starts: np.ndarray,
                  weight: np.ndarray, gamma: float,
                  net_of_pin: np.ndarray):
    """Algorithm 2: single fused pass using segment reductions."""
    dtype = p.dtype
    seg = starts[:-1]
    x_max = np.maximum.reduceat(p, seg)
    x_min = np.minimum.reduceat(p, seg)
    a_pos = np.exp((p - x_max[net_of_pin]) / gamma)
    a_neg = np.exp(-(p - x_min[net_of_pin]) / gamma)
    pa_pos = p * a_pos
    pa_neg = p * a_neg
    b_pos = np.add.reduceat(a_pos, seg)
    b_neg = np.add.reduceat(a_neg, seg)
    c_pos = np.add.reduceat(pa_pos, seg)
    c_neg = np.add.reduceat(pa_neg, seg)
    multi = np.diff(starts) >= 2
    wl = np.where(multi, c_pos / b_pos - c_neg / b_neg, 0.0)
    total = dtype.type((weight * wl).sum())
    bp = b_pos[net_of_pin]
    bn = b_neg[net_of_pin]
    cp = c_pos[net_of_pin]
    cn = c_neg[net_of_pin]
    g_pos = ((1.0 + p / gamma) * bp - cp / gamma) / (bp * bp)
    g_neg = ((1.0 - p / gamma) * bn + cn / gamma) / (bn * bn)
    grad = (weight * multi)[net_of_pin] * (g_pos * a_pos - g_neg * a_neg)
    return total, grad


_KERNELS: dict[str, Callable] = {
    "net_by_net": lambda p, s, w, g, rep: _wa_1d_net_by_net(p, s, w, g),
    "atomic": _wa_1d_atomic,
    "merged": _wa_1d_merged,
}


# ---------------------------------------------------------------------------
# pooled kernels: identical math, zero steady-state allocations.  Every
# temporary is a named workspace buffer written with out=/in-place ufuncs.
# ---------------------------------------------------------------------------
def _axis_total(t, op, dtype):
    """Total WL from the per-net array, honoring a batched axis split.

    On the tape-replay fast path ``op`` is a :class:`_BatchPlan` whose
    per-net array holds the x nets followed by the y nets; summing each
    half separately and adding keeps the reduction order — and therefore
    every rounding — identical to two independent per-axis kernel calls.
    """
    split = getattr(op, "axis_split", None)
    if split is None:
        return dtype.type(t.sum())
    total = dtype.type(0.0)
    total += dtype.type(t[:split].sum())
    total += dtype.type(t[split:].sum())
    return total
def _wa_finish_pooled(p, op, ws, a_pos, a_neg, pa,
                      x_max, x_min, b_pos, b_neg, c_pos, c_neg, gamma):
    """Shared WL reduction + eq. (6) gradient over net intermediates.

    Consumes ``x_max``/``x_min`` as scratch; returns (total, grad) with
    the gradient in the persistent ``wa.g`` buffer.
    """
    num_pins = p.shape[0]
    # wl = w_eff * (c+/b+ - c-/b-); single-pin nets have b = 1, and
    # w_eff already zeroes them, so the division is safe
    np.divide(c_pos, b_pos, out=x_max)
    np.divide(c_neg, b_neg, out=x_min)
    x_max -= x_min
    x_max *= op.net_weight_eff
    total = _axis_total(x_max, op, p.dtype)
    # gradient: g+ = ((1 + p/γ)·b+ - c+/γ) / b+² read per pin
    t1 = ws.acquire("wa.t1", num_pins, p.dtype)
    t2 = ws.acquire("wa.t2", num_pins, p.dtype)
    g = ws.acquire("wa.g", num_pins, p.dtype)
    np.take(b_pos, op.net_of_pin, out=t1, mode="clip")
    np.take(c_pos, op.net_of_pin, out=t2, mode="clip")
    np.multiply(p, t1, out=g)
    g -= t2
    g /= gamma
    g += t1
    np.multiply(t1, t1, out=t1)
    g /= t1
    g *= a_pos
    # g- = ((1 - p/γ)·b- + c-/γ) / b-², folded as b- - (p·b- - c-)/γ
    np.take(b_neg, op.net_of_pin, out=t1, mode="clip")
    np.take(c_neg, op.net_of_pin, out=t2, mode="clip")
    h = pa
    np.multiply(p, t1, out=h)
    h -= t2
    h /= gamma
    np.subtract(t1, h, out=h)
    np.multiply(t1, t1, out=t1)
    h /= t1
    h *= a_neg
    g -= h
    g *= op.pin_weight
    return total, g


def _wa_exponents_pooled(p, op, ws, x_max, x_min, gamma):
    """a± = exp(±(p - x∓)/γ) into persistent buffers."""
    num_pins = p.shape[0]
    a_pos = ws.acquire("wa.apos", num_pins, p.dtype)
    np.take(x_max, op.net_of_pin, out=a_pos, mode="clip")
    np.subtract(p, a_pos, out=a_pos)
    a_pos /= gamma
    np.exp(a_pos, out=a_pos)
    a_neg = ws.acquire("wa.aneg", num_pins, p.dtype)
    np.take(x_min, op.net_of_pin, out=a_neg, mode="clip")
    a_neg -= p
    a_neg /= gamma
    np.exp(a_neg, out=a_neg)
    return a_pos, a_neg


def _wa_1d_merged_pooled(p, op, ws, gamma):
    """Algorithm 2 on workspace buffers: reduceat for every segment op."""
    num_nets = op.starts.shape[0] - 1
    num_pins = p.shape[0]
    seg = op.seg
    x_max = ws.acquire("wa.xmax", num_nets, p.dtype)
    x_min = ws.acquire("wa.xmin", num_nets, p.dtype)
    np.maximum.reduceat(p, seg, out=x_max)
    np.minimum.reduceat(p, seg, out=x_min)
    a_pos, a_neg = _wa_exponents_pooled(p, op, ws, x_max, x_min, gamma)
    pa = ws.acquire("wa.pa", num_pins, p.dtype)
    b_pos = ws.acquire("wa.bpos", num_nets, p.dtype)
    b_neg = ws.acquire("wa.bneg", num_nets, p.dtype)
    c_pos = ws.acquire("wa.cpos", num_nets, p.dtype)
    c_neg = ws.acquire("wa.cneg", num_nets, p.dtype)
    np.add.reduceat(a_pos, seg, out=b_pos)
    np.add.reduceat(a_neg, seg, out=b_neg)
    np.multiply(p, a_pos, out=pa)
    np.add.reduceat(pa, seg, out=c_pos)
    np.multiply(p, a_neg, out=pa)
    np.add.reduceat(pa, seg, out=c_neg)
    return _wa_finish_pooled(p, op, ws, a_pos, a_neg, pa,
                             x_max, x_min, b_pos, b_neg, c_pos, c_neg, gamma)


def _wa_1d_atomic_pooled(p, op, ws, gamma):
    """Algorithm 1 on workspace buffers: ufunc.at scatters per pass."""
    num_nets = op.starts.shape[0] - 1
    num_pins = p.shape[0]
    x_max = ws.acquire("wa.xmax", num_nets, p.dtype)
    x_min = ws.acquire("wa.xmin", num_nets, p.dtype)
    x_max.fill(-np.inf)
    x_min.fill(np.inf)
    np.maximum.at(x_max, op.net_of_pin, p)
    np.minimum.at(x_min, op.net_of_pin, p)
    a_pos, a_neg = _wa_exponents_pooled(p, op, ws, x_max, x_min, gamma)
    pa = ws.acquire("wa.pa", num_pins, p.dtype)
    b_pos = ws.zeros("wa.bpos", num_nets, p.dtype)
    b_neg = ws.zeros("wa.bneg", num_nets, p.dtype)
    c_pos = ws.zeros("wa.cpos", num_nets, p.dtype)
    c_neg = ws.zeros("wa.cneg", num_nets, p.dtype)
    np.add.at(b_pos, op.net_of_pin, a_pos)
    np.add.at(b_neg, op.net_of_pin, a_neg)
    np.multiply(p, a_pos, out=pa)
    np.add.at(c_pos, op.net_of_pin, pa)
    np.multiply(p, a_neg, out=pa)
    np.add.at(c_neg, op.net_of_pin, pa)
    return _wa_finish_pooled(p, op, ws, a_pos, a_neg, pa,
                             x_max, x_min, b_pos, b_neg, c_pos, c_neg, gamma)


def _wa_1d_net_by_net_pooled(p, op, ws, gamma):
    """Per-net loop writing into preallocated per-net scratch."""
    starts = op.starts
    grad = ws.acquire("wa.g", p.shape[0], p.dtype)
    grad.fill(0)
    scratch = ws.acquire("wa.scratch", (3, op.max_degree), p.dtype)
    total = p.dtype.type(0.0)
    weight = op.net_weight
    for e in range(starts.shape[0] - 1):
        lo, hi = starts[e], starts[e + 1]
        d = hi - lo
        if d < 2:
            continue
        xs = p[lo:hi]
        a_pos = scratch[0, :d]
        a_neg = scratch[1, :d]
        t = scratch[2, :d]
        np.subtract(xs, xs.max(), out=a_pos)
        a_pos /= gamma
        np.exp(a_pos, out=a_pos)
        np.subtract(xs.min(), xs, out=a_neg)
        a_neg /= gamma
        np.exp(a_neg, out=a_neg)
        b_pos = a_pos.sum()
        b_neg = a_neg.sum()
        c_pos = np.dot(xs, a_pos)
        c_neg = np.dot(xs, a_neg)
        w = weight[e]
        total += w * (c_pos / b_pos - c_neg / b_neg)
        # g+·a+ into t, then subtract g-·a- and scale by the net weight
        np.multiply(xs, b_pos / gamma, out=t)
        t += b_pos - c_pos / gamma
        t /= b_pos * b_pos
        t *= a_pos
        out = grad[lo:hi]
        np.multiply(xs, -b_neg / gamma, out=out)
        out += b_neg + c_neg / gamma
        out /= b_neg * b_neg
        out *= a_neg
        np.subtract(t, out, out=out)
        out *= w
    return total, grad


_POOLED_KERNELS: dict[str, Callable] = {
    "net_by_net": _wa_1d_net_by_net_pooled,
    "atomic": _wa_1d_atomic_pooled,
    "merged": _wa_1d_merged_pooled,
}


class _BatchPlan:
    """Both-axis replay plan: the x and y pin problems concatenated.

    The tape-replay fast path runs one kernel call over ``2P`` pins and
    ``2E`` net segments instead of two calls over ``P``/``E``.  Every
    index array is the per-axis one concatenated with its y-shifted
    copy, so each segment reduction, scatter and gather processes
    exactly the same elements in exactly the same order as the two
    per-axis calls — concatenated ``reduceat``/``ufunc.at`` results are
    bit-identical to separate ones — and :func:`_axis_total` keeps the
    final scalar reduction per-axis as well.  Exposes the ``op``
    attributes the pooled kernels read, so they run unmodified.
    """

    def __init__(self, op, n: int):
        num_pins = op.pin_cell_sorted.shape[0]
        num_nets = op.starts.shape[0] - 1
        self.n = n
        self.num_pins = 2 * num_pins
        self.axis_split = num_nets
        self.starts = np.concatenate([op.starts[:-1], num_pins + op.starts])
        self.seg = self.starts[:-1]
        self.net_of_pin = np.concatenate(
            [op.net_of_pin, num_nets + op.net_of_pin])
        self.net_weight_eff = np.concatenate(
            [op.net_weight_eff, op.net_weight_eff])
        self.pin_weight = np.concatenate([op.pin_weight, op.pin_weight])
        # gather pin coordinates for both axes straight out of the
        # (x..., y...) position vector
        self.pin_index = np.concatenate(
            [op.pin_cell_sorted, n + op.pin_cell_sorted])
        self.offsets = np.concatenate(
            [op.pin_offset_x_sorted, op.pin_offset_y_sorted])
        self.cell_order = np.concatenate(
            [op.cell_order, num_pins + op.cell_order])
        self.cell_seg = np.concatenate(
            [op.cell_seg, num_pins + op.cell_seg])
        self.scatter_index = np.concatenate(
            [op.cells_with_pins, n + op.cells_with_pins])
        self.fixed_index = np.concatenate([op.fixed_idx, n + op.fixed_idx])
        self.cell_grad_buf = np.empty(2 * op.cell_seg.shape[0],
                                      dtype=op.dtype)


def _pin_op_batch(pos, op, plan, ws, gamma, kernel):
    """Both axes of the pooled pin pipeline in one batched kernel call.

    The replay-only counterpart of :func:`_pin_op_pooled`: same math,
    same rounding (see :class:`_BatchPlan`), half the numpy dispatches.
    Returns (grad buffer of length 2n, total).
    """
    n = plan.n
    grad = ws.acquire("wa.grad", 2 * n, op.dtype)
    if plan.num_pins == 0:
        grad.fill(0)
        return grad, op.dtype.type(0.0)
    p = ws.acquire("wa.p2", plan.num_pins, op.dtype)
    np.take(pos, plan.pin_index, out=p, mode="clip")
    p += plan.offsets
    total, g = kernel(p, plan, ws, gamma)
    gs = ws.acquire("wa.gsort2", plan.num_pins, op.dtype)
    np.take(g, plan.cell_order, out=gs, mode="clip")
    np.add.reduceat(gs, plan.cell_seg, out=plan.cell_grad_buf)
    grad.fill(0)
    grad[plan.scatter_index] = plan.cell_grad_buf
    grad[plan.fixed_index] = 0.0
    return grad, total


def _batch_plan_for(op, n: int) -> _BatchPlan:
    plan = getattr(op, "_batch_plan", None)
    if plan is None or plan.n != n:
        plan = op._batch_plan = _BatchPlan(op, n)
    return plan


def _compile_pin_replay(node, op, kernel):
    """Shared ``compile_replay`` body of the WA and LSE nodes."""

    def fwd(pos):
        with profiled("wl.forward"):
            pos = pos.astype(op.dtype, copy=False)
            n = pos.shape[0] // 2
            gamma = op.dtype.type(op.gamma)
            plan = _batch_plan_for(op, n)
            grad, total = _pin_op_batch(pos, op, plan, op.ws, gamma, kernel)
            node.save_for_backward(op, grad)
            return np.asarray(total, dtype=op.dtype)

    return fwd, node.backward


class _WAFunction(Function):
    """Autograd node: pos (2*N,) -> scalar WA wirelength.

    ``N`` may exceed ``db.num_cells`` when filler cells are appended to
    the position vector; fillers carry no pins and get zero gradient.
    """

    capture_safe = True

    def compile_replay(self, kwargs):
        """Tape fast path: both axes batched into one pooled kernel call."""
        op = kwargs["op"]
        if not op.pooled or op.strategy not in ("atomic", "merged"):
            return None
        return _compile_pin_replay(self, op, _POOLED_KERNELS[op.strategy])

    def forward(self, pos: np.ndarray, *, op: "WeightedAverageWirelength"):
        with profiled("wl.forward"):
            n = pos.shape[0] // 2
            pos = pos.astype(op.dtype, copy=False)
            gamma = op.dtype.type(op.gamma)
            if op.pooled:
                grad, total = _pin_op_pooled(
                    pos, n, op, op.ws, gamma,
                    _POOLED_KERNELS[op.strategy],
                )
                self.save_for_backward(op, grad)
                return np.asarray(total, dtype=op.dtype)
            x = pos[:n]
            y = pos[n:]
            px = (x[op.pin_cell_sorted] + op.pin_offset_x_sorted)
            py = (y[op.pin_cell_sorted] + op.pin_offset_y_sorted)
            kernel = _KERNELS[op.strategy]
            wl_x, gx = kernel(px, op.starts, op.net_weight, gamma,
                              op.net_of_pin)
            wl_y, gy = kernel(py, op.starts, op.net_weight, gamma,
                              op.net_of_pin)
            grad = np.empty(2 * n, dtype=op.dtype)
            grad[:n] = np.bincount(op.pin_cell_sorted, weights=gx,
                                   minlength=n)
            grad[n:] = np.bincount(op.pin_cell_sorted, weights=gy,
                                   minlength=n)
            grad[:n][op.fixed_idx] = 0.0
            grad[n:][op.fixed_idx] = 0.0
            self.save_for_backward(op, grad)
            return np.asarray(wl_x + wl_y, dtype=op.dtype)

    def backward(self, grad_output):
        with profiled("wl.backward"):
            op, grad = self.saved_values
            if not op.pooled:
                return (np.asarray(grad_output) * grad,)
            out = op.ws.acquire("wa.gout", grad.shape[0], grad.dtype)
            np.multiply(grad, np.asarray(grad_output), out=out)
            return (out,)


def _pin_op_pooled(pos, n, op, ws, gamma, kernel):
    """Shared pooled forward for pin-based wirelength ops.

    Gathers pin coordinates into pooled buffers (one axis at a time so
    the kernel scratch is reused), runs ``kernel``, and scatters the
    per-pin gradient to cells with the precomputed cell-grouped
    ``reduceat`` plan (the allocation-free replacement for
    ``bincount``).  Returns (grad buffer of length 2n, total).
    """
    num_pins = op.pin_cell_sorted.shape[0]
    grad = ws.acquire("wa.grad", 2 * n, op.dtype)
    if num_pins == 0:
        grad.fill(0)
        return grad, op.dtype.type(0.0)
    total = op.dtype.type(0.0)
    p = ws.acquire("wa.p", num_pins, op.dtype)
    gs = ws.acquire("wa.gsort", num_pins, op.dtype)
    for axis, offsets in ((0, op.pin_offset_x_sorted),
                          (1, op.pin_offset_y_sorted)):
        coords = pos[axis * n:(axis + 1) * n]
        np.take(coords, op.pin_cell_sorted, out=p, mode="clip")
        p += offsets
        wl, g = kernel(p, op, ws, gamma)
        total += wl
        np.take(g, op.cell_order, out=gs, mode="clip")
        half = grad[axis * n:(axis + 1) * n]
        half.fill(0)
        np.add.reduceat(gs, op.cell_seg, out=op.cell_grad_buf)
        half[op.cells_with_pins] = op.cell_grad_buf
        half[op.fixed_idx] = 0.0
    return grad, total


def _build_pin_precompute(op, db: PlacementDB) -> None:
    """Hoist iteration-invariant pin/net data onto a wirelength module.

    Shared by the WA and LSE ops: net-sorted pin maps, the multi-pin
    mask folded into the net/pin weights, and the cell-grouped pin
    ordering whose segment reduction replaces ``bincount`` in the
    gradient scatter.
    """
    order = db.net2pin
    op.starts = db.net2pin_start
    op.seg = op.starts[:-1]
    op.pin_cell_sorted = db.pin_cell[order]
    op.pin_offset_x_sorted = db.pin_offset_x[order].astype(op.dtype)
    op.pin_offset_y_sorted = db.pin_offset_y[order].astype(op.dtype)
    op.net_weight = db.net_weight.astype(op.dtype)
    # high-fanout filter (DREAMPlace's ignore_net_degree): zeroing the
    # weight here removes the net from the smooth-wirelength *gradient*
    # on every dataflow — pooled, reference, and the captured-tape
    # replay all derive their weights from these hoisted arrays — while
    # reported HPWL (db.hpwl) keeps its own unmasked weights
    limit = int(getattr(op, "ignore_net_degree", 0) or 0)
    if limit > 0:
        op.net_weight = np.where(
            db.net_degree <= limit, op.net_weight, 0.0
        ).astype(op.dtype)
    op.net_of_pin = np.repeat(
        np.arange(db.num_nets, dtype=np.int64), db.net_degree
    )
    op.fixed_idx = np.flatnonzero(~db.movable)
    # iteration-invariant masks (hoisted out of the per-call kernels)
    op.multi = np.diff(op.starts) >= 2
    op.net_weight_eff = np.where(op.multi, op.net_weight, 0.0).astype(op.dtype)
    op.pin_weight = op.net_weight_eff[op.net_of_pin]
    op.max_degree = int(db.net_degree.max()) if db.num_nets else 0
    # cell-grouped pin plan: pins sorted by cell, segment starts per
    # cell that has pins
    cell_order = np.argsort(op.pin_cell_sorted, kind="stable")
    cells_sorted = op.pin_cell_sorted[cell_order]
    first = np.ones(cells_sorted.shape[0], dtype=bool)
    first[1:] = cells_sorted[1:] != cells_sorted[:-1]
    op.cell_order = cell_order
    op.cell_seg = np.flatnonzero(first)
    op.cells_with_pins = cells_sorted[op.cell_seg]
    op.cell_grad_buf = np.empty(op.cell_seg.shape[0], dtype=op.dtype)


class WeightedAverageWirelength(Module):
    """WA wirelength as a differentiable module over cell positions.

    Parameters
    ----------
    db:
        The placement database providing the netlist connectivity.
    gamma:
        Smoothness parameter of eq. (3); mutable between iterations (the
        global placer anneals it as overflow decreases).
    strategy:
        One of :data:`STRATEGIES`.
    dtype:
        ``numpy.float32`` or ``numpy.float64`` (the paper's precisions).
    pooled:
        Use the allocation-free workspace dataflow (default).  ``False``
        selects the original allocate-per-call reference kernels.
    workspace:
        Optional externally owned :class:`Workspace` (to share pools
        across ops); defaults to a private one.
    ignore_net_degree:
        Mask nets with more pins than this out of the gradient
        (0 = keep every net, the default).
    """

    def __init__(self, db: PlacementDB, gamma: float = 1.0,
                 strategy: str = "merged", dtype=np.float64,
                 pooled: bool = True, workspace: Workspace | None = None,
                 ignore_net_degree: int = 0):
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
            )
        if (np.diff(db.net2pin_start) < 1).any():
            raise ValueError("WA wirelength requires every net to have pins")
        self.strategy = strategy
        self.gamma = float(gamma)
        self.dtype = np.dtype(dtype)
        self.num_cells = db.num_cells
        self.pooled = bool(pooled)
        self.ignore_net_degree = int(ignore_net_degree)
        self.ws = workspace if workspace is not None else (
            Workspace() if pooled else NullWorkspace()
        )
        _build_pin_precompute(self, db)

    def forward(self, pos: Tensor) -> Tensor:
        return _WAFunction.apply(pos, op=self)
