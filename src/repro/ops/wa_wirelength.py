"""Weighted-average (WA) wirelength operator (Section III-A).

Implements eq. (3) with the max/min-stabilized exponents and the exact
gradient eq. (6).  Three implementation strategies reproduce the paper's
kernel study (Fig. 10):

``net_by_net``
    One unit of work per net, looping in Python — the analog of net-level
    parallelization where |E| threads each walk their own net.
``atomic``
    Algorithm 1: pin-level multi-pass computation with scatter
    ("atomic") updates into per-net intermediate arrays x±, a±, b±, c±
    held in "global memory", followed by a separate backward kernel.
``merged``
    Algorithm 2: forward and backward merged into a single pass over
    net-sorted pins with segment reductions and no stored per-pass
    intermediates beyond the final cost and gradient.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.netlist.database import PlacementDB
from repro.nn.function import Function
from repro.nn.module import Module
from repro.nn.tensor import Tensor

STRATEGIES = ("net_by_net", "atomic", "merged")


# ---------------------------------------------------------------------------
# kernels: all take net-sorted pin coordinates and return
# (total wl over this axis, per-sorted-pin gradient)
# ---------------------------------------------------------------------------
def _wa_1d_net_by_net(p: np.ndarray, starts: np.ndarray,
                      weight: np.ndarray, gamma: float):
    """Reference per-net loop (the slow 'one thread per net' scheme)."""
    total = p.dtype.type(0.0)
    grad = np.zeros_like(p)
    for e in range(starts.shape[0] - 1):
        lo, hi = starts[e], starts[e + 1]
        if hi - lo < 2:
            continue
        xs = p[lo:hi]
        x_max = xs.max()
        x_min = xs.min()
        a_pos = np.exp((xs - x_max) / gamma)
        a_neg = np.exp(-(xs - x_min) / gamma)
        b_pos = a_pos.sum()
        b_neg = a_neg.sum()
        c_pos = (xs * a_pos).sum()
        c_neg = (xs * a_neg).sum()
        w = weight[e]
        total += w * (c_pos / b_pos - c_neg / b_neg)
        g_pos = ((1.0 + xs / gamma) * b_pos - c_pos / gamma) / (b_pos * b_pos)
        g_neg = ((1.0 - xs / gamma) * b_neg + c_neg / gamma) / (b_neg * b_neg)
        grad[lo:hi] = w * (g_pos * a_pos - g_neg * a_neg)
    return total, grad


def _wa_1d_atomic(p: np.ndarray, starts: np.ndarray,
                  weight: np.ndarray, gamma: float,
                  net_of_pin: np.ndarray):
    """Algorithm 1: multi-pass pin-level scatters into net arrays."""
    num_nets = starts.shape[0] - 1
    dtype = p.dtype
    # x± kernel (atomic max / atomic min)
    x_max = np.full(num_nets, -np.inf, dtype=dtype)
    x_min = np.full(num_nets, np.inf, dtype=dtype)
    np.maximum.at(x_max, net_of_pin, p)
    np.minimum.at(x_min, net_of_pin, p)
    # a± kernel
    a_pos = np.exp((p - x_max[net_of_pin]) / gamma)
    a_neg = np.exp(-(p - x_min[net_of_pin]) / gamma)
    # b± kernel (atomic add)
    b_pos = np.zeros(num_nets, dtype=dtype)
    b_neg = np.zeros(num_nets, dtype=dtype)
    np.add.at(b_pos, net_of_pin, a_pos)
    np.add.at(b_neg, net_of_pin, a_neg)
    # c± kernel (atomic add)
    c_pos = np.zeros(num_nets, dtype=dtype)
    c_neg = np.zeros(num_nets, dtype=dtype)
    np.add.at(c_pos, net_of_pin, p * a_pos)
    np.add.at(c_neg, net_of_pin, p * a_neg)
    # WL kernel + reduction
    multi = np.diff(starts) >= 2
    wl = np.where(multi, c_pos / b_pos - c_neg / b_neg, 0.0)
    total = dtype.type((weight * wl).sum())
    # backward kernel (eq. 6), reading intermediates from "global memory"
    bp = b_pos[net_of_pin]
    bn = b_neg[net_of_pin]
    cp = c_pos[net_of_pin]
    cn = c_neg[net_of_pin]
    g_pos = ((1.0 + p / gamma) * bp - cp / gamma) / (bp * bp)
    g_neg = ((1.0 - p / gamma) * bn + cn / gamma) / (bn * bn)
    grad = (weight * multi)[net_of_pin] * (g_pos * a_pos - g_neg * a_neg)
    return total, grad


def _wa_1d_merged(p: np.ndarray, starts: np.ndarray,
                  weight: np.ndarray, gamma: float,
                  net_of_pin: np.ndarray):
    """Algorithm 2: single fused pass using segment reductions."""
    dtype = p.dtype
    seg = starts[:-1]
    x_max = np.maximum.reduceat(p, seg)
    x_min = np.minimum.reduceat(p, seg)
    a_pos = np.exp((p - x_max[net_of_pin]) / gamma)
    a_neg = np.exp(-(p - x_min[net_of_pin]) / gamma)
    pa_pos = p * a_pos
    pa_neg = p * a_neg
    b_pos = np.add.reduceat(a_pos, seg)
    b_neg = np.add.reduceat(a_neg, seg)
    c_pos = np.add.reduceat(pa_pos, seg)
    c_neg = np.add.reduceat(pa_neg, seg)
    multi = np.diff(starts) >= 2
    wl = np.where(multi, c_pos / b_pos - c_neg / b_neg, 0.0)
    total = dtype.type((weight * wl).sum())
    bp = b_pos[net_of_pin]
    bn = b_neg[net_of_pin]
    cp = c_pos[net_of_pin]
    cn = c_neg[net_of_pin]
    g_pos = ((1.0 + p / gamma) * bp - cp / gamma) / (bp * bp)
    g_neg = ((1.0 - p / gamma) * bn + cn / gamma) / (bn * bn)
    grad = (weight * multi)[net_of_pin] * (g_pos * a_pos - g_neg * a_neg)
    return total, grad


_KERNELS: dict[str, Callable] = {
    "net_by_net": lambda p, s, w, g, rep: _wa_1d_net_by_net(p, s, w, g),
    "atomic": _wa_1d_atomic,
    "merged": _wa_1d_merged,
}


class _WAFunction(Function):
    """Autograd node: pos (2*N,) -> scalar WA wirelength.

    ``N`` may exceed ``db.num_cells`` when filler cells are appended to
    the position vector; fillers carry no pins and get zero gradient.
    """

    def forward(self, pos: np.ndarray, *, op: "WeightedAverageWirelength"):
        n = pos.shape[0] // 2
        pos = pos.astype(op.dtype, copy=False)
        x = pos[:n]
        y = pos[n:]
        px = (x[op.pin_cell_sorted] + op.pin_offset_x_sorted)
        py = (y[op.pin_cell_sorted] + op.pin_offset_y_sorted)
        kernel = _KERNELS[op.strategy]
        gamma = op.dtype.type(op.gamma)
        wl_x, gx = kernel(px, op.starts, op.net_weight, gamma, op.net_of_pin)
        wl_y, gy = kernel(py, op.starts, op.net_weight, gamma, op.net_of_pin)
        grad = np.empty(2 * n, dtype=op.dtype)
        grad[:n] = np.bincount(op.pin_cell_sorted, weights=gx, minlength=n)
        grad[n:] = np.bincount(op.pin_cell_sorted, weights=gy, minlength=n)
        grad[:n][op.fixed_mask] = 0.0
        grad[n:][op.fixed_mask] = 0.0
        self.save_for_backward(grad)
        return np.asarray(wl_x + wl_y, dtype=op.dtype)

    def backward(self, grad_output):
        (grad,) = self.saved_values
        return (np.asarray(grad_output) * grad,)


class WeightedAverageWirelength(Module):
    """WA wirelength as a differentiable module over cell positions.

    Parameters
    ----------
    db:
        The placement database providing the netlist connectivity.
    gamma:
        Smoothness parameter of eq. (3); mutable between iterations (the
        global placer anneals it as overflow decreases).
    strategy:
        One of :data:`STRATEGIES`.
    dtype:
        ``numpy.float32`` or ``numpy.float64`` (the paper's precisions).
    """

    def __init__(self, db: PlacementDB, gamma: float = 1.0,
                 strategy: str = "merged", dtype=np.float64):
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
            )
        if (np.diff(db.net2pin_start) < 1).any():
            raise ValueError("WA wirelength requires every net to have pins")
        self.strategy = strategy
        self.gamma = float(gamma)
        self.dtype = np.dtype(dtype)
        self.num_cells = db.num_cells
        order = db.net2pin
        self.starts = db.net2pin_start
        self.pin_cell_sorted = db.pin_cell[order]
        self.pin_offset_x_sorted = db.pin_offset_x[order].astype(self.dtype)
        self.pin_offset_y_sorted = db.pin_offset_y[order].astype(self.dtype)
        self.net_weight = db.net_weight.astype(self.dtype)
        self.net_of_pin = np.repeat(
            np.arange(db.num_nets, dtype=np.int64), db.net_degree
        )
        self.fixed_mask = np.flatnonzero(~db.movable)

    def forward(self, pos: Tensor) -> Tensor:
        return _WAFunction.apply(pos, op=self)
