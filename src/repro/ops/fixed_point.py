"""Fixed-point accumulation for run-to-run determinism.

The paper's conclusion lists "implementations using fixed-point numbers
to guarantee run-to-run determinism" as future work: floating-point
atomics make GPU reductions order-dependent, so two identical runs can
diverge.  This module implements that idea on the reproduction's
substrate: scatter/reduction kernels that accumulate in scaled 64-bit
integers, which are associative and therefore give bit-identical
results under any summation order.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.bins import BinGrid
from repro.ops.density_map import _MACRO_SPAN, cell_bin_spans

#: fixed-point fractional bits (area resolution = 2^-20 ~ 1e-6)
FRACTION_BITS = 20
SCALE = float(1 << FRACTION_BITS)


def to_fixed(values: np.ndarray) -> np.ndarray:
    """Quantize to int64 fixed point (round-to-nearest)."""
    scaled = np.asarray(values, dtype=np.float64) * SCALE
    return np.round(scaled).astype(np.int64)


def from_fixed(values: np.ndarray) -> np.ndarray:
    return np.asarray(values, dtype=np.int64).astype(np.float64) / SCALE


def deterministic_sum(values: np.ndarray) -> float:
    """Order-independent sum via fixed-point accumulation."""
    return float(to_fixed(values).sum() / SCALE)


def scatter_density_fixed(grid: BinGrid, xl, yl, wx, wy, weight,
                          shuffle_seed: int | None = None) -> np.ndarray:
    """Density map with int64 accumulation.

    ``shuffle_seed`` optionally randomizes the processing order of
    cells — the result is bit-identical for every order, which is the
    determinism property the paper is after (floating-point
    accumulation would differ in the last bits).
    """
    xl = np.asarray(xl, dtype=np.float64)
    yl = np.asarray(yl, dtype=np.float64)
    wx = np.asarray(wx, dtype=np.float64)
    wy = np.asarray(wy, dtype=np.float64)
    weight = np.asarray(weight, dtype=np.float64)
    n = xl.shape[0]
    order = np.arange(n)
    if shuffle_seed is not None:
        np.random.default_rng(shuffle_seed).shuffle(order)

    acc = np.zeros(grid.shape, dtype=np.int64)
    region = grid.region
    for i in order:
        cxl, cyl = xl[i], yl[i]
        cxh, cyh = cxl + wx[i], cyl + wy[i]
        ix0, ix1 = grid.span_x(cxl, cxh)
        iy0, iy1 = grid.span_y(cyl, cyh)
        cols = np.arange(ix0, ix1)
        rows = np.arange(iy0, iy1)
        lo_x = region.xl + cols * grid.bin_w
        ovx = np.maximum(
            np.minimum(cxh, lo_x + grid.bin_w) - np.maximum(cxl, lo_x), 0.0
        )
        lo_y = region.yl + rows * grid.bin_h
        ovy = np.maximum(
            np.minimum(cyh, lo_y + grid.bin_h) - np.maximum(cyl, lo_y), 0.0
        )
        # quantize each contribution before accumulation: integer adds
        # commute exactly, so the order cannot matter
        contribution = to_fixed(weight[i] * np.outer(ovx, ovy))
        acc[ix0:ix1, iy0:iy1] += contribution
    return from_fixed(acc)


def hpwl_fixed(pin_x: np.ndarray, pin_y: np.ndarray, pin_net: np.ndarray,
               num_nets: int) -> float:
    """Deterministic HPWL: per-net extents in fixed point, integer sum."""
    fx = to_fixed(pin_x)
    fy = to_fixed(pin_y)
    x_max = np.full(num_nets, np.iinfo(np.int64).min, dtype=np.int64)
    x_min = np.full(num_nets, np.iinfo(np.int64).max, dtype=np.int64)
    y_max = x_max.copy()
    y_min = x_min.copy()
    np.maximum.at(x_max, pin_net, fx)
    np.minimum.at(x_min, pin_net, fx)
    np.maximum.at(y_max, pin_net, fy)
    np.minimum.at(y_min, pin_net, fy)
    empty = x_max < x_min
    lengths = (x_max - x_min) + (y_max - y_min)
    lengths[empty] = 0
    return float(lengths.sum() / SCALE)
