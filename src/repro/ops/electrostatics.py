"""Spectral solution of Poisson's equation (Section II-C, eq. 4-5, 9).

Cells are charges, the density penalty is potential energy, and the
density gradient is the electric field.  Given the charge-density map
``rho`` the solver returns the potential ``psi`` and the field
``(xi_x, xi_y)`` via DCT/IDCT/IDXST routines (eq. 9), with Neumann
boundary conditions and zero total charge enforced by dropping the DC
coefficient (eq. 4b/4c).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.bins import BinGrid
from repro.ops import dct as _dct
from repro.perf.workspace import Workspace


@dataclass
class FieldSolution:
    """Potential and field maps on the bin grid."""

    potential: np.ndarray  # psi, (nx, ny)
    field_x: np.ndarray  # xi_x = -dpsi/dx, (nx, ny)
    field_y: np.ndarray  # xi_y = -dpsi/dy, (nx, ny)


class PoissonSolver:
    """Precomputed-frequency spectral Poisson solver on a bin grid.

    Frequencies are expressed per layout unit, so the returned field is
    the true spatial gradient of the potential regardless of bin aspect
    ratio.  ``impl`` selects the DCT implementation family ("2d", "n",
    "2n", or "naive"), reproducing the Fig. 11 comparison.
    """

    def __init__(self, grid: BinGrid, impl: str = "2d",
                 workspace: Workspace | None = None):
        self.grid = grid
        self.impl = impl
        self.ws = workspace if workspace is not None else Workspace()
        nx, ny = grid.nx, grid.ny
        # w_u per layout unit: basis cos(pi*u*(i+0.5)/nx) has spatial
        # frequency pi*u/(nx*bin_w) = pi*u/region_width
        wu = np.pi * np.arange(nx) / (nx * grid.bin_w)
        wv = np.pi * np.arange(ny) / (ny * grid.bin_h)
        self._wu = wu[:, None]
        self._wv = wv[None, :]
        denom = self._wu ** 2 + self._wv ** 2
        denom[0, 0] = 1.0  # avoid 0/0; the DC coefficient is zeroed
        self._inv_denom = 1.0 / denom
        # 2/M per axis folds the DCT-expansion coefficients (alpha_u
        # alpha_v / M^2) together with the half-DC convention of the
        # inverse transform; see ops/dct.py
        self._scale = (2.0 / nx) * (2.0 / ny)
        # precombined spectral kernel: one in-place multiply per solve
        self._kernel = self._scale * self._inv_denom

    def solve(self, rho: np.ndarray) -> FieldSolution:
        """Solve ``laplacian(psi) = -rho`` and return psi and xi = -grad psi."""
        if rho.shape != self.grid.shape:
            raise ValueError(
                f"density map shape {rho.shape} != grid {self.grid.shape}"
            )
        coeff = _dct.dct2d(np.asarray(rho, dtype=np.float64), impl=self.impl)
        coeff *= self._kernel
        coeff[0, 0] = 0.0
        psi = _dct.idct2d(coeff, impl=self.impl)
        buf = self.ws.acquire("psn.spectral", coeff.shape, coeff.dtype)
        np.multiply(coeff, self._wu, out=buf)
        xi_x = _dct.idxst_idct(buf, impl=self.impl)
        np.multiply(coeff, self._wv, out=buf)
        xi_y = _dct.idct_idxst(buf, impl=self.impl)
        return FieldSolution(potential=psi, field_x=xi_x, field_y=xi_y)

    def solve_captured(self, rho: np.ndarray) -> FieldSolution:
        """:meth:`solve` with the three inverse transforms batched.

        Bit-identical to :meth:`solve` (see
        :func:`repro.ops.dct.idct2d_sine_batch`); used on the captured
        tape's replay path.  Implementations other than "2d" have no
        batched form and fall back to the regular solve.
        """
        if self.impl != "2d":
            return self.solve(rho)
        if rho.shape != self.grid.shape:
            raise ValueError(
                f"density map shape {rho.shape} != grid {self.grid.shape}"
            )
        if rho.dtype != np.float64:
            cast = self.ws.acquire("psn.rho64", rho.shape, np.float64)
            np.copyto(cast, rho)
            rho = cast
        coeff = _dct.dct2d_fft2_pooled(rho, self.ws)
        coeff *= self._kernel
        coeff[0, 0] = 0.0
        # the sequential solve reuses one spectral buffer; here both
        # sine inputs must be alive at once for the batched transform
        bx = self.ws.acquire("psn.bx", coeff.shape, coeff.dtype)
        by = self.ws.acquire("psn.by", coeff.shape, coeff.dtype)
        np.multiply(coeff, self._wu, out=bx)
        np.multiply(coeff, self._wv, out=by)
        psi, xi_x, xi_y = _dct.idct2d_sine_batch(coeff, bx, by, self.ws)
        return FieldSolution(potential=psi, field_x=xi_x, field_y=xi_y)
