"""Electrostatic density penalty operator (Sections II-C and III-B).

``ElectricDensity`` is the custom OP computing the density cost ``D`` in
eq. (2): cells (plus filler cells) are charges, the forward pass scatters
charge into bins, solves Poisson's equation spectrally and returns the
potential energy; the backward pass gathers the electric force per cell.

With ``pooled=True`` (default) the scatter/gather pipeline runs on
persistent workspace buffers: the forward builds one flat
(cell, bin) overlap plan per iteration and the backward reuses its
overlap coefficients for both force gathers, so overlaps are computed
once instead of three times and no large temporaries are allocated in
steady state.  ``pooled=False`` keeps the original per-call strategies
(the "before" configuration of the pooling benchmarks).
"""

from __future__ import annotations

import numpy as np

from repro.geometry.bins import BinGrid
from repro.netlist.database import PlacementDB
from repro.nn.function import Function
from repro.nn.module import Module
from repro.nn.tensor import Tensor
from repro.ops.density_map import (
    build_overlap_plan,
    gather_field,
    gather_field_pooled,
    scatter_density,
    scatter_density_pooled,
)
from repro.ops.electrostatics import PoissonSolver
from repro.perf.profiler import profiled
from repro.perf.workspace import NullWorkspace, Workspace

SQRT2 = float(np.sqrt(2.0))


def stretch_sizes(width: np.ndarray, height: np.ndarray,
                  grid: BinGrid) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ePlace cell smoothing: expand small cells to sqrt(2) x bin size.

    Cells narrower than ``sqrt(2) * bin`` in a dimension are stretched to
    that size, with a density scale preserving total charge (area).
    Returns ``(stretched_w, stretched_h, scale)``.
    """
    sw = np.maximum(width, SQRT2 * grid.bin_w)
    sh = np.maximum(height, SQRT2 * grid.bin_h)
    area = width * height
    stretched_area = sw * sh
    with np.errstate(invalid="ignore", divide="ignore"):
        scale = np.where(stretched_area > 0, area / stretched_area, 0.0)
    return sw, sh, scale


class _DensityFunction(Function):
    """Autograd node: pos (2*N,) -> scalar density penalty."""

    capture_safe = True

    def compile_replay(self, kwargs):
        """Tape fast path: pooled forward with the batched spectral solve.

        The filler-bounds check ran when the graph was captured and the
        participant index is iteration-invariant, so replay skips it;
        everything else is the regular pooled pipeline with the solver's
        three inverse transforms fused into one batched ``irfft2``.
        """
        op = kwargs["op"]
        if not op.pooled:
            return None
        idx = op.participant_index
        solve = op.solver.solve_captured
        batches: dict = {}  # n -> concatenated x/y gather plan

        def fwd(pos):
            with profiled("density.forward"):
                n = pos.shape[0] // 2
                batch = batches.get(n)
                if batch is None:
                    batch = batches[n] = (
                        np.concatenate([idx, n + idx]),
                        np.concatenate([op.off_x, op.off_y]),
                        np.concatenate([op.part_w, op.part_h]),
                    )
                return self._forward_pooled(pos, op, n, idx, solve, batch)

        # the pooled backward already reuses the forward's overlap plan
        # and is scalar-constant-free; nothing left to specialize
        return fwd, self.backward

    def forward(self, pos: np.ndarray, *, op: "ElectricDensity"):
        with profiled("density.forward"):
            n = pos.shape[0] // 2
            idx = op.participant_index
            if idx.max(initial=-1) >= n:
                raise ValueError(
                    "position vector too short for the configured fillers"
                )
            if op.pooled:
                return self._forward_pooled(pos, op, n, idx)
            x = pos[:n]
            y = pos[n:]
            # density boxes are centered on the cell, using stretched sizes
            xl = x[idx] + op.off_x
            yl = y[idx] + op.off_y
            with profiled("density.scatter"):
                rho_mov = scatter_density(
                    op.grid, xl, yl, op.part_w, op.part_h, op.part_scale,
                    strategy=op.strategy, dtype=op.dtype,
                )
            rho = rho_mov + op.fixed_density
            with profiled("density.solve"):
                solution = op.solver.solve(rho)
            energy = float((rho_mov * solution.potential).sum())
            self.save_for_backward(op, xl, yl, solution, n, None)
            return np.asarray(energy, dtype=op.dtype)

    def _forward_pooled(self, pos, op, n, idx, solve=None, batch=None):
        if solve is None:
            solve = op.solver.solve
        ws = op.ws
        m = idx.shape[0]
        pos = pos.astype(op.dtype, copy=False)
        if batch is not None:
            # replay fast path: one gather over the concatenated x/y
            # index (same elements, same elementwise adds); the plan
            # builder then runs on per-axis views of the stacks
            bidx, boff, bsize = batch
            xy = ws.acquire("den.xy", 2 * m, op.dtype)
            xyh = ws.acquire("den.xyh", 2 * m, op.dtype)
            np.take(pos, bidx, out=xy, mode="clip")
            xy += boff
            np.add(xy, bsize, out=xyh)
            with profiled("density.scatter"):
                plan = build_overlap_plan(op.grid, xy[:m], xy[m:],
                                          xyh[:m], xyh[m:],
                                          op.part_scale, ws, "den")
                rho_mov = scatter_density_pooled(op.grid, plan, ws,
                                                 "den.rho", op.dtype)
        else:
            xl = ws.acquire("den.xl", m, op.dtype)
            yl = ws.acquire("den.yl", m, op.dtype)
            xh = ws.acquire("den.xh", m, op.dtype)
            yh = ws.acquire("den.yh", m, op.dtype)
            np.take(pos[:n], idx, out=xl, mode="clip")
            xl += op.off_x
            np.take(pos[n:], idx, out=yl, mode="clip")
            yl += op.off_y
            np.add(xl, op.part_w, out=xh)
            np.add(yl, op.part_h, out=yh)
            with profiled("density.scatter"):
                plan = build_overlap_plan(op.grid, xl, yl, xh, yh,
                                          op.part_scale, ws, "den")
                rho_mov = scatter_density_pooled(op.grid, plan, ws,
                                                 "den.rho", op.dtype)
        rho = ws.acquire("den.rho_total", op.grid.shape, op.dtype)
        np.add(rho_mov, op.fixed_density, out=rho)
        with profiled("density.solve"):
            solution = solve(rho)
        # rho consumed by the solve; reuse it for the energy product
        np.multiply(rho_mov, solution.potential, out=rho)
        energy = float(rho.sum())
        self.save_for_backward(op, None, None, solution, n, plan)
        return np.asarray(energy, dtype=op.dtype)

    def backward(self, grad_output):
        with profiled("density.backward"):
            op, xl, yl, solution, n, plan = self.saved_values
            idx = op.participant_index
            scale = float(np.asarray(grad_output))
            if op.pooled:
                ws = op.ws
                grad = ws.acquire("den.grad", 2 * n, op.dtype)
                grad.fill(0)
                # moving along the field decreases the potential energy
                force = gather_field_pooled(plan, solution.field_x, ws,
                                            "den.force")
                force *= -scale
                grad[idx] = force
                force = gather_field_pooled(plan, solution.field_y, ws,
                                            "den.force")
                force *= -scale
                grad[n + idx] = force
                return (grad,)
            force_x = gather_field(
                op.grid, solution.field_x, xl, yl, op.part_w, op.part_h,
                op.part_scale, strategy=op.strategy, dtype=op.dtype,
            )
            force_y = gather_field(
                op.grid, solution.field_y, xl, yl, op.part_w, op.part_h,
                op.part_scale, strategy=op.strategy, dtype=op.dtype,
            )
            grad = np.zeros(2 * n, dtype=op.dtype)
            grad[idx] = -scale * force_x
            grad[n + idx] = -scale * force_y
            return (grad,)


class ElectricDensity(Module):
    """Density penalty ``D(pos)`` as a differentiable module.

    Parameters
    ----------
    db:
        Placement database.  Fixed cells are rasterized once into a
        static density map; movable cells (and fillers) are re-scattered
        every call.
    grid:
        Bin grid of the electrostatic system.
    num_fillers, filler_width, filler_height:
        Filler cells appended to the position vector (indices
        ``db.num_cells ..``), following ePlace's whitespace filling.
    strategy:
        Density map strategy, see :mod:`repro.ops.density_map` (used by
        the unpooled path; the pooled path always runs the flat
        contribution kernels).
    dct_impl:
        DCT family for the Poisson solver, see :mod:`repro.ops.dct`.
    pooled:
        Use the allocation-free workspace dataflow (default).
    workspace:
        Optional externally owned :class:`Workspace`.
    """

    def __init__(self, db: PlacementDB, grid: BinGrid,
                 num_fillers: int = 0, filler_width: float = 0.0,
                 filler_height: float = 0.0, strategy: str = "stamp",
                 dct_impl: str = "2d", dtype=np.float64,
                 pooled: bool = True, workspace: Workspace | None = None):
        self.grid = grid
        self.strategy = strategy
        self.dtype = np.dtype(dtype)
        self.pooled = bool(pooled)
        self.ws = workspace if workspace is not None else (
            Workspace() if pooled else NullWorkspace()
        )
        self.solver = PoissonSolver(grid, impl=dct_impl, workspace=self.ws)
        self.num_fillers = int(num_fillers)
        self.num_cells = db.num_cells

        movable = db.movable_index
        orig_w = np.concatenate([
            db.cell_width[movable],
            np.full(self.num_fillers, float(filler_width)),
        ])
        orig_h = np.concatenate([
            db.cell_height[movable],
            np.full(self.num_fillers, float(filler_height)),
        ])
        self.orig_w = orig_w
        self.orig_h = orig_h
        part_w, part_h, part_scale = stretch_sizes(orig_w, orig_h, grid)
        self.part_w = part_w.astype(self.dtype)
        self.part_h = part_h.astype(self.dtype)
        self.part_scale = part_scale.astype(self.dtype)
        # hoisted centering offsets: box low edge = pos + (w - sw) / 2
        self.off_x = (0.5 * (orig_w - part_w)).astype(self.dtype)
        self.off_y = (0.5 * (orig_h - part_h)).astype(self.dtype)
        self.participant_index = np.concatenate([
            movable,
            db.num_cells + np.arange(self.num_fillers, dtype=np.int64),
        ])

        # static map of fixed cells (not stretched; they are real blockages)
        fixed = db.fixed_index
        self.fixed_density = scatter_density(
            grid,
            db.cell_x[fixed], db.cell_y[fixed],
            db.cell_width[fixed], db.cell_height[fixed],
            np.ones(fixed.shape[0]),
            strategy="naive", dtype=self.dtype,
        )

    def forward(self, pos: Tensor) -> Tensor:
        return _DensityFunction.apply(pos, op=self)
