"""Electrostatic density penalty operator (Sections II-C and III-B).

``ElectricDensity`` is the custom OP computing the density cost ``D`` in
eq. (2): cells (plus filler cells) are charges, the forward pass scatters
charge into bins, solves Poisson's equation spectrally and returns the
potential energy; the backward pass gathers the electric force per cell.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.bins import BinGrid
from repro.netlist.database import PlacementDB
from repro.nn.function import Function
from repro.nn.module import Module
from repro.nn.tensor import Tensor
from repro.ops.density_map import gather_field, scatter_density
from repro.ops.electrostatics import PoissonSolver

SQRT2 = float(np.sqrt(2.0))


def stretch_sizes(width: np.ndarray, height: np.ndarray,
                  grid: BinGrid) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ePlace cell smoothing: expand small cells to sqrt(2) x bin size.

    Cells narrower than ``sqrt(2) * bin`` in a dimension are stretched to
    that size, with a density scale preserving total charge (area).
    Returns ``(stretched_w, stretched_h, scale)``.
    """
    sw = np.maximum(width, SQRT2 * grid.bin_w)
    sh = np.maximum(height, SQRT2 * grid.bin_h)
    area = width * height
    stretched_area = sw * sh
    with np.errstate(invalid="ignore", divide="ignore"):
        scale = np.where(stretched_area > 0, area / stretched_area, 0.0)
    return sw, sh, scale


class _DensityFunction(Function):
    """Autograd node: pos (2*N,) -> scalar density penalty."""

    def forward(self, pos: np.ndarray, *, op: "ElectricDensity"):
        n = pos.shape[0] // 2
        x = pos[:n]
        y = pos[n:]
        idx = op.participant_index
        if idx.max(initial=-1) >= n:
            raise ValueError(
                "position vector too short for the configured fillers"
            )
        # density boxes are centered on the cell, using stretched sizes
        xl = x[idx] + 0.5 * (op.orig_w - op.part_w)
        yl = y[idx] + 0.5 * (op.orig_h - op.part_h)
        rho_mov = scatter_density(
            op.grid, xl, yl, op.part_w, op.part_h, op.part_scale,
            strategy=op.strategy, dtype=op.dtype,
        )
        rho = rho_mov + op.fixed_density
        solution = op.solver.solve(rho)
        energy = float((rho_mov * solution.potential).sum())
        self.save_for_backward(op, xl, yl, solution, n)
        return np.asarray(energy, dtype=op.dtype)

    def backward(self, grad_output):
        op, xl, yl, solution, n = self.saved_values
        idx = op.participant_index
        force_x = gather_field(
            op.grid, solution.field_x, xl, yl, op.part_w, op.part_h,
            op.part_scale, strategy=op.strategy, dtype=op.dtype,
        )
        force_y = gather_field(
            op.grid, solution.field_y, xl, yl, op.part_w, op.part_h,
            op.part_scale, strategy=op.strategy, dtype=op.dtype,
        )
        grad = np.zeros(2 * n, dtype=op.dtype)
        scale = float(np.asarray(grad_output))
        # moving along the field decreases the potential energy
        grad[idx] = -scale * force_x
        grad[n + idx] = -scale * force_y
        return (grad,)


class ElectricDensity(Module):
    """Density penalty ``D(pos)`` as a differentiable module.

    Parameters
    ----------
    db:
        Placement database.  Fixed cells are rasterized once into a
        static density map; movable cells (and fillers) are re-scattered
        every call.
    grid:
        Bin grid of the electrostatic system.
    num_fillers, filler_width, filler_height:
        Filler cells appended to the position vector (indices
        ``db.num_cells ..``), following ePlace's whitespace filling.
    strategy:
        Density map strategy, see :mod:`repro.ops.density_map`.
    dct_impl:
        DCT family for the Poisson solver, see :mod:`repro.ops.dct`.
    """

    def __init__(self, db: PlacementDB, grid: BinGrid,
                 num_fillers: int = 0, filler_width: float = 0.0,
                 filler_height: float = 0.0, strategy: str = "stamp",
                 dct_impl: str = "2d", dtype=np.float64):
        self.grid = grid
        self.strategy = strategy
        self.dtype = np.dtype(dtype)
        self.solver = PoissonSolver(grid, impl=dct_impl)
        self.num_fillers = int(num_fillers)
        self.num_cells = db.num_cells

        movable = db.movable_index
        orig_w = np.concatenate([
            db.cell_width[movable],
            np.full(self.num_fillers, float(filler_width)),
        ])
        orig_h = np.concatenate([
            db.cell_height[movable],
            np.full(self.num_fillers, float(filler_height)),
        ])
        self.orig_w = orig_w
        self.orig_h = orig_h
        self.part_w, self.part_h, self.part_scale = stretch_sizes(
            orig_w, orig_h, grid
        )
        self.participant_index = np.concatenate([
            movable,
            db.num_cells + np.arange(self.num_fillers, dtype=np.int64),
        ])

        # static map of fixed cells (not stretched; they are real blockages)
        fixed = db.fixed_index
        self.fixed_density = scatter_density(
            grid,
            db.cell_x[fixed], db.cell_y[fixed],
            db.cell_width[fixed], db.cell_height[fixed],
            np.ones(fixed.shape[0]),
            strategy="naive", dtype=self.dtype,
        )

    def forward(self, pos: Tensor) -> Tensor:
        return _DensityFunction.apply(pos, op=self)
