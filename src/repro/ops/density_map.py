"""Density map scatter and electric-force gather (Section III-B1/B2).

The density map computation is the "dynamic bipartite graph forward" of
Fig. 5(a): every cell spreads its (stretched) area over the bins it
overlaps.  The force computation is the matching backward (Fig. 5(b)):
every cell gathers the field of the bins it overlaps with the same
overlap weights.  Three strategies reproduce the paper's kernel study
(Fig. 6, Fig. 12):

``naive``
    One unit of work per cell, looping over its bins sequentially — the
    'one thread per cell' scheme with its load-imbalance problem.
``sorted``
    Cells grouped by identical bin-span footprint (the CPU analog of
    sorting cells by area so a warp processes similar sizes), each group
    processed as one vectorized batch.
``stamp``
    Offset-parallel updates: for every (dx, dy) bin offset all cells
    covering that offset update simultaneously — the analog of 'update
    one cell with multiple threads'.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.bins import BinGrid

STRATEGIES = ("naive", "sorted", "stamp")

# cells spanning more bins than this are processed with the naive loop in
# the vectorized strategies (the handful of macros in a design)
_MACRO_SPAN = 32


def cell_bin_spans(grid: BinGrid, xl, yl, wx, wy):
    """First overlapped bin and bin count per cell, per axis."""
    ix0, ix1 = grid.span_x(xl, xl + wx)
    iy0, iy1 = grid.span_y(yl, yl + wy)
    return ix0, ix1 - ix0, iy0, iy1 - iy0


def _overlap_x(grid: BinGrid, xl, xh, ix):
    lo = grid.region.xl + ix * grid.bin_w
    return np.maximum(np.minimum(xh, lo + grid.bin_w) - np.maximum(xl, lo), 0.0)


def _overlap_y(grid: BinGrid, yl, yh, iy):
    lo = grid.region.yl + iy * grid.bin_h
    return np.maximum(np.minimum(yh, lo + grid.bin_h) - np.maximum(yl, lo), 0.0)


# ---------------------------------------------------------------------------
# scatter (density map)
# ---------------------------------------------------------------------------
def _scatter_naive_subset(grid, out, xl, yl, wx, wy, weight, index):
    for i in index:
        cxl, cyl = xl[i], yl[i]
        cxh, cyh = cxl + wx[i], cyl + wy[i]
        ix0, ix1 = grid.span_x(cxl, cxh)
        iy0, iy1 = grid.span_y(cyl, cyh)
        cols = np.arange(ix0, ix1)
        rows = np.arange(iy0, iy1)
        ovx = _overlap_x(grid, cxl, cxh, cols)
        ovy = _overlap_y(grid, cyl, cyh, rows)
        out[ix0:ix1, iy0:iy1] += weight[i] * np.outer(ovx, ovy)


def _scatter_offsets(grid, out, xl, yl, wx, wy, weight, index,
                     ix0, sx, iy0, sy):
    """Vectorized scatter for a set of cells via (dx, dy) offset passes."""
    if index.size == 0:
        return
    max_sx = int(sx[index].max())
    max_sy = int(sy[index].max())
    xh = xl + wx
    yh = yl + wy
    for dx in range(max_sx):
        sel_x = index[sx[index] > dx]
        if sel_x.size == 0:
            continue
        cols = ix0[sel_x] + dx
        ovx = _overlap_x(grid, xl[sel_x], xh[sel_x], cols)
        for dy in range(max_sy):
            sel = sel_x[sy[sel_x] > dy]
            if sel.size == 0:
                continue
            cols_s = ix0[sel] + dx
            rows_s = iy0[sel] + dy
            ovx_s = ovx[sy[sel_x] > dy]
            ovy = _overlap_y(grid, yl[sel], yh[sel], rows_s)
            np.add.at(out, (cols_s, rows_s), weight[sel] * ovx_s * ovy)


def scatter_density(grid: BinGrid, xl, yl, wx, wy, weight,
                    strategy: str = "stamp",
                    out: np.ndarray | None = None,
                    dtype=np.float64) -> np.ndarray:
    """Accumulate per-cell area into the bin map.

    ``weight`` is the per-unit-area density of each cell (the stretching
    scale), so cell ``i`` contributes ``weight[i] * overlap_area`` to
    each bin.  Returns the ``(nx, ny)`` map in ``dtype`` precision.
    """
    xl = np.asarray(xl, dtype=dtype)
    yl = np.asarray(yl, dtype=dtype)
    wx = np.asarray(wx, dtype=dtype)
    wy = np.asarray(wy, dtype=dtype)
    weight = np.asarray(weight, dtype=dtype)
    if out is None:
        out = grid.zeros(dtype=dtype)
    n = xl.shape[0]
    if n == 0:
        return out
    if strategy == "naive":
        _scatter_naive_subset(grid, out, xl, yl, wx, wy, weight,
                              np.arange(n))
        return out

    ix0, sx, iy0, sy = cell_bin_spans(grid, xl, yl, wx, wy)
    big = (sx > _MACRO_SPAN) | (sy > _MACRO_SPAN)
    _scatter_naive_subset(grid, out, xl, yl, wx, wy, weight,
                          np.flatnonzero(big))
    small = np.flatnonzero(~big)

    if strategy == "stamp":
        _scatter_offsets(grid, out, xl, yl, wx, wy, weight, small,
                         ix0, sx, iy0, sy)
    elif strategy == "sorted":
        # group cells with identical footprints (the warp-balancing sort)
        keys = sx[small] * (_MACRO_SPAN + 1) + sy[small]
        order = np.argsort(keys, kind="stable")
        sorted_cells = small[order]
        sorted_keys = keys[order]
        boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
        for chunk in np.split(sorted_cells, boundaries):
            _scatter_offsets(grid, out, xl, yl, wx, wy, weight, chunk,
                             ix0, sx, iy0, sy)
    else:
        raise ValueError(
            f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
        )
    return out


# ---------------------------------------------------------------------------
# gather (electric force / potential)
# ---------------------------------------------------------------------------
def _gather_naive_subset(grid, field, xl, yl, wx, wy, weight, index, out):
    for i in index:
        cxl, cyl = xl[i], yl[i]
        cxh, cyh = cxl + wx[i], cyl + wy[i]
        ix0, ix1 = grid.span_x(cxl, cxh)
        iy0, iy1 = grid.span_y(cyl, cyh)
        cols = np.arange(ix0, ix1)
        rows = np.arange(iy0, iy1)
        ovx = _overlap_x(grid, cxl, cxh, cols)
        ovy = _overlap_y(grid, cyl, cyh, rows)
        out[i] = weight[i] * float(
            ovx @ field[ix0:ix1, iy0:iy1] @ ovy
        )


def _gather_offsets(grid, field, xl, yl, wx, wy, weight, index,
                    ix0, sx, iy0, sy, out):
    if index.size == 0:
        return
    max_sx = int(sx[index].max())
    max_sy = int(sy[index].max())
    xh = xl + wx
    yh = yl + wy
    for dx in range(max_sx):
        mask_x = sx[index] > dx
        sel_x = index[mask_x]
        if sel_x.size == 0:
            continue
        cols = ix0[sel_x] + dx
        ovx = _overlap_x(grid, xl[sel_x], xh[sel_x], cols)
        for dy in range(max_sy):
            mask_y = sy[sel_x] > dy
            sel = sel_x[mask_y]
            if sel.size == 0:
                continue
            rows_s = iy0[sel] + dy
            ovy = _overlap_y(grid, yl[sel], yh[sel], rows_s)
            # cell indices are unique within one (dx, dy) pass, so plain
            # fancy-index accumulation is race-free
            out[sel] += weight[sel] * ovx[mask_y] * ovy * \
                field[ix0[sel] + dx, rows_s]


def gather_field(grid: BinGrid, field: np.ndarray, xl, yl, wx, wy, weight,
                 strategy: str = "stamp", dtype=np.float64) -> np.ndarray:
    """Per-cell overlap-weighted sum of a bin field (force gathering).

    Returns ``f[i] = weight[i] * sum_b overlap(i, b) * field[b]``.
    """
    xl = np.asarray(xl, dtype=dtype)
    yl = np.asarray(yl, dtype=dtype)
    wx = np.asarray(wx, dtype=dtype)
    wy = np.asarray(wy, dtype=dtype)
    weight = np.asarray(weight, dtype=dtype)
    n = xl.shape[0]
    out = np.zeros(n, dtype=dtype)
    if n == 0:
        return out
    if strategy == "naive":
        _gather_naive_subset(grid, field, xl, yl, wx, wy, weight,
                             np.arange(n), out)
        return out

    ix0, sx, iy0, sy = cell_bin_spans(grid, xl, yl, wx, wy)
    big = (sx > _MACRO_SPAN) | (sy > _MACRO_SPAN)
    _gather_naive_subset(grid, field, xl, yl, wx, wy, weight,
                         np.flatnonzero(big), out)
    small = np.flatnonzero(~big)

    if strategy == "stamp":
        _gather_offsets(grid, field, xl, yl, wx, wy, weight, small,
                        ix0, sx, iy0, sy, out)
    elif strategy == "sorted":
        keys = sx[small] * (_MACRO_SPAN + 1) + sy[small]
        order = np.argsort(keys, kind="stable")
        sorted_cells = small[order]
        sorted_keys = keys[order]
        boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
        for chunk in np.split(sorted_cells, boundaries):
            _gather_offsets(grid, field, xl, yl, wx, wy, weight, chunk,
                            ix0, sx, iy0, sy, out)
    else:
        raise ValueError(
            f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
        )
    return out
