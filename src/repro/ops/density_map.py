"""Density map scatter and electric-force gather (Section III-B1/B2).

The density map computation is the "dynamic bipartite graph forward" of
Fig. 5(a): every cell spreads its (stretched) area over the bins it
overlaps.  The force computation is the matching backward (Fig. 5(b)):
every cell gathers the field of the bins it overlaps with the same
overlap weights.  Three strategies reproduce the paper's kernel study
(Fig. 6, Fig. 12):

``naive``
    One unit of work per cell, looping over its bins sequentially — the
    'one thread per cell' scheme with its load-imbalance problem.
``sorted``
    Cells grouped by identical bin-span footprint (the CPU analog of
    sorting cells by area so a warp processes similar sizes), each group
    processed as one vectorized batch.
``stamp``
    Offset-parallel updates: for every (dx, dy) bin offset all cells
    covering that offset update simultaneously — the analog of 'update
    one cell with multiple threads'.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.bins import BinGrid
from repro.perf.workspace import Workspace

STRATEGIES = ("naive", "sorted", "stamp")

# cells spanning more bins than this are processed with the naive loop in
# the vectorized strategies (the handful of macros in a design)
_MACRO_SPAN = 32


def cell_bin_spans(grid: BinGrid, xl, yl, wx, wy):
    """First overlapped bin and bin count per cell, per axis."""
    ix0, ix1 = grid.span_x(xl, xl + wx)
    iy0, iy1 = grid.span_y(yl, yl + wy)
    return ix0, ix1 - ix0, iy0, iy1 - iy0


def _overlap_x(grid: BinGrid, xl, xh, ix):
    lo = grid.region.xl + ix * grid.bin_w
    return np.maximum(np.minimum(xh, lo + grid.bin_w) - np.maximum(xl, lo), 0.0)


def _overlap_y(grid: BinGrid, yl, yh, iy):
    lo = grid.region.yl + iy * grid.bin_h
    return np.maximum(np.minimum(yh, lo + grid.bin_h) - np.maximum(yl, lo), 0.0)


# ---------------------------------------------------------------------------
# scatter (density map)
# ---------------------------------------------------------------------------
def _scatter_naive_subset(grid, out, xl, yl, wx, wy, weight, index):
    for i in index:
        cxl, cyl = xl[i], yl[i]
        cxh, cyh = cxl + wx[i], cyl + wy[i]
        ix0, ix1 = grid.span_x(cxl, cxh)
        iy0, iy1 = grid.span_y(cyl, cyh)
        cols = np.arange(ix0, ix1)
        rows = np.arange(iy0, iy1)
        ovx = _overlap_x(grid, cxl, cxh, cols)
        ovy = _overlap_y(grid, cyl, cyh, rows)
        out[ix0:ix1, iy0:iy1] += weight[i] * np.outer(ovx, ovy)


def _scatter_offsets(grid, out, xl, yl, wx, wy, weight, index,
                     ix0, sx, iy0, sy):
    """Vectorized scatter for a set of cells via (dx, dy) offset passes."""
    if index.size == 0:
        return
    max_sx = int(sx[index].max())
    max_sy = int(sy[index].max())
    xh = xl + wx
    yh = yl + wy
    for dx in range(max_sx):
        sel_x = index[sx[index] > dx]
        if sel_x.size == 0:
            continue
        cols = ix0[sel_x] + dx
        ovx = _overlap_x(grid, xl[sel_x], xh[sel_x], cols)
        for dy in range(max_sy):
            sel = sel_x[sy[sel_x] > dy]
            if sel.size == 0:
                continue
            cols_s = ix0[sel] + dx
            rows_s = iy0[sel] + dy
            ovx_s = ovx[sy[sel_x] > dy]
            ovy = _overlap_y(grid, yl[sel], yh[sel], rows_s)
            np.add.at(out, (cols_s, rows_s), weight[sel] * ovx_s * ovy)


def scatter_density(grid: BinGrid, xl, yl, wx, wy, weight,
                    strategy: str = "stamp",
                    out: np.ndarray | None = None,
                    dtype=np.float64) -> np.ndarray:
    """Accumulate per-cell area into the bin map.

    ``weight`` is the per-unit-area density of each cell (the stretching
    scale), so cell ``i`` contributes ``weight[i] * overlap_area`` to
    each bin.  Returns the ``(nx, ny)`` map in ``dtype`` precision.
    """
    xl = np.asarray(xl, dtype=dtype)
    yl = np.asarray(yl, dtype=dtype)
    wx = np.asarray(wx, dtype=dtype)
    wy = np.asarray(wy, dtype=dtype)
    weight = np.asarray(weight, dtype=dtype)
    if out is None:
        out = grid.zeros(dtype=dtype)
    n = xl.shape[0]
    if n == 0:
        return out
    if strategy == "naive":
        _scatter_naive_subset(grid, out, xl, yl, wx, wy, weight,
                              np.arange(n))
        return out

    ix0, sx, iy0, sy = cell_bin_spans(grid, xl, yl, wx, wy)
    big = (sx > _MACRO_SPAN) | (sy > _MACRO_SPAN)
    _scatter_naive_subset(grid, out, xl, yl, wx, wy, weight,
                          np.flatnonzero(big))
    small = np.flatnonzero(~big)

    if strategy == "stamp":
        _scatter_offsets(grid, out, xl, yl, wx, wy, weight, small,
                         ix0, sx, iy0, sy)
    elif strategy == "sorted":
        # group cells with identical footprints (the warp-balancing sort)
        keys = sx[small] * (_MACRO_SPAN + 1) + sy[small]
        order = np.argsort(keys, kind="stable")
        sorted_cells = small[order]
        sorted_keys = keys[order]
        boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
        for chunk in np.split(sorted_cells, boundaries):
            _scatter_offsets(grid, out, xl, yl, wx, wy, weight, chunk,
                             ix0, sx, iy0, sy)
    else:
        raise ValueError(
            f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
        )
    return out


# ---------------------------------------------------------------------------
# pooled flat-contribution kernels (zero steady-state allocations)
#
# Instead of looping over (dx, dy) offsets with boolean-mask passes, the
# pooled path enumerates every (cell, bin) overlap pair as one flat
# contribution: ``counts[i] = sx[i] * sy[i]`` pairs per cell, laid out
# cell-major so per-cell segment reductions are a single ``reduceat``.
# The plan (flat bin index + overlap-area weight per pair) is built once
# per iteration in workspace buffers and shared by the density scatter
# (forward) and both force gathers (backward) — the seed strategies
# recompute the overlaps three times per iteration.  Arbitrary spans are
# handled uniformly, so macros need no separate naive pass.
# ---------------------------------------------------------------------------
@dataclass
class FlatOverlapPlan:
    """Per-(cell, bin) contribution plan living in workspace buffers.

    Valid until the owning workspace rebuilds the same-named buffers;
    consumers must finish with it before the next ``build_overlap_plan``
    call on the same workspace/prefix.
    """

    flat_index: np.ndarray  # (total,) int64, bin index into map.ravel()
    coefficient: np.ndarray  # (total,) weight * overlap_x * overlap_y
    starts: np.ndarray  # (n + 1,) int64 cell segment starts (cell-major)
    num_cells: int


def _span_1d_pooled(lo_arr, hi_arr, origin, step, nbins, idx0, span, tf):
    """span_x/span_y on workspace buffers: first bin + count per cell."""
    np.subtract(lo_arr, origin, out=tf)
    tf /= step
    np.floor(tf, out=tf)
    np.clip(tf, 0, nbins - 1, out=tf)
    np.copyto(idx0, tf, casting="unsafe")
    np.subtract(hi_arr, origin, out=tf)
    tf /= step
    tf -= 1e-9
    np.floor(tf, out=tf)
    np.clip(tf, 0, nbins - 1, out=tf)
    np.copyto(span, tf, casting="unsafe")
    span += 1
    span -= idx0
    np.maximum(span, 1, out=span)


def _overlap_1d_pooled(idx_flat, lo_g, hi_g, origin, step, fa, fb):
    """overlap = max(min(hi, lo_bin + step) - max(lo, lo_bin), 0).

    ``lo_g``/``hi_g`` hold the gathered cell edges; the result is
    written over ``hi_g`` (``fa``/``fb`` are scratch).
    """
    np.multiply(idx_flat, step, out=fa)
    fa += origin
    np.maximum(lo_g, fa, out=fb)
    fa += step
    np.minimum(hi_g, fa, out=hi_g)
    hi_g -= fb
    np.maximum(hi_g, 0.0, out=hi_g)
    return hi_g


def build_overlap_plan(grid: BinGrid, xl, yl, xh, yh, weight,
                       ws: Workspace, prefix: str = "dm") -> FlatOverlapPlan:
    """Build the flat (cell, bin) contribution plan in ``ws`` buffers.

    All inputs must already be arrays of the working dtype; ``xh``/``yh``
    are the high edges (``xl + w``).  No allocations in steady state.
    """
    n = xl.shape[0]
    dtype = xl.dtype
    tf = ws.acquire(prefix + ".tf", n, dtype)
    ix0 = ws.acquire(prefix + ".ix0", n, np.int64)
    sx = ws.acquire(prefix + ".sx", n, np.int64)
    iy0 = ws.acquire(prefix + ".iy0", n, np.int64)
    sy = ws.acquire(prefix + ".sy", n, np.int64)
    _span_1d_pooled(xl, xh, grid.region.xl, grid.bin_w, grid.nx,
                    ix0, sx, tf)
    _span_1d_pooled(yl, yh, grid.region.yl, grid.bin_h, grid.ny,
                    iy0, sy, tf)
    counts = ws.acquire(prefix + ".counts", n, np.int64)
    np.multiply(sx, sy, out=counts)
    starts = ws.acquire(prefix + ".starts", n + 1, np.int64)
    starts[0] = 0
    np.cumsum(counts, out=starts[1:])
    total = int(starts[n])
    # group id per flat slot: mark segment boundaries, prefix-sum.
    # counts >= 1 always (span_* guarantees one bin), so boundaries are
    # distinct and the scatter-of-ones is exact.
    grp = ws.acquire_flat(prefix + ".grp", total, np.int64)
    grp.fill(0)
    grp[starts[1:-1]] = 1
    np.cumsum(grp, out=grp)
    # within-cell offset -> (dx, dy) via divmod by the y-span
    offs = ws.acquire_flat(prefix + ".offs", total, np.int64)
    np.take(starts, grp, out=offs, mode="clip")
    np.subtract(ws.arange(total), offs, out=offs)
    syg = ws.acquire_flat(prefix + ".syg", total, np.int64)
    np.take(sy, grp, out=syg, mode="clip")
    col = ws.acquire_flat(prefix + ".col", total, np.int64)
    np.floor_divide(offs, syg, out=col)  # col = dx for now
    np.remainder(offs, syg, out=offs)    # offs now holds dy
    row = syg  # syg consumed; reuse as the row buffer
    np.take(iy0, grp, out=row, mode="clip")
    row += offs
    tmp = offs  # dy consumed; reuse as the ix0 gather
    np.take(ix0, grp, out=tmp, mode="clip")
    col += tmp
    # overlap coefficient = weight * overlap_x * overlap_y
    ga = ws.acquire_flat(prefix + ".ga", total, dtype)
    gb = ws.acquire_flat(prefix + ".gb", total, dtype)
    gc = ws.acquire_flat(prefix + ".gc", total, dtype)
    sa = ws.acquire_flat(prefix + ".sa", total, dtype)
    sb = ws.acquire_flat(prefix + ".sb", total, dtype)
    np.take(xl, grp, out=ga, mode="clip")
    np.take(xh, grp, out=gb, mode="clip")
    ov = _overlap_1d_pooled(col, ga, gb, grid.region.xl, grid.bin_w,
                            sa, sb)
    np.take(yl, grp, out=ga, mode="clip")
    np.take(yh, grp, out=gc, mode="clip")
    ovy = _overlap_1d_pooled(row, ga, gc, grid.region.yl, grid.bin_h,
                             sa, sb)
    ov *= ovy
    np.take(weight, grp, out=ga, mode="clip")
    ov *= ga
    # flat map index: col * ny + row (in place over col)
    col *= grid.ny
    col += row
    return FlatOverlapPlan(flat_index=col, coefficient=ov,
                           starts=starts, num_cells=n)


def scatter_density_pooled(grid: BinGrid, plan: FlatOverlapPlan,
                           ws: Workspace, name: str = "dm.rho",
                           dtype=np.float64) -> np.ndarray:
    """Accumulate the plan's contributions into a pooled bin map."""
    out = ws.acquire(name, grid.shape, dtype)
    out.fill(0)
    np.add.at(out.reshape(-1), plan.flat_index, plan.coefficient)
    return out


def gather_field_pooled(plan: FlatOverlapPlan, field: np.ndarray,
                        ws: Workspace, name: str = "dm.force") -> np.ndarray:
    """Per-cell overlap-weighted sum of a bin field, reusing the plan.

    The forward's plan already holds the overlap coefficients, so the
    backward gathers are a flat ``take`` + one segment reduction —
    overlaps are not recomputed per axis as in the seed strategies.
    """
    dtype = plan.coefficient.dtype
    total = plan.flat_index.shape[0]
    if field.dtype != dtype:
        cast = ws.acquire(name + ".cast", field.shape, dtype)
        np.copyto(cast, field)
        field = cast
    val = ws.acquire_flat(name + ".val", total, dtype)
    np.take(field.reshape(-1), plan.flat_index, out=val, mode="clip")
    val *= plan.coefficient
    out = ws.acquire(name, plan.num_cells, dtype)
    np.add.reduceat(val, plan.starts[:-1], out=out)
    return out
def _gather_naive_subset(grid, field, xl, yl, wx, wy, weight, index, out):
    for i in index:
        cxl, cyl = xl[i], yl[i]
        cxh, cyh = cxl + wx[i], cyl + wy[i]
        ix0, ix1 = grid.span_x(cxl, cxh)
        iy0, iy1 = grid.span_y(cyl, cyh)
        cols = np.arange(ix0, ix1)
        rows = np.arange(iy0, iy1)
        ovx = _overlap_x(grid, cxl, cxh, cols)
        ovy = _overlap_y(grid, cyl, cyh, rows)
        out[i] = weight[i] * float(
            ovx @ field[ix0:ix1, iy0:iy1] @ ovy
        )


def _gather_offsets(grid, field, xl, yl, wx, wy, weight, index,
                    ix0, sx, iy0, sy, out):
    if index.size == 0:
        return
    max_sx = int(sx[index].max())
    max_sy = int(sy[index].max())
    xh = xl + wx
    yh = yl + wy
    for dx in range(max_sx):
        mask_x = sx[index] > dx
        sel_x = index[mask_x]
        if sel_x.size == 0:
            continue
        cols = ix0[sel_x] + dx
        ovx = _overlap_x(grid, xl[sel_x], xh[sel_x], cols)
        for dy in range(max_sy):
            mask_y = sy[sel_x] > dy
            sel = sel_x[mask_y]
            if sel.size == 0:
                continue
            rows_s = iy0[sel] + dy
            ovy = _overlap_y(grid, yl[sel], yh[sel], rows_s)
            # cell indices are unique within one (dx, dy) pass, so plain
            # fancy-index accumulation is race-free
            out[sel] += weight[sel] * ovx[mask_y] * ovy * \
                field[ix0[sel] + dx, rows_s]


def gather_field(grid: BinGrid, field: np.ndarray, xl, yl, wx, wy, weight,
                 strategy: str = "stamp", dtype=np.float64) -> np.ndarray:
    """Per-cell overlap-weighted sum of a bin field (force gathering).

    Returns ``f[i] = weight[i] * sum_b overlap(i, b) * field[b]``.
    """
    xl = np.asarray(xl, dtype=dtype)
    yl = np.asarray(yl, dtype=dtype)
    wx = np.asarray(wx, dtype=dtype)
    wy = np.asarray(wy, dtype=dtype)
    weight = np.asarray(weight, dtype=dtype)
    n = xl.shape[0]
    out = np.zeros(n, dtype=dtype)
    if n == 0:
        return out
    if strategy == "naive":
        _gather_naive_subset(grid, field, xl, yl, wx, wy, weight,
                             np.arange(n), out)
        return out

    ix0, sx, iy0, sy = cell_bin_spans(grid, xl, yl, wx, wy)
    big = (sx > _MACRO_SPAN) | (sy > _MACRO_SPAN)
    _gather_naive_subset(grid, field, xl, yl, wx, wy, weight,
                         np.flatnonzero(big), out)
    small = np.flatnonzero(~big)

    if strategy == "stamp":
        _gather_offsets(grid, field, xl, yl, wx, wy, weight, small,
                        ix0, sx, iy0, sy, out)
    elif strategy == "sorted":
        keys = sx[small] * (_MACRO_SPAN + 1) + sy[small]
        order = np.argsort(keys, kind="stable")
        sorted_cells = small[order]
        sorted_keys = keys[order]
        boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
        for chunk in np.split(sorted_cells, boundaries):
            _gather_offsets(grid, field, xl, yl, wx, wy, weight, chunk,
                            ix0, sx, iy0, sy, out)
    else:
        raise ValueError(
            f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
        )
    return out
