"""Custom placement operators (the paper's low-level OPs).

Each operator follows the deep-learning-toolkit contract of Section II-B:
a forward function computing the cost and a backward function computing
the gradient with respect to cell positions.  Multiple implementation
strategies per operator reproduce the paper's kernel studies
(Algorithms 1-4, Figs. 10-12).
"""

from repro.ops.hpwl import hpwl, hpwl_per_net
from repro.ops.wa_wirelength import WeightedAverageWirelength
from repro.ops.lse_wirelength import LogSumExpWirelength
from repro.ops.density_op import ElectricDensity
from repro.ops.density_overflow import density_overflow
from repro.ops.electrostatics import PoissonSolver
from repro.ops.density_map import gather_field, scatter_density
from repro.ops import dct
from repro.ops import fixed_point

__all__ = [
    "hpwl",
    "hpwl_per_net",
    "WeightedAverageWirelength",
    "LogSumExpWirelength",
    "ElectricDensity",
    "PoissonSolver",
    "scatter_density",
    "gather_field",
    "density_overflow",
    "dct",
    "fixed_point",
]
