"""Discrete cosine/sine transforms for the electrostatic system.

Implements the transforms of Section III-B3 with the exact definitions
of eqs. (7) and (8):

- ``dct(x)_k   = sum_n x_n cos(pi/N (n+1/2) k)``          (DCT-II family)
- ``idct(x)_k  = x_0/2 + sum_{n>=1} x_n cos(pi/N n (k+1/2))`` (DCT-III/2)
- ``idxst(x)_k = sum_n x_n sin(pi/N n (k+1/2))``

Three implementation families mirror the paper's Fig. 11 study:

- ``*_2n``  : via a 2N-point complex FFT (the TensorFlow-style baseline),
- ``*_n``   : via an N-point real FFT (Makhoul; Algorithm 3),
- ``*_2d``  : 2-D transforms via a single 2-D FFT (Algorithm 4),

plus O(N^2) ``*_naive`` references used by the tests.  1-D transforms
operate along the last axis.  The composite 2-D transforms used by the
Poisson solver (eq. 9) are :func:`dct2d`, :func:`idct2d`,
:func:`idxst_idct` (sine along axis 0) and :func:`idct_idxst` (sine
along axis 1).

Performance notes: all pre/post-processing constants (twiddle factors,
wraparound index maps, sign vectors) are cached per transform size, so
repeated calls on the same grid — the Poisson solver calls these every
GP iteration — only pay for the FFT itself; and every FFT runs on real
input (``rfft``/``rfft2``/``irfft2``) with the missing half-spectrum
reconstructed from Hermitian symmetry, halving the transform work.
"""

from __future__ import annotations

import numpy as np

# (kind, sizes) -> precomputed twiddles / index maps / sign vectors
_PLAN_CACHE: dict = {}


def _plan(key, build):
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        plan = _PLAN_CACHE[key] = build()
    return plan

__all__ = [
    "dct_naive", "idct_naive", "idxst_naive",
    "dct_2n", "idct_2n",
    "dct_n", "idct_n",
    "idxst_n",
    "dct2d_fft2", "idct2d_fft2",
    "dct2d", "idct2d", "idxst_idct", "idct_idxst",
    "dct2d_fft2_pooled", "idct2d_sine_batch",
]


# ---------------------------------------------------------------------------
# naive O(N^2) references (tests + odd lengths)
# ---------------------------------------------------------------------------
def _cos_matrix_dct(n: int, dtype) -> np.ndarray:
    k = np.arange(n)[:, None]
    m = np.arange(n)[None, :]
    return np.cos(np.pi * k * (m + 0.5) / n).astype(dtype)


def dct_naive(x: np.ndarray) -> np.ndarray:
    """Definition (7a), along the last axis."""
    x = np.asarray(x)
    n = x.shape[-1]
    return x @ _cos_matrix_dct(n, x.dtype).T


def idct_naive(x: np.ndarray) -> np.ndarray:
    """Definition (7b), along the last axis."""
    x = np.asarray(x)
    n = x.shape[-1]
    k = np.arange(n)[:, None]
    m = np.arange(n)[None, :]
    basis = np.cos(np.pi * m * (k + 0.5) / n).astype(x.dtype)
    basis[:, 0] = 0.5
    return x @ basis.T


def idxst_naive(x: np.ndarray) -> np.ndarray:
    """Definition (8a), along the last axis."""
    x = np.asarray(x)
    n = x.shape[-1]
    k = np.arange(n)[:, None]
    m = np.arange(n)[None, :]
    basis = np.sin(np.pi * m * (k + 0.5) / n).astype(x.dtype)
    return x @ basis.T


# ---------------------------------------------------------------------------
# 2N-point FFT implementations (baseline "DCT-2N" of Fig. 11)
# ---------------------------------------------------------------------------
def dct_2n(x: np.ndarray) -> np.ndarray:
    """DCT via a 2N-point real FFT of the mirrored sequence."""
    x = np.asarray(x)
    n = x.shape[-1]
    twiddle = _plan(
        ("dct_2n", n),
        lambda: np.exp(-1j * np.pi * np.arange(n) / (2 * n)),
    )
    mirrored = np.concatenate([x, x[..., ::-1]], axis=-1)
    spectrum = np.fft.rfft(mirrored, axis=-1)[..., :n]
    return 0.5 * np.real(spectrum * twiddle).astype(x.dtype)


def idct_2n(x: np.ndarray) -> np.ndarray:
    """IDCT via a 2N-point real inverse FFT.

    The 2N-point spectrum ``V_k = x_k e^{j pi k / 2N}`` (``V_N = 0``,
    ``V_{2N-k} = conj(V_k)``) is Hermitian by construction, so only its
    one-sided half is materialized and ``irfft`` reconstructs the rest;
    the first N samples times N are exactly definition (7b).
    """
    x = np.asarray(x)
    n = x.shape[-1]
    twiddle = _plan(
        ("idct_2n", n),
        lambda: np.exp(1j * np.pi * np.arange(n) / (2 * n)),
    )
    spectrum = np.zeros(x.shape[:-1] + (n + 1,), dtype=np.complex128)
    spectrum[..., :n] = x * twiddle
    full = np.fft.irfft(spectrum, n=2 * n, axis=-1)
    return (full[..., :n] * n).astype(x.dtype)


# ---------------------------------------------------------------------------
# N-point real-FFT implementations (Makhoul; Algorithm 3)
# ---------------------------------------------------------------------------
def _check_even(n: int) -> None:
    if n % 2:
        raise ValueError(f"N-point fast transforms require even length, got {n}")


def dct_n(x: np.ndarray) -> np.ndarray:
    """DCT via an N-point real FFT (Algorithm 3, reorder kernel + RFFT)."""
    x = np.asarray(x)
    n = x.shape[-1]
    _check_even(n)
    half = n // 2
    # reorder kernel: even indices ascending, then odd indices descending
    reordered = np.empty_like(x)
    reordered[..., :half] = x[..., 0::2]
    reordered[..., half:] = x[..., ::-1][..., 0::2]
    spectrum = np.fft.rfft(reordered, axis=-1)  # one-sided, length n//2+1
    twiddle = _plan(
        ("dct_n", n),
        lambda: np.exp(-1j * np.pi * np.arange(n) / (2 * n)),
    )
    out = np.empty_like(x)
    out[..., :half + 1] = np.real(
        spectrum * twiddle[:half + 1]
    )
    # e^{-j pi t / 2N} kernel, mirrored half: y_t = Re(conj(X_{N-t}) W_t)
    out[..., half + 1:] = np.real(
        np.conj(spectrum[..., half - 1:0:-1]) * twiddle[half + 1:]
    )
    return out


def idct_n(x: np.ndarray) -> np.ndarray:
    """IDCT via an N-point real inverse FFT (Algorithm 3, lines 20-33)."""
    x = np.asarray(x)
    n = x.shape[-1]
    _check_even(n)
    half = n // 2
    twiddle = _plan(
        ("idct_n", n),
        lambda: np.exp(1j * np.pi * np.arange(half + 1) / (2 * n)),
    )
    # x'_t = (x_t - j x_{N-t}) e^{j pi t / 2N}, with x_N = 0
    upper = np.zeros(x.shape[:-1] + (half + 1,), dtype=np.complex128)
    upper[..., 0] = x[..., 0]
    upper[..., 1:] = x[..., 1:half + 1] - 1j * x[..., :half - 1:-1]
    upper *= twiddle
    signal = np.fft.irfft(upper, n=n, axis=-1)
    out = np.empty_like(x)
    out[..., 0::2] = signal[..., :half]
    out[..., 1::2] = signal[..., ::-1][..., :half]
    return out * (n / 2.0)


def idxst_n(x: np.ndarray) -> np.ndarray:
    """IDXST via the IDCT identity of eq. (8e): flip, IDCT, alternate signs."""
    x = np.asarray(x)
    n = x.shape[-1]
    flipped = np.zeros_like(x)
    flipped[..., 1:] = x[..., :0:-1]  # y_n = x_{N-n}, y_0 = x_N = 0
    signs = _plan(
        ("signs", n),
        lambda: np.where(np.arange(n) % 2 == 0, 1.0, -1.0),
    )
    return (idct_n(flipped) * signs).astype(x.dtype)


# ---------------------------------------------------------------------------
# 2-D single-FFT implementations (Algorithm 4)
# ---------------------------------------------------------------------------
def _flip_zero(x: np.ndarray, axis: int) -> np.ndarray:
    """Return y with y[0]=0 and y[i]=x[N-i] along ``axis`` (eq. 12 shifts)."""
    out = np.zeros_like(x)
    src = [slice(None)] * x.ndim
    dst = [slice(None)] * x.ndim
    src[axis] = slice(None, 0, -1)
    dst[axis] = slice(1, None)
    out[tuple(dst)] = x[tuple(src)]
    return out


def _dct2d_plan(n1: int, n2: int):
    """Postprocess constants for :func:`dct2d_fft2` on an n1 x n2 grid."""
    w1 = np.exp(-1j * np.pi * np.arange(n1)[:, None] / (2 * n1))
    w2 = np.exp(-1j * np.pi * np.arange(n2)[None, :] / (2 * n2))
    # wraparound flip along axis 0: row k -> (N1 - k) mod N1
    wrap1 = np.concatenate([[0], np.arange(n1 - 1, 0, -1)])
    return w1, np.conj(w1), w2, wrap1


def dct2d_fft2(x: np.ndarray) -> np.ndarray:
    """2-D DCT via one 2-D real FFT (Algorithm 4, 2D_DCT).

    The reordered input is real, so only the one-sided ``rfft2``
    spectrum is computed; output columns beyond the Nyquist column
    follow from ``T[k1, k2] = conj(T[k1, N2-k2])`` where ``T`` is the
    axis-0-symmetrized spectrum of eq. (11).
    """
    x = np.asarray(x)
    n1, n2 = x.shape
    _check_even(n1)
    _check_even(n2)
    # eq. (10): 2-D even/odd reordering
    pre = np.empty_like(x)
    h1, h2 = n1 // 2, n2 // 2
    pre[:h1 + (n1 % 2), :h2 + (n2 % 2)] = x[0::2, 0::2]
    pre[h1:, :h2] = x[::-1, :][0::2, 0::2]
    pre[:h1, h2:] = x[:, ::-1][0::2, 0::2]
    pre[h1:, h2:] = x[::-1, ::-1][0::2, 0::2]
    spectrum = np.fft.rfft2(pre)  # (n1, h2 + 1)
    # eq. (11) postprocess on the half spectrum
    w1, w1c, w2, wrap1 = _plan(("dct2d", n1, n2), lambda: _dct2d_plan(n1, n2))
    # complex-multiply operands are bound to names so numpy cannot
    # elide them into aliased in-place products (see idct2d_fft2)
    wrapped = spectrum[wrap1, :]
    half = w1 * spectrum + w1c * wrapped
    out = np.empty((n1, n2), dtype=np.float64)
    out[:, :h2 + 1] = 0.5 * np.real(w2[:, :h2 + 1] * half)
    tail = np.conj(half[:, h2 - 1:0:-1])
    out[:, h2 + 1:] = 0.5 * np.real(w2[:, h2 + 1:] * tail)
    return out.astype(x.dtype)


def dct2d_fft2_pooled(x: np.ndarray, ws) -> np.ndarray:
    """:func:`dct2d_fft2` on workspace buffers (replay fast path).

    Bit-identical: same ufuncs on the same operands in the same order,
    written into persistent buffers instead of fresh arrays.  ``x`` must
    be float64; the result is a pooled buffer valid until the next call.
    """
    x = np.asarray(x)
    n1, n2 = x.shape
    _check_even(n1)
    _check_even(n2)
    h1, h2 = n1 // 2, n2 // 2
    w1, w1c, w2, wrap1 = _plan(("dct2d", n1, n2), lambda: _dct2d_plan(n1, n2))
    pre = ws.acquire("dctf.pre", (n1, n2), np.float64)
    pre[:h1, :h2] = x[0::2, 0::2]
    pre[h1:, :h2] = x[::-1, :][0::2, 0::2]
    pre[:h1, h2:] = x[:, ::-1][0::2, 0::2]
    pre[h1:, h2:] = x[::-1, ::-1][0::2, 0::2]
    spectrum = np.fft.rfft2(pre)
    half = ws.acquire("dctf.half", (n1, h2 + 1), np.complex128)
    tmp = ws.acquire("dctf.tmp", (n1, h2 + 1), np.complex128)
    tmp2 = ws.acquire("dctf.tmp2", (n1, h2 + 1), np.complex128)
    # complex products go to distinct buffers: the aliased in-place
    # multiply rounds differently above numpy's buffering threshold
    np.take(spectrum, wrap1, axis=0, out=tmp, mode="clip")
    np.multiply(w1c, tmp, out=tmp2)
    np.multiply(w1, spectrum, out=half)
    np.add(half, tmp2, out=half)
    out = ws.acquire("dctf.out", (n1, n2), np.float64)
    np.multiply(w2[:, :h2 + 1], half, out=tmp)
    np.multiply(tmp.real, 0.5, out=out[:, :h2 + 1])
    tail = tmp[:, :h2 - 1]  # consumed above; reuse for the mirror columns
    tail2 = tmp2[:, :h2 - 1]
    np.conjugate(half[:, h2 - 1:0:-1], out=tail)
    np.multiply(w2[:, h2 + 1:], tail, out=tail2)
    np.multiply(tail2.real, 0.5, out=out[:, h2 + 1:])
    return out


def _idct2d_plan(n1: int, n2: int):
    """Preprocess constants for :func:`idct2d_fft2` on an n1 x n2 grid."""
    w1 = np.exp(1j * np.pi * np.arange(n1)[:, None] / (2 * n1))
    w2 = np.exp(1j * np.pi * np.arange(n2)[None, :] / (2 * n2))
    h2 = n2 // 2
    # index maps picking P[(-k1) % N1, (-k2) % N2] for k2 = 0 .. N2/2
    wrap1 = np.concatenate([[0], np.arange(n1 - 1, 0, -1)])
    wrap2 = np.concatenate([[0], np.arange(n2 - 1, h2 - 1, -1)])
    return w1 * w2, wrap1[:, None], wrap2[None, :]


def idct2d_fft2(x: np.ndarray) -> np.ndarray:
    """2-D IDCT via one 2-D real inverse FFT (Algorithm 4, 2D_IDCT).

    Only the real part of the inverse FFT is used, which equals the
    inverse FFT of the Hermitian part ``H = (P + conj(P(-k))) / 2`` of
    the preprocessed spectrum ``P`` — so ``irfft2`` on the one-sided
    ``H`` does half the transform work.
    """
    x = np.asarray(x)
    n1, n2 = x.shape
    _check_even(n1)
    _check_even(n2)
    w12, wrap1, wrap2 = _plan(
        ("idct2d", n1, n2), lambda: _idct2d_plan(n1, n2)
    )
    both = _flip_zero(_flip_zero(x, 0), 1)  # x(N1-n1, N2-n2)
    row = _flip_zero(x, 0)  # x(N1-n1, n2)
    col = _flip_zero(x, 1)  # x(n1, N2-n2)
    # the multiplicand is bound to a name so numpy cannot elide the
    # temporary into an in-place product: the aliased complex-multiply
    # loop rounds differently from the out-of-place one on large
    # arrays, which would make results depend on the array size
    z = (x - both) - 1j * (row + col)
    pre = w12 * z
    h2 = n2 // 2
    hermitian = 0.5 * (pre[:, :h2 + 1] + np.conj(pre[wrap1, wrap2]))
    signal = np.fft.irfft2(hermitian, s=(n1, n2))
    # eq. (13): undo the 2-D even/odd reordering
    out = np.empty_like(x)
    h1 = n1 // 2
    out[0::2, 0::2] = signal[:h1, :h2]
    out[1::2, 0::2] = signal[::-1, :][:h1, :h2]
    out[0::2, 1::2] = signal[:, ::-1][:h1, :h2]
    out[1::2, 1::2] = signal[::-1, ::-1][:h1, :h2]
    return out * (n1 * n2 / 4.0)


def dct2d(x: np.ndarray, impl: str = "2d") -> np.ndarray:
    """2-D DCT (both axes) with a selectable implementation."""
    if impl == "2d":
        return dct2d_fft2(x)
    fn = {"2n": dct_2n, "n": dct_n, "naive": dct_naive}[impl]
    return fn(fn(np.asarray(x).T).T)


def idct2d(x: np.ndarray, impl: str = "2d") -> np.ndarray:
    """2-D IDCT (both axes) with a selectable implementation."""
    if impl == "2d":
        return idct2d_fft2(x)
    fn = {"2n": idct_2n, "n": idct_n, "naive": idct_naive}[impl]
    return fn(fn(np.asarray(x).T).T)


def idxst_idct(x: np.ndarray, impl: str = "2d") -> np.ndarray:
    """IDXST along axis 0, IDCT along axis 1 (for the x electric field).

    Algorithm 4's IDXST_IDCT: flip axis 0 (eq. 16), run 2-D IDCT, then
    alternate signs along axis 0 (eq. 17).
    """
    x = np.asarray(x)
    pre = _flip_zero(x, 0)
    out = idct2d(pre, impl=impl)
    signs = _plan(
        ("signs", x.shape[0]),
        lambda: np.where(np.arange(x.shape[0]) % 2 == 0, 1.0, -1.0),
    )
    return out * signs[:, None]


def idct_idxst(x: np.ndarray, impl: str = "2d") -> np.ndarray:
    """IDCT along axis 0, IDXST along axis 1 (for the y electric field)."""
    x = np.asarray(x)
    pre = _flip_zero(x, 1)
    out = idct2d(pre, impl=impl)
    signs = _plan(
        ("signs", x.shape[1]),
        lambda: np.where(np.arange(x.shape[1]) % 2 == 0, 1.0, -1.0),
    )
    return out * signs[None, :]


def idct2d_sine_batch(xc: np.ndarray, xs0: np.ndarray, xs1: np.ndarray, ws):
    """The Poisson solver's three inverse transforms in one batched FFT.

    Returns ``(idct2d_fft2(xc), idxst_idct(xs0), idct_idxst(xs1))``
    bit-identically: the eq. (12) preprocessing of each input runs into
    pooled buffers with the exact arithmetic of :func:`idct2d_fft2`
    (same operand order, in-place complex multiply being bitwise equal
    to out-of-place), the three Hermitian half-spectra are stacked, and
    a single ``irfft2`` over ``axes=(-2, -1)`` replaces three separate
    inverse FFTs (batched and per-slice real inverse FFTs agree
    bitwise).  ``ws`` is a workspace providing ``acquire``; the returned
    arrays are its persistent buffers, valid until the next call.
    """
    xc = np.asarray(xc)
    n1, n2 = xc.shape
    _check_even(n1)
    _check_even(n2)
    h1, h2 = n1 // 2, n2 // 2
    w12, wrap1, wrap2 = _plan(
        ("idct2d", n1, n2), lambda: _idct2d_plan(n1, n2)
    )
    wrapflat3 = _plan(
        ("idct2d_wrapflat3", n1, n2),
        lambda: ((wrap1 * n2 + wrap2)[None, :, :]
                 + (np.arange(3) * (n1 * n2)).reshape(3, 1, 1)),
    )
    herm = ws.acquire("dctb.herm", (3, n1, h2 + 1), np.complex128)
    pre = ws.acquire("dctb.pre", (3, n1, n2), np.complex128)
    stack = ws.acquire("dctb.x", (3, n1, n2), np.float64)
    scratch = ws.acquire("dctb.scratch", (3, 3, n1, n2), np.float64)
    # IDXST along an axis = flip-and-zero (eq. 16) + plain 2-D IDCT;
    # the three preprocessed inputs are stacked so every eq. (12) step
    # below is one strided dispatch instead of a per-slice Python loop
    np.copyto(stack[0], xc)
    x1 = stack[1]
    x1[0, :] = 0.0
    x1[1:, :] = xs0[:0:-1, :]
    x2 = stack[2]
    x2[:, 0] = 0.0
    x2[:, 1:] = xs1[:, :0:-1]
    both, row, col = scratch[0], scratch[1], scratch[2]
    row[:, 0, :] = 0.0
    row[:, 1:, :] = stack[:, :0:-1, :]
    col[:, :, 0] = 0.0
    col[:, :, 1:] = stack[:, :, :0:-1]
    both[:, 0, :] = 0.0
    both[:, :, 0] = 0.0
    both[:, 1:, 1:] = stack[:, :0:-1, :0:-1]
    # pre = w12 * ((x - both) - 1j * (row + col)), componentwise
    np.subtract(stack, both, out=pre.real)
    t = both  # consumed above; reuse as the row+col scratch
    np.add(row, col, out=t)
    np.negative(t, out=pre.imag)
    # complex multiply needs w12 as the first operand AND a distinct
    # output buffer: numpy's complex product is bitwise sensitive both
    # to operand order and to output aliasing (the in-place loop
    # rounds differently above the buffering threshold), and
    # idct2d_fft2 computes w12 * pre out of place
    prew = ws.acquire("dctb.prew", (3, n1, n2), np.complex128)
    np.multiply(w12, pre, out=prew)
    np.take(prew.ravel(), wrapflat3, out=herm, mode="clip")
    np.conjugate(herm, out=herm)
    herm += prew[:, :, :h2 + 1]
    herm *= 0.5
    signal = np.fft.irfft2(herm, s=(n1, n2), axes=(-2, -1))
    out3 = ws.acquire("dctb.out", (3, n1, n2), np.float64)
    out3[:, 0::2, 0::2] = signal[:, :h1, :h2]
    out3[:, 1::2, 0::2] = signal[:, ::-1, :][:, :h1, :h2]
    out3[:, 0::2, 1::2] = signal[:, :, ::-1][:, :h1, :h2]
    out3[:, 1::2, 1::2] = signal[:, ::-1, ::-1][:, :h1, :h2]
    out3 *= n1 * n2 / 4.0
    signs0 = _plan(
        ("signs", n1),
        lambda: np.where(np.arange(n1) % 2 == 0, 1.0, -1.0),
    )
    signs1 = _plan(
        ("signs", n2),
        lambda: np.where(np.arange(n2) % 2 == 0, 1.0, -1.0),
    )
    out3[1] *= signs0[:, None]
    out3[2] *= signs1[None, :]
    return out3[0], out3[1], out3[2]
