"""Discrete cosine/sine transforms for the electrostatic system.

Implements the transforms of Section III-B3 with the exact definitions
of eqs. (7) and (8):

- ``dct(x)_k   = sum_n x_n cos(pi/N (n+1/2) k)``          (DCT-II family)
- ``idct(x)_k  = x_0/2 + sum_{n>=1} x_n cos(pi/N n (k+1/2))`` (DCT-III/2)
- ``idxst(x)_k = sum_n x_n sin(pi/N n (k+1/2))``

Three implementation families mirror the paper's Fig. 11 study:

- ``*_2n``  : via a 2N-point complex FFT (the TensorFlow-style baseline),
- ``*_n``   : via an N-point real FFT (Makhoul; Algorithm 3),
- ``*_2d``  : 2-D transforms via a single 2-D FFT (Algorithm 4),

plus O(N^2) ``*_naive`` references used by the tests.  1-D transforms
operate along the last axis.  The composite 2-D transforms used by the
Poisson solver (eq. 9) are :func:`dct2d`, :func:`idct2d`,
:func:`idxst_idct` (sine along axis 0) and :func:`idct_idxst` (sine
along axis 1).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "dct_naive", "idct_naive", "idxst_naive",
    "dct_2n", "idct_2n",
    "dct_n", "idct_n",
    "idxst_n",
    "dct2d_fft2", "idct2d_fft2",
    "dct2d", "idct2d", "idxst_idct", "idct_idxst",
]


# ---------------------------------------------------------------------------
# naive O(N^2) references (tests + odd lengths)
# ---------------------------------------------------------------------------
def _cos_matrix_dct(n: int, dtype) -> np.ndarray:
    k = np.arange(n)[:, None]
    m = np.arange(n)[None, :]
    return np.cos(np.pi * k * (m + 0.5) / n).astype(dtype)


def dct_naive(x: np.ndarray) -> np.ndarray:
    """Definition (7a), along the last axis."""
    x = np.asarray(x)
    n = x.shape[-1]
    return x @ _cos_matrix_dct(n, x.dtype).T


def idct_naive(x: np.ndarray) -> np.ndarray:
    """Definition (7b), along the last axis."""
    x = np.asarray(x)
    n = x.shape[-1]
    k = np.arange(n)[:, None]
    m = np.arange(n)[None, :]
    basis = np.cos(np.pi * m * (k + 0.5) / n).astype(x.dtype)
    basis[:, 0] = 0.5
    return x @ basis.T


def idxst_naive(x: np.ndarray) -> np.ndarray:
    """Definition (8a), along the last axis."""
    x = np.asarray(x)
    n = x.shape[-1]
    k = np.arange(n)[:, None]
    m = np.arange(n)[None, :]
    basis = np.sin(np.pi * m * (k + 0.5) / n).astype(x.dtype)
    return x @ basis.T


# ---------------------------------------------------------------------------
# 2N-point FFT implementations (baseline "DCT-2N" of Fig. 11)
# ---------------------------------------------------------------------------
def dct_2n(x: np.ndarray) -> np.ndarray:
    """DCT via a 2N-point FFT of the mirrored sequence."""
    x = np.asarray(x)
    n = x.shape[-1]
    mirrored = np.concatenate([x, x[..., ::-1]], axis=-1)
    spectrum = np.fft.fft(mirrored, axis=-1)[..., :n]
    k = np.arange(n)
    twiddle = np.exp(-1j * np.pi * k / (2 * n))
    return 0.5 * np.real(spectrum * twiddle).astype(x.dtype)


def idct_2n(x: np.ndarray) -> np.ndarray:
    """IDCT via a 2N-point FFT.

    Builds the Hermitian 2N-point spectrum ``V_k = x_k e^{j pi k / 2N}``
    (``V_N = 0``, ``V_{2N-k} = conj(V_k)``); the first N samples of its
    inverse FFT times N are exactly definition (7b).
    """
    x = np.asarray(x)
    n = x.shape[-1]
    k = np.arange(n)
    twiddle = np.exp(1j * np.pi * k / (2 * n))
    spectrum = np.zeros(x.shape[:-1] + (2 * n,), dtype=np.complex128)
    spectrum[..., :n] = x * twiddle
    spectrum[..., n + 1:] = np.conj((x * twiddle)[..., 1:])[..., ::-1]
    full = np.fft.ifft(spectrum, axis=-1)
    return (np.real(full[..., :n]) * n).astype(x.dtype)


# ---------------------------------------------------------------------------
# N-point real-FFT implementations (Makhoul; Algorithm 3)
# ---------------------------------------------------------------------------
def _check_even(n: int) -> None:
    if n % 2:
        raise ValueError(f"N-point fast transforms require even length, got {n}")


def dct_n(x: np.ndarray) -> np.ndarray:
    """DCT via an N-point real FFT (Algorithm 3, reorder kernel + RFFT)."""
    x = np.asarray(x)
    n = x.shape[-1]
    _check_even(n)
    half = n // 2
    # reorder kernel: even indices ascending, then odd indices descending
    reordered = np.empty_like(x)
    reordered[..., :half] = x[..., 0::2]
    reordered[..., half:] = x[..., ::-1][..., 0::2]
    spectrum = np.fft.rfft(reordered, axis=-1)  # one-sided, length n//2+1
    k = np.arange(n)
    twiddle = np.exp(-1j * np.pi * k / (2 * n))
    out = np.empty_like(x)
    out[..., :half + 1] = np.real(
        spectrum * twiddle[:half + 1]
    )
    # e^{-j pi t / 2N} kernel, mirrored half: y_t = Re(conj(X_{N-t}) W_t)
    out[..., half + 1:] = np.real(
        np.conj(spectrum[..., half - 1:0:-1]) * twiddle[half + 1:]
    )
    return out


def idct_n(x: np.ndarray) -> np.ndarray:
    """IDCT via an N-point real inverse FFT (Algorithm 3, lines 20-33)."""
    x = np.asarray(x)
    n = x.shape[-1]
    _check_even(n)
    half = n // 2
    k = np.arange(half + 1)
    twiddle = np.exp(1j * np.pi * k / (2 * n))
    # x'_t = (x_t - j x_{N-t}) e^{j pi t / 2N}, with x_N = 0
    upper = np.zeros(x.shape[:-1] + (half + 1,), dtype=np.complex128)
    upper[..., 0] = x[..., 0]
    upper[..., 1:] = x[..., 1:half + 1] - 1j * x[..., :half - 1:-1]
    upper *= twiddle
    signal = np.fft.irfft(upper, n=n, axis=-1)
    out = np.empty_like(x)
    out[..., 0::2] = signal[..., :half]
    out[..., 1::2] = signal[..., ::-1][..., :half]
    return out * (n / 2.0)


def idxst_n(x: np.ndarray) -> np.ndarray:
    """IDXST via the IDCT identity of eq. (8e): flip, IDCT, alternate signs."""
    x = np.asarray(x)
    n = x.shape[-1]
    flipped = np.zeros_like(x)
    flipped[..., 1:] = x[..., :0:-1]  # y_n = x_{N-n}, y_0 = x_N = 0
    signs = np.where(np.arange(n) % 2 == 0, 1.0, -1.0).astype(x.dtype)
    return idct_n(flipped) * signs


# ---------------------------------------------------------------------------
# 2-D single-FFT implementations (Algorithm 4)
# ---------------------------------------------------------------------------
def _flip_zero(x: np.ndarray, axis: int) -> np.ndarray:
    """Return y with y[0]=0 and y[i]=x[N-i] along ``axis`` (eq. 12 shifts)."""
    out = np.zeros_like(x)
    src = [slice(None)] * x.ndim
    dst = [slice(None)] * x.ndim
    src[axis] = slice(None, 0, -1)
    dst[axis] = slice(1, None)
    out[tuple(dst)] = x[tuple(src)]
    return out


def dct2d_fft2(x: np.ndarray) -> np.ndarray:
    """2-D DCT via one 2-D FFT (Algorithm 4, 2D_DCT)."""
    x = np.asarray(x)
    n1, n2 = x.shape
    _check_even(n1)
    _check_even(n2)
    # eq. (10): 2-D even/odd reordering
    pre = np.empty_like(x)
    h1, h2 = n1 // 2, n2 // 2
    pre[:h1 + (n1 % 2), :h2 + (n2 % 2)] = x[0::2, 0::2]
    pre[h1:, :h2] = x[::-1, :][0::2, 0::2]
    pre[:h1, h2:] = x[:, ::-1][0::2, 0::2]
    pre[h1:, h2:] = x[::-1, ::-1][0::2, 0::2]
    spectrum = np.fft.fft2(pre)
    # eq. (11) postprocess
    k1 = np.arange(n1)[:, None]
    k2 = np.arange(n2)[None, :]
    w1 = np.exp(-1j * np.pi * k1 / (2 * n1))
    w2 = np.exp(-1j * np.pi * k2 / (2 * n2))
    # x''((N1 - n1) mod N1, n2): wraparound flip along axis 0
    shifted = np.concatenate([spectrum[0:1, :], spectrum[:0:-1, :]], axis=0)
    out = 0.5 * np.real(w2 * (w1 * spectrum + np.conj(w1) * shifted))
    return out.astype(x.dtype)


def idct2d_fft2(x: np.ndarray) -> np.ndarray:
    """2-D IDCT via one 2-D inverse FFT (Algorithm 4, 2D_IDCT)."""
    x = np.asarray(x)
    n1, n2 = x.shape
    _check_even(n1)
    _check_even(n2)
    k1 = np.arange(n1)[:, None]
    k2 = np.arange(n2)[None, :]
    w1 = np.exp(1j * np.pi * k1 / (2 * n1))
    w2 = np.exp(1j * np.pi * k2 / (2 * n2))
    both = _flip_zero(_flip_zero(x, 0), 1)  # x(N1-n1, N2-n2)
    row = _flip_zero(x, 0)  # x(N1-n1, n2)
    col = _flip_zero(x, 1)  # x(n1, N2-n2)
    pre = w1 * w2 * ((x - both) - 1j * (row + col))
    signal = np.real(np.fft.ifft2(pre))
    # eq. (13): undo the 2-D even/odd reordering
    out = np.empty_like(x)
    h1, h2 = n1 // 2, n2 // 2
    out[0::2, 0::2] = signal[:h1, :h2]
    out[1::2, 0::2] = signal[::-1, :][:h1, :h2]
    out[0::2, 1::2] = signal[:, ::-1][:h1, :h2]
    out[1::2, 1::2] = signal[::-1, ::-1][:h1, :h2]
    return out * (n1 * n2 / 4.0)


def dct2d(x: np.ndarray, impl: str = "2d") -> np.ndarray:
    """2-D DCT (both axes) with a selectable implementation."""
    if impl == "2d":
        return dct2d_fft2(x)
    fn = {"2n": dct_2n, "n": dct_n, "naive": dct_naive}[impl]
    return fn(fn(np.asarray(x).T).T)


def idct2d(x: np.ndarray, impl: str = "2d") -> np.ndarray:
    """2-D IDCT (both axes) with a selectable implementation."""
    if impl == "2d":
        return idct2d_fft2(x)
    fn = {"2n": idct_2n, "n": idct_n, "naive": idct_naive}[impl]
    return fn(fn(np.asarray(x).T).T)


def idxst_idct(x: np.ndarray, impl: str = "2d") -> np.ndarray:
    """IDXST along axis 0, IDCT along axis 1 (for the x electric field).

    Algorithm 4's IDXST_IDCT: flip axis 0 (eq. 16), run 2-D IDCT, then
    alternate signs along axis 0 (eq. 17).
    """
    x = np.asarray(x)
    pre = _flip_zero(x, 0)
    out = idct2d(pre, impl=impl)
    signs = np.where(np.arange(x.shape[0]) % 2 == 0, 1.0, -1.0)
    return out * signs[:, None]


def idct_idxst(x: np.ndarray, impl: str = "2d") -> np.ndarray:
    """IDCT along axis 0, IDXST along axis 1 (for the y electric field)."""
    x = np.asarray(x)
    pre = _flip_zero(x, 1)
    out = idct2d(pre, impl=impl)
    signs = np.where(np.arange(x.shape[1]) % 2 == 0, 1.0, -1.0)
    return out * signs[None, :]
