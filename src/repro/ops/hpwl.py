"""Half-perimeter wirelength (HPWL), the placement quality metric.

HPWL is the exact (non-smooth) objective the smooth WA/LSE models
approximate; all the paper's tables report it.
"""

from __future__ import annotations

import numpy as np


def hpwl_per_net(pin_x: np.ndarray, pin_y: np.ndarray, pin_net: np.ndarray,
                 num_nets: int) -> np.ndarray:
    """Per-net HPWL: (max - min) x + (max - min) y over each net's pins.

    Nets with no pins contribute zero.
    """
    pin_x = np.asarray(pin_x)
    pin_y = np.asarray(pin_y)
    dtype = pin_x.dtype
    x_max = np.full(num_nets, -np.inf, dtype=dtype)
    x_min = np.full(num_nets, np.inf, dtype=dtype)
    y_max = np.full(num_nets, -np.inf, dtype=dtype)
    y_min = np.full(num_nets, np.inf, dtype=dtype)
    np.maximum.at(x_max, pin_net, pin_x)
    np.minimum.at(x_min, pin_net, pin_x)
    np.maximum.at(y_max, pin_net, pin_y)
    np.minimum.at(y_min, pin_net, pin_y)
    lengths = (x_max - x_min) + (y_max - y_min)
    lengths[~np.isfinite(lengths)] = 0.0  # empty nets
    return lengths


def hpwl(pin_x: np.ndarray, pin_y: np.ndarray, pin_net: np.ndarray,
         num_nets: int, net_weight: np.ndarray | None = None) -> float:
    """Total (optionally net-weighted) HPWL."""
    lengths = hpwl_per_net(pin_x, pin_y, pin_net, num_nets)
    if net_weight is not None:
        lengths = lengths * net_weight
    return float(lengths.sum())
