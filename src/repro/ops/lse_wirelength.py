"""Log-sum-exp (LSE) wirelength operator.

The classic smooth wirelength of Naylor et al. (reference [29] of the
paper), also provided by DREAMPlace:

``WL_e = gamma * (log sum exp(x/gamma) + log sum exp(-x/gamma))`` per
axis, stabilized by shifting with the net max/min.  Its gradient is the
softmax weighting of the pins.
"""

from __future__ import annotations

import numpy as np

from repro.netlist.database import PlacementDB
from repro.nn.function import Function
from repro.nn.module import Module
from repro.nn.tensor import Tensor


def _lse_1d(p: np.ndarray, starts: np.ndarray, weight: np.ndarray,
            gamma, net_of_pin: np.ndarray):
    """Fused LSE forward/backward over net-sorted pin coordinates."""
    seg = starts[:-1]
    x_max = np.maximum.reduceat(p, seg)
    x_min = np.minimum.reduceat(p, seg)
    a_pos = np.exp((p - x_max[net_of_pin]) / gamma)
    a_neg = np.exp(-(p - x_min[net_of_pin]) / gamma)
    b_pos = np.add.reduceat(a_pos, seg)
    b_neg = np.add.reduceat(a_neg, seg)
    multi = np.diff(starts) >= 2
    wl = gamma * (np.log(b_pos) + np.log(b_neg)) + (x_max - x_min)
    wl = np.where(multi, wl, 0.0)
    total = p.dtype.type((weight * wl).sum())
    grad = (weight * multi)[net_of_pin] * (
        a_pos / b_pos[net_of_pin] - a_neg / b_neg[net_of_pin]
    )
    return total, grad


class _LSEFunction(Function):
    def forward(self, pos: np.ndarray, *, op: "LogSumExpWirelength"):
        n = pos.shape[0] // 2
        pos = pos.astype(op.dtype, copy=False)
        px = pos[:n][op.pin_cell_sorted] + op.pin_offset_x_sorted
        py = pos[n:][op.pin_cell_sorted] + op.pin_offset_y_sorted
        gamma = op.dtype.type(op.gamma)
        wl_x, gx = _lse_1d(px, op.starts, op.net_weight, gamma, op.net_of_pin)
        wl_y, gy = _lse_1d(py, op.starts, op.net_weight, gamma, op.net_of_pin)
        grad = np.empty(2 * n, dtype=op.dtype)
        grad[:n] = np.bincount(op.pin_cell_sorted, weights=gx, minlength=n)
        grad[n:] = np.bincount(op.pin_cell_sorted, weights=gy, minlength=n)
        grad[:n][op.fixed_mask] = 0.0
        grad[n:][op.fixed_mask] = 0.0
        self.save_for_backward(grad)
        return np.asarray(wl_x + wl_y, dtype=op.dtype)

    def backward(self, grad_output):
        (grad,) = self.saved_values
        return (np.asarray(grad_output) * grad,)


class LogSumExpWirelength(Module):
    """LSE wirelength module with the same interface as the WA op."""

    def __init__(self, db: PlacementDB, gamma: float = 1.0,
                 dtype=np.float64):
        if (np.diff(db.net2pin_start) < 1).any():
            raise ValueError("LSE wirelength requires every net to have pins")
        self.gamma = float(gamma)
        self.dtype = np.dtype(dtype)
        self.num_cells = db.num_cells
        order = db.net2pin
        self.starts = db.net2pin_start
        self.pin_cell_sorted = db.pin_cell[order]
        self.pin_offset_x_sorted = db.pin_offset_x[order].astype(self.dtype)
        self.pin_offset_y_sorted = db.pin_offset_y[order].astype(self.dtype)
        self.net_weight = db.net_weight.astype(self.dtype)
        self.net_of_pin = np.repeat(
            np.arange(db.num_nets, dtype=np.int64), db.net_degree
        )
        self.fixed_mask = np.flatnonzero(~db.movable)

    def forward(self, pos: Tensor) -> Tensor:
        return _LSEFunction.apply(pos, op=self)
