"""Log-sum-exp (LSE) wirelength operator.

The classic smooth wirelength of Naylor et al. (reference [29] of the
paper), also provided by DREAMPlace:

``WL_e = gamma * (log sum exp(x/gamma) + log sum exp(-x/gamma))`` per
axis, stabilized by shifting with the net max/min.  Its gradient is the
softmax weighting of the pins.

Like the WA op, the module has two dataflows: the default pooled path
runs allocation-free on persistent workspace buffers (sharing the
hoisted pin precompute and the ``reduceat`` gradient-scatter plan with
:mod:`repro.ops.wa_wirelength`), while ``pooled=False`` keeps the
original allocate-per-call kernel.
"""

from __future__ import annotations

import numpy as np

from repro.netlist.database import PlacementDB
from repro.nn.function import Function
from repro.nn.module import Module
from repro.nn.tensor import Tensor
from repro.ops.wa_wirelength import (
    _axis_total,
    _build_pin_precompute,
    _compile_pin_replay,
    _pin_op_pooled,
)
from repro.perf.profiler import profiled
from repro.perf.workspace import NullWorkspace, Workspace


def _lse_1d(p: np.ndarray, starts: np.ndarray, weight: np.ndarray,
            gamma, net_of_pin: np.ndarray):
    """Fused LSE forward/backward over net-sorted pin coordinates."""
    seg = starts[:-1]
    x_max = np.maximum.reduceat(p, seg)
    x_min = np.minimum.reduceat(p, seg)
    a_pos = np.exp((p - x_max[net_of_pin]) / gamma)
    a_neg = np.exp(-(p - x_min[net_of_pin]) / gamma)
    b_pos = np.add.reduceat(a_pos, seg)
    b_neg = np.add.reduceat(a_neg, seg)
    multi = np.diff(starts) >= 2
    wl = gamma * (np.log(b_pos) + np.log(b_neg)) + (x_max - x_min)
    wl = np.where(multi, wl, 0.0)
    total = p.dtype.type((weight * wl).sum())
    grad = (weight * multi)[net_of_pin] * (
        a_pos / b_pos[net_of_pin] - a_neg / b_neg[net_of_pin]
    )
    return total, grad


def _lse_1d_pooled(p, op, ws, gamma):
    """The fused LSE kernel on workspace buffers (zero allocations)."""
    num_nets = op.starts.shape[0] - 1
    num_pins = p.shape[0]
    seg = op.seg
    x_max = ws.acquire("lse.xmax", num_nets, p.dtype)
    x_min = ws.acquire("lse.xmin", num_nets, p.dtype)
    np.maximum.reduceat(p, seg, out=x_max)
    np.minimum.reduceat(p, seg, out=x_min)
    # a± = exp(±(p - x∓)/γ)
    a_pos = ws.acquire("lse.apos", num_pins, p.dtype)
    np.take(x_max, op.net_of_pin, out=a_pos, mode="clip")
    np.subtract(p, a_pos, out=a_pos)
    a_pos /= gamma
    np.exp(a_pos, out=a_pos)
    a_neg = ws.acquire("lse.aneg", num_pins, p.dtype)
    np.take(x_min, op.net_of_pin, out=a_neg, mode="clip")
    a_neg -= p
    a_neg /= gamma
    np.exp(a_neg, out=a_neg)
    b_pos = ws.acquire("lse.bpos", num_nets, p.dtype)
    b_neg = ws.acquire("lse.bneg", num_nets, p.dtype)
    np.add.reduceat(a_pos, seg, out=b_pos)
    np.add.reduceat(a_neg, seg, out=b_neg)
    # wl = w_eff * (γ(log b+ + log b-) + (x_max - x_min)); single-pin
    # nets contribute exactly zero before weighting, and w_eff zeroes
    # them regardless
    t = ws.acquire("lse.t", num_nets, p.dtype)
    np.log(b_pos, out=t)
    x_max -= x_min
    np.log(b_neg, out=x_min)
    t += x_min
    t *= gamma
    t += x_max
    t *= op.net_weight_eff
    total = _axis_total(t, op, p.dtype)
    # grad = pin_weight * (a+/b+ - a-/b-)
    g = ws.acquire("lse.g", num_pins, p.dtype)
    h = ws.acquire("lse.h", num_pins, p.dtype)
    np.take(b_pos, op.net_of_pin, out=g, mode="clip")
    np.divide(a_pos, g, out=g)
    np.take(b_neg, op.net_of_pin, out=h, mode="clip")
    np.divide(a_neg, h, out=h)
    g -= h
    g *= op.pin_weight
    return total, g


class _LSEFunction(Function):
    capture_safe = True

    def compile_replay(self, kwargs):
        """Tape fast path: both axes batched into one pooled kernel call."""
        op = kwargs["op"]
        if not op.pooled:
            return None
        return _compile_pin_replay(self, op, _lse_1d_pooled)

    def forward(self, pos: np.ndarray, *, op: "LogSumExpWirelength"):
        with profiled("wl.forward"):
            n = pos.shape[0] // 2
            pos = pos.astype(op.dtype, copy=False)
            gamma = op.dtype.type(op.gamma)
            if op.pooled:
                grad, total = _pin_op_pooled(
                    pos, n, op, op.ws, gamma, _lse_1d_pooled
                )
                self.save_for_backward(op, grad)
                return np.asarray(total, dtype=op.dtype)
            px = pos[:n][op.pin_cell_sorted] + op.pin_offset_x_sorted
            py = pos[n:][op.pin_cell_sorted] + op.pin_offset_y_sorted
            wl_x, gx = _lse_1d(px, op.starts, op.net_weight, gamma,
                               op.net_of_pin)
            wl_y, gy = _lse_1d(py, op.starts, op.net_weight, gamma,
                               op.net_of_pin)
            grad = np.empty(2 * n, dtype=op.dtype)
            grad[:n] = np.bincount(op.pin_cell_sorted, weights=gx,
                                   minlength=n)
            grad[n:] = np.bincount(op.pin_cell_sorted, weights=gy,
                                   minlength=n)
            grad[:n][op.fixed_idx] = 0.0
            grad[n:][op.fixed_idx] = 0.0
            self.save_for_backward(op, grad)
            return np.asarray(wl_x + wl_y, dtype=op.dtype)

    def backward(self, grad_output):
        with profiled("wl.backward"):
            op, grad = self.saved_values
            if not op.pooled:
                return (np.asarray(grad_output) * grad,)
            out = op.ws.acquire("lse.gout", grad.shape[0], grad.dtype)
            np.multiply(grad, np.asarray(grad_output), out=out)
            return (out,)


class LogSumExpWirelength(Module):
    """LSE wirelength module with the same interface as the WA op."""

    def __init__(self, db: PlacementDB, gamma: float = 1.0,
                 dtype=np.float64, pooled: bool = True,
                 workspace: Workspace | None = None,
                 ignore_net_degree: int = 0):
        if (np.diff(db.net2pin_start) < 1).any():
            raise ValueError("LSE wirelength requires every net to have pins")
        self.gamma = float(gamma)
        self.dtype = np.dtype(dtype)
        self.num_cells = db.num_cells
        self.pooled = bool(pooled)
        self.ignore_net_degree = int(ignore_net_degree)
        self.ws = workspace if workspace is not None else (
            Workspace() if pooled else NullWorkspace()
        )
        _build_pin_precompute(self, db)

    def forward(self, pos: Tensor) -> Tensor:
        return _LSEFunction.apply(pos, op=self)
