"""Density overflow metric.

The stopping criterion of global placement: the fraction of movable area
that exceeds the target density, computed on the *unstretched* cells
(no smoothing, no fillers) like RePlAce reports it.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.bins import BinGrid
from repro.netlist.database import PlacementDB
from repro.ops.density_map import scatter_density


def density_overflow(db: PlacementDB, grid: BinGrid,
                     x: np.ndarray | None = None,
                     y: np.ndarray | None = None,
                     target_density: float = 1.0) -> float:
    """Total overflow ratio in [0, ~1].

    ``sum_b max(0, movable_area(b) - target * free_area(b)) / total_movable_area``
    where ``free_area(b)`` discounts fixed cells in bin ``b``.
    """
    cx = db.cell_x if x is None else np.asarray(x)
    cy = db.cell_y if y is None else np.asarray(y)
    movable = db.movable_index
    fixed = db.fixed_index

    mov_map = scatter_density(
        grid, cx[movable], cy[movable],
        db.cell_width[movable], db.cell_height[movable],
        np.ones(movable.shape[0]), strategy="stamp",
    )
    fixed_map = scatter_density(
        grid, cx[fixed], cy[fixed],
        db.cell_width[fixed], db.cell_height[fixed],
        np.ones(fixed.shape[0]), strategy="naive",
    )
    free = np.maximum(grid.bin_area - fixed_map, 0.0)
    overflow = np.maximum(mov_map - target_density * free, 0.0).sum()
    total = db.total_movable_area
    return float(overflow / total) if total > 0 else 0.0
