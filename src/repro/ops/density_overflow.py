"""Density overflow metric.

The stopping criterion of global placement: the fraction of movable area
that exceeds the target density, computed on the *unstretched* cells
(no smoothing, no fillers) like RePlAce reports it.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.bins import BinGrid
from repro.netlist.database import PlacementDB
from repro.ops.density_map import (
    build_overlap_plan,
    scatter_density,
    scatter_density_pooled,
)
from repro.perf.workspace import Workspace


def fixed_free_area(db: PlacementDB, grid: BinGrid) -> np.ndarray:
    """Per-bin free area after discounting fixed cells.

    Iteration-invariant: callers evaluating overflow every iteration
    should compute this once and pass it as ``free_area``.
    """
    fixed = db.fixed_index
    fixed_map = scatter_density(
        grid, db.cell_x[fixed], db.cell_y[fixed],
        db.cell_width[fixed], db.cell_height[fixed],
        np.ones(fixed.shape[0]), strategy="naive",
    )
    return np.maximum(grid.bin_area - fixed_map, 0.0)


def density_overflow(db: PlacementDB, grid: BinGrid,
                     x: np.ndarray | None = None,
                     y: np.ndarray | None = None,
                     target_density: float = 1.0,
                     free_area: np.ndarray | None = None,
                     workspace: Workspace | None = None) -> float:
    """Total overflow ratio in [0, ~1].

    ``sum_b max(0, movable_area(b) - target * free_area(b)) / total_movable_area``
    where ``free_area(b)`` discounts fixed cells in bin ``b``.  Pass the
    precomputed :func:`fixed_free_area` as ``free_area`` to skip the
    per-call fixed-cell rasterization, and a :class:`Workspace` to run
    the movable scatter allocation-free.
    """
    cx = db.cell_x if x is None else np.asarray(x)
    cy = db.cell_y if y is None else np.asarray(y)
    movable = db.movable_index

    if free_area is None:
        free_area = fixed_free_area(db, grid)

    if workspace is None:
        mov_map = scatter_density(
            grid, cx[movable], cy[movable],
            db.cell_width[movable], db.cell_height[movable],
            np.ones(movable.shape[0]), strategy="stamp",
        )
        overflow = np.maximum(mov_map - target_density * free_area, 0.0).sum()
    else:
        ws = workspace
        m = movable.shape[0]
        xl = ws.acquire("ovf.xl", m)
        yl = ws.acquire("ovf.yl", m)
        xh = ws.acquire("ovf.xh", m)
        yh = ws.acquire("ovf.yh", m)
        np.take(cx, movable, out=xl, mode="clip")
        np.take(cy, movable, out=yl, mode="clip")
        np.add(xl, _take(db.cell_width, movable, ws, "ovf.w"), out=xh)
        np.add(yl, _take(db.cell_height, movable, ws, "ovf.h"), out=yh)
        one = ws.acquire("ovf.one", m)
        one.fill(1.0)
        plan = build_overlap_plan(grid, xl, yl, xh, yh, one, ws, "ovf")
        mov_map = scatter_density_pooled(grid, plan, ws, "ovf.rho")
        np.subtract(mov_map, _scaled(free_area, target_density, ws),
                    out=mov_map)
        np.maximum(mov_map, 0.0, out=mov_map)
        overflow = mov_map.sum()

    total = db.total_movable_area
    return float(overflow / total) if total > 0 else 0.0


def _take(arr: np.ndarray, idx: np.ndarray, ws: Workspace,
          name: str) -> np.ndarray:
    out = ws.acquire(name, idx.shape[0], arr.dtype)
    np.take(arr, idx, out=out, mode="clip")
    return out


def _scaled(free_area: np.ndarray, target: float, ws: Workspace) -> np.ndarray:
    cap = ws.acquire("ovf.cap", free_area.shape, free_area.dtype)
    np.multiply(free_area, target, out=cap)
    return cap
