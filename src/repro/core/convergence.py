"""Convergence monitoring and divergence recovery (TCAD hardening).

The kernel GP loop of eq. (2) can diverge: the density weight lambda can
outrun the wirelength term and Nesterov's momentum amplifies the blow-up,
while a single non-finite gradient poisons every subsequent iterate.  The
TCAD extension of DREAMPlace (and DG-RePlAce) treat divergence detection
and recovery as first-class parts of a production placer; this module
provides the two building blocks:

- :class:`ConvergenceMonitor` classifies every iteration as improving /
  plateau / diverging / non-finite from rolling HPWL and overflow
  statistics plus NaN/Inf scans of the loss, gradient and positions.
- :class:`PlacerSnapshot` is an exact checkpoint of the loop state
  (positions, optimizer internals, density weight, gamma), captured at
  the best iterate seen so far and restored on rollback so the loop
  never hands back a worse answer than it computed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

import numpy as np


class IterationStatus(Enum):
    """Classification of one GP iteration (TCAD-style robustness)."""

    #: overflow (or feasible-region wirelength) made progress
    IMPROVING = "improving"
    #: no meaningful progress, but the iterate is sane
    PLATEAU = "plateau"
    #: HPWL blew past ``divergence_ratio`` times its running best
    DIVERGING = "diverging"
    #: NaN/Inf detected in loss, gradient, metrics or positions
    NON_FINITE = "non_finite"


def _finite(value: Optional[float]) -> bool:
    return value is None or math.isfinite(value)


def _array_finite(array: Optional[np.ndarray]) -> bool:
    if array is None:
        return True
    return bool(np.isfinite(np.min(array)) and np.isfinite(np.max(array)))


@dataclass
class PlacerSnapshot:
    """Exact checkpoint of the GP loop at one iterate.

    ``pos`` is always present; the optimizer / density-weight / scheduler
    state dicts are optional so lightweight position-only snapshots (the
    best-wirelength fallback) stay cheap.
    """

    iteration: int
    hpwl: float
    overflow: float
    pos: np.ndarray
    optimizer_state: Optional[dict] = None
    weight_state: Optional[dict] = None
    scheduler_state: Optional[dict] = None
    gamma: float = math.nan


def snapshot_state_dict(snap: PlacerSnapshot) -> dict:
    """Serializable copy of a :class:`PlacerSnapshot` (checkpoint files)."""
    return {
        "iteration": snap.iteration,
        "hpwl": snap.hpwl,
        "overflow": snap.overflow,
        "pos": snap.pos.copy(),
        "optimizer_state": snap.optimizer_state,
        "weight_state": snap.weight_state,
        "scheduler_state": snap.scheduler_state,
        "gamma": snap.gamma,
    }


def snapshot_from_state(state: dict) -> PlacerSnapshot:
    """Rebuild a :class:`PlacerSnapshot` from :func:`snapshot_state_dict`."""
    return PlacerSnapshot(
        iteration=int(state["iteration"]),
        hpwl=float(state["hpwl"]),
        overflow=float(state["overflow"]),
        pos=state["pos"].copy(),
        optimizer_state=state["optimizer_state"],
        weight_state=state["weight_state"],
        scheduler_state=state["scheduler_state"],
        gamma=float(state["gamma"]),
    )


@dataclass
class ConvergenceMonitor:
    """Rolling-statistics classifier for the GP loop.

    ``observe`` ingests one iteration's metrics and returns an
    :class:`IterationStatus`; the ``progress_improved`` /
    ``wirelength_improved`` flags tell the caller when the current
    iterate is worth checkpointing.  The monitor is reusable across
    warm-started rounds (the routability inflation loop): call
    :meth:`new_round` between rounds to reset the per-round references
    while keeping the cross-round divergence statistics.
    """

    divergence_ratio: float = 8.0
    plateau_patience: int = 150
    overflow_tol: float = 1e-3
    #: convergence target: overflow at or below this value is "feasible"
    #: and further overflow reduction no longer outranks wirelength
    stop_overflow: float = 0.0

    #: running minimum HPWL over real iterations (the divergence anchor)
    best_hpwl: float = math.inf
    #: running minimum overflow (the plateau anchor)
    best_overflow: float = math.inf
    plateau_count: int = 0
    #: set by ``observe``: current iterate beats the best checkpoint key
    progress_improved: bool = field(default=False, repr=False)
    #: set by ``observe``: current iterate has the lowest HPWL seen
    wirelength_improved: bool = field(default=False, repr=False)
    _best_key_overflow: float = field(default=math.inf, repr=False)
    _best_key_hpwl: float = field(default=math.inf, repr=False)
    _best_wl_hpwl: float = field(default=math.inf, repr=False)

    # ------------------------------------------------------------------
    def observe(self, iteration: int, hpwl: float, overflow: float,
                loss: Optional[float] = None,
                grad: Optional[np.ndarray] = None,
                pos: Optional[np.ndarray] = None) -> IterationStatus:
        """Classify one iteration; iteration 0 seeds the references."""
        self.progress_improved = False
        self.wirelength_improved = False

        if not (math.isfinite(hpwl) and math.isfinite(overflow)
                and _finite(loss) and _array_finite(pos)
                and _array_finite(grad)):
            return IterationStatus.NON_FINITE

        # -- divergence: HPWL blew past its running best ----------------
        # the anchor excludes iteration 0 (the clustered initial state
        # sits far below any spread iterate and would false-trigger)
        if iteration > 0:
            self.best_hpwl = min(self.best_hpwl, hpwl)
        diverging = (math.isfinite(self.best_hpwl)
                     and hpwl > self.divergence_ratio * self.best_hpwl)

        # -- plateau: overflow stopped improving ------------------------
        if overflow < self.best_overflow - self.overflow_tol:
            self.best_overflow = overflow
            self.plateau_count = 0
        else:
            self.plateau_count += 1

        if diverging:
            return IterationStatus.DIVERGING

        # -- checkpoint keys (only sane iterates are checkpointable) ----
        # overflow is clamped at the stop target: all feasible iterates
        # tie on the first key and compete on wirelength
        key_overflow = max(overflow, self.stop_overflow)
        if key_overflow < self._best_key_overflow - self.overflow_tol or (
            key_overflow <= self._best_key_overflow
            and hpwl < self._best_key_hpwl
        ):
            self._best_key_overflow = min(key_overflow,
                                          self._best_key_overflow)
            self._best_key_hpwl = hpwl
            self.progress_improved = True
        if hpwl < self._best_wl_hpwl:
            self._best_wl_hpwl = hpwl
            self.wirelength_improved = True

        if self.progress_improved or self.wirelength_improved:
            return IterationStatus.IMPROVING
        return IterationStatus.PLATEAU

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Snapshot of every rolling statistic, sufficient to continue
        the classification sequence exactly (the checkpoint/resume
        contract of ``repro.runner``)."""
        return {
            "divergence_ratio": self.divergence_ratio,
            "plateau_patience": self.plateau_patience,
            "overflow_tol": self.overflow_tol,
            "stop_overflow": self.stop_overflow,
            "best_hpwl": self.best_hpwl,
            "best_overflow": self.best_overflow,
            "plateau_count": self.plateau_count,
            "progress_improved": self.progress_improved,
            "wirelength_improved": self.wirelength_improved,
            "best_key_overflow": self._best_key_overflow,
            "best_key_hpwl": self._best_key_hpwl,
            "best_wl_hpwl": self._best_wl_hpwl,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        self.divergence_ratio = float(state["divergence_ratio"])
        self.plateau_patience = int(state["plateau_patience"])
        self.overflow_tol = float(state["overflow_tol"])
        self.stop_overflow = float(state["stop_overflow"])
        self.best_hpwl = float(state["best_hpwl"])
        self.best_overflow = float(state["best_overflow"])
        self.plateau_count = int(state["plateau_count"])
        self.progress_improved = bool(state["progress_improved"])
        self.wirelength_improved = bool(state["wirelength_improved"])
        self._best_key_overflow = float(state["best_key_overflow"])
        self._best_key_hpwl = float(state["best_key_hpwl"])
        self._best_wl_hpwl = float(state["best_wl_hpwl"])

    # ------------------------------------------------------------------
    @property
    def plateau_exceeded(self) -> bool:
        """Overflow has not improved for ``plateau_patience`` iterations."""
        return self.plateau_count >= self.plateau_patience

    def notify_rollback(self, resume_hpwl: float) -> None:
        """Re-anchor after a rollback: divergence is measured relative to
        the restored iterate, not the stale pre-blow-up minimum."""
        if math.isfinite(resume_hpwl):
            self.best_hpwl = resume_hpwl
        self.plateau_count = 0

    def new_round(self, stop_overflow: Optional[float] = None) -> None:
        """Reset per-round references for a warm-started round (the
        routability inflation loop) while keeping ``best_hpwl`` as a
        cross-round divergence anchor."""
        if stop_overflow is not None:
            self.stop_overflow = float(stop_overflow)
        self.best_overflow = math.inf
        self.plateau_count = 0
        self.progress_improved = False
        self.wirelength_improved = False
        self._best_key_overflow = math.inf
        self._best_key_hpwl = math.inf
        self._best_wl_hpwl = math.inf
