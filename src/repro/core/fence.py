"""Fence regions via multiple electric fields (Section III-G).

The paper's proposed extension: "fence regions can be implemented by
introducing multiple electric fields, e.g., one for each region, to
enable independent spreading between regions."  Cells assigned to a
fence spread inside their own electrostatic system over the fence's
bin grid; unassigned cells use the default system over the whole core.
Position clamping keeps every group inside its region.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.bins import BinGrid
from repro.geometry.region import PlacementRegion
from repro.netlist.database import PlacementDB
from repro.nn.function import Function
from repro.nn.module import Module
from repro.nn.tensor import Tensor
from repro.ops.density_map import gather_field, scatter_density
from repro.ops.density_op import stretch_sizes
from repro.ops.electrostatics import PoissonSolver


@dataclass
class FenceRegion:
    """A rectangular fence and the cells constrained to it."""

    name: str
    xl: float
    yl: float
    xh: float
    yh: float
    cells: list[int] = field(default_factory=list)

    def as_region(self, row_height: float, site_width: float
                  ) -> PlacementRegion:
        return PlacementRegion(self.xl, self.yl, self.xh, self.yh,
                               row_height=row_height,
                               site_width=site_width)


class _FieldSystem:
    """One electrostatic system: a cell group over its own bin grid."""

    def __init__(self, db: PlacementDB, region: PlacementRegion,
                 cells: np.ndarray, num_bins: int, dct_impl: str):
        self.cells = np.asarray(cells, dtype=np.int64)
        self.grid = BinGrid(region, num_bins, num_bins)
        self.solver = PoissonSolver(self.grid, impl=dct_impl)
        self.orig_w = db.cell_width[self.cells]
        self.orig_h = db.cell_height[self.cells]
        self.part_w, self.part_h, self.scale = stretch_sizes(
            self.orig_w, self.orig_h, self.grid
        )

    def energy_and_force(self, x: np.ndarray, y: np.ndarray):
        xl = x[self.cells] + 0.5 * (self.orig_w - self.part_w)
        yl = y[self.cells] + 0.5 * (self.orig_h - self.part_h)
        rho = scatter_density(self.grid, xl, yl, self.part_w, self.part_h,
                              self.scale)
        solution = self.solver.solve(rho)
        energy = float((rho * solution.potential).sum())
        fx = gather_field(self.grid, solution.field_x, xl, yl,
                          self.part_w, self.part_h, self.scale)
        fy = gather_field(self.grid, solution.field_y, xl, yl,
                          self.part_w, self.part_h, self.scale)
        return energy, fx, fy


class _MultiFieldFunction(Function):
    # no compile_replay: the generic replay re-runs forward/backward
    # verbatim, which is all this per-region Python loop needs
    capture_safe = True

    def forward(self, pos: np.ndarray, *, op: "MultiRegionDensity"):
        n = pos.shape[0] // 2
        x = pos[:n]
        y = pos[n:]
        grad = np.zeros_like(pos)
        total = 0.0
        for system in op.systems:
            energy, fx, fy = system.energy_and_force(x, y)
            total += energy
            grad[system.cells] = -fx
            grad[n + system.cells] = -fy
        grad[op.fixed_index] = 0.0
        grad[n + op.fixed_index] = 0.0
        self.save_for_backward(grad)
        return np.asarray(total, dtype=pos.dtype)

    def backward(self, grad_output):
        (grad,) = self.saved_values
        return (np.asarray(grad_output) * grad,)


class MultiRegionDensity(Module):
    """Density penalty with one independent electric field per fence.

    Cells listed in a :class:`FenceRegion` spread within that fence;
    all remaining movable cells spread in the default field covering
    the core region.  Drop-in compatible with
    :class:`~repro.ops.density_op.ElectricDensity` for designs without
    fillers.
    """

    def __init__(self, db: PlacementDB, fences: list[FenceRegion],
                 num_bins: int = 32, dct_impl: str = "2d"):
        assigned: set[int] = set()
        for fence in fences:
            overlap = assigned & set(fence.cells)
            if overlap:
                raise ValueError(
                    f"cells {sorted(overlap)} assigned to multiple fences"
                )
            assigned |= set(fence.cells)
        movable = set(db.movable_index.tolist())
        bad = assigned - movable
        if bad:
            raise ValueError(f"non-movable cells in fences: {sorted(bad)}")

        self.fences = fences
        self.fixed_index = np.flatnonzero(~db.movable)
        self.systems: list[_FieldSystem] = []
        row = db.region.row_height
        site = db.region.site_width
        for fence in fences:
            self.systems.append(_FieldSystem(
                db, fence.as_region(row, site),
                np.asarray(sorted(fence.cells), dtype=np.int64),
                num_bins, dct_impl,
            ))
        default_cells = np.asarray(sorted(movable - assigned),
                                   dtype=np.int64)
        if default_cells.size:
            self.systems.append(_FieldSystem(
                db, db.region, default_cells, num_bins, dct_impl,
            ))

    def forward(self, pos: Tensor) -> Tensor:
        return _MultiFieldFunction.apply(pos, op=self)


def fence_of_cell(db: PlacementDB, fences: list[FenceRegion]
                  ) -> np.ndarray:
    """Fence membership per cell: index into ``fences``, ``-1`` = none.

    The shared vocabulary of the post-GP stages: the legalizers, the
    detailed-placement passes and the legality checker all constrain
    moves to cells of equal membership, so a fence-legal GP result
    stays fence-legal through the whole flow.  Raises ``ValueError``
    on a cell assigned to more than one fence.
    """
    membership = np.full(db.num_cells, -1, dtype=np.int64)
    for f, fence in enumerate(fences):
        cells = np.asarray(list(fence.cells), dtype=np.int64)
        taken = membership[cells] >= 0
        if taken.any():
            raise ValueError(
                f"cells {sorted(cells[taken].tolist())} assigned to "
                f"multiple fences"
            )
        membership[cells] = f
    return membership


def fence_clamp_bounds(db: PlacementDB, fences: list[FenceRegion]
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Per-coordinate clamp bounds keeping each cell in its fence.

    Returns ``(lo, hi)`` of length ``2 * num_cells`` ([x..., y...])
    suitable as a projection for the optimizer.
    """
    n = db.num_cells
    lo = np.empty(2 * n)
    hi = np.empty(2 * n)
    region = db.region
    lo[:n] = region.xl
    hi[:n] = np.maximum(region.xh - db.cell_width, region.xl)
    lo[n:] = region.yl
    hi[n:] = np.maximum(region.yh - db.cell_height, region.yl)
    for fence in fences:
        cells = np.asarray(fence.cells, dtype=np.int64)
        lo[cells] = fence.xl
        hi[cells] = np.maximum(fence.xh - db.cell_width[cells], fence.xl)
        lo[n + cells] = fence.yl
        hi[n + cells] = np.maximum(
            fence.yh - db.cell_height[cells], fence.yl
        )
    frozen = np.flatnonzero(~db.movable)
    for offset in (0, n):
        lo[offset + frozen] = db.cell_x[frozen] if offset == 0 \
            else db.cell_y[frozen]
        hi[offset + frozen] = lo[offset + frozen]
    return lo, hi
