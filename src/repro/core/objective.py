"""The placement objective as a neural-network-style module (Fig. 1(b)).

``obj(pos) = sum_e WL(e; pos) + lambda * D(pos)`` — the wirelength term
is the "prediction error" over net instances and the density penalty is
the "regularizer"; the module composes the two custom OPs through the
autograd engine, so one ``backward()`` produces the full gradient.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.nn.tape import active_recorder
from repro.nn.tensor import Tensor


class PlacementObjective(Module):
    """Relaxed objective of eq. (2) over the extended position vector."""

    def __init__(self, wirelength_op: Module, density_op: Module):
        self.wirelength = wirelength_op
        self.density = density_op
        # lambda lives in a persistent leaf tensor so a captured tape
        # reads the current value through .data on every replay; the
        # property below keeps the float-valued interface unchanged
        self._weight = Tensor(0.0)
        self.last_wirelength = float("nan")
        self.last_density = float("nan")

    @property
    def density_weight(self) -> float:
        return float(self._weight.data)

    @density_weight.setter
    def density_weight(self, value: float) -> None:
        self._weight.data = np.asarray(float(value),
                                       dtype=self._weight.data.dtype)

    def forward(self, pos: Tensor) -> Tensor:
        wl = self.wirelength(pos)
        density = self.density(pos)
        self.last_wirelength = wl.item()
        self.last_density = density.item()
        if self._weight.data.dtype != density.dtype:
            self._weight.data = self._weight.data.astype(density.dtype)
        recorder = active_recorder()
        if recorder is not None:
            # replay skips this method entirely; the GP loop refreshes
            # last_wirelength/last_density from these watched slots
            recorder.watch("wirelength", wl)
            recorder.watch("density", density)
        return wl + density * self._weight

    @property
    def gamma(self) -> float:
        return self.wirelength.gamma

    @gamma.setter
    def gamma(self, value: float) -> None:
        self.wirelength.gamma = float(value)
