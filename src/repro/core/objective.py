"""The placement objective as a neural-network-style module (Fig. 1(b)).

``obj(pos) = sum_e WL(e; pos) + lambda * D(pos)`` — the wirelength term
is the "prediction error" over net instances and the density penalty is
the "regularizer"; the module composes the two custom OPs through the
autograd engine, so one ``backward()`` produces the full gradient.
"""

from __future__ import annotations

from repro.nn.module import Module
from repro.nn.tensor import Tensor


class PlacementObjective(Module):
    """Relaxed objective of eq. (2) over the extended position vector."""

    def __init__(self, wirelength_op: Module, density_op: Module):
        self.wirelength = wirelength_op
        self.density = density_op
        self.density_weight = 0.0
        self.last_wirelength = float("nan")
        self.last_density = float("nan")

    def forward(self, pos: Tensor) -> Tensor:
        wl = self.wirelength(pos)
        density = self.density(pos)
        self.last_wirelength = wl.item()
        self.last_density = density.item()
        return wl + self.density_weight * density

    @property
    def gamma(self) -> float:
        return self.wirelength.gamma

    @gamma.setter
    def gamma(self, value: float) -> None:
        self.wirelength.gamma = float(value)
