"""Density weight (lambda) initialization and updating (Section III-C).

The density constraint of eq. (1b) is relaxed into the objective with
weight lambda (eq. 2); lambda starts so wirelength and density gradients
balance, then grows multiplicatively per eq. (18), with the TCAD tweak
``mu <- mu_max * max(0.9999^k, 0.98)`` when HPWL improved.
"""

from __future__ import annotations

import numpy as np


class DensityWeight:
    """Stateful lambda controller."""

    def __init__(self, mu_min: float = 0.95, mu_max: float = 1.05,
                 ref_delta_hpwl: float = 3.5e5, tcad_tweak: bool = True):
        self.mu_min = float(mu_min)
        self.mu_max = float(mu_max)
        self.ref_delta_hpwl = float(ref_delta_hpwl)
        self.tcad_tweak = bool(tcad_tweak)
        self.value = 0.0
        self._last_hpwl: float | None = None
        self._iteration = 0

    def initialize(self, wl_grad: np.ndarray, density_grad: np.ndarray,
                   scale: float = 1.0) -> float:
        """lambda_0 = |grad WL|_1 / |grad D|_1 (ePlace's balancing init)."""
        wl_norm = float(np.abs(wl_grad).sum())
        density_norm = float(np.abs(density_grad).sum())
        if density_norm <= 0:
            self.value = scale
        else:
            self.value = scale * wl_norm / density_norm
        return self.value

    def update(self, hpwl: float) -> float:
        """Advance lambda per eq. (18) given the current HPWL."""
        if self._last_hpwl is None:
            self._last_hpwl = hpwl
            self._iteration += 1
            return self.value
        delta = hpwl - self._last_hpwl
        p = delta / self.ref_delta_hpwl
        if p < 0:
            mu = self.mu_max
            if self.tcad_tweak:
                mu *= max(0.9999 ** self._iteration, 0.98)
        else:
            mu = max(self.mu_min, self.mu_max ** (1.0 - p))
        self.value *= mu
        self._last_hpwl = hpwl
        self._iteration += 1
        return self.value

    def state_dict(self) -> dict:
        """Snapshot of the controller state (for loop checkpointing)."""
        return {
            "value": self.value,
            "last_hpwl": self._last_hpwl,
            "iteration": self._iteration,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        self.value = float(state["value"])
        last = state["last_hpwl"]
        self._last_hpwl = None if last is None else float(last)
        self._iteration = int(state["iteration"])
