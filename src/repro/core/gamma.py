"""Annealing of the wirelength smoothness parameter gamma.

The smaller gamma, the closer WA/LSE approximate HPWL but the less
smooth the objective (Section II-C).  Following ePlace/DREAMPlace, gamma
shrinks with the density overflow: ``gamma = gamma_factor * base_bin *
10^(k*overflow + b)`` with (k, b) chosen so overflow 1.0 maps to 10x and
overflow 0.1 maps to 0.1x.
"""

from __future__ import annotations

from repro.geometry.bins import BinGrid

# 10^(k*ovfl + b): k, b solve {1.0 -> 1, 0.1 -> -1}
_K = 20.0 / 9.0
_B = -11.0 / 9.0


class GammaScheduler:
    """Overflow-driven gamma annealing."""

    def __init__(self, grid: BinGrid, gamma_factor: float = 4.0):
        self.base = gamma_factor * 0.5 * (grid.bin_w + grid.bin_h)

    def __call__(self, overflow: float) -> float:
        overflow = min(max(overflow, 0.0), 1.0)
        return self.base * 10.0 ** (_K * overflow + _B)
