"""Initial placement.

The paper's flow (Fig. 2(b)) starts from a *random* initial placement:
movable cells at the region center plus a small Gaussian noise (0.1% of
the region size), which it shows matches bound-to-bound initialization
quality at a fraction of the runtime.  The bound-to-bound quadratic
initializer used by the RePlAce baseline lives in
:mod:`repro.baseline.b2b`.
"""

from __future__ import annotations

import numpy as np

from repro.netlist.database import PlacementDB


def random_center_init(db: PlacementDB, noise_ratio: float = 0.001,
                       rng: np.random.Generator | None = None
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Center movable cells with Gaussian noise; returns (x, y) corners."""
    if rng is None:
        rng = np.random.default_rng(0)
    x = db.cell_x.copy()
    y = db.cell_y.copy()
    cx, cy = db.region.center
    movable = db.movable_index
    n = movable.shape[0]
    x[movable] = (
        cx - 0.5 * db.cell_width[movable]
        + rng.normal(0.0, noise_ratio * db.region.width, size=n)
    )
    y[movable] = (
        cy - 0.5 * db.cell_height[movable]
        + rng.normal(0.0, noise_ratio * db.region.height, size=n)
    )
    x[movable], y[movable] = db.region.clamp_cells(
        x[movable], y[movable],
        db.cell_width[movable], db.cell_height[movable],
    )
    return x, y


def uniform_filler_init(num_fillers: int, db: PlacementDB,
                        filler_width: float, filler_height: float,
                        rng: np.random.Generator | None = None
                        ) -> tuple[np.ndarray, np.ndarray]:
    """Uniformly scatter filler cells over the region."""
    if rng is None:
        rng = np.random.default_rng(0)
    r = db.region
    fx = rng.uniform(r.xl, r.xh - filler_width, size=num_fillers)
    fy = rng.uniform(r.yl, r.yh - filler_height, size=num_fillers)
    return fx, fy


def compute_fillers(db: PlacementDB, target_density: float
                    ) -> tuple[int, float, float]:
    """Filler count and size to pad movable area up to the target.

    Fillers emulate ePlace's whitespace filling so the electrostatic
    system converges to a uniform density.  Size is the average movable
    cell (clamped to the row height).
    """
    movable = db.movable_index
    if movable.shape[0] == 0:
        return 0, 0.0, 0.0
    free_area = db.region.area - db.total_fixed_area
    fill_area = target_density * free_area - db.total_movable_area
    if fill_area <= 0:
        return 0, 0.0, 0.0
    widths = db.cell_width[movable]
    # average width of the middle 80% of cells (robust to macros)
    lo, hi = np.percentile(widths, [10, 90])
    mid = widths[(widths >= lo) & (widths <= hi)]
    filler_width = float(mid.mean()) if mid.size else float(widths.mean())
    filler_height = db.region.row_height
    filler_area = filler_width * filler_height
    if filler_area <= 0:
        return 0, 0.0, 0.0
    count = int(fill_area / filler_area)
    return count, filler_width, filler_height
